#!/usr/bin/env bash
# Determinism lint: reports in this repo must be byte-identical across
# runs and across `--jobs` settings, so std's randomly-seeded HashMap /
# HashSet must never feed a report or serialization path. Iteration
# order over those types varies per process; anything rendered, summed
# in float order, or sampled from such an iteration drifts between runs.
#
# Policy: every `HashMap` / `HashSet` mention in library and binary
# sources must be on the allowlist below, with a justification. Legal
# justifications are, in order of preference:
#   1. keyed lookup only (never iterated),
#   2. iterated only into an order-insensitive reduction (`len`, integer
#      sums, or values sorted before use),
#   3. internal scheduler state whose outputs are re-ordered
#      deterministically before rendering (harness shard merge),
#   4. `#[cfg(test)]`-only code.
# New report-adjacent code should use BTreeMap / BTreeSet (or sort
# explicitly) instead of growing this list.
#
# Usage: scripts/lint_determinism.sh   (exits non-zero on violations)

set -euo pipefail
cd "$(dirname "$0")/.."

# path:justification — keep alphabetized.
ALLOWLIST=(
  "crates/bench/src/experiments/injection.rs:per-process plan memo, keyed lookup only"
  "crates/bench/src/lib.rs:CLI extras are keyed lookups; histogram values sorted before use"
  "crates/faults/src/campaign.rs:clean-run signature map, keyed lookup only"
  "crates/faults/src/classify.rs:public classify() API takes a lookup-only map"
  "crates/faults/src/models.rs:clean-run signature map, keyed lookup only"
  "crates/fuzz/src/corpus.rs:dedup membership set, probed only (audited: digest/stats fold over the entries Vec, never the set)"
  "crates/fuzz/src/oracle.rs:clean-run signature lookup maps, keyed lookup only"
  "crates/harness/src/job.rs:DAG validation state; order-insensitive checks"
  "crates/harness/src/pool.rs:test-only worker-id set behind a Mutex"
  "crates/harness/src/runner.rs:scheduler state; shard payloads re-sorted by index before rendering"
  "crates/isa/src/opcode.rs:OnceLock mnemonic lookup table, keyed lookup only"
  "crates/sim/src/func.rs:cfg(test)-only signature map"
  "crates/sim/src/mem.rs:sparse page store, keyed lookup only"
  "crates/workloads/src/model.rs:cfg(test)-only maps"
  "crates/workloads/src/synth.rs:cfg(test)-only maps"
)

allowed() {
  local file="$1"
  for entry in "${ALLOWLIST[@]}"; do
    [[ "$file" == "${entry%%:*}" ]] && return 0
  done
  return 1
}

# Report-critical crates where hash collections are banned outright:
# these produce (analyze, stats JSON) or define (core) serialized
# artifacts — including the `itr-tap/v1` stream codec and its replay
# fan-out (core/src/{tap,replay}.rs), whose byte-identity guarantee the
# sweep experiments depend on — and must stay hash-free rather than
# grow allowlist entries. crates/env feeds the env.txt/env.csv artifacts
# directly (every scenario counter it aggregates is rendered), so it is
# banned too, as is crates/recover: its campaign counters and sweep
# cells are rendered verbatim into recover.txt/recover.csv.
BANNED_DIRS=(crates/analyze/src crates/stats/src crates/core/src crates/env/src crates/recover/src)

# Report-critical *files* inside otherwise-allowlisted crates. The
# fuzzing service's scheduler, sync transport, serve endpoint, engine,
# snapshot and directed-mutation modules all feed serialized artifacts
# (`itr-fuzz-stats/v1`, `itr-fuzz-sync/v1`, `itr-fuzz-serve/v1`,
# persisted corpora, and the gap-closure counters the `gap-ab` family
# pins) whose byte-identity per seed is an acceptance bar — they must
# stay hash-free (BTreeMap keyed state only) rather than grow allowlist
# entries.
BANNED_FILES=(
  crates/fuzz/src/directed.rs
  crates/fuzz/src/engine.rs
  crates/fuzz/src/schedule.rs
  crates/fuzz/src/server.rs
  crates/fuzz/src/snapshot.rs
  crates/fuzz/src/sync.rs
)

status=0

hits=$(grep -rnE '\b(HashMap|HashSet)\b' src crates/*/src --include='*.rs' | grep -vE '^\S+:[0-9]+:\s*//' || true)

while IFS= read -r line; do
  [[ -z "$line" ]] && continue
  file="${line%%:*}"
  for dir in "${BANNED_DIRS[@]}"; do
    if [[ "$file" == "$dir"/* ]]; then
      echo "FORBIDDEN (hash-free crate): $line"
      status=1
      continue 2
    fi
  done
  for banned in "${BANNED_FILES[@]}"; do
    if [[ "$file" == "$banned" ]]; then
      echo "FORBIDDEN (hash-free file): $line"
      status=1
      continue 2
    fi
  done
  if ! allowed "$file"; then
    echo "UNLISTED: $line"
    status=1
  fi
done <<<"$hits"

if [[ "$status" -ne 0 ]]; then
  cat >&2 <<'MSG'

lint_determinism: hash-ordered collections found outside the allowlist.
Use BTreeMap/BTreeSet (or sort before rendering) in report-feeding code;
if the use is provably order-insensitive, add an allowlisted
`path:justification` entry in scripts/lint_determinism.sh.
MSG
  exit 1
fi

echo "lint_determinism: ok (allowlist: ${#ALLOWLIST[@]} entries)"
