#!/usr/bin/env bash
# Multi-process corpus-sync soak: WORKERS concurrent `itr-fuzz serve`
# processes share one --sync-dir and fuzz to a bounded --max-iters.
# Verifies the cross-process sync protocol end to end:
#
#   * every shard export and every persisted corpus parses via
#     `itr-fuzz corpus` — concurrent writers never tear a reader
#     (the write-then-rename discipline in itr_fuzz::sync);
#   * every worker imported at least one peer case (serve_stats.json
#     `imported` > 0) — the sync rounds actually exchanged novelty
#     while the workers raced;
#   * final shard exports overlap pairwise — the fleet converged
#     toward a shared frontier rather than fuzzing in isolation.
#
# Usage: scripts/fuzz_sync_soak.sh
#   BIN=target/release/itr-fuzz WORKERS=3 ITERS=600 DIR=fuzz-soak
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/itr-fuzz}
WORKERS=${WORKERS:-3}
ITERS=${ITERS:-600}
DIR=${DIR:-fuzz-soak}

test -x "$BIN" || { echo "build first: cargo build -p itr-fuzz --release"; exit 2; }
rm -rf "$DIR"
mkdir -p "$DIR/sync"

pids=()
for w in $(seq 0 $((WORKERS - 1))); do
  "$BIN" serve --mode full --seed $((11 + w)) --port 0 \
    --max-iters "$ITERS" --sync-dir "$DIR/sync" --worker "$w" \
    --out "$DIR/out-$w" >"$DIR/worker-$w.log" 2>&1 &
  pids+=("$!")
done
for pid in "${pids[@]}"; do
  wait "$pid" || { echo "a worker failed; logs in $DIR/"; exit 1; }
done

for w in $(seq 0 $((WORKERS - 1))); do
  "$BIN" corpus "$DIR/sync/shard-$w.jsonl"
  "$BIN" corpus "$DIR/out-$w/corpus.jsonl"
done

python3 - "$DIR" "$WORKERS" <<'EOF'
import itertools
import json
import sys

dir_, n = sys.argv[1], int(sys.argv[2])
sets = []
for w in range(n):
    stats = json.load(open(f"{dir_}/out-{w}/serve_stats.json"))
    assert stats["imported"] > 0, f"worker {w} never imported a peer case: {stats}"
    fps = set()
    for line in open(f"{dir_}/sync/shard-{w}.jsonl"):
        if line.strip():
            fps.add(json.loads(line)["fingerprint"])
    assert fps, f"worker {w} exported an empty corpus"
    sets.append(fps)
    print(f"worker {w}: {len(fps)} exported, {stats['imported']} imported")
for a, b in itertools.combinations(range(n), 2):
    shared = len(sets[a] & sets[b])
    assert shared >= 16, f"workers {a}/{b} share only {shared} cases — no convergence"
    print(f"workers {a}/{b}: {shared} shared cases")
print("sync soak ok")
EOF
