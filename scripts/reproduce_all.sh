#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the supplementary
# studies, writing text and CSV artifacts to results/.
#
# Usage: scripts/reproduce_all.sh [quick|full]
#   quick (default) — minutes-scale defaults
#   full            — paper-scale fault campaigns (1000 faults, 1M-cycle
#                     windows; expect hours)
#
# This is a thin wrapper over the `itr-repro` harness binary, which
# shards the whole evaluation across all cores, journals completed
# shards to results/journal.jsonl, and resumes interrupted runs with
# `itr-repro --resume` (see DESIGN.md §8).

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -p itr-bench --release -q
exec ./target/release/itr-repro --mode "${1:-quick}" --out results
