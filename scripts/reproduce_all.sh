#!/usr/bin/env bash
# Regenerates every table and figure of the paper plus the supplementary
# studies, writing text and CSV artifacts to results/.
#
# Usage: scripts/reproduce_all.sh [quick|full]
#   quick (default) — minutes-scale defaults
#   full            — paper-scale fault campaigns (1000 faults, 1M-cycle
#                     windows; expect hours)

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-quick}"
if [ "$MODE" = "full" ]; then
    FAULTS=1000; WINDOW=1000000; INSTRS=8000000; PINSTRS=400000
else
    FAULTS=200; WINDOW=100000; INSTRS=4000000; PINSTRS=150000
fi

echo "== building (release) =="
cargo build --workspace --release -q

RUN=./target/release
mkdir -p results

echo "== Table 2 (decode signals) =="
$RUN/table2_signals | tee results/table2_signals.txt

echo "== §5 area comparison =="
$RUN/table_area | tee results/table_area.txt

echo "== Table 1 (static traces) =="
$RUN/table1_static_traces --instrs "$INSTRS" | tee results/table1.txt

echo "== Figures 1–2 (repetition) =="
$RUN/fig1_2_repetition --instrs "$INSTRS" | tee results/fig1_2.txt

echo "== Figures 3–4 (repeat distance) =="
$RUN/fig3_4_distance --instrs "$INSTRS" | tee results/fig3_4.txt

echo "== Figures 6–7 (coverage design space) =="
$RUN/fig6_7_coverage --instrs "$INSTRS" | tee results/fig6_7.txt

echo "== Figure 9 (energy) =="
$RUN/fig9_energy --program-instrs 300000 | tee results/fig9.txt

echo "== Figure 8 (fault injection) =="
$RUN/fig8_injection --faults "$FAULTS" --window "$WINDOW" \
    --program-instrs "$PINSTRS" | tee results/fig8.txt

echo "== Figure 8 supplement (by signal field) =="
$RUN/fig8_by_field --faults "$FAULTS" --window "$WINDOW" | tee results/fig8_by_field.txt

echo "== Window sensitivity (footnote 1) =="
$RUN/window_sensitivity --faults "$FAULTS" | tee results/window_sensitivity.txt

echo "== Performance overhead =="
$RUN/perf_overhead --program-instrs "$PINSTRS" | tee results/perf_overhead.txt

echo "== Ablations =="
$RUN/ablations --instrs "$INSTRS" --program-instrs "$PINSTRS" | tee results/ablations.txt

echo
echo "All artifacts written to results/."
