//! Fault injection demo (§4 of the paper): the same single-event upset
//! strikes an unprotected pipeline and an ITR-protected one.
//!
//! * Unprotected: the flipped decode-signal bit silently corrupts the
//!   program result (SDC).
//! * Protected: the trace's signature disagrees with the ITR cache, the
//!   commit interlock blocks the trace, a retry flush re-executes it
//!   cleanly, and the program result is preserved.
//!
//! Run with: `cargo run --example fault_injection`

use itr::isa::asm::assemble;
use itr::isa::DecodeSignals;
use itr::sim::{DecodeFault, Pipeline, PipelineConfig, RunExit};
use itr::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernels::SUM_LOOP;
    let program = assemble(kernel.source)?;

    // Flip a source-register bit of the 50th decoded instruction — deep
    // inside the hot loop, whose trace signature is already cached.
    let fault = DecodeFault { nth_decode: 50, bit: 25 };
    println!(
        "injecting: bit {} ({} field) of decoded instruction #{}\n",
        fault.bit,
        DecodeSignals::field_of_bit(fault.bit),
        fault.nth_decode
    );

    // --- unprotected run ---
    let cfg = PipelineConfig { faults: vec![fault], ..PipelineConfig::default() };
    let mut plain = Pipeline::new(&program, cfg);
    let exit = plain.run(1_000_000);
    println!("unprotected pipeline: exit={exit:?} output={:?}", plain.output());
    println!("  expected output    : {:?}", kernel.expected_output);
    assert_ne!(plain.output(), kernel.expected_output, "silent data corruption");

    // --- ITR-protected run ---
    let cfg = PipelineConfig { faults: vec![fault], ..PipelineConfig::with_itr() };
    let mut protected = Pipeline::new(&program, cfg);
    let exit = protected.run(1_000_000);
    println!("\nITR-protected pipeline: exit={exit:?} output={:?}", protected.output());
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(protected.output(), kernel.expected_output, "result preserved");

    let s = protected.itr().expect("itr on").stats();
    println!("  mismatches detected : {}", s.mismatches);
    println!("  retry flushes       : {}", s.retries);
    println!("  successful recovery : {}", s.recoveries);
    println!("  machine checks      : {}", s.machine_checks);
    println!("\nevents:");
    for (cycle, e) in protected.itr_events() {
        println!("  cycle {cycle:>6}: {e:?}");
    }
    Ok(())
}
