//! Building a workload programmatically and characterizing its inherent
//! time redundancy — the measurement behind Figures 1–4 of the paper.
//!
//! Run with: `cargo run --example custom_workload`

use itr::core::{CoverageModel, ItrCacheConfig};
use itr::isa::{Instruction, Opcode, ProgramBuilder};
use itr::sim::TraceStream;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-phase program built with the ProgramBuilder API: a hot inner
    // loop (high inherent time redundancy) followed by a long straight-
    // line cold section (no redundancy at all).
    let mut b = ProgramBuilder::new();
    b.label("main")?;
    b.load_imm(8, 2_000); // hot loop iterations
    b.label("hot")?;
    b.push(Instruction::rri(Opcode::Addi, 9, 9, 3));
    b.push(Instruction::rrr(Opcode::Xor, 10, 9, 8));
    b.push(Instruction::rri(Opcode::Addi, 8, 8, -1));
    b.branch_to(Opcode::Bgtz, 8, 0, "hot");
    // Cold phase: 2000 distinct straight-line instructions.
    for i in 0..2_000 {
        b.push(Instruction::rri(Opcode::Addi, 10 + (i % 4) as u8, 9, i));
    }
    b.push(Instruction::trap(itr::isa::trap::HALT));
    let program = b.build()?;

    // Characterize the trace stream.
    let mut instrs_by_trace: HashMap<u64, u64> = HashMap::new();
    let mut total = 0u64;
    let mut coverage = CoverageModel::new(ItrCacheConfig::paper_default());
    for t in TraceStream::new(&program, 1_000_000) {
        *instrs_by_trace.entry(t.start_pc).or_default() += t.len as u64;
        total += t.len as u64;
        coverage.observe(&t);
    }
    let mut top: Vec<u64> = instrs_by_trace.values().copied().collect();
    top.sort_unstable_by(|a, b| b.cmp(a));

    println!("dynamic instructions : {total}");
    println!("static traces        : {}", instrs_by_trace.len());
    println!(
        "top-1 trace share    : {:.1}% (the hot loop body)",
        top[0] as f64 * 100.0 / total as f64
    );
    let r = coverage.report();
    println!(
        "ITR coverage loss    : detection {:.2}%, recovery {:.2}%",
        r.detection_loss_pct(),
        r.recovery_loss_pct()
    );
    println!("\nThe hot phase is fully protected after one cold pass; the straight-line");
    println!("cold phase has no repetition, so its instructions are exactly the recovery-");
    println!("coverage loss the paper attributes to ITR cache misses.");
    Ok(())
}
