//! Quickstart: assemble a program, run it on the ITR-protected
//! out-of-order pipeline, and inspect what the ITR unit did.
//!
//! Run with: `cargo run --example quickstart`

use itr::isa::asm::assemble;
use itr::sim::{Pipeline, PipelineConfig, RunExit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small self-checking workload: CRC-like mixing over an array.
    let program = assemble(
        r#"
        .data
        data: .word 11, 22, 33, 44, 55, 66, 77, 88
        .text
        main:
            la   r8, data
            li   r9, 8
            li   r10, 0
        loop:
            lw   r11, 0(r8)
            xor  r10, r10, r11
            sll  r12, r10, 3
            add  r10, r10, r12
            addi r8, r8, 4
            addi r9, r9, -1
            bgtz r9, loop
            move r4, r10
            trap 1              # print the checksum
            halt
        "#,
    )?;

    // The paper's configuration: 1024-signature, 2-way ITR cache guarding
    // the fetch and decode units of a 4-wide out-of-order core.
    let mut cpu = Pipeline::new(&program, PipelineConfig::with_itr());
    let exit = cpu.run(1_000_000);
    assert_eq!(exit, RunExit::Halted);

    println!("program output : {}", cpu.output());
    println!("cycles         : {}", cpu.stats().cycles);
    println!("instructions   : {}", cpu.stats().committed);
    println!("IPC            : {:.2}", cpu.stats().ipc());

    let itr = cpu.itr().expect("ITR unit enabled");
    let s = itr.stats();
    println!("\nITR unit:");
    println!("  traces committed : {}", s.traces_committed);
    println!(
        "  signature checks : {} hits / {} misses",
        itr.cache().stats().hits,
        itr.cache().stats().misses
    );
    println!("  mismatches       : {} (always 0 without faults)", s.mismatches);
    println!("  in-flight checks : {} (ITR-ROB forwarding)", s.rob_forward_hits);
    println!(
        "  recovery-coverage loss: {} of {} instructions ({:.2}%)",
        s.recovery_loss_instrs,
        s.instrs_committed,
        100.0 * s.recovery_loss_instrs as f64 / s.instrs_committed.max(1) as f64
    );
    Ok(())
}
