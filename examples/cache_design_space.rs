//! ITR cache design-space exploration (§3 of the paper, condensed): how
//! size and associativity trade against the two coverage-loss metrics on
//! a hard benchmark (`vortex`, the paper's worst case) and an easy one
//! (`bzip`).
//!
//! Run with: `cargo run --example cache_design_space --release`

use itr::core::{Associativity, CoverageModel, ItrCacheConfig, TraceRecord};
use itr::workloads::{profiles, SyntheticTraceStream};

fn main() {
    for name in ["bzip", "vortex"] {
        let profile = profiles::by_name(name).expect("known benchmark");
        let stream: Vec<TraceRecord> = SyntheticTraceStream::new(profile, 7, 1_000_000).collect();
        println!("=== {name}: coverage loss (% of dynamic instructions) ===");
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            "assoc", "256 det/rec", "512 det/rec", "1024 det/rec"
        );
        for assoc in Associativity::SWEEP {
            print!("{:<10}", assoc.label());
            for entries in [256u32, 512, 1024] {
                let mut model = CoverageModel::new(ItrCacheConfig::new(entries, assoc));
                for t in &stream {
                    model.observe(t);
                }
                let r = model.report();
                print!(" {:>6.2}/{:<6.2}", r.detection_loss_pct(), r.recovery_loss_pct());
            }
            println!();
        }
        println!();
    }
    println!("Reading: detection loss is always well below recovery loss (only evicted-");
    println!("unreferenced lines lose detection); capacity is the main lever for vortex.");
}
