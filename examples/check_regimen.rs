//! The paper's framing (§1): ITR is one member of *"a regimen of
//! low-overhead microarchitecture-level fault checks — each check
//! protects a distinct part of the pipeline, thus the regimen as a whole
//! provides comprehensive protection."*
//!
//! This example injects a fault into a different pipeline unit each time
//! and shows which member of the regimen catches it:
//!
//! | fault target      | caught by                                |
//! |-------------------|------------------------------------------|
//! | decode signals    | ITR signature (this paper)               |
//! | rename map index  | ITR + rename-index folding (§1 extension)|
//! | scheduler select  | TAC-style issue-order assertion (§1)     |
//! | phantom operand   | ITR retry rescues the deadlock (wdog)    |
//!
//! Run with: `cargo run --example check_regimen`

use itr::isa::asm::assemble;
use itr::sim::{DecodeFault, Pipeline, PipelineConfig, RenameFault, RunExit, SchedulerFault};
use itr::workloads::kernels;

fn banner(title: &str) {
    println!("\n──── {title} ────");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = kernels::SUM_LOOP;
    let program = assemble(kernel.source)?;
    let expected = kernel.expected_output;

    // The fully-armed configuration: ITR with rename folding + TAC.
    let armed = || PipelineConfig {
        rename_protection: true,
        tac_check: true,
        ..PipelineConfig::with_itr()
    };

    banner("1. decode-unit fault → ITR signature");
    let cfg = PipelineConfig { faults: vec![DecodeFault { nth_decode: 50, bit: 25 }], ..armed() };
    let mut cpu = Pipeline::new(&program, cfg);
    assert_eq!(cpu.run(5_000_000), RunExit::Halted);
    assert_eq!(cpu.output(), expected);
    let s = cpu.itr().expect("on").stats();
    println!(
        "detected by ITR: {} mismatch, {} recovery — output preserved",
        s.mismatches, s.recoveries
    );

    banner("2. rename-unit fault → ITR + rename-index folding");
    let cfg = PipelineConfig {
        rename_fault: Some(RenameFault { nth_rename: 50, operand: 0, bit: 1 }),
        ..armed()
    };
    let mut cpu = Pipeline::new(&program, cfg);
    assert_eq!(cpu.run(5_000_000), RunExit::Halted);
    assert_eq!(cpu.output(), expected);
    let s = cpu.itr().expect("on").stats();
    println!(
        "detected via folded map-table indexes: {} mismatch, {} recovery",
        s.mismatches, s.recoveries
    );

    banner("3. scheduler fault → TAC issue-order assertion");
    let cfg = PipelineConfig { scheduler_fault: Some(SchedulerFault { nth_issue: 60 }), ..armed() };
    let mut cpu = Pipeline::new(&program, cfg);
    assert_eq!(cpu.run(5_000_000), RunExit::Halted);
    assert_eq!(cpu.output(), expected);
    println!(
        "detected by TAC: {} violation, {} flush-restart — output preserved",
        cpu.stats().tac_violations,
        cpu.stats().tac_recoveries
    );

    banner("4. phantom-operand fault → ITR retry rescues the deadlock");
    // num_rsrc flipped to 3: the instruction waits forever; the ITR retry
    // at the commit interlock flushes and re-executes cleanly.
    let cfg = PipelineConfig { faults: vec![DecodeFault { nth_decode: 53, bit: 58 }], ..armed() };
    let mut cpu = Pipeline::new(&program, cfg);
    assert_eq!(cpu.run(5_000_000), RunExit::Halted, "no deadlock with the regimen");
    assert_eq!(cpu.output(), expected);
    let s = cpu.itr().expect("on").stats();
    println!(
        "rescued by ITR retry: {} mismatch, {} recovery — would deadlock otherwise",
        s.mismatches, s.recoveries
    );

    println!("\nAll four fault classes detected and recovered; program output correct each time.");
    Ok(())
}
