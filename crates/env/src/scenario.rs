//! The scenario scheduler: N recorded programs time-sliced through one
//! shared ITR unit.
//!
//! Each program is recorded **once** as an `itr-tap/v1` dispatch stream
//! ([`ScenarioProgram::record`]); the scheduler then replays arbitrary
//! interleavings of those recordings against a shared [`ItrUnit`] and
//! [`SequentialPcChecker`] — so a whole schedule sweep (quantum ×
//! preemption × switch policy) costs one functional simulation per
//! program, never one per schedule.
//!
//! A context switch does what an OS would do to the ITR hardware:
//!
//! * the in-flight window is flushed ([`ItrUnit::on_full_flush`]) and
//!   the SPC re-seeded at the incoming program's resume PC;
//! * under [`SwitchPolicy::FlushOnSwitch`] the ITR cache is invalidated
//!   wholesale — every line that was never referenced forfeits the
//!   detection coverage of its inserting instance (tracked via
//!   [`FlushSummary`], separate from capacity-eviction loss so the two
//!   causes stay distinguishable);
//! * under [`SwitchPolicy::PolluteOnSwitch`] the cache is left alone:
//!   the next program's working set evicts lines the natural way, and
//!   surviving lines are warm again when their owner is rescheduled.

use itr_core::{FlushSummary, ItrConfig, ItrMode, ItrUnit, SequentialPcChecker, UnitStats};
use itr_isa::{DecodeSignals, Program, SignalFlags};
use itr_sim::record_tap;
use itr_stats::SplitMix64;

/// What happens to the ITR cache at a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SwitchPolicy {
    /// The OS invalidates the whole ITR cache at every switch.
    FlushOnSwitch,
    /// The cache is left intact; programs pollute each other's lines.
    PolluteOnSwitch,
}

impl SwitchPolicy {
    /// Both policies, in report order.
    pub const ALL: [SwitchPolicy; 2] = [SwitchPolicy::FlushOnSwitch, SwitchPolicy::PolluteOnSwitch];

    /// Stable label used in reports and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            SwitchPolicy::FlushOnSwitch => "flush",
            SwitchPolicy::PolluteOnSwitch => "pollute",
        }
    }
}

/// When context switches happen, measured in dispatched instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preemption {
    /// A fixed quantum: switch every `quantum` dispatches.
    Periodic {
        /// Dispatches per time slice (≥ 1).
        quantum: u64,
    },
    /// Random preemption: each slice draws uniformly from
    /// `[1, 2 * mean_quantum)`, so slices average `mean_quantum`.
    Random {
        /// Mean dispatches per time slice (≥ 1).
        mean_quantum: u64,
        /// RNG seed (the schedule is a pure function of it).
        seed: u64,
    },
}

impl Preemption {
    fn first_rng(&self) -> SplitMix64 {
        match *self {
            Preemption::Periodic { .. } => SplitMix64::new(0),
            Preemption::Random { seed, .. } => SplitMix64::new(seed),
        }
    }

    fn next_quantum(&self, rng: &mut SplitMix64) -> u64 {
        match *self {
            Preemption::Periodic { quantum } => quantum.max(1),
            Preemption::Random { mean_quantum, .. } => {
                let mean = mean_quantum.max(1);
                rng.gen_range(1..2 * mean)
            }
        }
    }

    /// Stable label used in reports and CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            Preemption::Periodic { .. } => "periodic",
            Preemption::Random { .. } => "random",
        }
    }
}

/// One program's recorded dispatch stream, relocated to its own PC
/// region so distinct programs never alias the same trace start PCs
/// (they still contend for the same sets, like processes sharing a
/// virtually-indexed structure).
#[derive(Debug, Clone)]
pub struct ScenarioProgram {
    /// Workload label.
    pub name: String,
    /// `(pc, packed_signals, extra)` per dispatch, PC offset applied.
    dispatches: Vec<(u64, u64, u64)>,
    /// Per-dispatch branch flag (for the shared SPC).
    branches: Vec<bool>,
}

impl ScenarioProgram {
    /// Records `program` functionally for at most `max_instrs`
    /// instructions and relocates its PCs by `pc_offset`. This is the
    /// once-per-program simulation every schedule reuses.
    pub fn record(
        program: &Program,
        name: &str,
        max_instrs: u64,
        pc_offset: u64,
    ) -> ScenarioProgram {
        let tap = record_tap(program, name, max_instrs);
        let dispatches: Vec<(u64, u64, u64)> =
            tap.dispatches().map(|(pc, sig, extra)| (pc + pc_offset, sig, extra)).collect();
        assert!(!dispatches.is_empty(), "{name}: empty recording");
        let branches = dispatches
            .iter()
            .map(|&(_, sig, _)| DecodeSignals::unpack(sig).flags.contains(SignalFlags::IS_BRANCH))
            .collect();
        ScenarioProgram { name: name.to_string(), dispatches, branches }
    }

    /// Recorded dispatch count (the stream cycles past this).
    pub fn len(&self) -> usize {
        self.dispatches.len()
    }

    /// `true` if the recording is empty (never: `record` rejects it).
    pub fn is_empty(&self) -> bool {
        self.dispatches.is_empty()
    }
}

/// Configuration of one interleaved scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// ITR geometry for the shared unit. The mode is forced to
    /// [`ItrMode::Passive`] and `cache_read_latency` to 0 (the recorded
    /// streams carry no cycle timestamps, the same constraint tap
    /// replay has).
    pub itr: ItrConfig,
    /// Cache treatment at context switches.
    pub policy: SwitchPolicy,
    /// Switch schedule.
    pub preemption: Preemption,
    /// Total dispatches across all programs.
    pub dispatch_budget: u64,
    /// Drive the shared sequential-PC checker too.
    pub spc: bool,
}

/// One program's share of an interleaved run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramShare {
    /// Workload label.
    pub name: String,
    /// Dispatches this program got.
    pub dispatches: u64,
    /// Shared-unit counter deltas attributed to this program's slices.
    pub stats: UnitStats,
}

/// Warm-up histogram bucket: trace probes at `lo..hi` dispatches after
/// a context switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmupBucket {
    /// Inclusive bucket start (dispatches since the last switch).
    pub lo: u64,
    /// Exclusive bucket end.
    pub hi: u64,
    /// ITR cache probes in the bucket.
    pub probes: u64,
    /// Probes that missed.
    pub misses: u64,
}

/// Number of power-of-two warm-up buckets ([0,16), [16,32), [32,64)…).
pub const WARMUP_BUCKETS: usize = 12;

/// Outcome of one interleaved scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioResult {
    /// Per-program attribution, in program order.
    pub per_program: Vec<ProgramShare>,
    /// Context switches taken.
    pub switches: u64,
    /// Accumulated cost of flush-on-switch invalidations (all zero under
    /// [`SwitchPolicy::PolluteOnSwitch`]).
    pub flush: FlushSummary,
    /// Whole-run shared-unit counters.
    pub total: UnitStats,
    /// Shared-SPC checks (0 when SPC is off).
    pub spc_checks: u64,
    /// Shared-SPC violations.
    pub spc_violations: u64,
    /// Probe/miss counts by distance-since-switch (the warm-up curve).
    pub warmup: [WarmupBucket; WARMUP_BUCKETS],
    /// Valid ITR lines at the end of the run.
    pub final_occupancy: usize,
}

impl ScenarioResult {
    /// Committed instructions whose detection coverage was lost, from
    /// both causes: capacity evictions of unreferenced lines *and*
    /// switch flushes of unreferenced lines.
    pub fn detection_loss_instrs(&self) -> u64 {
        self.total.detection_loss_instrs + self.flush.unreferenced_instrs
    }

    /// Detection loss as a percentage of committed instructions.
    pub fn detection_loss_pct(&self) -> f64 {
        pct(self.detection_loss_instrs(), self.total.instrs_committed)
    }

    /// Recovery loss (committed miss-trace instructions) as a
    /// percentage of committed instructions.
    pub fn recovery_loss_pct(&self) -> f64 {
        pct(self.total.recovery_loss_instrs, self.total.instrs_committed)
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        return 0.0;
    }
    part as f64 * 100.0 / whole as f64
}

fn warmup_bucket(since_switch: u64) -> usize {
    // [0,16), [16,32), [32,64), … doubling; the last bucket is open.
    let mut lo = 16u64;
    for i in 0..WARMUP_BUCKETS - 1 {
        if since_switch < lo {
            return i;
        }
        lo *= 2;
    }
    WARMUP_BUCKETS - 1
}

fn warmup_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        return (0, 16);
    }
    let lo = 16u64 << (i - 1);
    if i == WARMUP_BUCKETS - 1 {
        (lo, u64::MAX)
    } else {
        (lo, lo * 2)
    }
}

fn stats_delta(now: UnitStats, then: UnitStats) -> UnitStats {
    UnitStats {
        traces_dispatched: now.traces_dispatched - then.traces_dispatched,
        traces_committed: now.traces_committed - then.traces_committed,
        instrs_committed: now.instrs_committed - then.instrs_committed,
        recovery_loss_instrs: now.recovery_loss_instrs - then.recovery_loss_instrs,
        detection_loss_instrs: now.detection_loss_instrs - then.detection_loss_instrs,
        mismatches: now.mismatches - then.mismatches,
        rob_forward_hits: now.rob_forward_hits - then.rob_forward_hits,
        retries: now.retries - then.retries,
        recoveries: now.recoveries - then.recoveries,
        machine_checks: now.machine_checks - then.machine_checks,
        parity_repairs: now.parity_repairs - then.parity_repairs,
    }
}

fn stats_add(into: &mut UnitStats, d: UnitStats) {
    into.traces_dispatched += d.traces_dispatched;
    into.traces_committed += d.traces_committed;
    into.instrs_committed += d.instrs_committed;
    into.recovery_loss_instrs += d.recovery_loss_instrs;
    into.detection_loss_instrs += d.detection_loss_instrs;
    into.mismatches += d.mismatches;
    into.rob_forward_hits += d.rob_forward_hits;
    into.retries += d.retries;
    into.recoveries += d.recoveries;
    into.machine_checks += d.machine_checks;
    into.parity_repairs += d.parity_repairs;
}

/// Runs one interleaved scenario: round-robin over `programs`, slices
/// drawn from the preemption schedule, all dispatches driving one
/// shared passive [`ItrUnit`]. Deterministic in its arguments.
pub fn run_scenario(programs: &[ScenarioProgram], cfg: &ScenarioConfig) -> ScenarioResult {
    assert!(!programs.is_empty(), "scenario needs at least one program");
    let itr = ItrConfig { mode: ItrMode::Passive, cache_read_latency: 0, ..cfg.itr };
    let mut unit = ItrUnit::new(itr);
    let mut spc = SequentialPcChecker::new();
    let mut rng = cfg.preemption.first_rng();

    let mut shares: Vec<ProgramShare> = programs
        .iter()
        .map(|p| ProgramShare { name: p.name.clone(), dispatches: 0, stats: UnitStats::default() })
        .collect();
    let mut warmup = [WarmupBucket::default(); WARMUP_BUCKETS];
    for (i, b) in warmup.iter_mut().enumerate() {
        let (lo, hi) = warmup_bounds(i);
        b.lo = lo;
        b.hi = hi;
    }

    let mut cursor = vec![0usize; programs.len()];
    let mut current = 0usize;
    let mut flush = FlushSummary::default();
    let mut switches = 0u64;
    let mut since_switch = 0u64;
    let mut slice_left = cfg.preemption.next_quantum(&mut rng);
    let mut slice_base = unit.stats();

    for _ in 0..cfg.dispatch_budget {
        if slice_left == 0 {
            // Context switch: attribute the slice, flush in-flight state,
            // apply the cache policy, reseed the SPC at the resume PC.
            stats_add(&mut shares[current].stats, stats_delta(unit.stats(), slice_base));
            unit.on_full_flush();
            let _ = unit.drain_events();
            if cfg.policy == SwitchPolicy::FlushOnSwitch {
                let s = unit.cache_mut().invalidate_all();
                flush.lines += s.lines;
                flush.unreferenced_lines += s.unreferenced_lines;
                flush.unreferenced_instrs += s.unreferenced_instrs;
            }
            switches += 1;
            current = (current + 1) % programs.len();
            if cfg.spc {
                let resume_pc = programs[current].dispatches[cursor[current]].0;
                spc.reseed(resume_pc);
            }
            since_switch = 0;
            slice_left = cfg.preemption.next_quantum(&mut rng);
            slice_base = unit.stats();
        }
        let prog = &programs[current];
        let i = cursor[current];
        let (pc, sig, extra) = prog.dispatches[i];

        let probes_before = unit.cache().stats();
        let r = unit.on_dispatch_extended(pc, &DecodeSignals::unpack(sig), extra);
        if r.trace_end {
            unit.on_trace_end_commit(r.trace_seq);
        }
        let probes_after = unit.cache().stats();
        if probes_after.reads > probes_before.reads {
            let b = &mut warmup[warmup_bucket(since_switch)];
            b.probes += probes_after.reads - probes_before.reads;
            b.misses += probes_after.misses - probes_before.misses;
        }

        if cfg.spc {
            let next_i = (i + 1) % prog.len();
            // At the wrap the OS "restarts" the program: model the jump
            // back as a taken branch so the shared checker follows the
            // recording instead of flagging a spurious violation.
            let is_branch = prog.branches[i] || next_i == 0;
            spc.check_and_advance(pc, is_branch, prog.dispatches[next_i].0);
        }

        cursor[current] = (i + 1) % prog.len();
        shares[current].dispatches += 1;
        since_switch += 1;
        slice_left -= 1;
    }
    stats_add(&mut shares[current].stats, stats_delta(unit.stats(), slice_base));
    let _ = unit.drain_events();

    ScenarioResult {
        per_program: shares,
        switches,
        flush,
        total: unit.stats(),
        spc_checks: spc.checks(),
        spc_violations: spc.violations(),
        warmup,
        final_occupancy: unit.cache().occupancy(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_workloads::kernels;

    fn two_programs() -> Vec<ScenarioProgram> {
        let a = assemble(kernels::SUM_LOOP.source).unwrap();
        let b = assemble(kernels::FIB.source).unwrap();
        vec![
            ScenarioProgram::record(&a, "sum_loop", 2_000, 0),
            ScenarioProgram::record(&b, "fib", 2_000, 0x10_0000),
        ]
    }

    fn cfg(policy: SwitchPolicy, quantum: u64) -> ScenarioConfig {
        ScenarioConfig {
            itr: ItrConfig::paper_default(),
            policy,
            preemption: Preemption::Periodic { quantum },
            dispatch_budget: 20_000,
            spc: true,
        }
    }

    #[test]
    fn budget_is_shared_and_attributed() {
        let programs = two_programs();
        let r = run_scenario(&programs, &cfg(SwitchPolicy::PolluteOnSwitch, 500));
        assert_eq!(r.per_program.iter().map(|p| p.dispatches).sum::<u64>(), 20_000);
        assert_eq!(r.switches, 39, "20k dispatches / 500-quantum slices");
        assert!(r.per_program.iter().all(|p| p.dispatches > 0));
        let attributed: u64 = r.per_program.iter().map(|p| p.stats.instrs_committed).sum();
        assert_eq!(attributed, r.total.instrs_committed, "deltas partition the totals");
    }

    #[test]
    fn scenario_is_deterministic() {
        let programs = two_programs();
        for policy in SwitchPolicy::ALL {
            let a = run_scenario(&programs, &cfg(policy, 230));
            let b = run_scenario(&programs, &cfg(policy, 230));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn random_preemption_is_deterministic_in_the_seed() {
        let programs = two_programs();
        let mk = |seed| ScenarioConfig {
            preemption: Preemption::Random { mean_quantum: 300, seed },
            ..cfg(SwitchPolicy::PolluteOnSwitch, 0)
        };
        let a = run_scenario(&programs, &mk(5));
        let b = run_scenario(&programs, &mk(5));
        let c = run_scenario(&programs, &mk(6));
        assert_eq!(a, b);
        assert_ne!(a.switches, 0);
        assert_ne!(a, c, "different seeds schedule differently");
    }

    #[test]
    fn no_switches_without_preemption_pressure() {
        let programs = two_programs();
        let r = run_scenario(&programs, &cfg(SwitchPolicy::FlushOnSwitch, 1_000_000));
        assert_eq!(r.switches, 0);
        assert_eq!(r.flush, FlushSummary::default());
        assert_eq!(r.per_program[1].dispatches, 0, "program B never scheduled");
    }

    #[test]
    fn flush_on_switch_costs_detection_coverage() {
        let programs = two_programs();
        let flush = run_scenario(&programs, &cfg(SwitchPolicy::FlushOnSwitch, 200));
        let pollute = run_scenario(&programs, &cfg(SwitchPolicy::PolluteOnSwitch, 200));
        assert!(flush.flush.lines > 0, "flushes invalidated lines");
        assert!(
            flush.detection_loss_instrs() > pollute.detection_loss_instrs(),
            "flush {} vs pollute {}",
            flush.detection_loss_instrs(),
            pollute.detection_loss_instrs()
        );
        // Pollute keeps warm lines across switches: strictly fewer misses.
        assert!(pollute.total.recovery_loss_instrs <= flush.total.recovery_loss_instrs);
        assert_eq!(pollute.flush, FlushSummary::default());
    }

    #[test]
    fn warmup_misses_concentrate_after_flush_switches() {
        let programs = two_programs();
        let r = run_scenario(&programs, &cfg(SwitchPolicy::FlushOnSwitch, 512));
        let (early, late): (Vec<_>, Vec<_>) = r.warmup.iter().partition(|b| b.hi <= 64);
        let rate = |bs: &[&WarmupBucket]| {
            let probes: u64 = bs.iter().map(|b| b.probes).sum();
            let misses: u64 = bs.iter().map(|b| b.misses).sum();
            misses as f64 / probes.max(1) as f64
        };
        assert!(
            rate(&early) > rate(&late),
            "cold-start misses must dominate right after a switch: early {:.3} late {:.3}",
            rate(&early),
            rate(&late)
        );
    }

    #[test]
    fn spc_follows_interleaved_streams_cleanly() {
        let programs = two_programs();
        let r = run_scenario(&programs, &cfg(SwitchPolicy::PolluteOnSwitch, 100));
        assert_eq!(r.spc_checks, 20_000);
        assert_eq!(r.spc_violations, 0, "reseeding at switches keeps the shared SPC clean");
    }
}
