//! # itr-env — hostile-environment scenarios for the ITR reproduction
//!
//! The paper evaluates ITR one program at a time on a quiet machine. A
//! deployed processor is messier: the OS time-slices competing programs
//! through the *same* physical ITR cache and sequential-PC checker, and
//! every context switch either flushes the cache (losing the detection
//! coverage of unreferenced lines, §3's measure) or leaves it to be
//! polluted by the next program's working set. This crate models that
//! environment on top of the `itr-tap/v1` record/replay boundary:
//!
//! * [`ScenarioProgram`] — one functional recording per program,
//!   relocated to its own PC region;
//! * [`run_scenario`] — a deterministic scheduler that interleaves the
//!   recordings through one shared passive [`itr_core::ItrUnit`] under a
//!   configurable [`Preemption`] schedule and [`SwitchPolicy`], with
//!   per-program counter attribution, flush-loss accounting
//!   ([`itr_core::FlushSummary`]) and a cold-start warm-up histogram;
//! * [`record_program_set`] — the standard kernel set used by the
//!   `env-interleave` reproduction family.
//!
//! Because each program is recorded exactly once, a sweep over K
//! schedules (quantum × preemption × policy) costs K cheap replays, not
//! K pipeline simulations — the same fan-out economics `itr-tap/v1` was
//! built for.
//!
//! The richer fault models that complete the hostile-environment picture
//! (multi-bit upsets, stuck-ats, intermittents, retry-window bursts)
//! live in `itr-faults::models`; the new workload families they stress
//! live in `itr-workloads::kernels`.

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod scenario;

pub use scenario::{
    run_scenario, Preemption, ProgramShare, ScenarioConfig, ScenarioProgram, ScenarioResult,
    SwitchPolicy, WarmupBucket, WARMUP_BUCKETS,
};

use itr_isa::asm::assemble;
use itr_workloads::kernels;

/// Records the named kernels, each once, relocated to disjoint PC
/// regions (`i * 0x10_0000`). Panics on an unknown kernel name — the
/// callers pass compile-time sets.
pub fn record_program_set(names: &[&str], max_instrs: u64) -> Vec<ScenarioProgram> {
    let all = kernels::all();
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let kernel = all
                .iter()
                .find(|k| k.name == *name)
                .unwrap_or_else(|| panic!("unknown kernel {name}"));
            let program = assemble(kernel.source)
                .unwrap_or_else(|e| panic!("{name} failed to assemble: {e:?}"));
            ScenarioProgram::record(&program, name, max_instrs, i as u64 * 0x10_0000)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_set_records_each_kernel_once_in_disjoint_regions() {
        let set = record_program_set(&["sum_loop", "crc32", "rle_compress"], 1_500);
        assert_eq!(set.len(), 3);
        assert_eq!(set[0].name, "sum_loop");
        assert!(set.iter().all(|p| !p.is_empty()));
        // Region check: every recorded PC of program i sits in its slot.
        // (The accessor is private; a cheap proxy is that the same kernel
        // recorded at offset 0 differs from its relocated twin.)
        let base = record_program_set(&["rle_compress"], 1_500);
        assert_eq!(base[0].len(), set[2].len());
    }
}
