//! Typed, named counters addressed by integer handles.
//!
//! Registration happens once at construction time; the cycle-loop hot
//! path then increments through a [`Counter`] handle, which is a plain
//! index — no hashing, no string comparison.

/// What a counter's value measures, carried into the JSON export so
/// consumers don't have to guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Machine cycles.
    Cycles,
    /// Dynamic instructions.
    Instructions,
    /// ITR traces.
    Traces,
    /// SRAM array accesses (the unit of the §5 energy accounting).
    Accesses,
    /// Discrete events (mismatches, flushes, violations, …).
    Events,
}

impl Unit {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Cycles => "cycles",
            Unit::Instructions => "instructions",
            Unit::Traces => "traces",
            Unit::Accesses => "accesses",
            Unit::Events => "events",
        }
    }

    /// Parses the JSON-export name back to a unit.
    pub fn parse(s: &str) -> Option<Unit> {
        Some(match s {
            "cycles" => Unit::Cycles,
            "instructions" => Unit::Instructions,
            "traces" => Unit::Traces,
            "accesses" => Unit::Accesses,
            "events" => Unit::Events,
            _ => return None,
        })
    }
}

/// A registered counter's metadata.
#[derive(Debug, Clone, Copy)]
pub struct CounterDef {
    /// Stable snake_case name (the JSON key).
    pub name: &'static str,
    /// Measurement unit.
    pub unit: Unit,
    /// One-line description.
    pub help: &'static str,
}

/// Cheap handle to one counter in a [`Counters`] set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u32);

/// An ordered set of named counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    defs: Vec<CounterDef>,
    values: Vec<u64>,
}

impl Counters {
    /// An empty set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Registers a counter and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — counter names are JSON keys and must
    /// be unique within a set.
    pub fn register(&mut self, name: &'static str, unit: Unit, help: &'static str) -> Counter {
        assert!(self.defs.iter().all(|d| d.name != name), "duplicate counter `{name}`");
        self.defs.push(CounterDef { name, unit, help });
        self.values.push(0);
        Counter(self.defs.len() as u32 - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.values[c.0 as usize] += n;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Overwrites a counter (for gauges like `cycles`).
    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.values[c.0 as usize] = v;
    }

    /// Current value.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c.0 as usize]
    }

    /// Looks a counter up by name (export/consumer path; not for hot
    /// loops).
    pub fn get_by_name(&self, name: &str) -> Option<u64> {
        self.defs.iter().position(|d| d.name == name).map(|i| self.values[i])
    }

    /// Iterates `(def, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&CounterDef, u64)> {
        self.defs.iter().zip(self.values.iter().copied())
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Resets every value to zero, keeping the registrations.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_add_get_roundtrip() {
        let mut c = Counters::new();
        let a = c.register("a", Unit::Events, "");
        let b = c.register("b", Unit::Cycles, "");
        c.add(a, 5);
        c.inc(a);
        c.set(b, 42);
        assert_eq!(c.get(a), 6);
        assert_eq!(c.get_by_name("b"), Some(42));
        assert_eq!(c.get_by_name("nope"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicate_names_are_rejected() {
        let mut c = Counters::new();
        c.register("x", Unit::Events, "");
        c.register("x", Unit::Events, "");
    }

    #[test]
    fn unit_names_roundtrip() {
        for u in [Unit::Cycles, Unit::Instructions, Unit::Traces, Unit::Accesses, Unit::Events] {
            assert_eq!(Unit::parse(u.name()), Some(u));
        }
        assert_eq!(Unit::parse("bogus"), None);
    }
}
