//! Deterministic PRNG replacing the external `rand` crate.
//!
//! [`SplitMix64`] (Steele, Lea & Flood, OOPSLA'14) passes BigCrush, needs
//! eight bytes of state, and — unlike `rand::StdRng`, whose algorithm is
//! explicitly unstable across versions — produces the same stream forever,
//! which is what reproducible fault campaigns and golden-snapshot tests
//! need. The `gen_range`/`gen_bool` surface mirrors `rand::Rng` so call
//! sites port mechanically.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// `rand::SeedableRng`-flavoured alias for [`SplitMix64::new`].
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit output (high half of [`next_u64`](Self::next_u64)).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a half-open (`lo..hi`) or inclusive
    /// (`lo..=hi`) range, like `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, n)` via the widening-multiply reduction
    /// (`n == 0` means the full 64-bit range).
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return self.next_u64();
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A range [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SplitMix64) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                // Span of the full type wraps to 0, which `below` treats
                // as the whole 64-bit range — correct for 64-bit types.
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_stable() {
        // First outputs for seed 0 from the published SplitMix64
        // reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let a: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: usize = r.gen_range(0..3);
            assert!(c < 3);
            let d: u8 = r.gen_range(2..=7);
            assert!((2..=7).contains(&d));
            let f = r.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let p = r.next_f64();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn ranges_cover_endpoints() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 drawn: {seen:?}");
        let mut hit_hi = false;
        let mut hit_lo = false;
        for _ in 0..1_000 {
            match r.gen_range(-1..=1i32) {
                1 => hit_hi = true,
                -1 => hit_lo = true,
                _ => {}
            }
        }
        assert!(hit_hi && hit_lo, "inclusive endpoints reachable");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "p=0.4 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SplitMix64::new(0);
        let _: u32 = r.gen_range(5..5);
    }
}
