//! Fixed-capacity ring buffer of recent events.
//!
//! The pipeline pushes one entry per notable stage event; after an ITR
//! mismatch the ring holds the last `capacity` events leading up to it —
//! a hardware-style post-mortem trace with O(1) overhead per event.

/// A bounded ring that keeps the most recent `capacity` items.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Next write slot (wraps); valid once `buf.len() == capacity`.
    head: usize,
    /// Total items ever pushed (so consumers can tell how many were lost).
    pushed: u64,
}

impl<T> EventRing<T> {
    /// A ring keeping at most `capacity` items (`capacity == 0` disables
    /// recording entirely).
    pub fn new(capacity: usize) -> EventRing<T> {
        EventRing { buf: Vec::with_capacity(capacity), capacity, head: 0, pushed: 0 }
    }

    /// Records one event, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.capacity == 0 {
            return;
        }
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded (or recording is disabled).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items ever pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterates the held items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_most_recent_items_in_order() {
        let mut r = EventRing::new(3);
        for i in 0..7 {
            r.push(i);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_pushed(), 7);
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = EventRing::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut r = EventRing::new(0);
        r.push(1);
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 0);
    }
}
