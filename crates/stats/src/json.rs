//! A dependency-free JSON value model, writer and parser.
//!
//! Supports exactly what the stats export needs: objects with ordered
//! keys, arrays, strings, `u64`/`f64` numbers, booleans and null. Not a
//! general-purpose JSON library — no streaming, no comments, no
//! surrogate-pair escapes beyond `\uXXXX` for the BMP.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (the export's counters are all unsigned).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, accepting integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields in order.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => unreachable!("loop exits only on quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("itr \"stats\"\n".into())),
            ("count".into(), Value::UInt(u64::MAX)),
            ("ratio".into(), Value::Float(0.25)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("items".into(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
        ]);
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Value::parse(" { \"a\\u0041\" : [ 1 , 2.5 ,\ttrue ] } ").unwrap();
        let arr = v.get("aA").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2], Value::Bool(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn large_u64_counters_survive() {
        let text = Value::UInt(u64::MAX).to_json();
        assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }
}
