//! Power-of-two-bucketed histograms for per-stage distributions.
//!
//! Bucket `i` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts zeros
//! and ones... precisely: bucket of sample `v` is `64 - (v.leading_zeros)`
//! clamped, i.e. `v=0 → 0`, `v=1 → 1`, `2..3 → 2`, `4..7 → 3`, …). The
//! exact sum and count are kept alongside, so means stay exact even
//! though the distribution is bucketed.

/// A log2 histogram with exact count/sum/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

/// An owned snapshot of a histogram, as carried by the JSON export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name (the JSON key).
    pub name: String,
    /// Trailing-zero-trimmed log2 buckets.
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another snapshot of the same distribution into this one.
    ///
    /// Buckets add element-wise (the shorter vector is zero-extended),
    /// `count`/`sum` add, `max` takes the maximum — so merging the
    /// snapshots of N disjoint shards equals the snapshot of one run
    /// that saw every sample. The operation is commutative and
    /// associative: any merge order produces the same snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new(name: &'static str) -> Histogram {
        Histogram { name, buckets: [0; 32], count: 0, sum: 0, max: 0 }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Bucket index of a sample value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(31)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Snapshot for export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let used = self.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        HistogramSnapshot {
            name: self.name.to_string(),
            buckets: self.buckets[..used].to_vec(),
            count: self.count,
            sum: self.sum,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new("h");
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1049);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 1, "zero");
        assert_eq!(s.buckets[1], 1, "one");
        assert_eq!(s.buckets[2], 2, "2..3");
        assert_eq!(s.buckets[3], 2, "4..7");
        assert_eq!(s.buckets[4], 1, "8..15");
        assert_eq!(s.buckets[11], 1, "1024..2047");
        assert_eq!(s.buckets.len(), 12, "trailing zeros trimmed");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new("m");
        h.record(10);
        h.record(20);
        assert!((h.mean() - 15.0).abs() < 1e-12);
        assert!((h.snapshot().mean() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_merge_equals_single_histogram() {
        let samples = [0u64, 1, 2, 3, 9, 100, 5000, 7, 7, 63];
        let mut whole = Histogram::new("w");
        let mut left = Histogram::new("w");
        let mut right = Histogram::new("w");
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, whole.snapshot());
        // The other merge order gives the same snapshot.
        let mut swapped = right.snapshot();
        swapped.merge(&left.snapshot());
        assert_eq!(swapped, merged);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new("e");
        assert_eq!(h.mean(), 0.0);
        assert!(h.snapshot().buckets.is_empty());
    }
}
