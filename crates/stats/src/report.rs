//! The JSON export schema: named sections of counters and histograms.
//!
//! Shape (`schema` pins the version so consumers can detect drift):
//!
//! ```json
//! {
//!   "schema": "itr-stats/v1",
//!   "sections": {
//!     "pipeline": {
//!       "counters": { "cycles": { "value": 1200, "unit": "cycles" }, ... },
//!       "histograms": {
//!         "commit_width": { "buckets": [3, 10, 7], "count": 20,
//!                           "sum": 41, "max": 4 }
//!       }
//!     },
//!     ...
//!   }
//! }
//! ```

use crate::counter::{Counters, Unit};
use crate::histogram::HistogramSnapshot;
use crate::json::{ParseError, Value};

/// Schema identifier written into every export.
pub const SCHEMA: &str = "itr-stats/v1";

/// One exported counter: value plus its unit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CounterEntry {
    name: String,
    value: u64,
    unit: Option<Unit>,
}

/// A named group of counters and histograms (one per producer: the
/// pipeline, the ITR unit, the coverage model, ...).
#[derive(Debug, Clone, Default)]
pub struct Section {
    name: String,
    counters: Vec<CounterEntry>,
    histograms: Vec<HistogramSnapshot>,
}

impl Section {
    /// The section's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Iterates `(name, value)` in export order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|c| (c.name.as_str(), c.value))
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Iterates the section's histograms in export order.
    pub fn histograms(&self) -> impl Iterator<Item = &HistogramSnapshot> {
        self.histograms.iter()
    }
}

/// A full stats export: an ordered collection of [`Section`]s.
#[derive(Debug, Clone, Default)]
pub struct Report {
    sections: Vec<Section>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends a section built from a live [`Counters`] set and
    /// histogram snapshots. Replaces any earlier section with the same
    /// name so producers can re-export without duplicating.
    pub fn push_section(
        &mut self,
        name: &str,
        counters: &Counters,
        histograms: &[HistogramSnapshot],
    ) {
        self.sections.retain(|s| s.name != name);
        self.sections.push(Section {
            name: name.to_string(),
            counters: counters
                .iter()
                .map(|(def, value)| CounterEntry {
                    name: def.name.to_string(),
                    value,
                    unit: Some(def.unit),
                })
                .collect(),
            histograms: histograms.to_vec(),
        });
    }

    /// Looks up a section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Iterates the sections in export order.
    pub fn sections(&self) -> impl Iterator<Item = &Section> {
        self.sections.iter()
    }

    /// Convenience: `section(...)` then `counter(...)`.
    pub fn counter(&self, section: &str, name: &str) -> Option<u64> {
        self.section(section)?.counter(name)
    }

    /// Convenience: `section(...)` then `histogram(...)`.
    pub fn histogram(&self, section: &str, name: &str) -> Option<&HistogramSnapshot> {
        self.section(section)?.histogram(name)
    }

    /// Folds another report into this one, section by section.
    ///
    /// Sections, counters and histograms are matched by name: counter
    /// values add, histograms merge per [`HistogramSnapshot::merge`],
    /// and names present only in `other` are appended in `other`'s
    /// order. Merging the per-shard reports of N disjoint shards thus
    /// equals the report of one combined run, and — because addition
    /// and max are commutative and associative — the aggregate is the
    /// same regardless of shard completion order or thread count, as
    /// long as every producer registers the same counter set (all our
    /// producers do: registration order is fixed at construction).
    ///
    /// Event rings ([`crate::EventRing`]) are deliberately *not* part
    /// of the export and therefore not merged: a ring is per-run
    /// post-mortem state whose length is `min(capacity, pushed)`, so a
    /// "merged ring" would have no well-defined contents. Consumers
    /// that need cross-shard event totals must export them as counters.
    pub fn merge(&mut self, other: &Report) {
        for os in &other.sections {
            let section = match self.sections.iter_mut().find(|s| s.name == os.name) {
                Some(s) => s,
                None => {
                    self.sections.push(Section { name: os.name.clone(), ..Section::default() });
                    self.sections.last_mut().expect("just pushed")
                }
            };
            for oc in &os.counters {
                match section.counters.iter_mut().find(|c| c.name == oc.name) {
                    Some(c) => c.value += oc.value,
                    None => section.counters.push(oc.clone()),
                }
            }
            for oh in &os.histograms {
                match section.histograms.iter_mut().find(|h| h.name == oh.name) {
                    Some(h) => h.merge(oh),
                    None => section.histograms.push(oh.clone()),
                }
            }
        }
    }

    /// Serializes to the compact `itr-stats/v1` JSON document.
    pub fn to_json(&self) -> String {
        let sections = self
            .sections
            .iter()
            .map(|s| {
                let counters = s
                    .counters
                    .iter()
                    .map(|c| {
                        let mut fields = vec![("value".to_string(), Value::UInt(c.value))];
                        if let Some(u) = c.unit {
                            fields.push(("unit".to_string(), Value::Str(u.name().to_string())));
                        }
                        (c.name.clone(), Value::Object(fields))
                    })
                    .collect();
                let histograms = s
                    .histograms
                    .iter()
                    .map(|h| {
                        (
                            h.name.clone(),
                            Value::Object(vec![
                                (
                                    "buckets".to_string(),
                                    Value::Array(
                                        h.buckets.iter().map(|&b| Value::UInt(b)).collect(),
                                    ),
                                ),
                                ("count".to_string(), Value::UInt(h.count)),
                                ("sum".to_string(), Value::UInt(h.sum)),
                                ("max".to_string(), Value::UInt(h.max)),
                            ]),
                        )
                    })
                    .collect();
                (
                    s.name.clone(),
                    Value::Object(vec![
                        ("counters".to_string(), Value::Object(counters)),
                        ("histograms".to_string(), Value::Object(histograms)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("sections".to_string(), Value::Object(sections)),
        ])
        .to_json()
    }

    /// Parses an `itr-stats/v1` JSON document.
    pub fn from_json(text: &str) -> Result<Report, ParseError> {
        let bad = |message| ParseError { offset: 0, message };
        let doc = Value::parse(text)?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            _ => return Err(bad("missing or unsupported `schema`")),
        }
        let sections_obj = doc
            .get("sections")
            .and_then(Value::as_object)
            .ok_or_else(|| bad("missing `sections` object"))?;
        let mut sections = Vec::with_capacity(sections_obj.len());
        for (name, body) in sections_obj {
            let mut section = Section { name: name.clone(), ..Section::default() };
            if let Some(counters) = body.get("counters").and_then(Value::as_object) {
                for (cname, centry) in counters {
                    let value = centry
                        .get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| bad("counter missing `value`"))?;
                    let unit = centry.get("unit").and_then(Value::as_str).and_then(Unit::parse);
                    section.counters.push(CounterEntry { name: cname.clone(), value, unit });
                }
            }
            if let Some(histograms) = body.get("histograms").and_then(Value::as_object) {
                for (hname, hentry) in histograms {
                    let buckets = hentry
                        .get("buckets")
                        .and_then(Value::as_array)
                        .ok_or_else(|| bad("histogram missing `buckets`"))?
                        .iter()
                        .map(|b| b.as_u64().ok_or_else(|| bad("non-integer bucket")))
                        .collect::<Result<Vec<u64>, ParseError>>()?;
                    let field = |key| {
                        hentry
                            .get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| bad("histogram missing a field"))
                    };
                    section.histograms.push(HistogramSnapshot {
                        name: hname.clone(),
                        buckets,
                        count: field("count")?,
                        sum: field("sum")?,
                        max: field("max")?,
                    });
                }
            }
            sections.push(section);
        }
        Ok(Report { sections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::Unit;
    use crate::histogram::Histogram;

    fn sample_report() -> Report {
        let mut c = Counters::new();
        let cycles = c.register("cycles", Unit::Cycles, "total cycles");
        let commits = c.register("committed", Unit::Instructions, "retired instructions");
        c.set(cycles, 1200);
        c.add(commits, 900);
        let mut h = Histogram::new("commit_width");
        for w in [0u64, 1, 2, 4, 4, 3] {
            h.record(w);
        }
        let mut r = Report::new();
        r.push_section("pipeline", &c, &[h.snapshot()]);
        r
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let r = sample_report();
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back.counter("pipeline", "cycles"), Some(1200));
        assert_eq!(back.counter("pipeline", "committed"), Some(900));
        let h = back.histogram("pipeline", "commit_width").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 14);
        assert_eq!(h.max, 4);
        assert_eq!(h, r.histogram("pipeline", "commit_width").unwrap());
    }

    #[test]
    fn missing_lookups_return_none() {
        let r = sample_report();
        assert_eq!(r.counter("pipeline", "nope"), None);
        assert_eq!(r.counter("nope", "cycles"), None);
        assert!(r.histogram("pipeline", "nope").is_none());
    }

    #[test]
    fn push_section_replaces_same_name() {
        let mut r = sample_report();
        let mut c = Counters::new();
        let x = c.register("cycles", Unit::Cycles, "");
        c.set(x, 7);
        r.push_section("pipeline", &c, &[]);
        assert_eq!(r.sections().count(), 1);
        assert_eq!(r.counter("pipeline", "cycles"), Some(7));
    }

    #[test]
    fn merging_shard_reports_equals_combined_run() {
        // Simulate one "combined" run and the same samples split across
        // three shards; the merged shard reports must match exactly.
        let samples: Vec<u64> = (0..30).map(|i| (i * 7) % 23).collect();
        let report_of = |chunk: &[u64]| {
            let mut c = Counters::new();
            let n = c.register("events", Unit::Events, "");
            let mut h = Histogram::new("widths");
            for &s in chunk {
                c.add(n, 1);
                h.record(s);
            }
            let mut r = Report::new();
            r.push_section("pipeline", &c, &[h.snapshot()]);
            r
        };
        let combined = report_of(&samples);
        let mut merged = Report::new();
        for chunk in samples.chunks(11) {
            merged.merge(&report_of(chunk));
        }
        assert_eq!(merged.to_json(), combined.to_json());
    }

    #[test]
    fn merge_is_order_independent() {
        let a = sample_report();
        let mut b = Report::new();
        let mut c = Counters::new();
        let x = c.register("cycles", Unit::Cycles, "");
        c.set(x, 7);
        b.push_section("pipeline", &c, &[]);
        b.push_section("extra", &c, &[]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("pipeline", "cycles"), Some(1207));
        assert_eq!(ba.counter("pipeline", "cycles"), Some(1207));
        assert_eq!(ab.counter("extra", "cycles"), ba.counter("extra", "cycles"));
        assert_eq!(
            ab.histogram("pipeline", "commit_width"),
            ba.histogram("pipeline", "commit_width")
        );
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let r = sample_report();
        let mut m = Report::new();
        m.merge(&r);
        assert_eq!(m.to_json(), r.to_json());
    }

    #[test]
    fn schema_is_checked() {
        assert!(Report::from_json("{\"schema\":\"other/v9\",\"sections\":{}}").is_err());
        assert!(Report::from_json("{\"sections\":{}}").is_err());
        assert!(Report::from_json("not json").is_err());
    }
}
