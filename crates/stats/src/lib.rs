//! # itr-stats — the unified telemetry layer
//!
//! Every counter in the workspace flows through this crate: the pipeline's
//! per-stage statistics, the ITR unit's chk/miss/retry accounting, the
//! coverage models, and the SRAM access counts behind the §5 energy study.
//! Consumers (the fault-campaign runner, the figure binaries, tests) read
//! one JSON export instead of reaching into simulator internals.
//!
//! ## Components
//!
//! * [`Counters`] — a registry of typed, named counters addressed by cheap
//!   integer [`Counter`] handles (safe for cycle-loop hot paths),
//! * [`Histogram`] — power-of-two-bucketed distribution, used for
//!   per-stage occupancy and width histograms,
//! * [`EventRing`] — a fixed-capacity ring buffer of recent stage events,
//!   kept for post-mortem inspection after an ITR mismatch,
//! * [`Report`] / [`Section`] — the export schema: named sections of
//!   counters and histograms with [`Report::to_json`] /
//!   [`Report::from_json`],
//! * [`json`] — the dependency-free JSON value model backing the export,
//! * [`rng`] — the deterministic SplitMix64/xorshift PRNG that replaces
//!   the external `rand` crate, keeping the workspace hermetic.
//!
//! ## Example
//!
//! ```
//! use itr_stats::{Counters, Report, Unit};
//!
//! let mut c = Counters::new();
//! let hits = c.register("hits", Unit::Events, "cache hits");
//! c.add(hits, 3);
//! let mut report = Report::new();
//! report.push_section("cache", &c, &[]);
//! let back = Report::from_json(&report.to_json()).unwrap();
//! assert_eq!(back.counter("cache", "hits"), Some(3));
//! ```

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod counter;
mod histogram;
pub mod json;
mod report;
mod ring;
pub mod rng;

pub use counter::{Counter, CounterDef, Counters, Unit};
pub use histogram::{Histogram, HistogramSnapshot};
pub use report::{Report, Section};
pub use ring::EventRing;
pub use rng::SplitMix64;
