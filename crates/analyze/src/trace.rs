//! Static trace enumeration under the decode-time trace-formation rules.
//!
//! `itr-core`'s [`TraceBuilder`] terminates a trace on any instruction
//! with the `is_branch` decode flag, or when the configured length limit
//! is reached. Both conditions depend only on *static* properties of the
//! instruction stream, so for a fixed program the set of traces that can
//! ever form is computable ahead of time: start at the entry point, walk
//! forward applying exactly the dynamic rules (this module literally
//! drives a [`TraceBuilder`]), and close over every control-flow
//! successor of every completed trace.
//!
//! Successor rules, mirroring `itr-sim`'s execution semantics:
//!
//! * conditional branch — direct target *and* fall-through,
//! * `j` / `jal` — direct target only,
//! * `jr` / `jalr` — the conservative indirect-target set of the image,
//! * `trap HALT` / `trap ABORT` — the run stops; no successor,
//! * any other trap — execution continues at `pc + 4`,
//! * length-limit cut — the next trace starts at the following pc.
//!
//! Successors outside the image's analysis region are counted as *cut
//! edges* instead of walked (the nop ribbon is infinite; see
//! [`crate::image`]).

use crate::image::ProgramImage;
use itr_core::{FoldKind, TraceBuilder, TraceRecord};
use itr_isa::{trap, Instruction, Opcode, INSTRUCTION_BYTES};
use std::collections::BTreeMap;

/// Why a static trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Conditional branch (two successors: target, fall-through).
    CondBranch {
        /// Branch target.
        target: u64,
    },
    /// `j` — unconditional direct jump.
    Jump {
        /// Jump target.
        target: u64,
    },
    /// `jal` — direct call.
    Call {
        /// Call target.
        target: u64,
    },
    /// `jr` / `jalr` — indirect jump through a register.
    Indirect,
    /// `trap HALT` or `trap ABORT` — execution stops.
    Stop,
    /// Any other trap code — execution continues at `pc + 4`.
    Trap,
    /// The length limit cut the trace on a non-branch instruction.
    LengthCut,
}

/// One statically enumerated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticTrace {
    /// Completed record (identity, signature, length), or `None` when an
    /// instruction on the walk fails to decode — dynamically the
    /// simulator stops with a decode error before the trace completes.
    pub record: Option<TraceRecord>,
    /// Why the trace ended; `None` for undecodable walks.
    pub terminator: Option<Terminator>,
    /// PC of the terminating (or undecodable) instruction.
    pub end_pc: u64,
    /// FNV-1a fingerprint of the instruction words folded into the
    /// trace — used to tell *content* aliases (different instructions,
    /// equal signature) from *placement* aliases (identical instruction
    /// sequences at different addresses).
    pub content_fp: u64,
}

/// Enumeration switches. All on by default; tests switch individual
/// edges off to prove the cross-validation oracle catches an unsound
/// enumerator (see the dropped-fall-through negative test).
#[derive(Debug, Clone, Copy)]
pub struct EnumOptions {
    /// Follow direct branch/jump/call targets.
    pub follow_targets: bool,
    /// Follow the fall-through edge of conditional branches and
    /// non-stopping traps.
    pub follow_fallthrough: bool,
    /// Follow the continuation after a length-limit cut.
    pub follow_length_cut: bool,
    /// Follow the conservative indirect-target set at `jr`/`jalr`.
    pub follow_indirect: bool,
}

impl Default for EnumOptions {
    fn default() -> EnumOptions {
        EnumOptions {
            follow_targets: true,
            follow_fallthrough: true,
            follow_length_cut: true,
            follow_indirect: true,
        }
    }
}

/// The statically enumerated trace universe of one program under one
/// trace-length configuration.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Trace-length limit this universe was enumerated under.
    pub max_len: u32,
    /// Every enumerated trace, keyed by start PC.
    pub traces: BTreeMap<u64, StaticTrace>,
    /// Successor edges dropped because the target left the analysis
    /// region (runaway control flow into distant nop-space).
    pub cut_edges: u64,
}

impl Universe {
    /// `true` when a trace starting at `start_pc` was enumerated.
    pub fn contains(&self, start_pc: u64) -> bool {
        self.traces.contains_key(&start_pc)
    }

    /// Completed trace records in start-PC order.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.traces.values().filter_map(|t| t.record.as_ref())
    }

    /// Number of enumerated starts whose walk hit an undecodable word.
    pub fn undecodable(&self) -> u64 {
        self.traces.values().filter(|t| t.record.is_none()).count() as u64
    }
}

fn content_fp(words: &[u32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

fn classify_terminator(inst: &Instruction, pc: u64, completed_by_branch: bool) -> Terminator {
    if !completed_by_branch {
        return Terminator::LengthCut;
    }
    match inst.op {
        Opcode::Trap => {
            let code = (inst.imm as u32 & 0xFFFF) as u16;
            if code == trap::HALT || code == trap::ABORT {
                Terminator::Stop
            } else {
                Terminator::Trap
            }
        }
        Opcode::J => Terminator::Jump { target: inst.direct_target(pc).unwrap_or(pc) },
        Opcode::Jal => Terminator::Call { target: inst.direct_target(pc).unwrap_or(pc) },
        Opcode::Jr | Opcode::Jalr => Terminator::Indirect,
        _ => match inst.direct_target(pc) {
            Some(target) => Terminator::CondBranch { target },
            // Unreachable for the current opcode table (every is_branch
            // opcode is a trap, an indirect jump, or direct); treat any
            // future oddity conservatively as an indirect jump.
            None => Terminator::Indirect,
        },
    }
}

/// Walks one static trace from `start_pc`, replaying the exact
/// [`TraceBuilder`] fold the decode stage runs.
pub fn walk(image: &ProgramImage, start_pc: u64, max_len: u32, fold: FoldKind) -> StaticTrace {
    let mut builder = TraceBuilder::with_kind(max_len, fold);
    let mut words = Vec::with_capacity(max_len as usize);
    let mut pc = start_pc;
    loop {
        let Some((inst, signals)) = image.fetch(pc) else {
            return StaticTrace {
                record: None,
                terminator: None,
                end_pc: pc,
                content_fp: content_fp(&words),
            };
        };
        words.push(image.word_at(pc));
        if let Some(record) = builder.push(pc, &signals) {
            let completed_by_branch = inst.ends_trace();
            return StaticTrace {
                record: Some(record),
                terminator: Some(classify_terminator(&inst, pc, completed_by_branch)),
                end_pc: pc,
                content_fp: content_fp(&words),
            };
        }
        pc += INSTRUCTION_BYTES;
    }
}

/// The successor start-PCs of a completed trace under `opts`, before
/// region filtering.
pub fn successors(image: &ProgramImage, trace: &StaticTrace, opts: &EnumOptions) -> Vec<u64> {
    let Some(terminator) = trace.terminator else { return Vec::new() };
    let fallthrough = trace.end_pc + INSTRUCTION_BYTES;
    let mut out = Vec::new();
    match terminator {
        Terminator::CondBranch { target } => {
            if opts.follow_targets {
                out.push(target);
            }
            if opts.follow_fallthrough && !out.contains(&fallthrough) {
                out.push(fallthrough);
            }
        }
        Terminator::Jump { target } | Terminator::Call { target } => {
            if opts.follow_targets {
                out.push(target);
            }
        }
        Terminator::Indirect => {
            if opts.follow_indirect {
                out.extend(image.indirect_targets().iter().copied());
            }
        }
        Terminator::Stop => {}
        Terminator::Trap => {
            if opts.follow_fallthrough {
                out.push(fallthrough);
            }
        }
        Terminator::LengthCut => {
            if opts.follow_length_cut {
                out.push(fallthrough);
            }
        }
    }
    out
}

/// Enumerates the full static trace universe: worklist closure from the
/// entry point over the successor rules.
pub fn enumerate(image: &ProgramImage, max_len: u32, opts: &EnumOptions) -> Universe {
    enumerate_with_fold(image, max_len, FoldKind::Xor, opts)
}

/// [`enumerate`] with an explicit signature fold function.
pub fn enumerate_with_fold(
    image: &ProgramImage,
    max_len: u32,
    fold: FoldKind,
    opts: &EnumOptions,
) -> Universe {
    let mut universe = Universe { max_len, traces: BTreeMap::new(), cut_edges: 0 };
    let mut worklist = vec![image.entry()];
    while let Some(start_pc) = worklist.pop() {
        if universe.traces.contains_key(&start_pc) {
            continue;
        }
        if !image.in_region(start_pc) {
            universe.cut_edges += 1;
            continue;
        }
        let trace = walk(image, start_pc, max_len, fold);
        let succs = successors(image, &trace, opts);
        universe.traces.insert(start_pc, trace);
        worklist.extend(succs);
    }
    universe
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use itr_isa::asm::assemble;

    fn universe(src: &str, max_len: u32) -> (Universe, ProgramImage) {
        let p = assemble(src).unwrap();
        let image = ProgramImage::new(&p);
        let u = enumerate(&image, max_len, &EnumOptions::default());
        (u, image)
    }

    #[test]
    fn straight_line_program_is_one_trace() {
        let (u, image) = universe("main:\n add r8, r9, r10\n sub r8, r8, r9\n halt\n", 16);
        assert_eq!(u.traces.len(), 1);
        let t = u.traces[&image.entry()];
        let r = t.record.unwrap();
        assert_eq!((r.start_pc, r.len), (image.entry(), 3));
        assert_eq!(t.terminator, Some(Terminator::Stop));
    }

    #[test]
    fn conditional_branch_forks_target_and_fallthrough() {
        let (u, image) = universe(
            r#"
            main:
                li r8, 3
            top:
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
            16,
        );
        // Traces: entry (li+addi+bgtz), loop body (addi+bgtz), halt.
        assert_eq!(u.traces.len(), 3);
        assert!(u.contains(image.entry()));
        assert!(u.contains(image.entry() + 4), "back-edge target");
        assert!(u.contains(image.entry() + 12), "fall-through to halt");
    }

    #[test]
    fn length_cut_continues_at_next_pc() {
        let mut src = String::from("main:\n");
        for _ in 0..20 {
            src.push_str(" add r8, r8, r9\n");
        }
        src.push_str(" halt\n");
        let (u, image) = universe(&src, 16);
        // First trace: 16 adds. Second: 4 adds + halt.
        assert_eq!(u.traces.len(), 2);
        let first = u.traces[&image.entry()].record.unwrap();
        assert_eq!(first.len, 16);
        let second = u.traces[&(image.entry() + 64)].record.unwrap();
        assert_eq!(second.len, 5);
    }

    #[test]
    fn branch_exactly_at_max_length_ends_on_the_branch_not_the_cut() {
        // 15 adds + a branch: the sixteenth instruction is the trace
        // ender, so this is a branch-terminated trace of exactly
        // max_len, not a length cut — its successors are the branch
        // target and fallthrough, with no end_pc+4 continuation trace.
        let mut src = String::from("main:\n");
        for _ in 0..15 {
            src.push_str(" add r8, r8, r9\n");
        }
        src.push_str(" beq r8, r9, main\n halt\n");
        let (u, image) = universe(&src, 16);
        let first = u.traces[&image.entry()].record.unwrap();
        assert_eq!(first.len, 16);
        assert!(
            matches!(u.traces[&image.entry()].terminator, Some(Terminator::CondBranch { .. })),
            "branch wins over the simultaneous length cut"
        );
        // Successors: taken edge re-enters `main`; fallthrough reaches
        // the halt. Exactly these two traces exist beyond the first.
        assert_eq!(u.traces.len(), 2);
        assert!(u.contains(image.entry() + 16 * 4), "fallthrough to halt");
        assert_eq!(u.cut_edges, 0, "no length-cut continuation was generated");
    }

    #[test]
    fn non_halting_trap_falls_through() {
        let (u, image) = universe("main:\n li r4, 7\n trap 1\n halt\n", 16);
        assert_eq!(u.traces.len(), 2);
        let put = u.traces[&image.entry()];
        assert_eq!(put.terminator, Some(Terminator::Trap));
        let halt = u.traces[&(image.entry() + 8)];
        assert_eq!(halt.terminator, Some(Terminator::Stop));
    }

    #[test]
    fn indirect_jump_closes_over_conservative_targets() {
        let (u, image) = universe(
            r#"
            main:
                jal callee
                halt
            callee:
                jr ra
            "#,
            16,
        );
        // Entry trace (jal), return-site trace (halt), callee trace (jr),
        // plus conservative jr successors (symbols already covered).
        assert!(u.contains(image.entry()));
        assert!(u.contains(image.entry() + 4), "return site reached through jr closure");
        assert!(u.contains(image.entry() + 8), "callee");
        assert!(u.traces[&(image.entry() + 8)].terminator == Some(Terminator::Indirect));
    }

    #[test]
    fn runaway_branch_into_nop_space_is_walked_within_region() {
        // A taken branch past the end of text lands in nop-space; the
        // walk there forms 16-nop length-cut traces.
        let p = assemble("main:\n beq r0, r0, 64\n halt\n").unwrap();
        let image = ProgramImage::new(&p);
        let u = enumerate(&image, 16, &EnumOptions::default());
        let target = image.entry() + 4 + 64 * 4;
        assert!(u.contains(target), "landing point enumerated");
        let t = u.traces[&target].record.unwrap();
        assert_eq!(t.len, 16, "nop ribbon forms length-cut traces");
        // An even count of identical signal vectors XOR-cancels.
        assert_eq!(t.signature, 0, "sixteen identical nops fold to zero");
        assert!(u.cut_edges > 0, "the ribbon is cut at the region edge");
    }

    #[test]
    fn disabling_fallthrough_loses_the_fallthrough_trace() {
        let p = assemble("main:\n beq r8, r9, main\n halt\n").unwrap();
        let image = ProgramImage::new(&p);
        let full = enumerate(&image, 16, &EnumOptions::default());
        assert!(full.contains(image.entry() + 4));
        let crippled = enumerate(
            &image,
            16,
            &EnumOptions { follow_fallthrough: false, ..EnumOptions::default() },
        );
        assert!(!crippled.contains(image.entry() + 4), "fall-through dropped");
    }

    #[test]
    fn undecodable_word_yields_incomplete_trace() {
        // Jump-table data holds a word that does not decode; jr reaches
        // into... no — simpler: walk directly at a data-segment address
        // holding an undecodable word is not in-region. Instead verify
        // via walk(): an out-of-region walk is still pure.
        let p = assemble("main:\n halt\n").unwrap();
        let image = ProgramImage::new(&p);
        let t = walk(&image, image.text_end() + 8, 4, FoldKind::Xor);
        assert!(t.record.is_some(), "nop space decodes");
        assert_eq!(t.record.unwrap().len, 4);
    }
}
