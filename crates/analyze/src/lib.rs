//! # itr-analyze — static CFG / trace / signature-alias analysis
//!
//! Everything `itr-core` does with traces happens at decode time, which
//! means it is a function of the *static* instruction stream: trace
//! boundaries (`is_branch` or the length limit), trace identity (the
//! start PC), the XOR signature fold, and the ITR-cache set index are
//! all computable without running a single instruction. This crate
//! computes them:
//!
//! * [`image`] — a fetch-accurate static view of an assembled program,
//!   including the sparse-memory convention that unmapped words read as
//!   zero and decode as `nop`;
//! * [`cfg`] — basic-block recovery, dominators, natural loops, and
//!   unreachable-code detection over the text segment;
//! * [`trace`] — enumeration of the complete static trace universe
//!   under the same formation rules the decode stage applies, driving
//!   `itr-core`'s own [`TraceBuilder`](itr_core::TraceBuilder) for the
//!   signature fold;
//! * [`report`] — signature-alias and cache set-conflict summaries,
//!   the `itr-analyze/v1` JSON document, and a regression baseline;
//! * [`oracle`] — the cross-validation oracle asserting that every
//!   dynamically observed trace is a member of the static universe with
//!   a matching signature. `itr-fuzz` runs this as its fourth
//!   differential oracle;
//! * [`gap`] — the inverse diff: which statically possible traces,
//!   CFG edges and loops were *never* observed dynamically, with
//!   dominator-path / branch-polarity feasibility metadata per gap.
//!   `itr-fuzz`'s directed mutation stage consumes this report.
//!
//! The analyses exist for two reasons. First, they answer static
//! questions the simulator cannot: how many distinct traces *can* a
//! program form, how many signature aliases exist (an alias is a missed
//! detection opportunity — two different instruction streams the checker
//! cannot tell apart), and which cache sets must thrash. Second, the
//! dynamic/static cross-check is a powerful consistency oracle over the
//! whole stack: a bug in either the enumerator or the decode-time trace
//! formation shows up as a subset violation.

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cfg;
pub mod gap;
pub mod image;
pub mod oracle;
pub mod report;
pub mod trace;

pub use cfg::{BasicBlock, BlockExit, Cfg, NaturalLoop};
pub use gap::{
    gap_report, golden_document, BranchPolarity, EdgeGap, GapObservations, GapReport, LenGap,
    GAP_GOLDEN_BUDGET, GAP_GOLDEN_SCHEMA, GAP_SCHEMA,
};
pub use image::{ProgramImage, DEFAULT_REGION_PAD};
pub use oracle::{
    check_trace, cross_validate, dynamic_traces, CrossValidation, Violation, ViolationKind,
};
pub use report::{
    analyze_program, AliasSummary, AnalyzeConfig, AnalyzeReport, ConflictSummary, LenAnalysis,
    WorkloadAnalysis, BASELINE_SCHEMA, SCHEMA,
};
pub use trace::{enumerate, walk, EnumOptions, StaticTrace, Terminator, Universe};
