//! `itr-analyze` — static CFG / trace / signature-alias analysis of the
//! workload suite with dynamic cross-validation.
//!
//! ```text
//! itr-analyze [--workload NAME]... [--seed N] [--mimic-instrs N]
//!             [--trace-lens 4,8,16] [--verify-dynamic N] [--jobs N]
//!             [--out FILE] [--baseline FILE] [--write-baseline FILE]
//!             [--write-gap FILE] [--deny-unreachable]
//! ```
//!
//! The report is byte-identical across runs and `--jobs` settings:
//! workloads are analyzed in parallel but merged in input order, and
//! every analysis iterates sorted structures only. Exit status: 0 when
//! all checks hold, 1 on cross-validation violations, baseline
//! mismatches, or (with `--deny-unreachable`) unreachable workload
//! code, 2 on usage errors.

use itr_analyze::{analyze_program, AnalyzeConfig, AnalyzeReport};
use itr_stats::json::Value;
use itr_workloads::suite::{self, Workload, WorkloadKind};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const HELP: &str = "\
itr-analyze — static CFG / trace / signature-alias analysis of rISA programs

USAGE:
    itr-analyze [OPTIONS]

OPTIONS:
    --workload NAME      analyze one workload (repeatable; default: all)
    --seed N             mimic-workload generation seed (default 0x17122007)
    --mimic-instrs N     mimic dynamic-instruction target (default 30000)
    --trace-lens L,L,..  trace-length limits to enumerate (default 4,8,16)
    --verify-dynamic N   dynamic instruction budget for the cross-validation
                         oracle, 0 to disable (default 200000)
    --jobs N             worker threads (default 1; output is identical
                         for any value)
    --out FILE           write the itr-analyze/v1 report here (default:
                         stdout)
    --baseline FILE      check against a stored itr-analyze-baseline/v1
    --write-baseline FILE  write the baseline derived from this run
    --write-gap FILE     write the itr-gap-golden/v1 self-observed gap
                         document for the selected workloads (used to
                         regenerate tests/golden_gap.json)
    --deny-unreachable   fail when any workload has unreachable code
";

struct Options {
    workloads: Vec<String>,
    seed: u64,
    mimic_instrs: u64,
    cfg: AnalyzeConfig,
    jobs: usize,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    write_gap: Option<PathBuf>,
    deny_unreachable: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        workloads: Vec::new(),
        seed: 0x1712_2007,
        mimic_instrs: 30_000,
        cfg: AnalyzeConfig::default(),
        jobs: 1,
        out: None,
        baseline: None,
        write_baseline: None,
        write_gap: None,
        deny_unreachable: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--workload" => opts.workloads.push(value("--workload")?),
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--mimic-instrs" => {
                opts.mimic_instrs =
                    value("--mimic-instrs")?.parse().map_err(|e| format!("--mimic-instrs: {e}"))?;
            }
            "--trace-lens" => {
                let raw = value("--trace-lens")?;
                let mut lens = Vec::new();
                for part in raw.split(',') {
                    let len: u32 =
                        part.trim().parse().map_err(|e| format!("--trace-lens `{part}`: {e}"))?;
                    if len == 0 {
                        return Err("--trace-lens: lengths must be nonzero".into());
                    }
                    lens.push(len);
                }
                if lens.is_empty() {
                    return Err("--trace-lens: need at least one length".into());
                }
                opts.cfg.trace_lens = lens;
            }
            "--verify-dynamic" => {
                opts.cfg.verify_budget = value("--verify-dynamic")?
                    .parse()
                    .map_err(|e| format!("--verify-dynamic: {e}"))?;
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value("--write-baseline")?));
            }
            "--write-gap" => {
                opts.write_gap = Some(PathBuf::from(value("--write-gap")?));
            }
            "--deny-unreachable" => opts.deny_unreachable = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn kind_label(kind: &WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Kernel => "kernel",
        WorkloadKind::Mimic => "mimic",
    }
}

fn select_workloads(opts: &Options) -> Result<Vec<Workload>, String> {
    if opts.workloads.is_empty() {
        return Ok(suite::everything(opts.seed, opts.mimic_instrs));
    }
    opts.workloads
        .iter()
        .map(|name| {
            suite::by_name(name, opts.seed, opts.mimic_instrs)
                .ok_or_else(|| format!("unknown workload `{name}`"))
        })
        .collect()
}

/// Analyzes `workloads` on `jobs` threads. Workers claim indices from a
/// shared counter and write into per-index slots, so the merged result
/// is in input order regardless of scheduling.
fn analyze_all(
    workloads: &[Workload],
    cfg: &AnalyzeConfig,
    jobs: usize,
) -> Vec<itr_analyze::WorkloadAnalysis> {
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<itr_analyze::WorkloadAnalysis>>> =
        Mutex::new((0..workloads.len()).map(|_| None).collect());
    let workers = jobs.min(workloads.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = workloads.get(i) else { break };
                let analysis = analyze_program(&w.name, kind_label(&w.kind), &w.program, cfg);
                if let Ok(mut slots) = slots.lock() {
                    slots[i] = Some(analysis);
                }
            });
        }
    });
    match slots.into_inner() {
        Ok(slots) => slots.into_iter().flatten().collect(),
        Err(poisoned) => poisoned.into_inner().into_iter().flatten().collect(),
    }
}

fn run(opts: Options) -> Result<ExitCode, String> {
    let workloads = select_workloads(&opts)?;
    eprintln!(
        "itr-analyze: {} workloads, trace lens {:?}, verify budget {}, jobs {}",
        workloads.len(),
        opts.cfg.trace_lens,
        opts.cfg.verify_budget,
        opts.jobs
    );
    let analyses = analyze_all(&workloads, &opts.cfg, opts.jobs);
    let report = AnalyzeReport { config: opts.cfg.clone(), workloads: analyses };

    let text = report.to_value().to_json();
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!("itr-analyze: report -> {}", path.display());
        }
        None => println!("{text}"),
    }
    if let Some(path) = &opts.write_baseline {
        std::fs::write(path, report.baseline_value().to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("itr-analyze: baseline -> {}", path.display());
    }
    if let Some(path) = &opts.write_gap {
        let programs: Vec<(&str, &itr_isa::Program)> =
            workloads.iter().map(|w| (w.name.as_str(), &w.program)).collect();
        let doc = itr_analyze::golden_document(
            &programs,
            itr_analyze::GAP_GOLDEN_BUDGET,
            &opts.cfg.trace_lens,
        );
        std::fs::write(path, doc.to_json())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("itr-analyze: gap golden -> {}", path.display());
    }

    let mut failed = false;
    for w in &report.workloads {
        if w.violations() > 0 {
            failed = true;
            eprintln!("itr-analyze: {}: {} cross-validation violations", w.name, w.violations());
        }
        if opts.deny_unreachable && w.unreachable_instrs > 0 {
            failed = true;
            eprintln!(
                "itr-analyze: {}: {} unreachable instructions (first at {})",
                w.name,
                w.unreachable_instrs,
                w.unreachable_sample.first().map_or("?".to_string(), |pc| format!("{pc:#010x}")),
            );
        }
    }
    if let Some(path) = &opts.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let baseline = Value::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        if let Err(problems) = report.check_baseline(&baseline) {
            failed = true;
            for p in &problems {
                eprintln!("itr-analyze: baseline: {p}");
            }
        } else {
            eprintln!("itr-analyze: baseline ok ({} workloads)", report.workloads.len());
        }
    }

    if failed {
        eprintln!("itr-analyze: FAILED");
        return Ok(ExitCode::from(1));
    }
    eprintln!(
        "itr-analyze: ok — {} workloads, {} total violations",
        report.workloads.len(),
        report.violations()
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(opts)) => match run(opts) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("itr-analyze: {e}");
                ExitCode::from(2)
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("itr-analyze: {e}");
            ExitCode::from(2)
        }
    }
}
