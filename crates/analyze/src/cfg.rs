//! Control-flow graph recovery over the text segment.
//!
//! Basic blocks are split at *leaders*: the entry point, every direct
//! branch/jump target, every instruction following a trace-ending
//! instruction, and every member of the conservative indirect-target
//! set. Edges follow the same successor semantics as the static trace
//! enumerator ([`crate::trace`]), restricted to the text segment —
//! control flow that leaves text (runaway nop-space walks) is recorded
//! as an *exit edge* on the block rather than materialized as nodes.
//!
//! On top of the graph the module computes reachability from the entry
//! block, immediate dominators (the iterative Cooper–Harvey–Kennedy
//! scheme over a reverse-post-order numbering), and natural loops (back
//! edges `tail → head` where `head` dominates `tail`).

use crate::image::ProgramImage;
use itr_isa::{trap, Instruction, Opcode, INSTRUCTION_BYTES};
use std::collections::{BTreeMap, BTreeSet};

/// How a basic block transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Falls into the next block (a leader split, not a branch).
    FallThrough,
    /// Conditional branch: target plus fall-through.
    CondBranch,
    /// Unconditional direct jump (`j`).
    Jump,
    /// Direct call (`jal`) — control transfers to the callee.
    Call,
    /// Indirect jump (`jr`/`jalr`).
    Indirect,
    /// `trap HALT` / `trap ABORT`.
    Stop,
    /// Non-stopping trap; control continues at the next instruction.
    Trap,
    /// The terminating word does not decode; execution faults here.
    Undecodable,
}

/// A maximal straight-line run of text-segment instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// One past the last instruction.
    pub end: u64,
    /// How the block exits.
    pub exit: BlockExit,
    /// Successor block indices, sorted.
    pub succs: Vec<usize>,
    /// Predecessor block indices, sorted.
    pub preds: Vec<usize>,
    /// Successor addresses outside the text segment (nop-space exits).
    pub exits_text: u64,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> u64 {
        (self.end - self.start) / INSTRUCTION_BYTES
    }

    /// `true` when the block holds no instructions (never produced by
    /// recovery; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// A natural loop discovered from a dominator-respecting back edge.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Header block index (the back edge's destination).
    pub header: usize,
    /// Indices of every block in the loop body, header included.
    pub blocks: BTreeSet<usize>,
}

/// The recovered control-flow graph of a program's text segment.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks sorted by start address.
    pub blocks: Vec<BasicBlock>,
    /// Block index of the entry point.
    pub entry: usize,
    /// Immediate dominator of each block (`None` for the entry and for
    /// unreachable blocks).
    pub idom: Vec<Option<usize>>,
    /// Natural loops, sorted by header block index.
    pub loops: Vec<NaturalLoop>,
    /// Blocks reachable from the entry.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Recovers the CFG of `image`'s text segment.
    pub fn build(image: &ProgramImage) -> Cfg {
        let leaders = find_leaders(image);
        let mut blocks = build_blocks(image, &leaders);
        let index: BTreeMap<u64, usize> =
            blocks.iter().enumerate().map(|(i, b)| (b.start, i)).collect();
        connect(image, &mut blocks, &index);
        let entry = index.get(&image.entry()).copied().unwrap_or(0);
        let reachable = mark_reachable(&blocks, entry);
        let idom = dominators(&blocks, entry, &reachable);
        let loops = natural_loops(&blocks, &idom, &reachable);
        Cfg { blocks, entry, idom, loops, reachable }
    }

    /// Block index containing `pc`, if any.
    pub fn block_at(&self, pc: u64) -> Option<usize> {
        let i = self.blocks.partition_point(|b| b.end <= pc);
        let b = self.blocks.get(i)?;
        (pc >= b.start && pc < b.end).then_some(i)
    }

    /// `true` when block `a` dominates block `b`.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Total CFG edges.
    pub fn edge_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.succs.len() as u64).sum()
    }

    /// Addresses of instructions in blocks unreachable from the entry,
    /// sorted.
    pub fn unreachable_pcs(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (i, block) in self.blocks.iter().enumerate() {
            if !self.reachable[i] {
                let mut pc = block.start;
                while pc < block.end {
                    out.push(pc);
                    pc += INSTRUCTION_BYTES;
                }
            }
        }
        out
    }
}

fn classify_exit(inst: &Instruction) -> Option<BlockExit> {
    if !inst.ends_trace() {
        return None;
    }
    Some(match inst.op {
        Opcode::Trap => {
            let code = (inst.imm as u32 & 0xFFFF) as u16;
            if code == trap::HALT || code == trap::ABORT {
                BlockExit::Stop
            } else {
                BlockExit::Trap
            }
        }
        Opcode::J => BlockExit::Jump,
        Opcode::Jal => BlockExit::Call,
        Opcode::Jr | Opcode::Jalr => BlockExit::Indirect,
        _ => BlockExit::CondBranch,
    })
}

fn find_leaders(image: &ProgramImage) -> BTreeSet<u64> {
    let mut leaders = BTreeSet::new();
    let mut consider = |addr: u64| {
        if image.in_text(addr) {
            leaders.insert(addr);
        }
    };
    consider(image.entry());
    consider(image.text_base());
    for target in image.indirect_targets() {
        consider(*target);
    }
    let mut pc = image.text_base();
    while pc < image.text_end() {
        if let Some((inst, _)) = image.fetch(pc) {
            if inst.ends_trace() {
                consider(pc + INSTRUCTION_BYTES);
                if let Some(target) = inst.direct_target(pc) {
                    consider(target);
                }
            }
        } else {
            // Undecodable word: execution faults; the next word starts a
            // fresh block if anything jumps there.
            consider(pc + INSTRUCTION_BYTES);
        }
        pc += INSTRUCTION_BYTES;
    }
    leaders
}

fn build_blocks(image: &ProgramImage, leaders: &BTreeSet<u64>) -> Vec<BasicBlock> {
    let mut blocks = Vec::new();
    let starts: Vec<u64> = leaders.iter().copied().collect();
    for (i, &start) in starts.iter().enumerate() {
        let limit = starts.get(i + 1).copied().unwrap_or_else(|| image.text_end());
        let mut pc = start;
        let mut exit = BlockExit::FallThrough;
        while pc < limit {
            match image.fetch(pc) {
                Some((inst, _)) => {
                    if let Some(e) = classify_exit(&inst) {
                        exit = e;
                        pc += INSTRUCTION_BYTES;
                        break;
                    }
                }
                None => {
                    exit = BlockExit::Undecodable;
                    pc += INSTRUCTION_BYTES;
                    break;
                }
            }
            pc += INSTRUCTION_BYTES;
        }
        blocks.push(BasicBlock {
            start,
            end: pc.max(start + INSTRUCTION_BYTES).min(limit.max(start + INSTRUCTION_BYTES)),
            exit,
            succs: Vec::new(),
            preds: Vec::new(),
            exits_text: 0,
        });
    }
    blocks
}

fn connect(image: &ProgramImage, blocks: &mut [BasicBlock], index: &BTreeMap<u64, usize>) {
    let mut all_edges: Vec<(usize, Vec<u64>)> = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let last_pc = block.end - INSTRUCTION_BYTES;
        let fallthrough = block.end;
        let mut targets: Vec<u64> = Vec::new();
        match block.exit {
            BlockExit::FallThrough | BlockExit::Trap => targets.push(fallthrough),
            BlockExit::CondBranch => {
                if let Some((inst, _)) = image.fetch(last_pc) {
                    if let Some(t) = inst.direct_target(last_pc) {
                        targets.push(t);
                    }
                }
                if !targets.contains(&fallthrough) {
                    targets.push(fallthrough);
                }
            }
            BlockExit::Jump | BlockExit::Call => {
                if let Some((inst, _)) = image.fetch(last_pc) {
                    if let Some(t) = inst.direct_target(last_pc) {
                        targets.push(t);
                    }
                }
            }
            BlockExit::Indirect => {
                targets.extend(image.indirect_targets().iter().copied());
            }
            BlockExit::Stop | BlockExit::Undecodable => {}
        }
        all_edges.push((i, targets));
    }
    for (i, targets) in all_edges {
        for t in targets {
            match index.get(&t) {
                Some(&j) => {
                    if !blocks[i].succs.contains(&j) {
                        blocks[i].succs.push(j);
                    }
                }
                None => blocks[i].exits_text += 1,
            }
        }
        blocks[i].succs.sort_unstable();
    }
    let edges: Vec<(usize, Vec<usize>)> =
        blocks.iter().enumerate().map(|(i, b)| (i, b.succs.clone())).collect();
    for (i, succs) in edges {
        for j in succs {
            blocks[j].preds.push(i);
        }
    }
    for b in blocks.iter_mut() {
        b.preds.sort_unstable();
        b.preds.dedup();
    }
}

fn mark_reachable(blocks: &[BasicBlock], entry: usize) -> Vec<bool> {
    let mut reachable = vec![false; blocks.len()];
    let mut stack = vec![entry];
    while let Some(i) = stack.pop() {
        if reachable[i] {
            continue;
        }
        reachable[i] = true;
        stack.extend(blocks[i].succs.iter().copied());
    }
    reachable
}

/// Reverse post-order over reachable blocks.
fn rpo(blocks: &[BasicBlock], entry: usize, reachable: &[bool]) -> Vec<usize> {
    let mut order = Vec::new();
    let mut state = vec![0u8; blocks.len()]; // 0 unseen, 1 in-progress, 2 done
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    state[entry] = 1;
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let succs = &blocks[node].succs;
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if reachable[s] && state[s] == 0 {
                state[s] = 1;
                stack.push((s, 0));
            }
        } else {
            state[node] = 2;
            order.push(node);
            stack.pop();
        }
    }
    order.reverse();
    order
}

/// Iterative dominator computation (Cooper–Harvey–Kennedy).
fn dominators(blocks: &[BasicBlock], entry: usize, reachable: &[bool]) -> Vec<Option<usize>> {
    let order = rpo(blocks, entry, reachable);
    let mut rpo_num = vec![usize::MAX; blocks.len()];
    for (n, &b) in order.iter().enumerate() {
        rpo_num[b] = n;
    }
    let mut idom: Vec<Option<usize>> = vec![None; blocks.len()];
    idom[entry] = Some(entry);
    let intersect = |idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_num[a] > rpo_num[b] {
                a = idom[a].unwrap_or(a);
            }
            while rpo_num[b] > rpo_num[a] {
                b = idom[b].unwrap_or(b);
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom = None;
            for &p in &blocks[b].preds {
                if !reachable[p] || idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_num, p, cur),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    // Entry's idom is conventionally itself inside the algorithm; report
    // it as None to callers.
    idom[entry] = None;
    idom
}

fn dominates(idom: &[Option<usize>], entry: usize, a: usize, b: usize) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        if cur == entry {
            return false;
        }
        match idom[cur] {
            Some(next) if next != cur => cur = next,
            _ => return false,
        }
    }
}

fn natural_loops(
    blocks: &[BasicBlock],
    idom: &[Option<usize>],
    reachable: &[bool],
) -> Vec<NaturalLoop> {
    let entry = reachable.iter().position(|&r| r).unwrap_or(0);
    let mut loops: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (tail, block) in blocks.iter().enumerate() {
        if !reachable[tail] {
            continue;
        }
        for &head in &block.succs {
            if !dominates(idom, entry, head, tail) {
                continue;
            }
            // Back edge tail → head: the loop body is every block that
            // reaches tail without passing through head.
            let body = loops.entry(head).or_default();
            body.insert(head);
            let mut stack = vec![tail];
            while let Some(n) = stack.pop() {
                if body.contains(&n) {
                    continue;
                }
                body.insert(n);
                stack.extend(blocks[n].preds.iter().copied().filter(|&p| reachable[p]));
            }
        }
    }
    loops.into_iter().map(|(header, blocks)| NaturalLoop { header, blocks }).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use itr_isa::asm::assemble;

    fn cfg(src: &str) -> (Cfg, ProgramImage) {
        let p = assemble(src).unwrap();
        let image = ProgramImage::new(&p);
        (Cfg::build(&image), image)
    }

    #[test]
    fn single_block_program() {
        let (cfg, _) = cfg("main:\n add r8, r9, r10\n halt\n");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].exit, BlockExit::Stop);
        assert_eq!(cfg.blocks[0].len(), 2);
        assert!(cfg.loops.is_empty());
        assert!(cfg.reachable[0]);
    }

    #[test]
    fn loop_with_dominating_header_is_detected() {
        let (cfg, image) = cfg(r#"
            main:
                li r8, 5
            top:
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#);
        assert_eq!(cfg.loops.len(), 1);
        let header = cfg.loops[0].header;
        assert_eq!(cfg.blocks[header].start, image.entry() + 4);
        assert!(cfg.loops[0].blocks.contains(&header));
        // Entry block dominates the loop header.
        assert!(cfg.dominates(cfg.entry, header));
    }

    #[test]
    fn unreachable_code_after_jump_is_reported() {
        let (cfg, image) = cfg(r#"
            main:
                j done
            dead:
                add r8, r8, r8
                sub r9, r9, r9
            done:
                halt
            "#);
        let dead: Vec<u64> = cfg.unreachable_pcs();
        assert_eq!(dead, vec![image.entry() + 4, image.entry() + 8]);
    }

    #[test]
    fn branch_to_next_instruction_makes_a_two_edge_block() {
        // Both edges of the branch land on the same block: target ==
        // fall-through. The successor list is deduplicated.
        let (cfg, _) = cfg("main:\n beq r8, r9, next\nnext:\n halt\n");
        assert_eq!(cfg.blocks.len(), 2);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert_eq!(cfg.blocks[1].preds, vec![0]);
    }

    #[test]
    fn self_loop_block() {
        let (cfg, image) = cfg("main:\ntop:\n j top\n");
        let header = cfg.block_at(image.entry()).unwrap();
        assert_eq!(cfg.blocks[header].succs, vec![header]);
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].blocks.len(), 1);
    }

    #[test]
    fn call_and_indirect_return_edges() {
        let (cfg, image) = cfg(r#"
            main:
                jal callee
                halt
            callee:
                jr ra
            "#);
        let entry = cfg.block_at(image.entry()).unwrap();
        let ret_site = cfg.block_at(image.entry() + 4).unwrap();
        let callee = cfg.block_at(image.entry() + 8).unwrap();
        assert_eq!(cfg.blocks[entry].exit, BlockExit::Call);
        assert!(cfg.blocks[entry].succs.contains(&callee));
        assert_eq!(cfg.blocks[callee].exit, BlockExit::Indirect);
        assert!(cfg.blocks[callee].succs.contains(&ret_site), "jr closes over return sites");
        // Every block reachable.
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn runaway_branch_out_of_text_counts_exit_edges() {
        let (cfg, _) = cfg("main:\n beq r0, r0, 2000\n halt\n");
        let b = &cfg.blocks[cfg.entry];
        assert_eq!(b.exits_text, 1);
        assert_eq!(b.succs.len(), 1, "only the fall-through stays in text");
    }
}
