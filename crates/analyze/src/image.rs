//! A static, memory-accurate view of an assembled program.
//!
//! The analyzer must see exactly the instruction stream the simulator's
//! fetch unit sees, *without running anything*. `itr-sim`'s sparse
//! memory returns zero for any unmapped word, and the zero word decodes
//! as `sll r0, r0, 0` (`nop`) — so runaway control flow that leaves the
//! text segment walks an endless ribbon of nops. [`ProgramImage`]
//! reproduces that fetch semantics: text words come from the image,
//! data-segment words from the initial data bytes, and everything else
//! is the zero word.
//!
//! Because the nop ribbon is infinite, static enumeration bounds itself
//! to a *region* around the text segment ([`ProgramImage::in_region`]).
//! Dynamic traces that start outside the region are accounted as
//! *region escapes* by the cross-validation oracle rather than walked.

use itr_isa::{decode, DecodeSignals, Instruction, Opcode, Program, INSTRUCTION_BYTES};
use std::collections::BTreeSet;

/// Default region padding on each side of the text segment, in bytes.
///
/// Generous enough that ordinary runaway control flow (a mutated branch
/// displacement walking nop-space under a fuzzing instruction budget)
/// stays inside the enumerated universe; anything farther is reported
/// as a region escape.
pub const DEFAULT_REGION_PAD: u64 = 32 * 1024;

/// Fetch-accurate static view of a [`Program`] plus the analysis region.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    text_base: u64,
    text: Vec<u32>,
    data_base: u64,
    data: Vec<u8>,
    entry: u64,
    region_lo: u64,
    region_hi: u64,
    indirect_targets: BTreeSet<u64>,
    indirect_sites: u64,
}

impl ProgramImage {
    /// Builds the image with the default region padding.
    pub fn new(program: &Program) -> ProgramImage {
        ProgramImage::with_region_pad(program, DEFAULT_REGION_PAD)
    }

    /// Builds the image with `pad` bytes of nop-space on each side of
    /// the text segment included in the analysis region.
    pub fn with_region_pad(program: &Program, pad: u64) -> ProgramImage {
        let text_base = program.text_base();
        let text_end = text_base + program.text().len() as u64 * INSTRUCTION_BYTES;
        let mut image = ProgramImage {
            text_base,
            text: program.text().to_vec(),
            data_base: program.data_base(),
            data: program.data().to_vec(),
            entry: program.entry(),
            region_lo: text_base.saturating_sub(pad) & !3,
            region_hi: text_end + pad,
            indirect_targets: BTreeSet::new(),
            indirect_sites: 0,
        };
        image.collect_indirect_targets(program);
        image
    }

    /// Conservative target set for indirect jumps (`jr`/`jalr`):
    ///
    /// * the entry point and every text-segment symbol (function labels
    ///   are the canonical `jr` destinations),
    /// * the return site `pc + 4` of every `jal`/`jalr` (covers `jr ra`),
    /// * every word-aligned 32-bit data word whose value lands inside
    ///   the text segment (jump tables built with `.word label` /
    ///   `data_word_addr`).
    fn collect_indirect_targets(&mut self, program: &Program) {
        let text_base = self.text_base;
        let text_end = self.text_end();
        let mut targets = BTreeSet::new();
        let mut consider = |addr: u64| {
            if addr >= text_base && addr < text_end && addr.is_multiple_of(INSTRUCTION_BYTES) {
                targets.insert(addr);
            }
        };
        consider(self.entry);
        for (_, addr) in program.symbols() {
            consider(addr);
        }
        for (index, &word) in self.text.iter().enumerate() {
            let Ok(inst) = decode(word) else { continue };
            if matches!(inst.op, Opcode::Jal | Opcode::Jalr) {
                let pc = self.text_base + index as u64 * INSTRUCTION_BYTES;
                consider(pc + INSTRUCTION_BYTES);
            }
            if matches!(inst.op, Opcode::Jr | Opcode::Jalr) {
                self.indirect_sites += 1;
            }
        }
        for chunk_start in (0..self.data.len().saturating_sub(3)).step_by(4) {
            let bytes = [
                self.data[chunk_start],
                self.data[chunk_start + 1],
                self.data[chunk_start + 2],
                self.data[chunk_start + 3],
            ];
            consider(u64::from(u32::from_le_bytes(bytes)));
        }
        self.indirect_targets = targets;
    }

    /// Entry point of the program.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Base address of the text segment.
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// One-past-the-end address of the text segment.
    pub fn text_end(&self) -> u64 {
        self.text_base + self.text.len() as u64 * INSTRUCTION_BYTES
    }

    /// Number of static instructions in the text segment.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// The analysis region as `(lo, hi)` — `hi` exclusive.
    pub fn region(&self) -> (u64, u64) {
        (self.region_lo, self.region_hi)
    }

    /// `true` when `addr` falls inside the text segment.
    pub fn in_text(&self, addr: u64) -> bool {
        addr >= self.text_base && addr < self.text_end()
    }

    /// `true` when `addr` falls inside the analysis region.
    pub fn in_region(&self, addr: u64) -> bool {
        addr >= self.region_lo && addr < self.region_hi
    }

    /// The number of `jr`/`jalr` sites in the text segment.
    pub fn indirect_sites(&self) -> u64 {
        self.indirect_sites
    }

    /// The conservative indirect-jump target set.
    pub fn indirect_targets(&self) -> &BTreeSet<u64> {
        &self.indirect_targets
    }

    /// `true` when the program contains indirect jumps whose dynamic
    /// targets the conservative set may not capture (arbitrary
    /// register-computed destinations).
    pub fn has_indirect_jumps(&self) -> bool {
        self.indirect_sites > 0
    }

    /// The word fetch at `pc` would read: a text word, an initial
    /// data-segment word, or zero (the sparse-memory default).
    pub fn word_at(&self, pc: u64) -> u32 {
        if self.in_text(pc) {
            let index = ((pc - self.text_base) / INSTRUCTION_BYTES) as usize;
            return self.text[index];
        }
        let data_end = self.data_base + self.data.len() as u64;
        if pc >= self.data_base && pc < data_end {
            let mut bytes = [0u8; 4];
            for (i, byte) in bytes.iter_mut().enumerate() {
                let addr = pc + i as u64;
                if addr < data_end {
                    *byte = self.data[(addr - self.data_base) as usize];
                }
            }
            return u32::from_le_bytes(bytes);
        }
        0
    }

    /// Decodes the instruction a fetch at `pc` would execute; `None`
    /// when the word does not decode (the simulator stops with
    /// `StopReason::DecodeError` there).
    pub fn fetch(&self, pc: u64) -> Option<(Instruction, DecodeSignals)> {
        let inst = decode(self.word_at(pc)).ok()?;
        let signals = DecodeSignals::from_instruction(&inst);
        Some((inst, signals))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use itr_isa::asm::assemble;

    #[test]
    fn out_of_image_fetch_is_nop() {
        let p = assemble("main:\n halt\n").unwrap();
        let image = ProgramImage::new(&p);
        let (inst, _) = image.fetch(image.text_end() + 400).unwrap();
        assert_eq!(inst, Instruction::nop());
        let (inst, _) = image.fetch(image.text_base() - 400).unwrap();
        assert_eq!(inst, Instruction::nop());
    }

    #[test]
    fn data_words_are_visible_to_fetch() {
        let p = assemble(".data\nw: .word 0x01020304\n.text\nmain:\n halt\n").unwrap();
        let image = ProgramImage::new(&p);
        assert_eq!(image.word_at(p.data_base()), 0x01020304);
        // A misaligned read near the end of data pads with zeros.
        assert_eq!(image.word_at(p.data_base() + 2), 0x0000_0102);
    }

    #[test]
    fn indirect_targets_cover_symbols_return_sites_and_jump_tables() {
        let p = assemble(
            r#"
            .data
            table: .word fn_a, fn_b
            .text
            main:
                jal fn_a
                halt
            fn_a:
                jr ra
            fn_b:
                jr ra
            "#,
        )
        .unwrap();
        let image = ProgramImage::new(&p);
        let targets = image.indirect_targets();
        assert!(targets.contains(&p.symbol("fn_a").unwrap()), "symbol target");
        assert!(targets.contains(&p.symbol("fn_b").unwrap()), "jump-table target");
        assert!(targets.contains(&(p.entry() + 4)), "return site of jal");
        assert!(image.has_indirect_jumps());
        assert_eq!(image.indirect_sites(), 2);
    }

    #[test]
    fn region_bounds_surround_text() {
        let p = assemble("main:\n halt\n").unwrap();
        let image = ProgramImage::with_region_pad(&p, 1024);
        let (lo, hi) = image.region();
        assert_eq!(lo, p.text_base() - 1024);
        assert_eq!(hi, image.text_end() + 1024);
        assert!(image.in_region(p.entry()));
        assert!(!image.in_region(hi));
    }
}
