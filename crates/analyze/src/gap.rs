//! Coverage-gap analysis: the static universe diffed against dynamic
//! observation.
//!
//! [`crate::trace`] enumerates every trace a program *can* form and
//! [`crate::cfg`] recovers every control-flow edge it *can* take; this
//! module answers the complementary dynamic question — which of those
//! were actually seen. The diff drives the analysis-directed fuzzing
//! stage in `itr-fuzz`: never-formed traces and uncovered CFG edges
//! become mutation targets, and for each uncovered edge the report
//! carries static *feasibility metadata* — the dominator path from the
//! entry to the edge's source block and the branch polarities that path
//! requires — so a mutator can walk straight to the controlling branch
//! instead of flipping bits blindly.
//!
//! Observations are deliberately compact: a set of `(branch_pc,
//! destination_pc)` control transfers plus known entry PCs is enough to
//! reconstruct the executed block set, because a basic block that is
//! entered runs to its end and unconditional continuations (fall-through
//! splits, direct jumps and calls, non-stopping traps) are implied by
//! the CFG. The one over-approximation: a run cut mid-block by an
//! instruction budget still marks the whole block executed. Soundness
//! caveats in the other direction are inherited from the CFG itself —
//! the indirect-target set is conservative, so an "uncovered" indirect
//! edge may be dynamically infeasible; the report therefore separates
//! edge kinds and never claims feasibility, only static reachability
//! (unreachable-source edges are excluded from gaps outright and
//! counted as `static_only_edges`).

use crate::cfg::{BlockExit, Cfg};
use crate::image::ProgramImage;
use crate::trace::{enumerate, EnumOptions, Universe};
use itr_isa::{Program, SignalFlags, INSTRUCTION_BYTES};
use itr_sim::FuncSim;
use itr_stats::json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Schema tag of the JSON gap report.
pub const GAP_SCHEMA: &str = "itr-gap/v1";

/// Cap on per-list detail in the JSON rendering. Counts stay exact;
/// only the enumerated PC / edge listings are truncated, so the golden
/// baseline stays reviewable for workloads with thousands of traces.
pub const GAP_DETAIL_CAP: usize = 32;

/// Schema tag of the multi-workload golden document
/// (`tests/golden_gap.json`).
pub const GAP_GOLDEN_SCHEMA: &str = "itr-gap-golden/v1";

/// Functional-simulation instruction budget used when self-observing a
/// program for the golden baseline. Shared by the `itr-analyze
/// --write-gap` regeneration path and the `gap_golden` test so the two
/// can never drift apart.
pub const GAP_GOLDEN_BUDGET: u64 = 60_000;

/// Dynamically observed control-flow facts, in the compact form the
/// fuzzer's observed-edges accessor exports.
#[derive(Debug, Clone, Default)]
pub struct GapObservations {
    /// Observed control transfers `(branch_pc, destination_pc)`: one
    /// entry per executed trace-ending instruction outcome, taken
    /// targets and not-taken `pc + 4` fall-throughs alike.
    pub edges: BTreeSet<(u64, u64)>,
    /// PCs where execution is known to have entered (program entry,
    /// recorded start states). Seeds the executed-block closure.
    pub entry_pcs: BTreeSet<u64>,
    /// Observed trace start PCs per trace-length configuration.
    pub trace_starts: BTreeMap<u32, BTreeSet<u64>>,
}

impl GapObservations {
    /// Wraps an externally collected edge set (e.g. the fuzzer's
    /// aggregate) plus the entry PCs it ran from. Trace starts stay
    /// empty — edge gaps are still computable, never-formed traces are
    /// not.
    pub fn from_parts(edges: BTreeSet<(u64, u64)>, entry_pcs: BTreeSet<u64>) -> GapObservations {
        GapObservations { edges, entry_pcs, trace_starts: BTreeMap::new() }
    }

    /// Runs `program` functionally for up to `max_instrs` instructions
    /// and collects edges plus trace starts for every length in `lens`
    /// in one pass, applying the decode-stage formation rule (a trace
    /// ends on `is_branch` or at the length limit).
    pub fn from_program(program: &Program, max_instrs: u64, lens: &[u32]) -> GapObservations {
        let mut obs = GapObservations::default();
        obs.entry_pcs.insert(program.entry());
        let mut states: Vec<(u32, u32)> = lens.iter().map(|&l| (l, 0)).collect();
        for &l in lens {
            obs.trace_starts.entry(l).or_default();
        }
        let mut sim = FuncSim::new(program);
        for _ in 0..max_instrs {
            let Some(step) = sim.step() else { break };
            let pc = step.record.pc;
            let branch = step.signals.flags.contains(SignalFlags::IS_BRANCH);
            for (len, count) in &mut states {
                if *count == 0 {
                    if let Some(starts) = obs.trace_starts.get_mut(len) {
                        starts.insert(pc);
                    }
                }
                *count += 1;
                if branch || *count == *len {
                    *count = 0;
                }
            }
            if branch {
                obs.edges.insert((pc, step.record.next_pc));
            }
        }
        obs
    }

    /// Folds another observation set into this one.
    pub fn merge(&mut self, other: &GapObservations) {
        self.edges.extend(other.edges.iter().copied());
        self.entry_pcs.extend(other.entry_pcs.iter().copied());
        for (len, starts) in &other.trace_starts {
            self.trace_starts.entry(*len).or_default().extend(starts.iter().copied());
        }
    }
}

/// Required polarity at one conditional branch along a dominator path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPolarity {
    /// PC of the conditional branch.
    pub branch_pc: u64,
    /// `true` when the branch must be taken to continue along the path.
    pub taken: bool,
    /// Destination this polarity selects.
    pub target: u64,
}

/// One uncovered CFG edge with static feasibility metadata.
#[derive(Debug, Clone)]
pub struct EdgeGap {
    /// PC of the source block's terminating instruction.
    pub from_pc: u64,
    /// Start PC of the destination block.
    pub to_pc: u64,
    /// How the source block exits.
    pub kind: BlockExit,
    /// For conditional-branch sources: the polarity that selects this
    /// edge. `None` for other exit kinds.
    pub taken: Option<bool>,
    /// Start PCs of the dominator chain entry → source block. Every
    /// path to the edge passes through these blocks, in this order.
    pub dominator_path: Vec<u64>,
    /// Branch polarities required where consecutive dominators are
    /// directly connected by a conditional branch, plus this edge's own
    /// polarity when the source is a conditional branch. Dominator-tree
    /// edges that are not CFG edges contribute nothing (the path there
    /// is not unique), so this list is a sound but incomplete
    /// constraint set.
    pub polarities: Vec<BranchPolarity>,
}

/// Never-formed trace summary for one trace-length configuration.
#[derive(Debug, Clone)]
pub struct LenGap {
    /// Trace-length limit of this universe.
    pub max_len: u32,
    /// Statically enumerable traces (completed records only).
    pub static_traces: u64,
    /// Static traces whose start PC was dynamically observed.
    pub formed: u64,
    /// Start PCs of traces that never formed, sorted.
    pub never_formed: Vec<u64>,
}

/// The static↔dynamic coverage diff for one program.
#[derive(Debug, Clone)]
pub struct GapReport {
    /// Workload name.
    pub name: String,
    /// CFG edges out of entry-reachable blocks.
    pub static_edges: u64,
    /// Of those, edges observed or implied by the executed-block
    /// closure.
    pub covered_edges: u64,
    /// Edges out of unreachable blocks — static artifacts that no
    /// execution can cover; excluded from the gap list.
    pub static_only_edges: u64,
    /// Reachable-but-uncovered edges with feasibility metadata.
    pub uncovered: Vec<EdgeGap>,
    /// Natural loops in the CFG.
    pub loops_total: u64,
    /// Loops whose header block executed.
    pub loops_entered: u64,
    /// Header start PCs of loops never entered, sorted.
    pub unentered_loops: Vec<u64>,
    /// Per-trace-length never-formed summaries.
    pub lens: Vec<LenGap>,
}

/// Builds the image, CFG and universes for `program` and diffs them
/// against `obs` — the one-call entry point used by the binary, the
/// repro family and the directed fuzzer.
pub fn gap_report(
    name: &str,
    program: &Program,
    trace_lens: &[u32],
    obs: &GapObservations,
) -> GapReport {
    let image = ProgramImage::new(program);
    let cfg = Cfg::build(&image);
    let opts = EnumOptions::default();
    let universes: Vec<Universe> =
        trace_lens.iter().map(|&len| enumerate(&image, len, &opts)).collect();
    GapReport::diff(name, &image, &cfg, &universes, obs)
}

/// Builds the `itr-gap-golden/v1` document: one self-observed gap
/// report per named program, each formed by running the program for
/// `budget` instructions under [`GapObservations::from_program`] and
/// diffing against its own static structure at every length in `lens`.
/// This is the exact document `itr-analyze --write-gap` regenerates and
/// `tests/gap_golden.rs` pins byte-for-byte.
pub fn golden_document(programs: &[(&str, &Program)], budget: u64, lens: &[u32]) -> Value {
    let reports = programs
        .iter()
        .map(|&(name, program)| {
            let obs = GapObservations::from_program(program, budget, lens);
            gap_report(name, program, lens, &obs).to_value()
        })
        .collect();
    Value::Object(vec![
        ("schema".to_string(), Value::Str(GAP_GOLDEN_SCHEMA.to_string())),
        ("budget".to_string(), Value::UInt(budget)),
        (
            "lens".to_string(),
            Value::Array(lens.iter().map(|&l| Value::UInt(u64::from(l))).collect()),
        ),
        ("reports".to_string(), Value::Array(reports)),
    ])
}

impl GapReport {
    /// Diffs static structure against dynamic observation.
    pub fn diff(
        name: &str,
        image: &ProgramImage,
        cfg: &Cfg,
        universes: &[Universe],
        obs: &GapObservations,
    ) -> GapReport {
        let (covered, executed) = covered_and_executed(image, cfg, obs);

        let mut static_edges = 0u64;
        let mut static_only_edges = 0u64;
        let mut covered_edges = 0u64;
        let mut uncovered = Vec::new();
        for (i, block) in cfg.blocks.iter().enumerate() {
            if !cfg.reachable[i] {
                static_only_edges += block.succs.len() as u64;
                continue;
            }
            static_edges += block.succs.len() as u64;
            for &j in &block.succs {
                if covered.contains(&(i, j)) {
                    covered_edges += 1;
                } else {
                    uncovered.push(edge_gap(image, cfg, i, j));
                }
            }
        }

        let mut unentered_loops = Vec::new();
        for l in &cfg.loops {
            if !executed[l.header] {
                unentered_loops.push(cfg.blocks[l.header].start);
            }
        }
        let loops_total = cfg.loops.len() as u64;
        let loops_entered = loops_total - unentered_loops.len() as u64;

        let empty = BTreeSet::new();
        let lens = universes
            .iter()
            .map(|u| {
                let seen = obs.trace_starts.get(&u.max_len).unwrap_or(&empty);
                let mut never_formed = Vec::new();
                let mut static_traces = 0u64;
                for (start, t) in &u.traces {
                    if t.record.is_none() {
                        continue;
                    }
                    static_traces += 1;
                    if !seen.contains(start) {
                        never_formed.push(*start);
                    }
                }
                let formed = static_traces - never_formed.len() as u64;
                LenGap { max_len: u.max_len, static_traces, formed, never_formed }
            })
            .collect();

        GapReport {
            name: name.to_string(),
            static_edges,
            covered_edges,
            static_only_edges,
            uncovered,
            loops_total,
            loops_entered,
            unentered_loops,
            lens,
        }
    }

    /// `true` when nothing statically possible went unobserved.
    pub fn is_closed(&self) -> bool {
        self.uncovered.is_empty()
            && self.unentered_loops.is_empty()
            && self.lens.iter().all(|l| l.never_formed.is_empty())
    }

    /// Total gap count: uncovered edges plus never-formed traces across
    /// all length configs plus unentered loops.
    pub fn open_gaps(&self) -> u64 {
        self.uncovered.len() as u64
            + self.unentered_loops.len() as u64
            + self.lens.iter().map(|l| l.never_formed.len() as u64).sum::<u64>()
    }

    /// The `itr-gap/v1` JSON document for this program. Listings are
    /// capped at [`GAP_DETAIL_CAP`]; counts are always exact.
    pub fn to_value(&self) -> Value {
        let pcs = |v: &[u64]| {
            Value::Array(
                v.iter().take(GAP_DETAIL_CAP).map(|pc| Value::Str(format!("{pc:#010x}"))).collect(),
            )
        };
        let uncovered = self
            .uncovered
            .iter()
            .take(GAP_DETAIL_CAP)
            .map(|g| {
                let polarities = g
                    .polarities
                    .iter()
                    .map(|p| {
                        Value::Object(vec![
                            ("branch".to_string(), Value::Str(format!("{:#010x}", p.branch_pc))),
                            ("taken".to_string(), Value::Bool(p.taken)),
                            ("target".to_string(), Value::Str(format!("{:#010x}", p.target))),
                        ])
                    })
                    .collect();
                let mut fields = vec![
                    ("from".to_string(), Value::Str(format!("{:#010x}", g.from_pc))),
                    ("to".to_string(), Value::Str(format!("{:#010x}", g.to_pc))),
                    ("kind".to_string(), Value::Str(exit_label(g.kind).to_string())),
                ];
                if let Some(taken) = g.taken {
                    fields.push(("taken".to_string(), Value::Bool(taken)));
                }
                fields.push(("dominator_path".to_string(), pcs(&g.dominator_path)));
                fields.push(("polarities".to_string(), Value::Array(polarities)));
                Value::Object(fields)
            })
            .collect();
        let lens = self
            .lens
            .iter()
            .map(|l| {
                Value::Object(vec![
                    ("max_len".to_string(), Value::UInt(u64::from(l.max_len))),
                    ("static_traces".to_string(), Value::UInt(l.static_traces)),
                    ("formed".to_string(), Value::UInt(l.formed)),
                    ("never_formed".to_string(), Value::UInt(l.never_formed.len() as u64)),
                    ("never_formed_pcs".to_string(), pcs(&l.never_formed)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".to_string(), Value::Str(GAP_SCHEMA.to_string())),
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "edges".to_string(),
                Value::Object(vec![
                    ("static".to_string(), Value::UInt(self.static_edges)),
                    ("covered".to_string(), Value::UInt(self.covered_edges)),
                    ("uncovered".to_string(), Value::UInt(self.uncovered.len() as u64)),
                    ("static_only".to_string(), Value::UInt(self.static_only_edges)),
                ]),
            ),
            (
                "loops".to_string(),
                Value::Object(vec![
                    ("total".to_string(), Value::UInt(self.loops_total)),
                    ("entered".to_string(), Value::UInt(self.loops_entered)),
                    ("unentered_pcs".to_string(), pcs(&self.unentered_loops)),
                ]),
            ),
            ("uncovered".to_string(), Value::Array(uncovered)),
            ("lens".to_string(), Value::Array(lens)),
        ])
    }
}

fn exit_label(exit: BlockExit) -> &'static str {
    match exit {
        BlockExit::FallThrough => "fall-through",
        BlockExit::CondBranch => "cond-branch",
        BlockExit::Jump => "jump",
        BlockExit::Call => "call",
        BlockExit::Indirect => "indirect",
        BlockExit::Stop => "stop",
        BlockExit::Trap => "trap",
        BlockExit::Undecodable => "undecodable",
    }
}

/// Reconstructs covered block-edge pairs and the executed block set
/// from compact observations: observed transfers are mapped onto CFG
/// edges, then execution propagates through unconditional continuations
/// (fall-through splits, direct jumps/calls, non-stopping traps) whose
/// edges the observation stream never records explicitly.
fn covered_and_executed(
    image: &ProgramImage,
    cfg: &Cfg,
    obs: &GapObservations,
) -> (BTreeSet<(usize, usize)>, Vec<bool>) {
    let mut executed = vec![false; cfg.blocks.len()];
    let mut covered = BTreeSet::new();
    let mut queue = Vec::new();

    for &pc in &obs.entry_pcs {
        if let Some(i) = cfg.block_at(pc) {
            if !executed[i] {
                executed[i] = true;
                queue.push(i);
            }
        }
    }
    for &(from, to) in &obs.edges {
        let Some(i) = cfg.block_at(from) else { continue };
        // The transfer must come from the block's terminating
        // instruction — anything else is an observation from a
        // different program layout and is ignored.
        if from != cfg.blocks[i].end - INSTRUCTION_BYTES {
            continue;
        }
        if !executed[i] {
            executed[i] = true;
            queue.push(i);
        }
        let Some(j) = cfg.block_at(to) else { continue };
        if cfg.blocks[j].start != to || !cfg.blocks[i].succs.contains(&j) {
            continue;
        }
        covered.insert((i, j));
        if !executed[j] {
            executed[j] = true;
            queue.push(j);
        }
    }
    while let Some(i) = queue.pop() {
        let block = &cfg.blocks[i];
        let last_pc = block.end - INSTRUCTION_BYTES;
        let implied = match block.exit {
            BlockExit::FallThrough | BlockExit::Trap => Some(block.end),
            BlockExit::Jump | BlockExit::Call => {
                image.fetch(last_pc).and_then(|(inst, _)| inst.direct_target(last_pc))
            }
            _ => None,
        };
        let Some(target) = implied else { continue };
        let Some(j) = cfg.block_at(target) else { continue };
        if cfg.blocks[j].start != target || !block.succs.contains(&j) {
            continue;
        }
        covered.insert((i, j));
        if !executed[j] {
            executed[j] = true;
            queue.push(j);
        }
    }
    (covered, executed)
}

/// Builds the feasibility metadata for the uncovered edge `i → j`.
fn edge_gap(image: &ProgramImage, cfg: &Cfg, i: usize, j: usize) -> EdgeGap {
    let block = &cfg.blocks[i];
    let from_pc = block.end - INSTRUCTION_BYTES;
    let to_pc = cfg.blocks[j].start;
    let branch_target = |pc: u64| image.fetch(pc).and_then(|(inst, _)| inst.direct_target(pc));
    let taken = match block.exit {
        BlockExit::CondBranch => Some(branch_target(from_pc) == Some(to_pc)),
        _ => None,
    };

    let mut chain = vec![i];
    let mut cur = i;
    while let Some(d) = cfg.idom[cur] {
        if d == cur {
            break;
        }
        chain.push(d);
        cur = d;
    }
    chain.reverse();
    let dominator_path: Vec<u64> = chain.iter().map(|&k| cfg.blocks[k].start).collect();

    let mut polarities = Vec::new();
    for w in chain.windows(2) {
        let (d, n) = (w[0], w[1]);
        let db = &cfg.blocks[d];
        if db.exit != BlockExit::CondBranch || !db.succs.contains(&n) {
            continue;
        }
        let branch_pc = db.end - INSTRUCTION_BYTES;
        let target = cfg.blocks[n].start;
        polarities.push(BranchPolarity {
            branch_pc,
            taken: branch_target(branch_pc) == Some(target),
            target,
        });
    }
    if let Some(taken) = taken {
        polarities.push(BranchPolarity { branch_pc: from_pc, taken, target: to_pc });
    }

    EdgeGap { from_pc, to_pc, kind: block.exit, taken, dominator_path, polarities }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use itr_isa::asm::assemble;

    const LENS: [u32; 3] = [4, 8, 16];

    fn gaps(src: &str, max_instrs: u64) -> GapReport {
        let p = assemble(src).unwrap();
        let obs = GapObservations::from_program(&p, max_instrs, &LENS);
        gap_report("t", &p, &LENS, &obs)
    }

    #[test]
    fn fully_covered_program_yields_empty_report() {
        // Straight-line code plus a loop that executes both branch
        // polarities: every edge, loop and static trace is observed.
        let report = gaps(
            r#"
            main:
                li r8, 3
            top:
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
            10_000,
        );
        assert!(report.is_closed(), "open gaps: {report:?}");
        assert_eq!(report.open_gaps(), 0);
        assert_eq!(report.covered_edges, report.static_edges);
        assert_eq!(report.loops_entered, report.loops_total);
        assert_eq!(report.loops_total, 1);
        for l in &report.lens {
            assert_eq!(l.formed, l.static_traces);
        }
    }

    #[test]
    fn unreachable_block_edges_are_static_only_not_gaps() {
        let report = gaps(
            r#"
            main:
                j done
            dead:
                add r8, r8, r8
                beq r8, r9, done
            done:
                halt
            "#,
            100,
        );
        // The dead block's two branch edges exist statically but are
        // excluded from the gap list.
        assert!(report.static_only_edges >= 1, "report: {report:?}");
        assert!(report.is_closed(), "unreachable edges must not open gaps: {report:?}");
    }

    #[test]
    fn uncovered_branch_polarity_is_reported_with_dominator_path() {
        // r8 is never 0 at run time, so `beq` always falls through: the
        // taken edge to `skip` is an uncovered gap with taken=true.
        let p = assemble(
            r#"
            main:
                li r8, 7
                beq r8, r0, skip
                addi r9, r9, 1
            skip:
                halt
            "#,
        )
        .unwrap();
        let obs = GapObservations::from_program(&p, 100, &LENS);
        let report = gap_report("t", &p, &LENS, &obs);
        assert_eq!(report.uncovered.len(), 1, "report: {report:?}");
        let gap = &report.uncovered[0];
        assert_eq!(gap.kind, BlockExit::CondBranch);
        assert_eq!(gap.taken, Some(true));
        assert_eq!(gap.to_pc, p.symbol("skip").unwrap());
        // The dominator path starts at the entry block and ends at the
        // branch's own block; the final polarity entry is the gap edge.
        assert_eq!(gap.dominator_path.first(), Some(&p.entry()));
        let last = gap.polarities.last().unwrap();
        assert_eq!((last.branch_pc, last.taken, last.target), (gap.from_pc, true, gap.to_pc));
        // The fall-through trace formed, the taken-path start did not
        // appear as a never-formed trace (skip is also the fall-through
        // continuation target of the post-branch block, which executed).
        assert!(report.lens.iter().all(|l| l.formed >= 1));
    }

    #[test]
    fn indirect_branch_target_set_gaps_are_per_target() {
        // `jr ra` closes over the conservative indirect-target set;
        // only the actual return site is covered, the remaining
        // targets stay listed as indirect gaps.
        let p = assemble(
            r#"
            main:
                jal callee
                halt
            callee:
                jr ra
            "#,
        )
        .unwrap();
        let obs = GapObservations::from_program(&p, 100, &LENS);
        let report = gap_report("t", &p, &LENS, &obs);
        let indirect: Vec<_> =
            report.uncovered.iter().filter(|g| g.kind == BlockExit::Indirect).collect();
        assert!(!indirect.is_empty(), "conservative jr targets beyond the return site: {report:?}");
        for g in &indirect {
            assert_eq!(g.taken, None);
            assert_ne!(g.to_pc, p.entry() + 4, "the dynamic return edge is covered");
        }
    }

    #[test]
    fn trace_exactly_at_max_length_is_formed_not_a_gap() {
        // Four non-branch instructions then halt: at max_len 4 the
        // first trace is cut exactly at the limit and a second trace
        // starts at the halt. Both must register as formed.
        let p = assemble(
            r#"
            main:
                addi r8, r8, 1
                addi r8, r8, 2
                addi r8, r8, 3
                addi r8, r8, 4
                halt
            "#,
        )
        .unwrap();
        let obs = GapObservations::from_program(&p, 100, &[4]);
        let starts = &obs.trace_starts[&4];
        assert!(starts.contains(&p.entry()));
        assert!(starts.contains(&(p.entry() + 16)), "length-cut continuation start");
        let report = gap_report("t", &p, &[4], &obs);
        let l4 = &report.lens[0];
        assert_eq!(l4.never_formed, Vec::<u64>::new(), "report: {report:?}");
        assert_eq!(l4.formed, l4.static_traces);
    }

    #[test]
    fn unentered_loop_is_reported() {
        // The loop body is guarded by a branch that never takes.
        let p = assemble(
            r#"
            main:
                li r8, 0
                bgtz r8, top
                halt
            top:
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
        )
        .unwrap();
        let obs = GapObservations::from_program(&p, 100, &LENS);
        let report = gap_report("t", &p, &LENS, &obs);
        assert_eq!(report.loops_total, 1);
        assert_eq!(report.loops_entered, 0);
        assert_eq!(report.unentered_loops, vec![p.symbol("top").unwrap()]);
        // And the never-taken guard edge is an uncovered gap.
        assert!(report.uncovered.iter().any(|g| g.to_pc == p.symbol("top").unwrap()));
    }

    #[test]
    fn merge_folds_observation_sets() {
        let p = assemble("main:\n li r8, 1\n halt\n").unwrap();
        let mut a = GapObservations::from_program(&p, 1, &[4]);
        let b = GapObservations::from_program(&p, 100, &[4]);
        a.merge(&b);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.trace_starts, b.trace_starts);
    }

    #[test]
    fn json_document_carries_schema_and_exact_counts() {
        let report = gaps("main:\n li r8, 7\n beq r8, r0, 1\n halt\n", 100);
        let v = report.to_value();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(GAP_SCHEMA));
        let edges = v.get("edges").unwrap();
        assert_eq!(
            edges.get("uncovered").and_then(Value::as_u64),
            Some(report.uncovered.len() as u64)
        );
        // Round-trips through the JSON codec.
        let parsed = Value::parse(&v.to_json()).unwrap();
        assert_eq!(parsed.to_json(), v.to_json());
    }
}
