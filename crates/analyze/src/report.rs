//! Whole-program analysis reports and the regression baseline.
//!
//! [`analyze_program`] runs the full static stack over one program —
//! CFG recovery, trace enumeration per configured length, signature
//! aliasing, ITR-cache set conflicts — and cross-validates against a
//! bounded dynamic run. [`AnalyzeReport`] aggregates workloads and
//! serializes to the `itr-analyze/v1` schema; a reduced
//! `itr-analyze-baseline/v1` document pins the regression-sensitive
//! numbers (static trace counts, unreachable instructions, alias
//! groups) for CI.
//!
//! Everything here iterates sorted structures only, so a report is
//! byte-identical across runs and thread counts.

use crate::cfg::Cfg;
use crate::image::ProgramImage;
use crate::oracle::{cross_validate, dynamic_traces, CrossValidation, ViolationKind};
use crate::trace::{enumerate, EnumOptions, Universe};
use itr_core::ItrCacheConfig;
use itr_isa::Program;
use itr_stats::json::Value;
use std::collections::BTreeMap;

/// Schema tag of the full report document.
pub const SCHEMA: &str = "itr-analyze/v1";
/// Schema tag of the regression baseline document.
pub const BASELINE_SCHEMA: &str = "itr-analyze-baseline/v1";

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Trace-length limits to enumerate under.
    pub trace_lens: Vec<u32>,
    /// Cache geometry for the set-conflict map.
    pub cache: ItrCacheConfig,
    /// Dynamic instruction budget per workload per length for the
    /// cross-validation oracle; `0` disables dynamic verification.
    pub verify_budget: u64,
    /// Enumeration edge switches (tests cripple these to prove the
    /// oracle catches an unsound enumerator).
    pub opts: EnumOptions,
}

impl Default for AnalyzeConfig {
    fn default() -> AnalyzeConfig {
        AnalyzeConfig {
            trace_lens: vec![4, 8, 16],
            cache: ItrCacheConfig::paper_default(),
            verify_budget: 200_000,
            opts: EnumOptions::default(),
        }
    }
}

/// Signature-alias summary of one universe.
#[derive(Debug, Clone, Copy, Default)]
pub struct AliasSummary {
    /// Signatures shared by two or more distinct static traces.
    pub groups: u64,
    /// Alias groups whose members differ in instruction *content* (the
    /// dangerous kind: the fold genuinely collides).
    pub content_groups: u64,
    /// Alias groups whose members are identical instruction sequences
    /// at different addresses (benign placement duplicates).
    pub placement_groups: u64,
    /// Total traces participating in any alias group.
    pub aliased_traces: u64,
    /// Size of the largest alias group.
    pub largest_group: u64,
}

/// ITR-cache set-conflict summary of one universe.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConflictSummary {
    /// Distinct cache sets the static traces index.
    pub sets_used: u64,
    /// Most traces mapping to any single set.
    pub max_set_occupancy: u64,
    /// Sets indexed by more traces than the cache holds ways — resident
    /// working sets larger than this thrash.
    pub overfull_sets: u64,
}

/// Analysis of one program under one trace-length limit.
#[derive(Debug, Clone)]
pub struct LenAnalysis {
    /// The trace-length limit.
    pub max_len: u32,
    /// Enumerated static traces.
    pub static_traces: u64,
    /// Enumerated starts whose walk hit an undecodable word.
    pub undecodable: u64,
    /// Successor edges cut at the region boundary.
    pub cut_edges: u64,
    /// Signature aliasing.
    pub alias: AliasSummary,
    /// Cache set conflicts.
    pub conflicts: ConflictSummary,
    /// Dynamic cross-validation (absent when `verify_budget == 0`).
    pub dynamic: Option<CrossValidation>,
}

/// Full analysis of one workload program.
#[derive(Debug, Clone)]
pub struct WorkloadAnalysis {
    /// Workload name.
    pub name: String,
    /// Workload kind label (`kernel` / `mimic` / caller-chosen).
    pub kind: String,
    /// Static text-segment instructions.
    pub text_instrs: u64,
    /// Basic blocks recovered.
    pub cfg_blocks: u64,
    /// CFG edges.
    pub cfg_edges: u64,
    /// Natural loops.
    pub loops: u64,
    /// `jr`/`jalr` sites.
    pub indirect_sites: u64,
    /// Instructions in blocks unreachable from the entry.
    pub unreachable_instrs: u64,
    /// First few unreachable instruction addresses (diagnostic aid).
    pub unreachable_sample: Vec<u64>,
    /// Per-length analyses, in `trace_lens` order.
    pub lens: Vec<LenAnalysis>,
}

fn alias_summary(universe: &Universe) -> AliasSummary {
    let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for trace in universe.traces.values() {
        if let Some(record) = trace.record {
            groups.entry(record.signature).or_default().push(trace.content_fp);
        }
    }
    let mut summary = AliasSummary::default();
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        summary.groups += 1;
        summary.aliased_traces += members.len() as u64;
        summary.largest_group = summary.largest_group.max(members.len() as u64);
        let mut fps = members.clone();
        fps.sort_unstable();
        fps.dedup();
        if fps.len() > 1 {
            summary.content_groups += 1;
        } else {
            summary.placement_groups += 1;
        }
    }
    summary
}

fn conflict_summary(universe: &Universe, cache: &ItrCacheConfig) -> ConflictSummary {
    let mut occupancy: BTreeMap<u32, u64> = BTreeMap::new();
    for &start_pc in universe.traces.keys() {
        *occupancy.entry(cache.set_index(start_pc)).or_insert(0) += 1;
    }
    let ways = u64::from(cache.ways());
    ConflictSummary {
        sets_used: occupancy.len() as u64,
        max_set_occupancy: occupancy.values().copied().max().unwrap_or(0),
        overfull_sets: occupancy.values().filter(|&&n| n > ways).count() as u64,
    }
}

/// Runs the full analysis stack over one program.
pub fn analyze_program(
    name: &str,
    kind: &str,
    program: &Program,
    cfg: &AnalyzeConfig,
) -> WorkloadAnalysis {
    let image = ProgramImage::new(program);
    let graph = Cfg::build(&image);
    let unreachable = graph.unreachable_pcs();
    let mut lens = Vec::with_capacity(cfg.trace_lens.len());
    for &max_len in &cfg.trace_lens {
        let universe = enumerate(&image, max_len, &cfg.opts);
        let dynamic = (cfg.verify_budget > 0).then(|| {
            let records = dynamic_traces(program, cfg.verify_budget, max_len);
            cross_validate(&image, &universe, &records)
        });
        lens.push(LenAnalysis {
            max_len,
            static_traces: universe.traces.len() as u64,
            undecodable: universe.undecodable(),
            cut_edges: universe.cut_edges,
            alias: alias_summary(&universe),
            conflicts: conflict_summary(&universe, &cfg.cache),
            dynamic,
        });
    }
    WorkloadAnalysis {
        name: name.to_string(),
        kind: kind.to_string(),
        text_instrs: image.text_len() as u64,
        cfg_blocks: graph.blocks.len() as u64,
        cfg_edges: graph.edge_count(),
        loops: graph.loops.len() as u64,
        indirect_sites: image.indirect_sites(),
        unreachable_instrs: unreachable.len() as u64,
        unreachable_sample: unreachable.into_iter().take(16).collect(),
        lens,
    }
}

/// Aggregated report over a set of workloads.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// Configuration the analyses ran under.
    pub config: AnalyzeConfig,
    /// Per-workload analyses, in input order.
    pub workloads: Vec<WorkloadAnalysis>,
}

impl WorkloadAnalysis {
    /// Total cross-validation violations across lengths.
    pub fn violations(&self) -> u64 {
        self.lens.iter().filter_map(|l| l.dynamic.as_ref()).map(|d| d.violations.len() as u64).sum()
    }

    fn len16(&self) -> Option<&LenAnalysis> {
        self.lens.iter().find(|l| l.max_len == 16).or(self.lens.last())
    }

    fn to_value(&self) -> Value {
        let lens = self
            .lens
            .iter()
            .map(|l| {
                let mut fields = vec![
                    ("max_len".to_string(), Value::UInt(u64::from(l.max_len))),
                    ("static_traces".to_string(), Value::UInt(l.static_traces)),
                    ("undecodable".to_string(), Value::UInt(l.undecodable)),
                    ("cut_edges".to_string(), Value::UInt(l.cut_edges)),
                    (
                        "alias".to_string(),
                        Value::Object(vec![
                            ("groups".to_string(), Value::UInt(l.alias.groups)),
                            ("content_groups".to_string(), Value::UInt(l.alias.content_groups)),
                            ("placement_groups".to_string(), Value::UInt(l.alias.placement_groups)),
                            ("aliased_traces".to_string(), Value::UInt(l.alias.aliased_traces)),
                            ("largest_group".to_string(), Value::UInt(l.alias.largest_group)),
                        ]),
                    ),
                    (
                        "conflicts".to_string(),
                        Value::Object(vec![
                            ("sets_used".to_string(), Value::UInt(l.conflicts.sets_used)),
                            (
                                "max_set_occupancy".to_string(),
                                Value::UInt(l.conflicts.max_set_occupancy),
                            ),
                            ("overfull_sets".to_string(), Value::UInt(l.conflicts.overfull_sets)),
                        ]),
                    ),
                ];
                if let Some(d) = &l.dynamic {
                    let content =
                        d.violations.iter().filter(|v| v.kind == ViolationKind::Content).count()
                            as u64;
                    fields.push((
                        "dynamic".to_string(),
                        Value::Object(vec![
                            ("checked".to_string(), Value::UInt(d.checked)),
                            ("matched".to_string(), Value::UInt(d.matched)),
                            ("region_escapes".to_string(), Value::UInt(d.region_escapes)),
                            ("indirect_escapes".to_string(), Value::UInt(d.indirect_escapes)),
                            ("violations".to_string(), Value::UInt(d.violations.len() as u64)),
                            ("content_violations".to_string(), Value::UInt(content)),
                        ]),
                    ));
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("kind".to_string(), Value::Str(self.kind.clone())),
            ("text_instrs".to_string(), Value::UInt(self.text_instrs)),
            ("cfg_blocks".to_string(), Value::UInt(self.cfg_blocks)),
            ("cfg_edges".to_string(), Value::UInt(self.cfg_edges)),
            ("loops".to_string(), Value::UInt(self.loops)),
            ("indirect_sites".to_string(), Value::UInt(self.indirect_sites)),
            ("unreachable_instrs".to_string(), Value::UInt(self.unreachable_instrs)),
            (
                "unreachable_sample".to_string(),
                Value::Array(
                    self.unreachable_sample
                        .iter()
                        .map(|pc| Value::Str(format!("{pc:#010x}")))
                        .collect(),
                ),
            ),
            ("lens".to_string(), Value::Array(lens)),
        ])
    }
}

impl AnalyzeReport {
    /// Total violations across all workloads and lengths.
    pub fn violations(&self) -> u64 {
        self.workloads.iter().map(WorkloadAnalysis::violations).sum()
    }

    /// Total unreachable instructions across all workloads.
    pub fn unreachable_instrs(&self) -> u64 {
        self.workloads.iter().map(|w| w.unreachable_instrs).sum()
    }

    /// Serializes the full `itr-analyze/v1` document.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            (
                "config".to_string(),
                Value::Object(vec![
                    (
                        "trace_lens".to_string(),
                        Value::Array(
                            self.config
                                .trace_lens
                                .iter()
                                .map(|&l| Value::UInt(u64::from(l)))
                                .collect(),
                        ),
                    ),
                    (
                        "cache_entries".to_string(),
                        Value::UInt(u64::from(self.config.cache.entries)),
                    ),
                    ("cache_ways".to_string(), Value::UInt(u64::from(self.config.cache.ways()))),
                    ("verify_budget".to_string(), Value::UInt(self.config.verify_budget)),
                ]),
            ),
            (
                "workloads".to_string(),
                Value::Array(self.workloads.iter().map(WorkloadAnalysis::to_value).collect()),
            ),
            (
                "totals".to_string(),
                Value::Object(vec![
                    ("workloads".to_string(), Value::UInt(self.workloads.len() as u64)),
                    ("violations".to_string(), Value::UInt(self.violations())),
                    ("unreachable_instrs".to_string(), Value::UInt(self.unreachable_instrs())),
                ]),
            ),
        ])
    }

    /// Serializes the reduced `itr-analyze-baseline/v1` document pinning
    /// the regression-sensitive numbers.
    pub fn baseline_value(&self) -> Value {
        let entries = self
            .workloads
            .iter()
            .map(|w| {
                let l = w.len16();
                Value::Object(vec![
                    ("name".to_string(), Value::Str(w.name.clone())),
                    ("static_traces".to_string(), Value::UInt(l.map_or(0, |l| l.static_traces))),
                    ("unreachable_instrs".to_string(), Value::UInt(w.unreachable_instrs)),
                    ("alias_groups".to_string(), Value::UInt(l.map_or(0, |l| l.alias.groups))),
                ])
            })
            .collect();
        Value::Object(vec![
            ("schema".to_string(), Value::Str(BASELINE_SCHEMA.to_string())),
            ("workloads".to_string(), Value::Array(entries)),
        ])
    }

    /// Checks this report against a stored baseline document.
    ///
    /// Static trace counts and unreachable-instruction counts must match
    /// exactly; alias-group counts may shrink but not grow.
    pub fn check_baseline(&self, baseline: &Value) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let schema = baseline.get("schema").and_then(Value::as_str);
        if schema != Some(BASELINE_SCHEMA) {
            return Err(vec![format!("baseline schema mismatch: {schema:?}")]);
        }
        let mut pinned: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        if let Some(entries) = baseline.get("workloads").and_then(Value::as_array) {
            for entry in entries {
                let Some(name) = entry.get("name").and_then(Value::as_str) else { continue };
                pinned.insert(
                    name,
                    (
                        entry.get("static_traces").and_then(Value::as_u64).unwrap_or(0),
                        entry.get("unreachable_instrs").and_then(Value::as_u64).unwrap_or(0),
                        entry.get("alias_groups").and_then(Value::as_u64).unwrap_or(0),
                    ),
                );
            }
        }
        for w in &self.workloads {
            let Some(&(traces, unreachable, aliases)) = pinned.get(w.name.as_str()) else {
                problems.push(format!("{}: not in baseline", w.name));
                continue;
            };
            let l = w.len16();
            let got_traces = l.map_or(0, |l| l.static_traces);
            let got_aliases = l.map_or(0, |l| l.alias.groups);
            if got_traces != traces {
                problems.push(format!(
                    "{}: static traces {} != baseline {}",
                    w.name, got_traces, traces
                ));
            }
            if w.unreachable_instrs != unreachable {
                problems.push(format!(
                    "{}: unreachable instrs {} != baseline {}",
                    w.name, w.unreachable_instrs, unreachable
                ));
            }
            if got_aliases > aliases {
                problems.push(format!(
                    "{}: alias groups regressed {} > baseline {}",
                    w.name, got_aliases, aliases
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use itr_isa::asm::assemble;

    fn report_for(src: &str) -> AnalyzeReport {
        let p = assemble(src).unwrap();
        let cfg = AnalyzeConfig { verify_budget: 20_000, ..AnalyzeConfig::default() };
        let w = analyze_program("t", "kernel", &p, &cfg);
        AnalyzeReport { config: cfg, workloads: vec![w] }
    }

    const SRC: &str = r#"
        main:
            li r8, 4
        top:
            addi r8, r8, -1
            bgtz r8, top
            halt
    "#;

    #[test]
    fn report_round_trips_through_json() {
        let report = report_for(SRC);
        let text = report.to_value().to_json();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn baseline_accepts_itself_and_rejects_drift() {
        let report = report_for(SRC);
        let baseline = report.baseline_value();
        assert!(report.check_baseline(&baseline).is_ok());

        // Forge a baseline with a different trace count.
        let mut other = report_for("main:\n halt\n");
        other.workloads[0].name = "t".to_string();
        let forged = other.baseline_value();
        let err = report.check_baseline(&forged).unwrap_err();
        assert!(err.iter().any(|p| p.contains("static traces")));
    }

    #[test]
    fn alias_growth_is_a_regression_but_shrink_is_not() {
        let report = report_for(SRC);
        let mut inflated = report.clone();
        for l in &mut inflated.workloads[0].lens {
            l.alias.groups += 5;
        }
        // Baseline from the inflated report tolerates the smaller real one…
        assert!(report.check_baseline(&inflated.baseline_value()).is_ok());
        // …but the inflated report fails against the real baseline.
        let err = inflated.check_baseline(&report.baseline_value()).unwrap_err();
        assert!(err.iter().any(|p| p.contains("alias groups regressed")));
    }
}
