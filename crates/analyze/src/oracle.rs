//! Cross-validation oracle: dynamic traces ⊆ static universe.
//!
//! Every trace the decode stage actually forms must be explainable by
//! the static enumeration, in two parts:
//!
//! 1. **Content** — re-walking the trace's start PC through the static
//!    image must reproduce the observed `(signature, length)`. This is
//!    sound whenever the fetched bytes cannot have been modified at run
//!    time; rISA programs have no self-modifying stores into text (the
//!    fuzz generator pins stores to the data segment and low scratch
//!    addresses, both disjoint from the analysis region).
//! 2. **Closure** — the start PC must be a member of the enumerated
//!    universe, i.e. the worklist closure actually predicted a trace
//!    could begin there.
//!
//! Two escape hatches keep the oracle sound rather than noisy:
//! dynamic starts outside the analysis region are counted as *region
//! escapes* (runaway control flow beyond the enumerator's bounded
//! nop-space pad), and closure misses in programs containing `jr`/`jalr`
//! are counted as *indirect escapes* (a register-computed target the
//! conservative set did not cover). Both are tolerated and reported;
//! genuine mismatches — a wrong signature, a wrong length, or a missing
//! universe member in a program with only direct control flow — are
//! violations.

use crate::image::ProgramImage;
use crate::trace::Universe;
use itr_core::{FoldKind, TraceRecord};
use itr_isa::Program;
use itr_sim::TraceStream;

/// What a dynamic trace disagreed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The static walk at this start PC produced a different signature
    /// or length than the dynamic trace.
    Content,
    /// The start PC is inside the region but the enumeration closure
    /// never reached it (and the program has no indirect jumps that
    /// could excuse the miss).
    Closure,
}

/// One dynamic trace the static analysis cannot explain.
#[derive(Debug, Clone, Copy)]
pub struct Violation {
    /// Which check failed.
    pub kind: ViolationKind,
    /// The dynamic trace.
    pub dynamic: TraceRecord,
    /// What the static walk produced at the same start PC, if it
    /// completed.
    pub static_record: Option<TraceRecord>,
}

/// Outcome of cross-validating one dynamic trace set against one
/// universe.
#[derive(Debug, Clone, Default)]
pub struct CrossValidation {
    /// Dynamic traces examined.
    pub checked: u64,
    /// Traces fully explained (content and closure both hold).
    pub matched: u64,
    /// Starts outside the analysis region (tolerated).
    pub region_escapes: u64,
    /// Closure misses excused by the presence of indirect jumps
    /// (tolerated).
    pub indirect_escapes: u64,
    /// Genuine disagreements.
    pub violations: Vec<Violation>,
}

impl CrossValidation {
    /// `true` when no genuine violations were found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks one dynamic trace against the universe, updating `cv`.
pub fn check_trace(
    image: &ProgramImage,
    universe: &Universe,
    record: &TraceRecord,
    cv: &mut CrossValidation,
) {
    cv.checked += 1;
    if !image.in_region(record.start_pc) {
        cv.region_escapes += 1;
        return;
    }
    let walked = crate::trace::walk(image, record.start_pc, universe.max_len, FoldKind::Xor);
    let content_ok =
        walked.record.is_some_and(|s| s.signature == record.signature && s.len == record.len);
    if !content_ok {
        cv.violations.push(Violation {
            kind: ViolationKind::Content,
            dynamic: *record,
            static_record: walked.record,
        });
        return;
    }
    if !universe.contains(record.start_pc) {
        if image.has_indirect_jumps() {
            cv.indirect_escapes += 1;
        } else {
            cv.violations.push(Violation {
                kind: ViolationKind::Closure,
                dynamic: *record,
                static_record: walked.record,
            });
        }
        return;
    }
    cv.matched += 1;
}

/// Cross-validates a whole dynamic trace set.
pub fn cross_validate(
    image: &ProgramImage,
    universe: &Universe,
    dynamic: &[TraceRecord],
) -> CrossValidation {
    let mut cv = CrossValidation::default();
    for record in dynamic {
        check_trace(image, universe, record, &mut cv);
    }
    cv
}

/// Collects the dynamic trace set of `program` by running the
/// functional simulator for up to `max_instrs` instructions under
/// trace-length limit `max_len`.
pub fn dynamic_traces(program: &Program, max_instrs: u64, max_len: u32) -> Vec<TraceRecord> {
    TraceStream::with_trace_len(program, max_instrs, max_len).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::trace::{enumerate, EnumOptions};
    use itr_isa::asm::assemble;

    const LOOP_SRC: &str = r#"
        main:
            li r8, 6
            li r9, 0
        top:
            add r9, r9, r8
            addi r8, r8, -1
            bgtz r8, top
            halt
    "#;

    #[test]
    fn dynamic_traces_are_subset_of_static_universe() {
        let p = assemble(LOOP_SRC).unwrap();
        let image = ProgramImage::new(&p);
        for max_len in [4u32, 8, 16] {
            let universe = enumerate(&image, max_len, &EnumOptions::default());
            let dynamic = dynamic_traces(&p, 10_000, max_len);
            assert!(!dynamic.is_empty());
            let cv = cross_validate(&image, &universe, &dynamic);
            assert!(cv.passed(), "max_len {max_len}: {:?}", cv.violations);
            assert_eq!(cv.matched, cv.checked, "no escapes in a direct-flow program");
        }
    }

    #[test]
    fn dropped_fallthrough_edge_is_caught_as_closure_violation() {
        let p = assemble(LOOP_SRC).unwrap();
        let image = ProgramImage::new(&p);
        let crippled = enumerate(
            &image,
            16,
            &EnumOptions { follow_fallthrough: false, ..EnumOptions::default() },
        );
        let dynamic = dynamic_traces(&p, 10_000, 16);
        let cv = cross_validate(&image, &crippled, &dynamic);
        assert!(!cv.passed(), "a broken enumerator must be caught");
        assert!(cv.violations.iter().any(|v| v.kind == ViolationKind::Closure));
    }

    #[test]
    fn wrong_signature_is_a_content_violation() {
        let p = assemble(LOOP_SRC).unwrap();
        let image = ProgramImage::new(&p);
        let universe = enumerate(&image, 16, &EnumOptions::default());
        let mut dynamic = dynamic_traces(&p, 10_000, 16);
        dynamic[0].signature ^= 0xDEAD_BEEF;
        let cv = cross_validate(&image, &universe, &dynamic);
        assert!(cv.violations.iter().any(|v| v.kind == ViolationKind::Content));
    }

    #[test]
    fn indirect_program_tolerates_unpredicted_targets() {
        let p = assemble(
            r#"
            main:
                jal callee
                halt
            callee:
                jr ra
            "#,
        )
        .unwrap();
        let image = ProgramImage::new(&p);
        let universe = enumerate(&image, 16, &EnumOptions::default());
        let dynamic = dynamic_traces(&p, 1_000, 16);
        let cv = cross_validate(&image, &universe, &dynamic);
        assert!(cv.passed(), "{:?}", cv.violations);
    }
}
