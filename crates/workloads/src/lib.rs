//! # itr-workloads — benchmark programs for the ITR reproduction
//!
//! SPEC2K (used by the paper) is proprietary, so this crate supplies two
//! replacements, per the substitution policy in `DESIGN.md`:
//!
//! * **Kernels** ([`kernels`]) — hand-written `rISA` assembly programs
//!   (sorting, matrix multiply, CRC, hashing, FP stencils, …) with
//!   self-checking outputs; used for simulator validation and as realistic
//!   small workloads.
//! * **SPEC2K mimics** ([`profiles`], [`MimicModel`], [`generate_mimic`])
//!   — for each benchmark in the paper, a generated program whose dynamic
//!   *trace stream statistics* (static trace count from Table 1, hotness
//!   skew from Figs. 1–2, repeat-distance profile from Figs. 3–4) match
//!   that benchmark's characterization. The same statistical model can
//!   also emit a pure synthetic trace stream ([`SyntheticTraceStream`])
//!   for fast cache-only studies; the generated programs cross-validate
//!   it end to end on the real pipeline.
//!
//! # Example
//!
//! ```
//! use itr_workloads::{profiles, generate_mimic};
//!
//! let profile = profiles::by_name("bzip").expect("known benchmark");
//! let program = generate_mimic(profile, 42);
//! assert!(program.len() > profile.static_traces as usize);
//! ```

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod kernels;
mod model;
pub mod profiles;
pub mod suite;
mod synth;

pub use model::{MimicModel, SyntheticTraceStream};
pub use profiles::SpecProfile;
pub use synth::{generate_mimic, generate_mimic_sized};
