//! A unified registry over every workload in the crate: hand-written
//! kernels and SPEC2K mimics, by name, as ready-to-run programs.

use crate::kernels;
use crate::profiles;
use crate::synth::generate_mimic_sized;
use itr_isa::asm::assemble;
use itr_isa::Program;

/// The class a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Hand-written assembly kernel with a known expected output.
    Kernel,
    /// Generated SPEC2K mimic.
    Mimic,
}

/// A named, runnable workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Name (kernel name or benchmark name).
    pub name: String,
    /// Class.
    pub kind: WorkloadKind,
    /// Assembled program image.
    pub program: Program,
    /// Expected `PUT_INT` output, when known (kernels only).
    pub expected_output: Option<&'static str>,
}

/// Builds every kernel workload.
pub fn all_kernels() -> Vec<Workload> {
    kernels::all()
        .into_iter()
        .map(|k| Workload {
            name: k.name.to_string(),
            kind: WorkloadKind::Kernel,
            program: assemble(k.source).expect("kernels assemble"),
            expected_output: Some(k.expected_output),
        })
        .collect()
}

/// Builds every SPEC2K mimic at the given size and seed.
pub fn all_mimics(seed: u64, target_dyn_instrs: u64) -> Vec<Workload> {
    profiles::all()
        .into_iter()
        .map(|p| Workload {
            name: p.name.to_string(),
            kind: WorkloadKind::Mimic,
            program: generate_mimic_sized(p, seed, target_dyn_instrs),
            expected_output: None,
        })
        .collect()
}

/// Every workload: kernels first, then mimics.
pub fn everything(seed: u64, mimic_instrs: u64) -> Vec<Workload> {
    let mut v = all_kernels();
    v.extend(all_mimics(seed, mimic_instrs));
    v
}

/// Finds a workload by name (kernel names first, then benchmarks).
pub fn by_name(name: &str, seed: u64, mimic_instrs: u64) -> Option<Workload> {
    if let Some(k) = kernels::by_name(name) {
        return Some(Workload {
            name: k.name.to_string(),
            kind: WorkloadKind::Kernel,
            program: assemble(k.source).expect("kernels assemble"),
            expected_output: Some(k.expected_output),
        });
    }
    profiles::by_name(name).map(|p| Workload {
        name: p.name.to_string(),
        kind: WorkloadKind::Mimic,
        program: generate_mimic_sized(p, seed, mimic_instrs),
        expected_output: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_both_classes() {
        let all = everything(1, 10_000);
        let kernels = all.iter().filter(|w| w.kind == WorkloadKind::Kernel).count();
        let mimics = all.iter().filter(|w| w.kind == WorkloadKind::Mimic).count();
        assert!(kernels >= 15, "kernel count {kernels}");
        assert_eq!(mimics, 16);
    }

    #[test]
    fn names_are_unique() {
        let all = everything(1, 10_000);
        let mut names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn lookup_resolves_both_classes() {
        assert_eq!(by_name("crc32", 1, 10_000).unwrap().kind, WorkloadKind::Kernel);
        assert_eq!(by_name("vortex", 1, 10_000).unwrap().kind, WorkloadKind::Mimic);
        assert!(by_name("nonesuch", 1, 10_000).is_none());
    }
}
