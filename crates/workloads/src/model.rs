//! The statistical trace-behaviour model behind the SPEC2K mimics.
//!
//! Execution is modelled as a sequence of *region visits*: a region is a
//! small set of static traces (a loop body); a visit runs the region's
//! traces in order for a region-specific number of loop iterations.
//! Region selection is Zipf-distributed, giving the hot/cold concentration
//! seen in Figures 1–2 of the paper; loop iteration counts produce the
//! short repeat distances of Figures 3–4, while cold-region revisit gaps
//! produce the long tail.
//!
//! The same model drives both the pure [`SyntheticTraceStream`] (fast,
//! cache-only studies) and the generated mimic programs
//! ([`generate_mimic`](crate::generate_mimic), executed on the real
//! pipeline), so the two can cross-validate.

use crate::profiles::SpecProfile;
use itr_core::TraceRecord;
use itr_stats::SplitMix64;

/// One code region: an ordered list of trace lengths (instructions,
/// including the terminating branch) and a fixed loop count.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Instructions per trace, in region order (each 2..=16).
    pub trace_lens: Vec<u32>,
    /// Loop iterations per visit.
    pub loops: u32,
}

impl RegionSpec {
    /// Instructions executed by one visit of this region.
    pub fn instrs_per_visit(&self) -> u64 {
        self.loops as u64 * self.trace_lens.iter().map(|&l| l as u64).sum::<u64>()
    }
}

/// The region-visit model for one benchmark profile.
#[derive(Debug, Clone)]
pub struct MimicModel {
    profile: SpecProfile,
    regions: Vec<RegionSpec>,
    /// Cumulative Zipf weights for region selection.
    cumulative: Vec<f64>,
    rng: SplitMix64,
}

impl MimicModel {
    /// Builds the model for `profile`, deterministically from `seed`.
    pub fn new(profile: SpecProfile, seed: u64) -> MimicModel {
        let mut rng = SplitMix64::new(seed ^ 0x1517_AD5E_ED00_0001);
        // Region count solves: static_traces ≈ Σ traces + 2·regions + 3
        // (generated programs add a jump-back trace and a dual-identity
        // entry trace per region, plus dispatcher overhead; see synth.rs).
        let per_region = profile.region_traces.max(2);
        let body_budget = profile.static_traces.saturating_sub(3);
        let g = (body_budget as f64 / (per_region as f64 + 2.0)).ceil().max(1.0) as u32;
        let traces_total = body_budget.saturating_sub(2 * g).max(g);
        let mut regions = Vec::with_capacity(g as usize);
        let base = traces_total / g;
        let extra = traces_total % g;
        for i in 0..g {
            let n = (base + u32::from(i < extra)).max(1);
            let trace_lens = (0..n)
                .map(|_| {
                    let avg = profile.avg_trace_len as i64;
                    let jitter = rng.gen_range(-(avg / 2)..=avg / 2);
                    (avg + jitter).clamp(2, 16) as u32
                })
                .collect();
            let l = profile.loop_iters.max(1);
            let loops = rng.gen_range(l.div_ceil(2)..=l.saturating_mul(3).div_ceil(2)).max(1);
            regions.push(RegionSpec { trace_lens, loops });
        }
        // Zipf weights over regions: weight(k) = 1/(k+1)^s.
        let mut cumulative = Vec::with_capacity(regions.len());
        let mut acc = 0.0;
        for k in 0..regions.len() {
            acc += 1.0 / ((k + 1) as f64).powf(profile.zipf_s);
            cumulative.push(acc);
        }
        MimicModel { profile, regions, cumulative, rng }
    }

    /// The modelled profile.
    pub fn profile(&self) -> &SpecProfile {
        &self.profile
    }

    /// The region specifications.
    pub fn regions(&self) -> &[RegionSpec] {
        &self.regions
    }

    /// Total static traces the model represents, including the dispatcher
    /// and per-region linkage traces a generated program materializes
    /// (the quantity comparable to the paper's Table 1).
    pub fn modelled_static_traces(&self) -> u32 {
        let body: u32 = self.regions.iter().map(|r| r.trace_lens.len() as u32).sum();
        body + 2 * self.regions.len() as u32 + 3
    }

    /// Samples the next region to visit (Zipf over regions).
    pub fn sample_region(&mut self) -> usize {
        let total = *self.cumulative.last().expect("at least one region");
        let x = self.rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Samples a visit sequence whose estimated dynamic instruction count
    /// reaches `target_instrs`.
    pub fn sample_schedule(&mut self, target_instrs: u64) -> Vec<usize> {
        let mut schedule = Vec::new();
        let mut instrs = 0u64;
        while instrs < target_instrs {
            let r = self.sample_region();
            instrs += self.regions[r].instrs_per_visit() + 5; // + dispatcher
            schedule.push(r);
        }
        schedule
    }
}

/// A synthetic committed-trace stream sampled directly from a
/// [`MimicModel`] — no program execution involved.
///
/// Mirrors what a generated mimic program produces on the simulator:
/// region visits interleaved with a hot dispatcher trace. Start PCs are
/// laid out sequentially per region; signatures are a deterministic hash
/// of the start PC (consistent across instances, as fault-free signatures
/// are).
#[derive(Debug, Clone)]
pub struct SyntheticTraceStream {
    model: MimicModel,
    /// Start PC of each trace, per region.
    region_pcs: Vec<Vec<u64>>,
    dispatcher_pc: u64,
    budget: u64,
    // Iteration state.
    region: usize,
    loops_left: u32,
    trace_idx: usize,
    emit_dispatcher: bool,
}

fn sig_of_pc(start_pc: u64) -> u64 {
    // SplitMix64: a fixed, deterministic stand-in for the XOR-folded
    // signature of the trace at `start_pc`.
    let mut z = start_pc.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SyntheticTraceStream {
    /// Streams about `target_instrs` dynamic instructions worth of traces.
    pub fn new(profile: SpecProfile, seed: u64, target_instrs: u64) -> SyntheticTraceStream {
        let model = MimicModel::new(profile, seed);
        let mut pc = 0x0040_0000u64;
        let dispatcher_pc = pc;
        pc += 5 * 4;
        let mut region_pcs = Vec::with_capacity(model.regions().len());
        for region in model.regions() {
            let mut pcs = Vec::with_capacity(region.trace_lens.len());
            for &len in &region.trace_lens {
                pcs.push(pc);
                pc += len as u64 * 4;
            }
            pc += 8; // jump-back + spacing
            region_pcs.push(pcs);
        }
        SyntheticTraceStream {
            model,
            region_pcs,
            dispatcher_pc,
            budget: target_instrs,
            region: 0,
            loops_left: 0,
            trace_idx: 0,
            emit_dispatcher: true,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &MimicModel {
        &self.model
    }
}

impl Iterator for SyntheticTraceStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.budget == 0 {
            return None;
        }
        if self.emit_dispatcher {
            self.emit_dispatcher = false;
            if self.loops_left == 0 {
                // Pick the next region visit.
                self.region = self.model.sample_region();
                self.loops_left = self.model.regions()[self.region].loops;
                self.trace_idx = 0;
            }
            let len = 5u32;
            self.budget = self.budget.saturating_sub(len as u64);
            return Some(TraceRecord {
                start_pc: self.dispatcher_pc,
                signature: sig_of_pc(self.dispatcher_pc),
                len,
            });
        }
        let region = &self.model.regions()[self.region];
        let len = region.trace_lens[self.trace_idx];
        let pc = self.region_pcs[self.region][self.trace_idx];
        self.trace_idx += 1;
        if self.trace_idx == region.trace_lens.len() {
            self.trace_idx = 0;
            self.loops_left -= 1;
            if self.loops_left == 0 {
                self.emit_dispatcher = true;
            }
        }
        self.budget = self.budget.saturating_sub(len as u64);
        Some(TraceRecord { start_pc: pc, signature: sig_of_pc(pc), len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use std::collections::HashMap;

    #[test]
    fn model_is_deterministic_per_seed() {
        let p = profiles::by_name("parser").unwrap();
        let mut a = MimicModel::new(p, 7);
        let mut b = MimicModel::new(p, 7);
        for _ in 0..100 {
            assert_eq!(a.sample_region(), b.sample_region());
        }
        let mut c = MimicModel::new(p, 8);
        let same = (0..100).filter(|_| a.sample_region() == c.sample_region()).count();
        assert!(same < 100, "different seeds must diverge");
    }

    #[test]
    fn static_trace_count_tracks_table1() {
        for p in profiles::all() {
            let m = MimicModel::new(p, 1);
            let traces: usize = m.regions().iter().map(|r| r.trace_lens.len()).sum();
            let expected = p.static_traces as f64;
            let modelled = traces as f64 + 2.0 * m.regions().len() as f64 + 3.0;
            let ratio = modelled / expected;
            assert!(
                (0.7..1.3).contains(&ratio),
                "{}: modelled {} vs Table 1 {}",
                p.name,
                modelled,
                expected
            );
        }
    }

    #[test]
    fn stream_respects_instruction_budget() {
        let p = profiles::by_name("vpr").unwrap();
        let total: u64 = SyntheticTraceStream::new(p, 3, 100_000).map(|t| t.len as u64).sum();
        assert!(total >= 100_000);
        assert!(total < 101_000, "overshoot bounded by one trace");
    }

    #[test]
    fn signatures_are_stable_per_start_pc() {
        let p = profiles::by_name("gap").unwrap();
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for t in SyntheticTraceStream::new(p, 9, 200_000) {
            let prev = seen.insert(t.start_pc, t.signature);
            if let Some(prev) = prev {
                assert_eq!(prev, t.signature);
            }
        }
    }

    #[test]
    fn hot_benchmarks_concentrate_dynamic_instructions() {
        // Figures 1–2: in bzip-like workloads few traces dominate; in
        // vortex-like ones the distribution is flat.
        fn top_100_share(name: &str) -> f64 {
            let p = profiles::by_name(name).unwrap();
            let mut by_trace: HashMap<u64, u64> = HashMap::new();
            let mut total = 0u64;
            for t in SyntheticTraceStream::new(p, 5, 500_000) {
                *by_trace.entry(t.start_pc).or_default() += t.len as u64;
                total += t.len as u64;
            }
            let mut counts: Vec<u64> = by_trace.values().copied().collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts.iter().take(100).sum::<u64>() as f64 / total as f64
        }
        let bzip = top_100_share("bzip");
        let vortex = top_100_share("vortex");
        assert!(bzip > 0.95, "bzip top-100 share = {bzip}");
        assert!(vortex < bzip, "vortex ({vortex}) flatter than bzip ({bzip})");
    }

    #[test]
    fn repeat_distance_orders_by_proximity_class() {
        // Figures 3–4: nearly all of bzip's repeats land within 5000
        // instructions; a large share of vortex's land beyond.
        fn far_fraction(name: &str) -> f64 {
            let p = profiles::by_name(name).unwrap();
            let mut last_seen: HashMap<u64, u64> = HashMap::new();
            let (mut far, mut total) = (0u64, 0u64);
            let mut pos = 0u64;
            for t in SyntheticTraceStream::new(p, 11, 500_000) {
                if let Some(prev) = last_seen.insert(t.start_pc, pos) {
                    total += t.len as u64;
                    if pos - prev > 5000 {
                        far += t.len as u64;
                    }
                }
                pos += t.len as u64;
            }
            far as f64 / total.max(1) as f64
        }
        let bzip = far_fraction("bzip");
        let vortex = far_fraction("vortex");
        assert!(bzip < 0.05, "bzip far-repeat fraction = {bzip}");
        assert!(vortex > 0.25, "vortex far-repeat fraction = {vortex}");
        assert!(vortex > bzip * 5.0);
    }
}
