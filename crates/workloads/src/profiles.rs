//! Per-benchmark workload profiles.
//!
//! Each profile encodes the published characterization of one SPEC2K
//! benchmark from the paper:
//!
//! * `static_traces` — Table 1,
//! * `zipf_s` — hotness skew: how strongly dynamic execution concentrates
//!   in few static traces (Figures 1–2: steeper curves ⇒ larger `s`),
//! * `loop_iters` — mean iterations a code region loops before moving on:
//!   the source of sub-500-instruction repeat distances (Figures 3–4),
//! * `region_traces` — static traces per code region (loop body size).
//!
//! The qualitative classes follow the paper's §3 discussion: `bzip`,
//! `gzip`, `art`, `mgrid`, `swim`, `wupwise` repeat in close proximity;
//! `perl` and `vortex` have many far-repeating traces; `gcc`, `twolf`,
//! `apsi` sit in between with notable far repeats.

/// Statistical profile of one benchmark's trace behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecProfile {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// `true` for SPECfp-like workloads (longer traces, FP instruction
    /// mix).
    pub fp: bool,
    /// Target number of static traces (Table 1).
    pub static_traces: u32,
    /// Zipf exponent of region popularity (higher ⇒ more concentrated).
    pub zipf_s: f64,
    /// Mean loop iterations per region visit (higher ⇒ closer repeats).
    pub loop_iters: u32,
    /// Static traces per region.
    pub region_traces: u32,
    /// Mean instructions per trace body (before the terminating branch).
    pub avg_trace_len: u32,
}

/// The SPECint 2000 benchmarks evaluated in the paper.
pub const SPEC_INT: [SpecProfile; 9] = [
    SpecProfile {
        name: "bzip",
        fp: false,
        static_traces: 283,
        zipf_s: 2.2,
        loop_iters: 16,
        region_traces: 12,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "gzip",
        fp: false,
        static_traces: 291,
        zipf_s: 2.1,
        loop_iters: 14,
        region_traces: 12,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "gap",
        fp: false,
        static_traces: 696,
        zipf_s: 1.1,
        loop_iters: 6,
        region_traces: 14,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "parser",
        fp: false,
        static_traces: 865,
        zipf_s: 1.0,
        loop_iters: 5,
        region_traces: 14,
        avg_trace_len: 5,
    },
    SpecProfile {
        name: "perl",
        fp: false,
        static_traces: 1704,
        zipf_s: 0.5,
        loop_iters: 2,
        region_traces: 16,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "twolf",
        fp: false,
        static_traces: 481,
        zipf_s: 0.8,
        loop_iters: 3,
        region_traces: 12,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "vortex",
        fp: false,
        static_traces: 2655,
        zipf_s: 0.4,
        loop_iters: 2,
        region_traces: 16,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "vpr",
        fp: false,
        static_traces: 292,
        zipf_s: 1.4,
        loop_iters: 8,
        region_traces: 12,
        avg_trace_len: 6,
    },
    SpecProfile {
        name: "gcc",
        fp: false,
        static_traces: 24017,
        zipf_s: 0.9,
        loop_iters: 4,
        region_traces: 24,
        avg_trace_len: 6,
    },
];

/// The SPECfp 2000 benchmarks evaluated in the paper.
pub const SPEC_FP: [SpecProfile; 7] = [
    SpecProfile {
        name: "applu",
        fp: true,
        static_traces: 282,
        zipf_s: 1.6,
        loop_iters: 20,
        region_traces: 10,
        avg_trace_len: 11,
    },
    SpecProfile {
        name: "apsi",
        fp: true,
        static_traces: 1274,
        zipf_s: 0.7,
        loop_iters: 6,
        region_traces: 14,
        avg_trace_len: 10,
    },
    SpecProfile {
        name: "art",
        fp: true,
        static_traces: 98,
        zipf_s: 2.0,
        loop_iters: 30,
        region_traces: 10,
        avg_trace_len: 10,
    },
    SpecProfile {
        name: "equake",
        fp: true,
        static_traces: 336,
        zipf_s: 1.2,
        loop_iters: 15,
        region_traces: 10,
        avg_trace_len: 10,
    },
    SpecProfile {
        name: "mgrid",
        fp: true,
        static_traces: 798,
        zipf_s: 1.8,
        loop_iters: 25,
        region_traces: 10,
        avg_trace_len: 12,
    },
    SpecProfile {
        name: "swim",
        fp: true,
        static_traces: 73,
        zipf_s: 2.0,
        loop_iters: 30,
        region_traces: 10,
        avg_trace_len: 12,
    },
    SpecProfile {
        name: "wupwise",
        fp: true,
        static_traces: 18,
        zipf_s: 2.2,
        loop_iters: 40,
        region_traces: 6,
        avg_trace_len: 10,
    },
];

/// All 16 evaluated benchmarks, integer suite first.
pub fn all() -> Vec<SpecProfile> {
    SPEC_INT.iter().chain(SPEC_FP.iter()).copied().collect()
}

/// The subset whose coverage results appear in Figures 6–8 (the paper
/// omits `bzip`, `gzip`, `art`, `mgrid`, `wupwise` there for negligible
/// loss).
pub fn coverage_figure_set() -> Vec<SpecProfile> {
    all()
        .into_iter()
        .filter(|p| !matches!(p.name, "bzip" | "gzip" | "art" | "mgrid" | "wupwise"))
        .collect()
}

/// Looks up a profile by benchmark name.
pub fn by_name(name: &str) -> Option<SpecProfile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_static_trace_counts() {
        // Spot checks against Table 1 of the paper.
        assert_eq!(by_name("bzip").unwrap().static_traces, 283);
        assert_eq!(by_name("gcc").unwrap().static_traces, 24017);
        assert_eq!(by_name("vortex").unwrap().static_traces, 2655);
        assert_eq!(by_name("wupwise").unwrap().static_traces, 18);
        assert_eq!(by_name("swim").unwrap().static_traces, 73);
    }

    #[test]
    fn sixteen_benchmarks_total() {
        assert_eq!(all().len(), 16);
        assert_eq!(SPEC_INT.len(), 9);
        assert_eq!(SPEC_FP.len(), 7);
    }

    #[test]
    fn coverage_set_matches_figure_6() {
        let names: Vec<&str> = coverage_figure_set().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "gap", "parser", "perl", "twolf", "vortex", "vpr", "gcc", "applu", "apsi",
                "equake", "swim"
            ]
        );
    }

    #[test]
    fn poor_proximity_benchmarks_have_low_skew_and_loops() {
        let perl = by_name("perl").unwrap();
        let bzip = by_name("bzip").unwrap();
        assert!(perl.zipf_s < bzip.zipf_s);
        assert!(perl.loop_iters < bzip.loop_iters);
    }
}
