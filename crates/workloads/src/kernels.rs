//! Hand-written `rISA` assembly kernels.
//!
//! Each kernel is a complete, self-checking program: it computes a result,
//! prints it with `trap PUT_INT`, and halts. The suite doubles as a
//! simulator validation corpus (functional vs. pipeline equivalence) and
//! as realistic small workloads for the fault-injection study.

/// A named kernel with its expected output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kernel {
    /// Short name.
    pub name: &'static str,
    /// Assembly source.
    pub source: &'static str,
    /// Exact expected `PUT_INT`/`PUT_CHAR` output.
    pub expected_output: &'static str,
}

/// Sum of 1..=100 in a tight loop.
pub const SUM_LOOP: Kernel = Kernel {
    name: "sum_loop",
    expected_output: "5050",
    source: r#"
main:
    li r8, 100
    li r9, 0
top:
    add r9, r9, r8
    addi r8, r8, -1
    bgtz r8, top
    move r4, r9
    trap 1
    halt
"#,
};

/// Bubble sort of 12 words, printing the sorted array's checksum
/// (sum of value*index).
pub const BUBBLE_SORT: Kernel = Kernel {
    name: "bubble_sort",
    expected_output: "4420",
    source: r#"
.data
arr: .word 93, 7, 55, 12, 80, 3, 41, 68, 25, 99, 17, 60
.text
main:
    li r16, 12          # n
    addi r17, r16, -1   # outer counter
outer:
    blez r17, check
    la r8, arr
    move r9, r17        # inner counter
inner:
    lw r10, 0(r8)
    lw r11, 4(r8)
    slt r12, r11, r10
    beq r12, r0, noswap
    sw r11, 0(r8)
    sw r10, 4(r8)
noswap:
    addi r8, r8, 4
    addi r9, r9, -1
    bgtz r9, inner
    addi r17, r17, -1
    j outer
check:
    la r8, arr
    li r9, 0            # index
    li r10, 0           # checksum
csum:
    lw r11, 0(r8)
    mul r12, r11, r9
    add r10, r10, r12
    addi r8, r8, 4
    addi r9, r9, 1
    slti r12, r9, 12
    bgtz r12, csum
    move r4, r10
    trap 1
    halt
"#,
};

/// 6x6 integer matrix multiply; prints the trace (sum of diagonal) of the
/// product of two deterministic matrices.
pub const MATMUL: Kernel = Kernel {
    name: "matmul",
    expected_output: "360",
    source: r#"
.data
a:  .space 144   # 6x6 words
b:  .space 144
c:  .space 144
.text
main:
    # Fill a[i][j] = i+j, b[i][j] = i-j+2.
    li r8, 0         # i
fill_i:
    li r9, 0         # j
fill_j:
    li r10, 6
    mul r10, r8, r10
    add r10, r10, r9
    sll r10, r10, 2  # offset
    la r11, a
    add r11, r11, r10
    add r12, r8, r9
    sw r12, 0(r11)
    la r11, b
    add r11, r11, r10
    sub r12, r8, r9
    addi r12, r12, 2
    sw r12, 0(r11)
    addi r9, r9, 1
    slti r12, r9, 6
    bgtz r12, fill_j
    addi r8, r8, 1
    slti r12, r8, 6
    bgtz r12, fill_i

    # c = a * b
    li r8, 0         # i
mm_i:
    li r9, 0         # j
mm_j:
    li r13, 0        # acc
    li r14, 0        # k
mm_k:
    li r10, 6
    mul r10, r8, r10
    add r10, r10, r14
    sll r10, r10, 2
    la r11, a
    add r11, r11, r10
    lw r15, 0(r11)   # a[i][k]
    li r10, 6
    mul r10, r14, r10
    add r10, r10, r9
    sll r10, r10, 2
    la r11, b
    add r11, r11, r10
    lw r16, 0(r11)   # b[k][j]
    mul r15, r15, r16
    add r13, r13, r15
    addi r14, r14, 1
    slti r10, r14, 6
    bgtz r10, mm_k
    li r10, 6
    mul r10, r8, r10
    add r10, r10, r9
    sll r10, r10, 2
    la r11, c
    add r11, r11, r10
    sw r13, 0(r11)
    addi r9, r9, 1
    slti r10, r9, 6
    bgtz r10, mm_j
    addi r8, r8, 1
    slti r10, r8, 6
    bgtz r10, mm_i

    # trace of c
    li r8, 0
    li r9, 0
trace:
    li r10, 7        # 6+1: diagonal stride in words
    mul r10, r8, r10
    sll r10, r10, 2
    la r11, c
    add r11, r11, r10
    lw r12, 0(r11)
    add r9, r9, r12
    addi r8, r8, 1
    slti r10, r8, 6
    bgtz r10, trace
    move r4, r9
    trap 1
    halt
"#,
};

/// CRC-32 (reflected, polynomial 0xEDB88320) over 32 bytes, bitwise.
pub const CRC32: Kernel = Kernel {
    name: "crc32",
    expected_output: "-1513192344",
    source: r#"
.data
msg: .byte 0x49, 0x54, 0x52, 0x20, 0x63, 0x61, 0x63, 0x68
     .byte 0x65, 0x20, 0x73, 0x69, 0x67, 0x6e, 0x61, 0x74
     .byte 0x75, 0x72, 0x65, 0x73, 0x20, 0x66, 0x6f, 0x72
     .byte 0x20, 0x44, 0x53, 0x4e, 0x32, 0x30, 0x30, 0x37
.text
main:
    la r8, msg
    li r9, 32            # byte count
    li r10, -1           # crc = 0xFFFFFFFF
    lui r11, 0xEDB8
    ori r11, r11, 0x8320 # poly
byte_loop:
    lbu r12, 0(r8)
    xor r10, r10, r12
    li r13, 8
bit_loop:
    andi r14, r10, 1
    srl r10, r10, 1
    beq r14, r0, no_poly
    xor r10, r10, r11
no_poly:
    addi r13, r13, -1
    bgtz r13, bit_loop
    addi r8, r8, 1
    addi r9, r9, -1
    bgtz r9, byte_loop
    not r10, r10
    move r4, r10
    trap 1
    halt
"#,
};

/// Sieve of Eratosthenes: count of primes below 200.
pub const SIEVE: Kernel = Kernel {
    name: "sieve",
    expected_output: "46",
    source: r#"
.data
flags: .space 200
.text
main:
    li r8, 2            # candidate
sieve_outer:
    la r9, flags
    add r9, r9, r8
    lbu r10, 0(r9)
    bgtz r10, next_candidate
    # r8 is prime: mark multiples
    add r11, r8, r8
mark:
    slti r12, r11, 200
    beq r12, r0, next_candidate
    la r9, flags
    add r9, r9, r11
    li r10, 1
    sb r10, 0(r9)
    add r11, r11, r8
    j mark
next_candidate:
    addi r8, r8, 1
    slti r12, r8, 200
    bgtz r12, sieve_outer
    # count zeros in flags[2..200]
    li r8, 2
    li r13, 0
count:
    la r9, flags
    add r9, r9, r8
    lbu r10, 0(r9)
    bgtz r10, not_prime
    addi r13, r13, 1
not_prime:
    addi r8, r8, 1
    slti r12, r8, 200
    bgtz r12, count
    move r4, r13
    trap 1
    halt
"#,
};

/// Iterative Fibonacci: F(30).
pub const FIB: Kernel = Kernel {
    name: "fib",
    expected_output: "832040",
    source: r#"
main:
    li r8, 0
    li r9, 1
    li r10, 30
fib_loop:
    add r11, r8, r9
    move r8, r9
    move r9, r11
    addi r10, r10, -1
    bgtz r10, fib_loop
    move r4, r8
    trap 1
    halt
"#,
};

/// Naive substring search: index of "ITR" inside a text buffer.
pub const STRSEARCH: Kernel = Kernel {
    name: "strsearch",
    expected_output: "29",
    source: r#"
.data
text:   .byte 0x74, 0x72, 0x61, 0x6e, 0x73, 0x69, 0x65, 0x6e
        .byte 0x74, 0x20, 0x66, 0x61, 0x75, 0x6c, 0x74, 0x73
        .byte 0x20, 0x64, 0x65, 0x74, 0x65, 0x63, 0x74, 0x65
        .byte 0x64, 0x20, 0x76, 0x69, 0x61, 0x49, 0x54, 0x52
        .byte 0x20, 0x63, 0x61, 0x63, 0x68, 0x65, 0x00, 0x00
pat:    .byte 0x49, 0x54, 0x52, 0x00
.text
main:
    li r16, 37           # text length - pattern length + 1 positions
    li r8, 0             # position
pos_loop:
    li r9, 0             # pattern index
cmp_loop:
    slti r10, r9, 3
    beq r10, r0, found   # matched all 3 chars
    la r11, text
    add r11, r11, r8
    add r11, r11, r9
    lbu r12, 0(r11)
    la r11, pat
    add r11, r11, r9
    lbu r13, 0(r11)
    bne r12, r13, no_match
    addi r9, r9, 1
    j cmp_loop
no_match:
    addi r8, r8, 1
    slt r10, r8, r16
    bgtz r10, pos_loop
    li r8, -1
found:
    move r4, r8
    trap 1
    halt
"#,
};

/// Open-addressing hash table: insert 24 keys, count probes on lookups.
pub const HASHTABLE: Kernel = Kernel {
    name: "hashtable",
    expected_output: "24",
    source: r#"
.data
table: .space 256        # 64 slots of one word, 0 = empty
.text
main:
    # Insert keys k = 7, 14, 21, ..., 168 (24 keys, k*2654435761 hashing).
    li r16, 24
    li r8, 7
insert_loop:
    lui r9, 0x9E37
    ori r9, r9, 0x79B1
    mul r10, r8, r9
    srl r10, r10, 26     # 6-bit slot
probe_i:
    sll r11, r10, 2
    la r12, table
    add r12, r12, r11
    lw r13, 0(r12)
    beq r13, r0, do_insert
    addi r10, r10, 1
    andi r10, r10, 63
    j probe_i
do_insert:
    sw r8, 0(r12)
    addi r8, r8, 7
    addi r16, r16, -1
    bgtz r16, insert_loop

    # Look each key up again; count the found ones.
    li r16, 24
    li r8, 7
    li r17, 0            # found count
lookup_loop:
    lui r9, 0x9E37
    ori r9, r9, 0x79B1
    mul r10, r8, r9
    srl r10, r10, 26
probe_l:
    sll r11, r10, 2
    la r12, table
    add r12, r12, r11
    lw r13, 0(r12)
    beq r13, r0, miss
    bne r13, r8, next_slot
    addi r17, r17, 1
    j miss
next_slot:
    addi r10, r10, 1
    andi r10, r10, 63
    j probe_l
miss:
    addi r8, r8, 7
    addi r16, r16, -1
    bgtz r16, lookup_loop
    move r4, r17
    trap 1
    halt
"#,
};

/// Linked list: build 20 nodes in memory, then traverse summing payloads.
pub const LINKED_LIST: Kernel = Kernel {
    name: "linked_list",
    expected_output: "1050",
    source: r#"
.data
pool: .space 256         # 20 nodes * (value, next) + slack
.text
main:
    # Build list: node i at pool + 8*i, value = (i+1)*5, next = node i+1.
    li r16, 20
    li r8, 0             # i
    la r9, pool
build:
    addi r10, r8, 1
    li r11, 5
    mul r10, r10, r11
    sw r10, 0(r9)        # value
    addi r11, r9, 8      # next node address
    addi r12, r8, 1
    slti r13, r12, 20
    bgtz r13, link
    li r11, 0            # last node: null next
link:
    sw r11, 4(r9)
    addi r9, r9, 8
    addi r8, r8, 1
    slti r13, r8, 20
    bgtz r13, build
    # Traverse.
    la r9, pool
    li r10, 0
walk:
    beq r9, r0, finish
    lw r11, 0(r9)
    add r10, r10, r11
    lw r9, 4(r9)
    j walk
finish:
    move r4, r10
    trap 1
    halt
"#,
};

/// FP dot product of two 16-element vectors (values i and 17-i), printed
/// as an integer.
pub const FP_DOT: Kernel = Kernel {
    name: "fp_dot",
    expected_output: "816",
    source: r#"
main:
    li r8, 1             # i
    li r9, 0             # placeholder
    mtc1 r0, f4
    cvt.s.w f4, f4       # acc = 0.0
dot_loop:
    mtc1 r8, f0
    cvt.s.w f0, f0       # i as float
    li r10, 17
    sub r10, r10, r8
    mtc1 r10, f1
    cvt.s.w f1, f1       # (17-i) as float
    mul.s f2, f0, f1
    add.s f4, f4, f2
    addi r8, r8, 1
    slti r10, r8, 17
    bgtz r10, dot_loop
    cvt.w.s f5, f4
    mfc1 r4, f5
    trap 1
    halt
"#,
};

/// Newton's method for sqrt(1764) in FP; converges to 42.
pub const FP_NEWTON: Kernel = Kernel {
    name: "fp_newton",
    expected_output: "42",
    source: r#"
main:
    li r8, 1764
    mtc1 r8, f0
    cvt.s.w f0, f0       # x = 1764.0
    li r8, 40
    mtc1 r8, f1
    cvt.s.w f1, f1       # guess = 40.0
    li r8, 2
    mtc1 r8, f2
    cvt.s.w f2, f2       # 2.0
    li r9, 8             # iterations
newton:
    div.s f3, f0, f1     # x / g
    add.s f1, f1, f3     # g + x/g
    div.s f1, f1, f2     # (g + x/g) / 2
    addi r9, r9, -1
    bgtz r9, newton
    cvt.w.s f4, f1
    mfc1 r4, f4
    trap 1
    halt
"#,
};

/// A byte-coded state machine interpreter: dispatch via jump table (`jr`),
/// exercising indirect branches. Counts opcode executions.
pub const INTERPRETER: Kernel = Kernel {
    name: "interpreter",
    expected_output: "73710",
    source: r#"
.data
# Byte code: 0=inc, 1=add5, 2=double, 3=loop-back-if-positive-counter, 4=halt.
code:  .byte 0, 1, 2, 0, 1, 3, 4, 0
.text
main:
    li r16, 0            # accumulator
    li r17, 12           # loop fuel for opcode 3
    la r18, code
    li r19, 0            # pc (code index)
dispatch:
    la r8, code
    add r8, r8, r19
    lbu r9, 0(r8)
    addi r19, r19, 1
    # Branch tree dispatch (compact jump table substitute).
    beq r9, r0, op_inc
    li r10, 1
    beq r9, r10, op_add5
    li r10, 2
    beq r9, r10, op_double
    li r10, 3
    beq r9, r10, op_loop
    j op_halt
op_inc:
    addi r16, r16, 1
    j dispatch
op_add5:
    addi r16, r16, 5
    j dispatch
op_double:
    add r16, r16, r16
    j dispatch
op_loop:
    addi r17, r17, -1
    blez r17, dispatch
    li r19, 0
    j dispatch
op_halt:
    move r4, r16
    trap 1
    halt
"#,
};

/// Recursive quicksort (Lomuto partition) of 16 words — deep call
/// recursion exercising the return-address stack; prints the sorted
/// array's positional checksum.
pub const QUICKSORT: Kernel = Kernel {
    name: "quicksort",
    expected_output: "7785",
    source: r#"
.data
qarr: .word 83, 12, 99, 4, 57, 31, 76, 8, 45, 62, 27, 90, 3, 68, 19, 50
.text
main:
    li r4, 0
    li r5, 15
    jal qsort
    la r8, qarr
    li r9, 0
    li r10, 0
csum:
    lw r11, 0(r8)
    mul r12, r11, r9
    add r10, r10, r12
    addi r8, r8, 4
    addi r9, r9, 1
    slti r12, r9, 16
    bgtz r12, csum
    move r4, r10
    trap 1
    halt

# qsort(l = r4, r = r5), Lomuto partition with pivot a[r].
qsort:
    slt r8, r4, r5
    beq r8, r0, qs_ret
    addi sp, sp, -16
    sw ra, 0(sp)
    sw r4, 4(sp)
    sw r5, 8(sp)
    la r8, qarr
    sll r9, r5, 2
    add r9, r8, r9
    lw r10, 0(r9)        # pivot value
    addi r11, r4, -1     # i
    move r12, r4         # j
part_loop:
    slt r13, r12, r5
    beq r13, r0, part_done
    sll r13, r12, 2
    add r13, r8, r13
    lw r14, 0(r13)       # a[j]
    slt r15, r10, r14
    bgtz r15, part_next  # pivot < a[j]: leave it
    addi r11, r11, 1
    sll r15, r11, 2
    add r15, r8, r15
    lw r9, 0(r15)        # a[i]
    sw r14, 0(r15)
    sw r9, 0(r13)
part_next:
    addi r12, r12, 1
    j part_loop
part_done:
    addi r11, r11, 1     # p
    sll r13, r11, 2
    add r13, r8, r13
    lw r14, 0(r13)
    sll r15, r5, 2
    add r15, r8, r15
    lw r9, 0(r15)
    sw r9, 0(r13)
    sw r14, 0(r15)
    sw r11, 12(sp)       # save p across the recursive calls
    lw r4, 4(sp)
    addi r5, r11, -1
    jal qsort            # qsort(l, p-1)
    lw r11, 12(sp)
    addi r4, r11, 1
    lw r5, 8(sp)
    jal qsort            # qsort(p+1, r)
    lw ra, 0(sp)
    addi sp, sp, 16
qs_ret:
    jr ra
"#,
};

/// Binary search over a sorted table: 46 probes, counts the hits.
pub const BINSEARCH: Kernel = Kernel {
    name: "binsearch",
    expected_output: "7",
    source: r#"
.data
barr: .space 128
.text
main:
    li r8, 0
fill:
    li r9, 7
    mul r9, r8, r9
    addi r9, r9, 3
    la r10, barr
    sll r11, r8, 2
    add r10, r10, r11
    sw r9, 0(r10)
    addi r8, r8, 1
    slti r9, r8, 32
    bgtz r9, fill
    li r16, 0            # probe value
    li r17, 0            # found count
probe:
    li r8, 0             # lo
    li r9, 31            # hi
bs_loop:
    slt r10, r9, r8
    bgtz r10, bs_done
    add r11, r8, r9
    srl r11, r11, 1      # mid
    la r12, barr
    sll r13, r11, 2
    add r12, r12, r13
    lw r13, 0(r12)
    beq r13, r16, bs_found
    slt r10, r13, r16
    beq r10, r0, bs_left
    addi r8, r11, 1
    j bs_loop
bs_left:
    addi r9, r11, -1
    j bs_loop
bs_found:
    addi r17, r17, 1
bs_done:
    addi r16, r16, 5
    slti r10, r16, 230
    bgtz r10, probe
    move r4, r17
    trap 1
    halt
"#,
};

/// N-queens (N = 6) with bitmask backtracking and real recursion; prints
/// the solution count.
pub const NQUEENS: Kernel = Kernel {
    name: "nqueens",
    expected_output: "4",
    source: r#"
main:
    li r4, 0             # row
    li r5, 0             # cols
    li r6, 0             # diag1
    li r7, 0             # diag2
    jal nq
    move r4, r2
    trap 1
    halt

# nq(row=r4, cols=r5, d1=r6, d2=r7) -> count in r2
nq:
    li r8, 6
    bne r4, r8, nq_rec
    li r2, 1
    jr ra
nq_rec:
    addi sp, sp, -28
    sw ra, 0(sp)
    sw r16, 4(sp)
    sw r17, 8(sp)
    sw r18, 12(sp)
    sw r19, 16(sp)
    sw r20, 20(sp)
    sw r21, 24(sp)
    move r21, r4         # row
    move r18, r5         # cols
    move r19, r6         # d1
    move r20, r7         # d2
    li r16, 0            # c
    li r17, 0            # acc
nq_c:
    srlv r8, r18, r16    # cols >> c
    add r9, r21, r16
    srlv r9, r19, r9     # d1 >> (row+c)
    or r8, r8, r9
    li r10, 6
    add r10, r21, r10
    sub r10, r10, r16
    srlv r10, r20, r10   # d2 >> (row-c+6)
    or r8, r8, r10
    andi r8, r8, 1
    bgtz r8, nq_next
    addi r4, r21, 1
    li r9, 1
    sllv r9, r9, r16
    or r5, r18, r9
    add r9, r21, r16
    li r10, 1
    sllv r10, r10, r9
    or r6, r19, r10
    li r10, 6
    add r10, r21, r10
    sub r10, r10, r16
    li r9, 1
    sllv r9, r9, r10
    or r7, r20, r9
    jal nq
    add r17, r17, r2
nq_next:
    addi r16, r16, 1
    slti r8, r16, 6
    bgtz r8, nq_c
    move r2, r17
    lw ra, 0(sp)
    lw r16, 4(sp)
    lw r17, 8(sp)
    lw r18, 12(sp)
    lw r19, 16(sp)
    lw r20, 20(sp)
    lw r21, 24(sp)
    addi sp, sp, 28
    jr ra
"#,
};

/// A threaded-code interpreter dispatching through a `jr`-based jump
/// table in data memory — the heaviest indirect-branch workload in the
/// suite (BTB pressure and constant indirect mispredictions).
pub const JUMPTABLE: Kernel = Kernel {
    name: "jumptable",
    expected_output: "18414",
    source: r#"
.data
jtab: .word op_inc, op_add5, op_double, op_loop, op_halt
code: .byte 0, 1, 2, 0, 1, 3, 4, 0
.text
main:
    li r16, 0            # accumulator
    li r17, 10           # loop fuel
    li r19, 0            # byte-code pc
dispatch:
    la r8, code
    add r8, r8, r19
    lbu r9, 0(r8)
    addi r19, r19, 1
    sll r9, r9, 2
    la r8, jtab
    add r8, r8, r9
    lw r8, 0(r8)
    jr r8
op_inc:
    addi r16, r16, 1
    j dispatch
op_add5:
    addi r16, r16, 5
    j dispatch
op_double:
    add r16, r16, r16
    j dispatch
op_loop:
    addi r17, r17, -1
    blez r17, dispatch   # out of fuel: fall through to opcode 4
    li r19, 0
    j dispatch
op_halt:
    move r4, r16
    trap 1
    halt
"#,
};

/// Prints a string by walking a NUL-terminated buffer with `PUT_CHAR`
/// traps, then prints its length — exercises byte loads and the trap
/// service path.
pub const HELLO: Kernel = Kernel {
    name: "hello",
    expected_output: "ITR says hi!12",
    source: r#"
.data
msg: .asciiz "ITR says hi!"
.text
main:
    la r8, msg
    li r9, 0             # length
emit:
    lbu r4, 0(r8)
    beq r4, r0, done
    trap 2               # put_char
    addi r8, r8, 1
    addi r9, r9, 1
    j emit
done:
    move r4, r9
    trap 1
    halt
"#,
};

/// Run-length encoding: compress a 48-byte buffer of runs into
/// (count, value) pairs, then print a checksum folding each pair and the
/// pair count — an RLE/LZ-style compression loop dominated by a
/// data-dependent inner scan.
pub const RLE_COMPRESS: Kernel = Kernel {
    name: "rle_compress",
    expected_output: "183221",
    source: r#"
.data
inp: .byte 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41
     .byte 0x42, 0x42, 0x42
     .byte 0x43
     .byte 0x44, 0x44, 0x44, 0x44, 0x44, 0x44, 0x44, 0x44, 0x44, 0x44, 0x44, 0x44
     .byte 0x45, 0x45, 0x45, 0x45, 0x45
     .byte 0x46, 0x46
     .byte 0x47, 0x47, 0x47, 0x47, 0x47, 0x47, 0x47, 0x47, 0x47
     .byte 0x48, 0x48, 0x48, 0x48
     .byte 0x41, 0x41, 0x41, 0x41, 0x41
out: .space 96
.text
main:
    la r8, inp           # input cursor
    li r16, 48           # bytes remaining
    la r17, out          # output cursor
    li r18, 0            # pairs emitted
    li r19, 0            # checksum
rle_loop:
    blez r16, rle_done
    lbu r9, 0(r8)        # run value
    li r10, 0            # run length
run_scan:
    lbu r11, 0(r8)
    bne r11, r9, run_end
    addi r10, r10, 1
    addi r8, r8, 1
    addi r16, r16, -1
    bgtz r16, run_scan
run_end:
    sw r10, 0(r17)       # emit (count, value) pair
    sw r9, 4(r17)
    addi r17, r17, 8
    addi r18, r18, 1
    mul r12, r10, r9     # csum = csum*2 + count*value
    sll r19, r19, 1
    add r19, r19, r12
    j rle_loop
rle_done:
    li r12, 100          # fold the pair count in
    mul r18, r18, r12
    add r4, r19, r18
    trap 1
    halt
"#,
};

/// JSON-subset parser: a flat object of string keys and (possibly
/// negative) integer values. Prints `sum_of_values + 1000 * keys +
/// key_bytes` — a byte-at-a-time state machine full of data-dependent
/// short branches, nothing like the suite's numeric loops.
pub const JSON_PARSE: Kernel = Kernel {
    name: "json_parse",
    expected_output: "7513",
    source: r#"
.data
doc: .asciiz "{\"alpha\":17,\"bv\":2029,\"c\":-3,\"delta\":400,\"ee\":55}"
.text
main:
    la r8, doc
    li r16, 0            # sum of values
    li r17, 0            # number of keys
    li r18, 0            # total key bytes
    lbu r9, 0(r8)        # expect '{'
    li r10, 123
    bne r9, r10, bad
    addi r8, r8, 1
pair:
    lbu r9, 0(r8)        # expect '"'
    li r10, 34
    bne r9, r10, bad
    addi r8, r8, 1
key:
    lbu r9, 0(r8)
    li r10, 34
    beq r9, r10, key_end
    addi r18, r18, 1
    addi r8, r8, 1
    j key
key_end:
    addi r8, r8, 1
    lbu r9, 0(r8)        # expect ':'
    li r10, 58
    bne r9, r10, bad
    addi r8, r8, 1
    li r11, 1            # sign
    lbu r9, 0(r8)
    li r10, 45           # '-'
    bne r9, r10, digits
    li r11, -1
    addi r8, r8, 1
digits:
    li r12, 0            # value accumulator
digit:
    lbu r9, 0(r8)
    slti r10, r9, 48     # below '0'?
    bgtz r10, num_end
    slti r10, r9, 58     # above '9'?
    beq r10, r0, num_end
    li r10, 10
    mul r12, r12, r10
    addi r9, r9, -48
    add r12, r12, r9
    addi r8, r8, 1
    j digit
num_end:
    mul r12, r12, r11    # apply sign
    add r16, r16, r12
    addi r17, r17, 1
    lbu r9, 0(r8)
    li r10, 44           # ','
    beq r9, r10, next_pair
    li r10, 125          # '}'
    beq r9, r10, done
bad:
    li r4, -1
    trap 1
    halt
next_pair:
    addi r8, r8, 1
    j pair
done:
    li r10, 1000
    mul r17, r17, r10
    add r4, r16, r17
    add r4, r4, r18
    trap 1
    halt
"#,
};

/// Packet-header parsing: walk a buffer of `[type, len, csum, payload…]`
/// frames, verify each payload checksum, and print
/// `valid*10000 + sum(type*len over valid frames)` — header-then-payload
/// pointer chasing with a validation branch per frame.
pub const PKT_PARSE: Kernel = Kernel {
    name: "pkt_parse",
    expected_output: "50061",
    source: r#"
.data
pkts: .byte 1, 4, 100,  10, 20, 30, 40
      .byte 2, 3, 18,   5, 6, 7
      .byte 3, 5, 94,   50, 60, 70, 80, 90
      .byte 4, 2, 99,   9, 9
      .byte 5, 6, 21,   1, 2, 3, 4, 5, 6
      .byte 6, 1, 200,  200
      .byte 0
.text
main:
    la r8, pkts
    li r16, 0            # valid frames
    li r17, 0            # sum of type*len over valid frames
frame:
    lbu r9, 0(r8)        # type (0 terminates)
    beq r9, r0, report
    lbu r10, 1(r8)       # len
    lbu r11, 2(r8)       # claimed checksum
    addi r8, r8, 3
    li r12, 0            # payload sum
    move r13, r10        # payload countdown
payload:
    blez r13, verify
    lbu r14, 0(r8)
    add r12, r12, r14
    addi r8, r8, 1
    addi r13, r13, -1
    j payload
verify:
    andi r12, r12, 255
    bne r12, r11, frame  # corrupt frame: skip
    addi r16, r16, 1
    mul r14, r9, r10
    add r17, r17, r14
    j frame
report:
    li r9, 10000
    mul r16, r16, r9
    add r4, r16, r17
    trap 1
    halt
"#,
};

/// The full kernel suite.
pub fn all() -> Vec<Kernel> {
    vec![
        SUM_LOOP,
        BUBBLE_SORT,
        MATMUL,
        CRC32,
        SIEVE,
        FIB,
        STRSEARCH,
        HASHTABLE,
        LINKED_LIST,
        FP_DOT,
        FP_NEWTON,
        INTERPRETER,
        QUICKSORT,
        BINSEARCH,
        NQUEENS,
        JUMPTABLE,
        HELLO,
        RLE_COMPRESS,
        JSON_PARSE,
        PKT_PARSE,
    ]
}

/// Looks a kernel up by name.
pub fn by_name(name: &str) -> Option<Kernel> {
    all().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_sim::{FuncSim, StopReason};

    #[test]
    fn every_kernel_assembles() {
        for k in all() {
            assemble(k.source).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn every_kernel_produces_its_expected_output() {
        for k in all() {
            let p = assemble(k.source).expect("assembles");
            let mut sim = FuncSim::new(&p);
            let reason = sim.run(5_000_000);
            assert_eq!(reason, StopReason::Halted, "{} did not halt", k.name);
            assert_eq!(sim.output(), k.expected_output, "{} output mismatch", k.name);
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("crc32").unwrap().name, "crc32");
        assert!(by_name("nonexistent").is_none());
    }
}
