//! Generator for SPEC2K-mimic programs.
//!
//! Emits a real, runnable `rISA` program whose dynamic trace stream
//! follows a [`MimicModel`] schedule: a data-driven dispatcher reads a
//! script of region addresses and indirect-jumps to each region; regions
//! loop over their traces a fixed number of iterations. Every trace is a
//! straight-line block terminated by a branch, so trace boundaries and
//! identities are exactly the model's.
//!
//! Register conventions: `r8` dispatcher target, `r21` script pointer,
//! `r22` visits remaining, `r23` constant 1 (never-taken compares), `r24`
//! region loop counter, `r25` shared data base; block filler uses
//! `r10..r15` and `f0..f7` only.

use crate::model::MimicModel;
use crate::profiles::SpecProfile;
use itr_isa::{Instruction, Opcode, Program, ProgramBuilder};
use itr_stats::SplitMix64;

/// Bytes of shared scratch data the blocks load and store.
const SHARED_BYTES: usize = 2048;

/// Generates a mimic program targeting about two million dynamic
/// instructions (the default window of the coverage studies).
pub fn generate_mimic(profile: SpecProfile, seed: u64) -> Program {
    generate_mimic_sized(profile, seed, 2_000_000)
}

/// Generates a mimic program whose script covers about
/// `target_dyn_instrs` dynamic instructions before halting.
pub fn generate_mimic_sized(profile: SpecProfile, seed: u64, target_dyn_instrs: u64) -> Program {
    let mut model = MimicModel::new(profile, seed);
    let schedule = model.sample_schedule(target_dyn_instrs);
    let mut rng = SplitMix64::new(seed ^ 0x5EED_B10C_0000_0002);
    let mut b = ProgramBuilder::new();

    // ---- main: register setup ----
    b.label("main").expect("fresh builder");
    b.push(Instruction::rri(Opcode::Addi, 23, 0, 1));
    b.load_addr(25, "shared");
    b.load_addr(21, "script");
    b.load_imm(22, schedule.len() as i64);
    for r in 10..=15u8 {
        b.push(Instruction::rri(Opcode::Addi, r, 0, r as i32 * 3 + 1));
    }
    if profile.fp {
        // f0 = 3.0, f1 = 2.0; blocks stick to add/sub/abs/neg/mov so
        // values stay finite and deterministic.
        b.push(Instruction::rri(Opcode::Addi, 8, 0, 3));
        b.push(Instruction { op: Opcode::Mtc1, rs: 0, rt: 8, rd: 0, shamt: 0, imm: 0 });
        b.push(Instruction { op: Opcode::CvtSW, rs: 0, rt: 0, rd: 0, shamt: 0, imm: 0 });
        b.push(Instruction::rri(Opcode::Addi, 8, 0, 2));
        b.push(Instruction { op: Opcode::Mtc1, rs: 1, rt: 8, rd: 0, shamt: 0, imm: 0 });
        b.push(Instruction { op: Opcode::CvtSW, rs: 1, rt: 1, rd: 1, shamt: 0, imm: 0 });
    }

    // ---- dispatcher ----
    b.label("dispatcher").expect("unique");
    b.branch_to(Opcode::Blez, 22, 0, "done");
    b.push(Instruction::rri(Opcode::Addi, 22, 22, -1));
    b.push(Instruction::mem(Opcode::Lw, 8, 21, 0));
    b.push(Instruction::rri(Opcode::Addi, 21, 21, 4));
    b.push(Instruction { op: Opcode::Jr, rs: 8, rt: 0, rd: 0, shamt: 0, imm: 0 });
    b.label("done").expect("unique");
    b.push(Instruction::trap(itr_isa::trap::HALT));

    // ---- regions ----
    for (k, region) in model.regions().iter().enumerate() {
        b.label(&format!("region_{k}")).expect("unique region label");
        b.load_imm(24, region.loops as i64);
        b.label(&format!("region_{k}_top")).expect("unique top label");
        let n = region.trace_lens.len();
        for (t, &len) in region.trace_lens.iter().enumerate() {
            let last = t + 1 == n;
            // Body: len-1 instructions (the last trace spends one of them
            // on the loop decrement), then the terminating branch.
            let filler = if last { len.saturating_sub(2) } else { len - 1 };
            for _ in 0..filler {
                b.push(random_filler(&mut rng, profile.fp));
            }
            if last {
                b.push(Instruction::rri(Opcode::Addi, 24, 24, -1));
                b.branch_to(Opcode::Bgtz, 24, 0, &format!("region_{k}_top"));
            } else {
                // Never-taken compare (r0 != r23): a real conditional
                // branch that terminates the trace without redirecting.
                b.push(Instruction::branch(Opcode::Beq, 0, 23, 0));
            }
        }
        b.jump_to(Opcode::J, "dispatcher");
    }

    // ---- data ----
    b.data_align(4);
    b.data_label("shared").expect("unique");
    b.data_space(SHARED_BYTES);
    b.data_label("script").expect("unique");
    for region in schedule {
        b.data_word_addr(&format!("region_{region}"));
    }

    b.build().expect("generator emits consistent labels")
}

fn random_filler(rng: &mut SplitMix64, fp: bool) -> Instruction {
    if fp && rng.gen_bool(0.4) {
        let fd = rng.gen_range(2..=7u8);
        let fa = rng.gen_range(0..=7u8);
        let fb = rng.gen_range(0..=7u8);
        return match rng.gen_range(0..5) {
            0 => Instruction::rrr(Opcode::AddS, fd, fa, fb),
            1 => Instruction::rrr(Opcode::SubS, fd, fa, fb),
            2 => Instruction { op: Opcode::AbsS, rs: fa, rt: 0, rd: fd, shamt: 0, imm: 0 },
            3 => Instruction { op: Opcode::NegS, rs: fa, rt: 0, rd: fd, shamt: 0, imm: 0 },
            _ => Instruction { op: Opcode::MovS, rs: fa, rt: 0, rd: fd, shamt: 0, imm: 0 },
        };
    }
    let rd = rng.gen_range(10..=15u8);
    let rs = rng.gen_range(10..=15u8);
    let rt = rng.gen_range(10..=15u8);
    match rng.gen_range(0..8) {
        0 => Instruction::rri(Opcode::Addi, rd, rs, rng.gen_range(-64..=64)),
        1 => Instruction::rrr(Opcode::Add, rd, rs, rt),
        2 => Instruction::rrr(Opcode::Xor, rd, rs, rt),
        3 => Instruction::rrr(Opcode::Sub, rd, rs, rt),
        4 => Instruction::shift(Opcode::Sll, rd, rs, rng.gen_range(1..=4)),
        5 => Instruction::shift(Opcode::Srl, rd, rs, rng.gen_range(1..=4)),
        6 => {
            let off = (rng.gen_range(0..SHARED_BYTES as i32 / 4)) * 4;
            Instruction::mem(Opcode::Lw, rd, 25, off)
        }
        _ => {
            let off = (rng.gen_range(0..SHARED_BYTES as i32 / 4)) * 4;
            Instruction::mem(Opcode::Sw, rs, 25, off)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use itr_sim::{FuncSim, StopReason, TraceStream};
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let p = profiles::by_name("vpr").unwrap();
        let a = generate_mimic_sized(p, 42, 50_000);
        let b = generate_mimic_sized(p, 42, 50_000);
        assert_eq!(a.text(), b.text());
        assert_eq!(a.data(), b.data());
        let c = generate_mimic_sized(p, 43, 50_000);
        assert_ne!(a.text(), c.text(), "seed must matter");
    }

    #[test]
    fn mimic_runs_to_halt_near_target_length() {
        let p = profiles::by_name("twolf").unwrap();
        let program = generate_mimic_sized(p, 7, 100_000);
        let mut sim = FuncSim::new(&program);
        let reason = sim.run(400_000);
        assert_eq!(reason, StopReason::Halted);
        let n = sim.instr_count();
        assert!((80_000..300_000).contains(&n), "dynamic length {n} far from the 100k target");
    }

    #[test]
    fn static_trace_counts_approximate_table1() {
        // Executed static-trace population within ±30% of Table 1 for a
        // spread of profiles (hot Zipf tails mean the coldest regions may
        // not all be visited in a short run).
        for name in ["bzip", "parser", "twolf", "vpr", "swim", "wupwise"] {
            let p = profiles::by_name(name).unwrap();
            let program = generate_mimic_sized(p, 11, 400_000);
            let starts: HashSet<u64> =
                TraceStream::new(&program, 400_000).map(|t| t.start_pc).collect();
            let measured = starts.len() as f64;
            let target = p.static_traces as f64;
            assert!(
                (0.5..=1.4).contains(&(measured / target)),
                "{name}: measured {measured} static traces vs Table 1 {target}"
            );
        }
    }

    #[test]
    fn fp_mimics_contain_fp_instructions() {
        let p = profiles::by_name("swim").unwrap();
        let program = generate_mimic_sized(p, 3, 20_000);
        let fp_count = program
            .text()
            .iter()
            .filter_map(|&w| itr_isa::decode(w).ok())
            .filter(|i| i.op.props().flags.contains(itr_isa::SignalFlags::IS_FP))
            .count();
        assert!(fp_count > 50, "only {fp_count} FP instructions");
    }

    #[test]
    fn mimic_signatures_are_consistent_across_instances() {
        let p = profiles::by_name("gap").unwrap();
        let program = generate_mimic_sized(p, 5, 60_000);
        let mut sigs = std::collections::HashMap::new();
        for t in TraceStream::new(&program, 60_000) {
            if let Some(prev) = sigs.insert(t.start_pc, t.signature) {
                assert_eq!(prev, t.signature, "trace {:#x} signature changed", t.start_pc);
            }
        }
    }
}
