//! Checkpoint-spacing design sweep: recovery coverage vs checkpoint
//! cost, with passive predictions confirmed or corrected per fault.
//!
//! One sweep point fixes (workload, fault-model kind) and samples a
//! pinned campaign of model instances; each instance is classified once
//! in passive mode (the Figure-8 heuristic prediction) and then run
//! through the recovery engine at every checkpoint spacing `min_gap` in
//! the grid. The output is one [`SweepCell`] per gap: ground-truth
//! outcome counts, confirmed/corrected prediction tallies, checkpoint
//! cost, and mean rollback distance.

use crate::engine::{
    run_recovery, run_recovery_with_switches, sound_violation, GoldenRun, RecoverConfig,
};
use crate::outcome::{confirms, prediction, ActualOutcome};
use itr_faults::{classify, observe_model, CampaignConfig, ModelKind, ModelPlan};
use itr_isa::Program;

/// Aggregated ground truth for one (workload, kind, gap) sweep point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepCell {
    /// Checkpoint spacing of this cell.
    pub gap: u64,
    /// Outcome counts, indexed like [`ActualOutcome::ALL`].
    pub counts: [u32; 7],
    /// Passive predictions the ground truth confirmed.
    pub confirmed: u32,
    /// Passive predictions the ground truth corrected.
    pub corrected: u32,
    /// Faults the passive taxonomy made no active-mode prediction for.
    pub unpredicted: u32,
    /// Sound-invariant violations among soundness-gated models
    /// (expected 0; a non-zero count is an engine or taxonomy bug).
    pub violations: u32,
    /// Checkpoints taken, summed over the cell's runs.
    pub checkpoints: u64,
    /// Checkpoint opportunities, summed over the cell's runs.
    pub opportunities: u64,
    /// Instructions committed by the faulty runs, summed.
    pub committed: u64,
    /// Rollbacks attempted.
    pub rollbacks: u32,
    /// Committed instructions discarded by rollbacks, summed.
    pub rollback_distance_sum: u64,
}

impl SweepCell {
    /// Faults classified into this cell.
    pub fn injected(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Count for one outcome.
    pub fn count(&self, outcome: ActualOutcome) -> u32 {
        let i = ActualOutcome::ALL.iter().position(|&o| o == outcome).expect("known outcome");
        self.counts[i]
    }

    /// Checkpoints taken per 1000 committed instructions — the
    /// checkpoint-cost axis of the coverage-vs-cost curve.
    pub fn checkpoints_per_kinstr(&self) -> f64 {
        self.checkpoints as f64 * 1000.0 / self.committed.max(1) as f64
    }

    /// Mean committed instructions discarded per rollback.
    pub fn mean_rollback_distance(&self) -> f64 {
        self.rollback_distance_sum as f64 / u64::from(self.rollbacks).max(1) as f64
    }

    /// Fraction of detected faults that ended golden-equivalent after
    /// rollback — the recovery-coverage axis.
    pub fn recovery_coverage_pct(&self) -> f64 {
        let recovered =
            self.count(ActualOutcome::Recovered) + self.count(ActualOutcome::RecoveredOutputLoss);
        let detected =
            recovered + self.count(ActualOutcome::RollbackSdc) + self.count(ActualOutcome::Fatal);
        recovered as f64 * 100.0 / detected.max(1) as f64
    }
}

/// Runs the sweep point (program, kind) over every gap in `gaps`.
///
/// The golden run is captured once with `golden_instrs` as budget and
/// must halt within it (a truncated reference cannot distinguish
/// recovery from divergence). `line_age` selects the checkpoint policy
/// for every cell: `None` sweeps the paper's strict condition (zero
/// availability on real programs — the baseline rows of the
/// coverage-vs-cost curve), `Some(age)` the bounded-wait policy. When
/// `switch_cycles` is set, every active run executes under that
/// context-switch quantum (the `itr-env` interaction scenario).
/// `cancelled` is polled between faults; a cancelled sweep returns the
/// cells accumulated so far.
#[allow(clippy::too_many_arguments)]
pub fn sweep_kind(
    program: &Program,
    kind: ModelKind,
    ccfg: &CampaignConfig,
    gaps: &[u64],
    line_age: Option<u64>,
    max_cycles: u64,
    golden_instrs: u64,
    switch_cycles: Option<u64>,
    cancelled: &dyn Fn() -> bool,
) -> Vec<SweepCell> {
    let golden = GoldenRun::capture(program, golden_instrs);
    assert!(golden.halted, "sweep workloads must halt within the golden budget");
    let plan = ModelPlan::new(program, kind, ccfg);
    let mut cells: Vec<SweepCell> =
        gaps.iter().map(|&gap| SweepCell { gap, ..SweepCell::default() }).collect();
    for model in plan.models() {
        if cancelled() {
            break;
        }
        // Passive classification once per fault: the heuristic the
        // ground truth below confirms or corrects.
        let (obs, _) = observe_model(program, model, plan.golden(), ccfg.itr, ccfg.window_cycles);
        let passive = classify(&obs, plan.clean_signatures());
        for cell in cells.iter_mut() {
            let rcfg = RecoverConfig {
                itr: ccfg.itr,
                checkpoint_min_gap: cell.gap,
                checkpoint_line_age: line_age,
                max_cycles,
            };
            let run = match switch_cycles {
                Some(q) => run_recovery_with_switches(program, model, &golden, &rcfg, q),
                None => run_recovery(program, model, &golden, &rcfg),
            };
            let oi = ActualOutcome::ALL
                .iter()
                .position(|&o| o == run.actual)
                .expect("taxonomy is total");
            cell.counts[oi] += 1;
            match prediction(passive) {
                Some(p) if confirms(p, run.actual) => cell.confirmed += 1,
                Some(_) => cell.corrected += 1,
                None => cell.unpredicted += 1,
            }
            // The sound oracle invariants only apply to transient
            // models under uninterrupted execution; the sweep measures
            // (never asserts) the rest.
            if model.active_recovery_sound() && switch_cycles.is_none() {
                cell.violations += u32::from(sound_violation(passive, &run).is_some());
            }
            cell.checkpoints += run.checkpoints_taken;
            cell.opportunities += run.opportunities;
            cell.committed += run.committed;
            cell.rollbacks += u32::from(run.rolled_back);
            cell.rollback_distance_sum += run.rollback_distance;
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_workloads::kernels;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            faults: 6,
            window_cycles: 15_000,
            min_decode: 50,
            max_decode: 1_500,
            seed: 11,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_total() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let cfg = small_cfg();
        let gaps = [0u64, 1_024];
        let age = Some(crate::engine::BOUNDED_WAIT_AGE);
        let a =
            sweep_kind(&p, ModelKind::Seu, &cfg, &gaps, age, 3_000_000, 400_000, None, &|| false);
        let b =
            sweep_kind(&p, ModelKind::Seu, &cfg, &gaps, age, 3_000_000, 400_000, None, &|| false);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        for cell in &a {
            assert_eq!(cell.injected(), cfg.faults, "every fault lands in one outcome");
            assert_eq!(cell.confirmed + cell.corrected + cell.unpredicted, cfg.faults);
            assert_eq!(cell.violations, 0, "sound invariants must hold for SEUs: {cell:?}");
        }
    }

    #[test]
    fn tighter_gaps_never_take_fewer_checkpoints() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let cells = sweep_kind(
            &p,
            ModelKind::Seu,
            &small_cfg(),
            &[0, 4_096],
            Some(crate::engine::BOUNDED_WAIT_AGE),
            3_000_000,
            400_000,
            None,
            &|| false,
        );
        assert!(
            cells[0].checkpoints >= cells[1].checkpoints,
            "gap 0 takes at least as many checkpoints as gap 4096: {cells:?}"
        );
        assert!(cells[0].checkpoints_per_kinstr() >= cells[1].checkpoints_per_kinstr());
    }

    #[test]
    fn cancelled_sweep_returns_partial_cells() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let cells = sweep_kind(
            &p,
            ModelKind::Seu,
            &small_cfg(),
            &[0],
            Some(crate::engine::BOUNDED_WAIT_AGE),
            3_000_000,
            400_000,
            None,
            &|| true,
        );
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].injected(), 0);
    }

    #[test]
    fn strict_policy_has_zero_availability_on_real_kernels() {
        // The baseline rows of the coverage-vs-cost curve: the paper's
        // strict condition never fires once a run-once prologue trace
        // is resident, so every detection is fatal.
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let cells = sweep_kind(
            &p,
            ModelKind::Seu,
            &small_cfg(),
            &[0],
            None,
            3_000_000,
            400_000,
            None,
            &|| false,
        );
        assert_eq!(cells[0].checkpoints, 0);
        assert_eq!(cells[0].opportunities, 0);
        assert_eq!(
            cells[0].count(ActualOutcome::Recovered)
                + cells[0].count(ActualOutcome::RecoveredOutputLoss),
            0
        );
    }
}
