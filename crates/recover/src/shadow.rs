//! Shadow architectural state: replays a pipeline's committed-record
//! stream into a register file and sparse memory image, so the full
//! architectural snapshot behind any [`CheckpointRecord`] can be
//! materialized from the commit log alone.
//!
//! The pipeline already tells us *when* a §2.3 checkpoint is safe (the
//! [`itr_core::CoarseCheckpointer`] fires at a trace-end commit with no
//! unchecked ITR lines resident) and logs the commit count it covers
//! ([`CheckpointRecord`]). What hardware would latch into its checkpoint
//! store — registers, dirty memory, resume PC — is exactly the
//! architectural effect of the committed prefix, which a [`CommitRecord`]
//! stream encodes completely: destination writes, stores, and the
//! next-PC chain. Replaying the prefix here therefore reconstructs the
//! checkpoint a real machine would have taken, without the pipeline
//! snapshotting anything mid-run.
//!
//! [`CheckpointRecord`]: itr_sim::CheckpointRecord

use itr_isa::Program;
use itr_sim::{CommitRecord, FuncSim, Memory, SimSnapshot, NUM_ARCH_REGS};
use std::collections::BTreeSet;

/// Accumulates the architectural effect of a committed-record prefix.
#[derive(Debug)]
pub struct ShadowArch {
    regs: [u32; NUM_ARCH_REGS],
    mem: Memory,
    /// Word-aligned addresses touched by stores, in address order.
    dirty: BTreeSet<u64>,
    instrs: u64,
    next_pc: u64,
    text_base: u64,
    text_end: u64,
    touches_text: bool,
}

impl ShadowArch {
    /// Starts from the freshly loaded image of `program` (the same
    /// initial state every simulator in the workspace starts from).
    pub fn new(program: &Program) -> ShadowArch {
        ShadowArch {
            // Seed from a fresh FuncSim so ABI setup (stack pointer) is
            // identical to what the pipeline started with.
            regs: *FuncSim::new(program).arch().regs(),
            mem: Memory::with_program(program),
            dirty: BTreeSet::new(),
            instrs: 0,
            next_pc: program.entry(),
            text_base: program.text_base(),
            text_end: program.text_base() + program.text().len() as u64 * 4,
            touches_text: false,
        }
    }

    /// Applies one committed instruction's architectural effect.
    pub fn apply(&mut self, r: &CommitRecord) {
        if let Some((reg, value)) = r.dst {
            // r0 is hardwired zero; a faulty record naming it must not
            // corrupt the shadow file.
            if reg != 0 {
                self.regs[reg as usize] = value;
            }
        }
        if let Some((addr, size, value)) = r.store {
            let span = size.max(1) as u64;
            self.mem.write(addr, size, value);
            self.dirty.insert(addr & !3);
            self.dirty.insert((addr + span - 1) & !3);
            if addr < self.text_end && addr + span > self.text_base {
                self.touches_text = true;
            }
        }
        self.instrs += 1;
        self.next_pc = r.next_pc;
    }

    /// Instructions applied so far.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Freezes the current state as a resumable [`SimSnapshot`]. The
    /// `traces` field is left empty: a rollback restarts trace formation
    /// from scratch (the warm-cache image is irrelevant after the ITR
    /// cache is distrusted).
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            pc: self.next_pc,
            regs: self.regs,
            mem_delta: self.dirty.iter().map(|&a| (a, self.mem.read_u32(a))).collect(),
            instrs: self.instrs,
            traces: Vec::new(),
            touches_text: self.touches_text,
        }
    }
}

/// Replays `records` from the program's initial state and snapshots the
/// result — the architectural checkpoint covering exactly that prefix.
pub fn snapshot_at(program: &Program, records: &[CommitRecord]) -> SimSnapshot {
    let mut shadow = ShadowArch::new(program);
    for r in records {
        shadow.apply(r);
    }
    shadow.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_workloads::kernels;

    #[test]
    fn shadow_snapshot_resumes_exactly_at_arbitrary_prefixes() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let mut sim = FuncSim::new(&p);
        let (records, stop) = sim.run_collect(200_000);
        assert_eq!(stop, itr_sim::StopReason::Halted);
        for cut in [1usize, 7, records.len() / 2, records.len() - 1] {
            let snap = snapshot_at(&p, &records[..cut]);
            assert_eq!(snap.instrs, cut as u64);
            assert!(
                FuncSim::snapshot_resumes_exactly(&p, &snap, &records[cut..]),
                "resume at commit {cut} must replay the suffix"
            );
        }
    }

    #[test]
    fn shadow_mem_delta_is_sorted_word_aligned() {
        let p = assemble(kernels::BUBBLE_SORT.source).unwrap();
        let mut sim = FuncSim::new(&p);
        let (records, _) = sim.run_collect(50_000);
        let snap = snapshot_at(&p, &records[..records.len() / 2]);
        assert!(snap.mem_delta.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(snap.mem_delta.iter().all(|&(a, _)| a & 3 == 0));
        assert!(!snap.mem_delta.is_empty(), "sorting stores are visible");
    }

    #[test]
    fn zero_register_writes_are_discarded() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let mut shadow = ShadowArch::new(&p);
        shadow.apply(&CommitRecord {
            pc: p.entry(),
            dst: Some((0, 0xDEAD_BEEF)),
            store: None,
            next_pc: p.entry() + 4,
        });
        assert_eq!(shadow.snapshot().regs[0], 0);
    }

    #[test]
    fn text_stores_are_flagged() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let mut shadow = ShadowArch::new(&p);
        assert!(!shadow.snapshot().touches_text);
        shadow.apply(&CommitRecord {
            pc: p.entry(),
            dst: None,
            store: Some((p.text_base(), 4, 0)),
            next_pc: p.entry() + 4,
        });
        assert!(shadow.snapshot().touches_text);
    }
}
