//! Ground-truth recovery outcomes and the passive-prediction mapping.
//!
//! The §4 campaigns classify faults from a *passive* run and predict
//! what active-mode recovery would do (recover, or abort). The recovery
//! engine replaces those predictions with what actually happened; this
//! module names the actual outcomes and the confirmed/corrected
//! bookkeeping between the two.

use itr_faults::Outcome;
use std::fmt;

/// What actually happened when a faulty run executed under full
/// active-mode ITR with checkpoint/rollback recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActualOutcome {
    /// The run finished with the golden committed stream and output —
    /// the fault was masked or a retry flush absorbed it.
    FinishedClean,
    /// The run finished but its committed stream or output diverged
    /// from the golden run: silent data corruption escaped every check.
    FinishedSdc,
    /// Detection fired, rollback to the last checkpoint re-executed the
    /// golden suffix exactly, and no output had escaped past the
    /// checkpoint: full recovery, invisible to the outside world.
    Recovered,
    /// As above, but program output had already escaped past the
    /// checkpoint — re-execution re-emits it, so recovery is visible
    /// (the paper's "output committed" caveat for coarse checkpoints).
    RecoveredOutputLoss,
    /// Rollback happened but the checkpointed prefix itself had already
    /// diverged from the golden run: the checkpoint is corrupt and
    /// re-execution cannot restore the golden behaviour.
    RollbackSdc,
    /// Detection fired but no checkpoint had ever been taken: the only
    /// honest response is a machine-check abort.
    Fatal,
    /// The cycle budget ran out before the run reached any terminal
    /// state (commit deadlock escape hatch for the sweeps).
    Hung,
}

impl ActualOutcome {
    /// Every outcome, in report order.
    pub const ALL: [ActualOutcome; 7] = [
        ActualOutcome::FinishedClean,
        ActualOutcome::FinishedSdc,
        ActualOutcome::Recovered,
        ActualOutcome::RecoveredOutputLoss,
        ActualOutcome::RollbackSdc,
        ActualOutcome::Fatal,
        ActualOutcome::Hung,
    ];

    /// Stable label used in reports and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            ActualOutcome::FinishedClean => "finished-clean",
            ActualOutcome::FinishedSdc => "finished-sdc",
            ActualOutcome::Recovered => "recovered",
            ActualOutcome::RecoveredOutputLoss => "recovered-output-loss",
            ActualOutcome::RollbackSdc => "rollback-sdc",
            ActualOutcome::Fatal => "fatal",
            ActualOutcome::Hung => "hung",
        }
    }

    /// `true` when the run ended architecturally equivalent to the
    /// golden run (possibly after rollback).
    pub fn golden_equivalent(self) -> bool {
        matches!(
            self,
            ActualOutcome::FinishedClean
                | ActualOutcome::Recovered
                | ActualOutcome::RecoveredOutputLoss
        )
    }
}

impl fmt::Display for ActualOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a passive Figure-8 classification predicts about the active run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// A retry flush absorbs the fault: the active run finishes clean.
    FinishesClean,
    /// The faulty instance already committed: the active run detects
    /// (machine check) and must fall back to rollback or abort.
    Detects,
}

/// The active-mode prediction the passive taxonomy makes for `outcome`,
/// if any. This is the heuristic the ground-truth engine confirms or
/// corrects: only `ItrSdcR` (for transient faults) is sound in every
/// corner case — see `itr_faults::validate_active_recovery`.
pub fn prediction(outcome: Outcome) -> Option<Prediction> {
    match outcome {
        Outcome::ItrSdcR | Outcome::ItrMask | Outcome::ItrWdogR => Some(Prediction::FinishesClean),
        Outcome::ItrSdcD => Some(Prediction::Detects),
        _ => None,
    }
}

/// `true` when the ground-truth outcome confirms the prediction.
pub fn confirms(pred: Prediction, actual: ActualOutcome) -> bool {
    match pred {
        Prediction::FinishesClean => actual == ActualOutcome::FinishedClean,
        // "Detects" predicts a machine check; with the recovery engine
        // attached a machine check becomes a rollback, so any rollback
        // outcome (or an honest abort) confirms it.
        Prediction::Detects => matches!(
            actual,
            ActualOutcome::Recovered
                | ActualOutcome::RecoveredOutputLoss
                | ActualOutcome::RollbackSdc
                | ActualOutcome::Fatal
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_stable() {
        let labels: Vec<_> = ActualOutcome::ALL.iter().map(|o| o.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(ActualOutcome::Recovered.label(), "recovered");
    }

    #[test]
    fn prediction_mapping_covers_exactly_the_itr_detected_outcomes() {
        for o in Outcome::ALL {
            assert_eq!(prediction(o).is_some(), o.itr_detected(), "{o}");
        }
    }

    #[test]
    fn detect_prediction_is_confirmed_by_any_rollback() {
        assert!(confirms(Prediction::Detects, ActualOutcome::Recovered));
        assert!(confirms(Prediction::Detects, ActualOutcome::Fatal));
        assert!(!confirms(Prediction::Detects, ActualOutcome::FinishedClean));
        assert!(confirms(Prediction::FinishesClean, ActualOutcome::FinishedClean));
        assert!(!confirms(Prediction::FinishesClean, ActualOutcome::Recovered));
    }
}
