//! The recovery engine: run a fault under full active-mode ITR, and when
//! detection fires after the faulty instance committed, roll back to the
//! last §2.3 checkpoint and re-execute — classifying the *actual*
//! outcome against the fault-free architectural golden run.
//!
//! ## Rollback protocol
//!
//! 1. The active pipeline runs with the [`itr_core::CoarseCheckpointer`]
//!    enabled; every checkpoint it takes is logged as a
//!    [`CheckpointRecord`] (commit count + escaped-output length).
//! 2. On a machine check (or a watchdog deadlock), the engine picks the
//!    last logged checkpoint, reconstructs its architectural snapshot by
//!    replaying the committed prefix through [`crate::shadow`], and
//!    resumes a functional execution from it.
//! 3. The resumed run must reproduce the golden commit stream from the
//!    checkpoint onward, and the combined output (escaped prefix +
//!    re-executed suffix) must equal the golden output. Output that
//!    escaped *past* the checkpoint is re-emitted by the re-execution —
//!    recovery succeeded but is externally visible
//!    ([`ActualOutcome::RecoveredOutputLoss`]).
//!
//! ## Why checkpoints (mostly) predate the corruption
//!
//! A faulty *recorded* line sits unreferenced in the ITR cache from its
//! recording commit until the access that detects it, and
//! [`itr_core::CoarseCheckpointer::observe`] refuses to fire while any
//! unreferenced line is resident. Under the paper's *strict* condition
//! no checkpoint can therefore be taken between a faulty recording
//! commit and its machine check, so the rollback target predates the
//! corruption and re-execution is sound. But strict is also unavailable
//! in practice: any run-once trace (every program has a prologue) stays
//! unreferenced forever and blocks all checkpoints for the rest of the
//! run — measured zero opportunities on every workload in the suite.
//! The engine therefore defaults to *bounded wait*
//! ([`RecoverConfig::checkpoint_line_age`]): a line unreferenced for a
//! full age window stops blocking. A hot faulty line is still probed
//! (detected) long before it ages out, so the predate-the-corruption
//! property holds in the common case — and when it does not (the faulty
//! line itself ages out before a checkpoint and is only detected later),
//! the rollback target is corrupt and the engine reports the truth as
//! [`ActualOutcome::RollbackSdc`], measured — never silently. The
//! eviction path (the faulty line displaced unreferenced) likewise
//! surfaces as [`ActualOutcome::FinishedSdc`] or a measured
//! [`ActualOutcome::RollbackSdc`]. [`sound_violation`]'s INV1 is
//! conditioned on a golden-equal prefix, so it stays sound under both
//! policies.
//!
//! [`CheckpointRecord`]: itr_sim::CheckpointRecord

use crate::outcome::ActualOutcome;
use crate::shadow;
use itr_core::{ItrConfig, ItrMode};
use itr_faults::{FaultModel, Outcome};
use itr_isa::Program;
use itr_sim::{CommitRecord, FuncSim, Pipeline, PipelineConfig, RunExit, StopReason};

/// Commits a faulty run may make beyond the golden length before the
/// engine declares divergence and stops collecting.
const RECORD_SLACK: usize = 64;

/// Default bounded-wait age window, in ITR cache events (probes +
/// inserts). Hot-loop lines are re-referenced within one or two loop
/// iterations, so a line still unreferenced after this many trace
/// events has left the working set — a run-once prologue or epilogue —
/// and stops blocking checkpoints. Small enough that tiny kernels
/// regain availability; large enough that a faulty recorded line is
/// almost always probed (detected) before it ages out.
pub const BOUNDED_WAIT_AGE: u64 = 32;

/// The fault-free architectural reference a recovery run is judged
/// against.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The complete committed stream.
    pub records: Vec<CommitRecord>,
    /// The complete program output.
    pub output: String,
    /// The golden run committed `trap HALT` within its budget. Recovery
    /// classification is only meaningful when this holds (a truncated
    /// reference cannot distinguish recovery from divergence).
    pub halted: bool,
}

impl GoldenRun {
    /// Captures the golden run of `program` within `max_instrs`.
    pub fn capture(program: &Program, max_instrs: u64) -> GoldenRun {
        let mut sim = FuncSim::new(program);
        let (records, stop) = sim.run_collect(max_instrs);
        GoldenRun { records, output: sim.output().to_string(), halted: stop == StopReason::Halted }
    }
}

/// Parameters of one recovery-engine run.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// ITR configuration; the mode is forced to [`ItrMode::Active`].
    pub itr: ItrConfig,
    /// §2.3 checkpoint spacing in committed instructions
    /// (0 = checkpoint at every opportunity).
    pub checkpoint_min_gap: u64,
    /// Bounded-wait age window in ITR cache events, or `None` for the
    /// paper's strict no-unchecked-lines condition. Strict has zero
    /// availability on any program with a run-once trace (every real
    /// workload), so the engine defaults to [`BOUNDED_WAIT_AGE`] and
    /// the sweep measures both policies.
    pub checkpoint_line_age: Option<u64>,
    /// Cycle budget for the faulty run (rollback re-execution is
    /// functional and budgeted separately by the golden length).
    pub max_cycles: u64,
}

impl Default for RecoverConfig {
    fn default() -> RecoverConfig {
        RecoverConfig {
            itr: ItrConfig::paper_default(),
            checkpoint_min_gap: 1_024,
            checkpoint_line_age: Some(BOUNDED_WAIT_AGE),
            max_cycles: 2_000_000,
        }
    }
}

/// Everything the engine learned from one faulty run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRun {
    /// The ground-truth outcome.
    pub actual: ActualOutcome,
    /// Detection fired (machine check or watchdog deadlock).
    pub detected: bool,
    /// A rollback was attempted.
    pub rolled_back: bool,
    /// Commit count of the rollback target, when one existed.
    pub checkpoint_at: Option<u64>,
    /// Committed instructions discarded by the rollback.
    pub rollback_distance: u64,
    /// Checkpoints the run actually took.
    pub checkpoints_taken: u64,
    /// Checkpoint opportunities the run saw (no unchecked lines).
    pub opportunities: u64,
    /// Instructions the faulty run committed before its terminal state.
    pub committed: u64,
    /// Whether the rolled-back-to prefix matched the golden prefix
    /// (`None` when no rollback happened).
    pub prefix_clean: Option<bool>,
}

fn active_config(model: &FaultModel, cfg: &RecoverConfig) -> PipelineConfig {
    let mut pcfg = PipelineConfig {
        itr: Some(ItrConfig { mode: ItrMode::Active, ..cfg.itr }),
        checkpoint_min_gap: cfg.checkpoint_min_gap,
        checkpoint_line_age: cfg.checkpoint_line_age,
        spc_check: true,
        ..PipelineConfig::default()
    };
    model.inject_into(&mut pcfg);
    pcfg
}

/// Runs `model` under full active-mode recovery and classifies the true
/// outcome against `golden`.
pub fn run_recovery(
    program: &Program,
    model: &FaultModel,
    golden: &GoldenRun,
    cfg: &RecoverConfig,
) -> RecoveryRun {
    let mut pipe = Pipeline::new(program, active_config(model, cfg));
    let cap = golden.records.len() + RECORD_SLACK;
    let mut records: Vec<CommitRecord> = Vec::new();
    let exit = pipe.run_with(cfg.max_cycles, |r| {
        records.push(*r);
        records.len() < cap
    });
    classify_run(program, golden, &pipe, records, exit)
}

/// [`run_recovery`] under `itr-env`-style context switching: every
/// `switch_cycles` cycles the ITR cache is invalidated wholesale (the
/// incoming context evicts everything), including between a retry flush
/// and its machine check — the hostile window where a rollback target
/// may cover state the ITR cache can no longer vouch for.
pub fn run_recovery_with_switches(
    program: &Program,
    model: &FaultModel,
    golden: &GoldenRun,
    cfg: &RecoverConfig,
    switch_cycles: u64,
) -> RecoveryRun {
    assert!(switch_cycles > 0, "a zero switch quantum never runs");
    let mut pipe = Pipeline::new(program, active_config(model, cfg));
    let cap = golden.records.len() + RECORD_SLACK;
    let mut records: Vec<CommitRecord> = Vec::new();
    let exit = loop {
        let budget = (pipe.cycle() + switch_cycles).min(cfg.max_cycles);
        let exit = pipe.run_with(budget, |r| {
            records.push(*r);
            records.len() < cap
        });
        if exit != RunExit::CycleLimit || pipe.cycle() >= cfg.max_cycles {
            break exit;
        }
        if let Some(unit) = pipe.itr_mut() {
            unit.cache_mut().invalidate_all();
        }
    };
    classify_run(program, golden, &pipe, records, exit)
}

fn classify_run(
    program: &Program,
    golden: &GoldenRun,
    pipe: &Pipeline,
    records: Vec<CommitRecord>,
    exit: RunExit,
) -> RecoveryRun {
    let mut run = RecoveryRun {
        actual: ActualOutcome::Hung,
        detected: false,
        rolled_back: false,
        checkpoint_at: None,
        rollback_distance: 0,
        checkpoints_taken: pipe.checkpointer().checkpoints_taken(),
        opportunities: pipe.checkpointer().opportunities(),
        committed: records.len() as u64,
        prefix_clean: None,
    };
    match exit {
        RunExit::Halted | RunExit::Aborted(_) | RunExit::Stopped => {
            // `Stopped` means the record cap fired: the run already
            // committed more than the golden run plus slack, which the
            // equality below classifies as divergence.
            let clean = exit == RunExit::Halted
                && golden.halted
                && records == golden.records
                && pipe.output() == golden.output;
            run.actual =
                if clean { ActualOutcome::FinishedClean } else { ActualOutcome::FinishedSdc };
        }
        RunExit::CycleLimit => run.actual = ActualOutcome::Hung,
        RunExit::MachineCheck { .. } | RunExit::Deadlock => {
            run.detected = true;
            run.actual = rollback(program, golden, pipe, &records, &mut run);
        }
    }
    run
}

/// Rolls back to the last logged checkpoint and re-executes, returning
/// the ground-truth outcome.
fn rollback(
    program: &Program,
    golden: &GoldenRun,
    pipe: &Pipeline,
    records: &[CommitRecord],
    run: &mut RecoveryRun,
) -> ActualOutcome {
    let Some(ck) = pipe.checkpoint_log().last().copied() else {
        return ActualOutcome::Fatal;
    };
    let at = ck.committed as usize;
    assert!(at <= records.len(), "checkpoints only cover committed records");
    run.rolled_back = true;
    run.checkpoint_at = Some(ck.committed);
    run.rollback_distance = records.len() as u64 - ck.committed;
    let prefix_clean = at <= golden.records.len() && records[..at] == golden.records[..at];
    run.prefix_clean = Some(prefix_clean);
    if !prefix_clean {
        return ActualOutcome::RollbackSdc;
    }

    // Re-execute from the checkpoint and demand the exact golden suffix.
    let snap = shadow::snapshot_at(program, &records[..at]);
    let mut resumed = FuncSim::from_snapshot(program, &snap);
    let need = (golden.records.len() - at) as u64;
    let (suffix, stop) = resumed.run_collect(need + RECORD_SLACK as u64);
    let output_ok = pipe
        .output()
        .as_bytes()
        .get(..ck.output_len)
        .is_some_and(|escaped| golden.output.as_bytes().starts_with(escaped))
        && format!(
            "{}{}",
            &pipe.output()[..ck.output_len.min(pipe.output().len())],
            resumed.output()
        ) == golden.output;
    let recovered = suffix == golden.records[at..]
        && (stop == StopReason::Halted) == golden.halted
        && output_ok;
    if !recovered {
        // A clean-prefix rollback that fails to recover would falsify
        // determinism; INV1 in `sound_violation` flags it.
        return ActualOutcome::RollbackSdc;
    }
    if pipe.output().len() > ck.output_len {
        ActualOutcome::RecoveredOutputLoss
    } else {
        ActualOutcome::Recovered
    }
}

/// The sound predicted-vs-actual invariants the re-widened fuzz oracle
/// asserts (DESIGN.md §14). Returns a description of the violation, or
/// `None` when every invariant holds.
///
/// Soundness is gated on the caller's side: `passive` must come from a
/// classification whose golden stream covered the whole halting run, and
/// `INV2`/`INV-D` only hold for models with
/// [`FaultModel::active_recovery_sound`] (a re-striking fault can defeat
/// the retry, and a second logical fault can corrupt the prefix).
pub fn sound_violation(passive: Outcome, run: &RecoveryRun) -> Option<String> {
    // INV1 — a rollback to a prefix that matches the golden run MUST
    // recover: the resumed execution is deterministic from identical
    // architectural state. Holds for every model, re-striking or not
    // (the re-execution is functional and fault-free by construction).
    if run.rolled_back
        && run.prefix_clean == Some(true)
        && !matches!(run.actual, ActualOutcome::Recovered | ActualOutcome::RecoveredOutputLoss)
    {
        return Some(format!(
            "INV1: rollback to a golden-equal prefix at commit {:?} must recover, got {}",
            run.checkpoint_at, run.actual
        ));
    }
    // INV2 — passive ITR+SDC+R means the accessing instance was faulty
    // and still uncommitted: the active-mode retry refetches clean, so
    // the run finishes with the golden stream.
    if passive == Outcome::ItrSdcR && run.actual != ActualOutcome::FinishedClean {
        return Some(format!(
            "INV2: passive {} predicts a clean active finish, got {}",
            passive, run.actual
        ));
    }
    // INV-D — passive ITR+SDC+D means a faulty instance already
    // committed a corrupt record; active mode commits the same prefix,
    // so the active run can never finish clean.
    if passive == Outcome::ItrSdcD && run.actual == ActualOutcome::FinishedClean {
        return Some(format!(
            "INV-D: passive {} predicts detection or divergence, got a clean finish",
            passive
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_faults::{classify, observe_model, CampaignConfig, ModelKind, ModelPlan};
    use itr_isa::asm::assemble;
    use itr_sim::DecodeFault;
    use itr_stats::SplitMix64;
    use itr_workloads::kernels;

    fn golden_for(p: &Program) -> GoldenRun {
        let g = GoldenRun::capture(p, 400_000);
        assert!(g.halted, "test kernels halt");
        g
    }

    fn small_cfg() -> RecoverConfig {
        RecoverConfig { checkpoint_min_gap: 256, max_cycles: 4_000_000, ..RecoverConfig::default() }
    }

    #[test]
    fn fault_free_run_finishes_clean_and_takes_checkpoints() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let golden = golden_for(&p);
        // A never-striking fault: the run is architecturally fault-free.
        let model = FaultModel::Seu(DecodeFault { nth_decode: u64::MAX - 1, bit: 0 });
        let run = run_recovery(&p, &model, &golden, &small_cfg());
        assert_eq!(run.actual, ActualOutcome::FinishedClean);
        assert!(!run.detected);
        assert!(run.checkpoints_taken > 0, "a hot loop offers checkpoint opportunities");
        assert!(run.opportunities >= run.checkpoints_taken);
    }

    #[test]
    fn campaign_faults_classify_with_ground_truth_and_hold_the_invariants() {
        // CRC32 is the detection-rich kernel: record instances of its
        // table loop commit corrupt signatures that machine-check later.
        // (SUM_LOOP has so few distinct traces that sampled SEUs only
        // mask or retry clean — it never exercises rollback.)
        let p = assemble(kernels::CRC32.source).unwrap();
        let ccfg = CampaignConfig {
            faults: 120,
            window_cycles: 20_000,
            min_decode: 10,
            max_decode: 300,
            seed: 9,
            ..CampaignConfig::default()
        };
        let golden = golden_for(&p);
        let rcfg = small_cfg();
        let plan = ModelPlan::new(&p, ModelKind::Seu, &ccfg);
        let mut rollbacks = 0;
        for model in plan.models() {
            let (obs, _) = observe_model(&p, model, plan.golden(), ccfg.itr, ccfg.window_cycles);
            let passive = classify(&obs, plan.clean_signatures());
            let run = run_recovery(&p, model, &golden, &rcfg);
            if let Some(v) = sound_violation(passive, &run) {
                panic!("{model:?} (passive {passive}): {v}");
            }
            rollbacks += u32::from(run.rolled_back);
        }
        // The invariants must have had real rollbacks to bite on.
        assert!(rollbacks > 0, "120 early SEUs on crc32 include committed detections");
    }

    #[test]
    fn detected_committed_fault_rolls_back_and_recovers() {
        // Find an SEU whose active run machine-checks, and verify the
        // engine turns the abort into a ground-truth recovery.
        let p = assemble(kernels::CRC32.source).unwrap();
        let golden = golden_for(&p);
        let cfg = RecoverConfig { checkpoint_min_gap: 0, ..small_cfg() };
        let mut rng = SplitMix64::new(0x1712);
        let mut seen_recovery = false;
        for _ in 0..200 {
            let model = FaultModel::sample(ModelKind::Seu, &mut rng, 10, 300);
            let run = run_recovery(&p, &model, &golden, &cfg);
            if run.rolled_back && run.actual.golden_equivalent() {
                assert!(run.detected);
                assert!(run.checkpoint_at.is_some());
                seen_recovery = true;
                break;
            }
        }
        assert!(seen_recovery, "no rolled-back recovery in 200 sampled SEUs");
    }

    #[test]
    fn fatal_appears_exactly_when_no_checkpoint_exists() {
        // Under bounded wait the first checkpoint can only fire after a
        // full age window of cache events, so a very early detection is
        // honestly Fatal; any later detection must find the rollback
        // target. Both directions: Fatal ⟺ detected with zero
        // checkpoints taken.
        let p = assemble(kernels::CRC32.source).unwrap();
        let golden = golden_for(&p);
        let cfg = RecoverConfig { checkpoint_min_gap: 0, ..small_cfg() };
        let mut rng = SplitMix64::new(0x2007);
        let (mut detections, mut rollbacks) = (0, 0);
        for _ in 0..200 {
            let model = FaultModel::sample(ModelKind::Seu, &mut rng, 10, 300);
            let run = run_recovery(&p, &model, &golden, &cfg);
            if run.actual == ActualOutcome::Fatal {
                assert_eq!(run.checkpoints_taken, 0, "{model:?} aborted past a checkpoint");
            }
            if run.detected && run.checkpoints_taken > 0 {
                assert!(run.rolled_back, "{model:?} detected but ignored its checkpoint");
            }
            detections += u32::from(run.detected);
            rollbacks += u32::from(run.rolled_back);
        }
        assert!(detections > 0, "sampled faults must include detections");
        assert!(rollbacks > 0, "sampled faults must include rollbacks");
    }

    #[test]
    fn context_switch_runs_classify_every_model_kind() {
        let p = assemble(kernels::CRC32.source).unwrap();
        let golden = golden_for(&p);
        let cfg = small_cfg();
        let mut rng = SplitMix64::new(7);
        for kind in [ModelKind::Seu, ModelKind::Intermittent, ModelKind::BurstOnRetry] {
            let model = FaultModel::sample(kind, &mut rng, 100, 1_500);
            let run = run_recovery_with_switches(&p, &model, &golden, &cfg, 2_500);
            // The taxonomy is total; context switches must not wedge the
            // engine into an unclassifiable state.
            assert!(ActualOutcome::ALL.contains(&run.actual), "{kind:?}: {run:?}");
            if run.rolled_back && run.prefix_clean == Some(true) {
                assert!(run.actual.golden_equivalent(), "INV1 under switches: {run:?}");
            }
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let p = assemble(kernels::RLE_COMPRESS.source).unwrap();
        let golden = golden_for(&p);
        let cfg = small_cfg();
        let model = FaultModel::Seu(DecodeFault { nth_decode: 500, bit: 13 });
        let a = run_recovery(&p, &model, &golden, &cfg);
        let b = run_recovery(&p, &model, &golden, &cfg);
        assert_eq!(a, b);
    }
}
