//! # itr-recover — ground-truth checkpoint/rollback recovery (§2.3)
//!
//! The paper's recovery story rests on coarse-grain checkpoints taken
//! whenever the ITR cache holds no unchecked lines, plus retry-flush
//! re-execution. Since PR 1 the workspace has *predicted* active-mode
//! recovery from passive classifications (`itr-faults`), with the
//! predictions explicitly heuristic outside the `ITR+SDC+R` case. This
//! crate closes the gap with a real engine:
//!
//! * [`shadow`] reconstructs the full architectural snapshot behind any
//!   pipeline checkpoint by replaying the committed-record prefix —
//!   registers, sparse dirty-memory delta, resume PC — reusing the
//!   [`itr_sim::SimSnapshot`] machinery for the resume side.
//! * [`engine`] runs a fault under full active-mode ITR with the
//!   [`itr_core::CoarseCheckpointer`] logging every checkpoint taken;
//!   on a machine check (or watchdog deadlock) it rolls back to the
//!   last checkpoint, re-executes, and classifies the *actual* outcome
//!   ([`ActualOutcome`]) against the fault-free golden run.
//! * [`outcome`] maps the passive Figure-8 taxonomy onto its
//!   active-mode predictions so ground truth can confirm or correct
//!   them fault by fault, and [`sound_violation`] states the invariant
//!   subset that is sound enough for the `itr-fuzz` oracle to assert.
//! * [`sweep`] drives the checkpoint-spacing design sweep behind the
//!   `recover` repro job family: recovery coverage vs checkpoint cost
//!   across `min_gap` × fault model × workload, including the
//!   `itr-env` interaction scenarios (burst-during-retry faults and
//!   context-switch windows striking mid-rollback).
//!
//! Everything here is deterministic: no clocks, no hashes, no thread
//!-count dependence — the artifacts the sweep feeds are byte-identical
//! across `--jobs`.

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod engine;
pub mod outcome;
pub mod shadow;
pub mod sweep;

pub use engine::{
    run_recovery, run_recovery_with_switches, sound_violation, GoldenRun, RecoverConfig,
    RecoveryRun, BOUNDED_WAIT_AGE,
};
pub use outcome::{confirms, prediction, ActualOutcome, Prediction};
pub use shadow::{snapshot_at, ShadowArch};
pub use sweep::{sweep_kind, SweepCell};
