//! The ITR ROB: status of in-flight traces (§2.2).

use std::collections::VecDeque;
use std::fmt;

/// Index of an ITR ROB entry.
///
/// Implemented as a monotonically increasing trace sequence number so that
/// entries can be named before and after rollbacks without ambiguity. Each
/// in-flight instruction carries the sequence number of the trace it
/// belongs to; the paper achieves the same association by noting the ITR
/// ROB entry in each branch's checkpoint.
pub type ItrRobIndex = u64;

/// The `chk`/`miss`/`retry` control bits, in the one-hot encoding of §2.4:
///
/// * `0001` — none set (check still in progress),
/// * `0010` — `chk` and `retry` set (signature mismatch),
/// * `0100` — `chk` set, `retry` not set (signature confirmed),
/// * `1000` — `miss` set (no counterpart in the ITR cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlState {
    /// No bit set yet: the ITR cache read has not completed.
    NoneSet,
    /// Checked, mismatch: retry required.
    ChkRetry,
    /// Checked, match: commit may proceed.
    ChkOnly,
    /// Missed: write the signature at trace-end commit.
    Miss,
}

impl ControlState {
    /// One-hot encoding per §2.4.
    pub fn one_hot(self) -> u8 {
        match self {
            ControlState::NoneSet => 0b0001,
            ControlState::ChkRetry => 0b0010,
            ControlState::ChkOnly => 0b0100,
            ControlState::Miss => 0b1000,
        }
    }

    /// Decodes a one-hot value; `None` for invalid (multi-bit or zero)
    /// patterns, which a real implementation would treat as a detected
    /// fault on the control bits themselves.
    pub fn from_one_hot(bits: u8) -> Option<ControlState> {
        match bits {
            0b0001 => Some(ControlState::NoneSet),
            0b0010 => Some(ControlState::ChkRetry),
            0b0100 => Some(ControlState::ChkOnly),
            0b1000 => Some(ControlState::Miss),
            _ => None,
        }
    }
}

/// One in-flight trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItrRobEntry {
    /// Start PC of the trace.
    pub start_pc: u64,
    /// Signature generated at dispatch.
    pub signature: u64,
    /// Instruction count of the trace.
    pub len: u32,
    /// Check status.
    pub state: ControlState,
}

/// Error returned when pushing into a full ITR ROB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItrRobFull;

impl fmt::Display for ItrRobFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ITR ROB is full")
    }
}

impl std::error::Error for ItrRobFull {}

/// Circular buffer of in-flight trace records, freed in order at commit
/// and rolled back on branch mispredictions.
#[derive(Debug, Clone)]
pub struct ItrRob {
    entries: VecDeque<ItrRobEntry>,
    head_seq: ItrRobIndex,
    capacity: usize,
}

impl ItrRob {
    /// Creates an empty ITR ROB with room for `capacity` traces.
    pub fn new(capacity: u32) -> ItrRob {
        ItrRob {
            entries: VecDeque::with_capacity(capacity as usize),
            head_seq: 0,
            capacity: capacity as usize,
        }
    }

    /// Sequence number the *next* pushed trace will receive. In-flight
    /// instructions of the currently forming trace carry this value.
    pub fn next_seq(&self) -> ItrRobIndex {
        self.head_seq + self.entries.len() as u64
    }

    /// Sequence number of the oldest in-flight trace.
    pub fn head_seq(&self) -> ItrRobIndex {
        self.head_seq
    }

    /// Number of in-flight traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no traces are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when a new trace cannot be accepted.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends a completed trace.
    ///
    /// # Errors
    ///
    /// Returns [`ItrRobFull`] when at capacity (the pipeline must stall
    /// dispatch, exactly as it stalls on a full main ROB).
    pub fn push(&mut self, entry: ItrRobEntry) -> Result<ItrRobIndex, ItrRobFull> {
        if self.is_full() {
            return Err(ItrRobFull);
        }
        let seq = self.next_seq();
        self.entries.push_back(entry);
        Ok(seq)
    }

    /// Looks up an entry by sequence number; `None` if the trace has not
    /// been formed yet or was already freed/rolled back.
    pub fn get(&self, seq: ItrRobIndex) -> Option<&ItrRobEntry> {
        let off = seq.checked_sub(self.head_seq)?;
        self.entries.get(off as usize)
    }

    /// Mutable lookup by sequence number.
    pub fn get_mut(&mut self, seq: ItrRobIndex) -> Option<&mut ItrRobEntry> {
        let off = seq.checked_sub(self.head_seq)?;
        self.entries.get_mut(off as usize)
    }

    /// Finds the youngest in-flight entry for `start_pc` (used for
    /// ITR-ROB forwarding on a cache miss).
    pub fn find_latest(&self, start_pc: u64) -> Option<&ItrRobEntry> {
        self.entries.iter().rev().find(|e| e.start_pc == start_pc)
    }

    /// Like [`find_latest`](Self::find_latest), but only considers
    /// entries strictly older than `before_seq` (a delayed check must not
    /// forward from itself or from younger instances).
    pub fn find_latest_before(
        &self,
        start_pc: u64,
        before_seq: ItrRobIndex,
    ) -> Option<&ItrRobEntry> {
        let upto = before_seq.saturating_sub(self.head_seq).min(self.entries.len() as u64);
        self.entries.iter().take(upto as usize).rev().find(|e| e.start_pc == start_pc)
    }

    /// Frees the head entry (called when a trace-terminating instruction
    /// commits, §2.2).
    ///
    /// # Panics
    ///
    /// Panics if the ROB is empty.
    pub fn free_head(&mut self) -> ItrRobEntry {
        let e = self.entries.pop_front().expect("free_head on empty ITR ROB");
        self.head_seq += 1;
        e
    }

    /// Discards every entry with sequence number `>= seq` (branch
    /// misprediction rollback; the paper notes the ITR ROB entry in each
    /// branch checkpoint for this purpose).
    pub fn rollback_to(&mut self, seq: ItrRobIndex) {
        let keep = seq.saturating_sub(self.head_seq) as usize;
        self.entries.truncate(keep.min(self.entries.len()));
    }

    /// Discards all in-flight entries (full pipeline flush).
    pub fn clear(&mut self) {
        let n = self.entries.len() as u64;
        self.entries.clear();
        self.head_seq += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pc: u64) -> ItrRobEntry {
        ItrRobEntry { start_pc: pc, signature: pc * 3, len: 4, state: ControlState::NoneSet }
    }

    #[test]
    fn one_hot_round_trips() {
        for s in [
            ControlState::NoneSet,
            ControlState::ChkRetry,
            ControlState::ChkOnly,
            ControlState::Miss,
        ] {
            assert_eq!(ControlState::from_one_hot(s.one_hot()), Some(s));
            assert_eq!(s.one_hot().count_ones(), 1, "must be one-hot");
        }
    }

    #[test]
    fn invalid_one_hot_is_rejected() {
        assert_eq!(ControlState::from_one_hot(0b0011), None);
        assert_eq!(ControlState::from_one_hot(0), None);
        assert_eq!(ControlState::from_one_hot(0b10000), None);
    }

    #[test]
    fn push_get_free_in_order() {
        let mut rob = ItrRob::new(4);
        let a = rob.push(entry(0x100)).unwrap();
        let b = rob.push(entry(0x200)).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(rob.get(a).unwrap().start_pc, 0x100);
        assert_eq!(rob.free_head().start_pc, 0x100);
        assert_eq!(rob.get(a), None, "freed entry is gone");
        assert_eq!(rob.get(b).unwrap().start_pc, 0x200);
        assert_eq!(rob.head_seq(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut rob = ItrRob::new(2);
        rob.push(entry(1)).unwrap();
        rob.push(entry(2)).unwrap();
        assert!(rob.is_full());
        assert_eq!(rob.push(entry(3)), Err(ItrRobFull));
        rob.free_head();
        assert!(rob.push(entry(3)).is_ok());
    }

    #[test]
    fn rollback_discards_younger_traces() {
        let mut rob = ItrRob::new(8);
        for i in 0..5u64 {
            rob.push(entry(0x100 * (i + 1))).unwrap();
        }
        rob.rollback_to(2);
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.next_seq(), 2);
        assert!(rob.get(2).is_none());
        assert_eq!(rob.get(1).unwrap().start_pc, 0x200);
        // Pushing after rollback reuses the sequence numbers.
        let seq = rob.push(entry(0x999)).unwrap();
        assert_eq!(seq, 2);
    }

    #[test]
    fn clear_advances_head_past_all() {
        let mut rob = ItrRob::new(8);
        rob.push(entry(1)).unwrap();
        rob.push(entry(2)).unwrap();
        rob.clear();
        assert!(rob.is_empty());
        assert_eq!(rob.next_seq(), 2);
        assert_eq!(rob.get(0), None);
    }

    #[test]
    fn get_mut_updates_state() {
        let mut rob = ItrRob::new(2);
        let seq = rob.push(entry(0x100)).unwrap();
        rob.get_mut(seq).unwrap().state = ControlState::Miss;
        assert_eq!(rob.get(seq).unwrap().state, ControlState::Miss);
    }
}
