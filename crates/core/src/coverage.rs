//! Trace-stream coverage evaluation (§3 of the paper, Figures 6 and 7).
//!
//! Feeds a committed trace stream through an [`ItrCache`] and accounts the
//! two coverage-loss metrics:
//!
//! * **recovery-coverage loss** — instructions in traces that *missed* in
//!   the ITR cache: a fault there is detected only by the next instance,
//!   after architectural state is already corrupted;
//! * **detection-coverage loss** — instructions in missed instances whose
//!   cache line is *evicted before ever being referenced*: a fault there is
//!   never detected at all.
//!
//! The paper stresses these are not conventional miss rates: both are
//! weighted by per-trace instruction counts, and detection loss counts
//! evictions, not misses.

use crate::config::ItrCacheConfig;
use crate::itr_cache::{ItrCache, ProbeResult};
use crate::signature::TraceRecord;
use itr_stats::{Counter, Counters, Report, Unit as StatUnit};

/// Evaluates coverage loss for one ITR cache configuration. Counters are
/// kept in an `itr-stats` registry (see [`CoverageModel::export`]).
#[derive(Debug, Clone)]
pub struct CoverageModel {
    cache: ItrCache,
    counters: Counters,
    total_instrs: Counter,
    total_traces: Counter,
    recovery_loss_instrs: Counter,
    detection_loss_instrs: Counter,
    mismatches: Counter,
}

/// Coverage result for one configuration (one bar of Figures 6/7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Dynamic instructions observed.
    pub total_instrs: u64,
    /// Dynamic traces observed.
    pub total_traces: u64,
    /// Instructions in missed traces.
    pub recovery_loss_instrs: u64,
    /// Instructions in unreferenced-evicted instances.
    pub detection_loss_instrs: u64,
    /// Signature mismatches (0 in fault-free runs; a non-zero value in a
    /// fault-free run would indicate a modelling bug).
    pub mismatches: u64,
}

impl CoverageReport {
    /// Loss in fault detection coverage, % of all dynamic instructions
    /// (Figure 6's y-axis).
    pub fn detection_loss_pct(&self) -> f64 {
        percentage(self.detection_loss_instrs, self.total_instrs)
    }

    /// Loss in fault recovery coverage, % of all dynamic instructions
    /// (Figure 7's y-axis).
    pub fn recovery_loss_pct(&self) -> f64 {
        percentage(self.recovery_loss_instrs, self.total_instrs)
    }
}

impl std::fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} traces / {} instrs: detection loss {:.2}%, recovery loss {:.2}%",
            self.total_traces,
            self.total_instrs,
            self.detection_loss_pct(),
            self.recovery_loss_pct()
        )
    }
}

fn percentage(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

impl CoverageModel {
    /// Creates a model around an empty cache of the given configuration.
    pub fn new(config: ItrCacheConfig) -> CoverageModel {
        let mut c = Counters::new();
        let total_instrs =
            c.register("total_instrs", StatUnit::Instructions, "dynamic instructions observed");
        let total_traces = c.register("total_traces", StatUnit::Traces, "dynamic traces observed");
        let recovery_loss_instrs = c.register(
            "recovery_loss_instrs",
            StatUnit::Instructions,
            "instructions in missed traces (Figure 7)",
        );
        let detection_loss_instrs = c.register(
            "detection_loss_instrs",
            StatUnit::Instructions,
            "instructions in unreferenced-evicted instances (Figure 6)",
        );
        let mismatches =
            c.register("mismatches", StatUnit::Events, "signature mismatches (0 fault-free)");
        CoverageModel {
            cache: ItrCache::new(config),
            counters: c,
            total_instrs,
            total_traces,
            recovery_loss_instrs,
            detection_loss_instrs,
            mismatches,
        }
    }

    /// Feeds one committed trace.
    pub fn observe(&mut self, trace: &TraceRecord) {
        self.counters.inc(self.total_traces);
        self.counters.add(self.total_instrs, trace.len as u64);
        match self.cache.probe(trace.start_pc) {
            ProbeResult::Hit { signature, .. } => {
                if signature != trace.signature {
                    self.counters.inc(self.mismatches);
                }
            }
            ProbeResult::Miss => {
                self.counters.add(self.recovery_loss_instrs, trace.len as u64);
                if let Some(ev) = self.cache.insert(trace.start_pc, trace.signature, trace.len) {
                    if ev.unreferenced {
                        self.counters.add(self.detection_loss_instrs, ev.len_at_insert as u64);
                    }
                }
            }
        }
    }

    /// The underlying cache (e.g. for inspecting end-of-run occupancy).
    pub fn cache(&self) -> &ItrCache {
        &self.cache
    }

    /// Produces the report. Lines still resident and unreferenced at the
    /// end of the run are *not* counted as detection loss, matching the
    /// paper (they may still be referenced in the future).
    pub fn report(&self) -> CoverageReport {
        let g = |c| self.counters.get(c);
        CoverageReport {
            total_instrs: g(self.total_instrs),
            total_traces: g(self.total_traces),
            recovery_loss_instrs: g(self.recovery_loss_instrs),
            detection_loss_instrs: g(self.detection_loss_instrs),
            mismatches: g(self.mismatches),
        }
    }

    /// Appends the `coverage` and `itr_cache` sections to an `itr-stats`
    /// report.
    pub fn export(&self, report: &mut Report) {
        report.push_section("coverage", &self.counters, &[]);
        self.cache.export(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;

    fn trace(pc: u64, len: u32) -> TraceRecord {
        TraceRecord { start_pc: pc, signature: pc.wrapping_mul(0x9E37_79B9), len }
    }

    #[test]
    fn report_display_is_informative() {
        let mut m = CoverageModel::new(ItrCacheConfig::new(64, Associativity::Ways(2)));
        m.observe(&trace(0x100, 8));
        let text = m.report().to_string();
        assert!(text.contains("recovery loss"));
        assert!(text.contains("1 traces"));
    }

    #[test]
    fn tight_loop_has_negligible_loss() {
        let mut m = CoverageModel::new(ItrCacheConfig::new(256, Associativity::Ways(2)));
        for _ in 0..10_000 {
            m.observe(&trace(0x100, 10));
        }
        let r = m.report();
        assert_eq!(r.recovery_loss_instrs, 10, "only the cold miss");
        assert_eq!(r.detection_loss_instrs, 0);
        assert!(r.recovery_loss_pct() < 0.02);
    }

    #[test]
    fn working_set_larger_than_cache_loses_recovery_coverage() {
        // 8-entry cache, 16-trace round-robin: every access misses.
        let mut m = CoverageModel::new(ItrCacheConfig::new(8, Associativity::Full));
        for round in 0..100 {
            for i in 0..16u64 {
                let _ = round;
                m.observe(&trace(0x1000 + i * 64, 8));
            }
        }
        let r = m.report();
        assert!(r.recovery_loss_pct() > 99.0, "thrashing: all misses");
        // Every eviction displaces an unreferenced line -> detection loss
        // approaches 100% too (minus the lines still resident at the end).
        assert!(r.detection_loss_pct() > 95.0);
    }

    #[test]
    fn detection_loss_is_never_above_recovery_loss() {
        // Mixed stream: hot loop + cold sweep.
        let mut m = CoverageModel::new(ItrCacheConfig::new(16, Associativity::Ways(4)));
        for i in 0..5_000u64 {
            m.observe(&trace(0x100 + (i % 4) * 64, 12));
            if i % 7 == 0 {
                m.observe(&trace(0x10_000 + (i * 64) % 8192, 6));
            }
        }
        let r = m.report();
        assert!(r.detection_loss_instrs <= r.recovery_loss_instrs);
        assert_eq!(r.mismatches, 0, "fault-free stream never mismatches");
    }

    #[test]
    fn resident_unreferenced_lines_are_not_detection_loss() {
        let mut m = CoverageModel::new(ItrCacheConfig::new(64, Associativity::Full));
        // 10 distinct traces, each seen once: all miss, none evicted.
        for i in 0..10u64 {
            m.observe(&trace(0x100 + i * 64, 4));
        }
        let r = m.report();
        assert_eq!(r.recovery_loss_instrs, 40);
        assert_eq!(r.detection_loss_instrs, 0);
    }

    #[test]
    fn bigger_cache_reduces_loss() {
        // 52-byte spacing (13 words) is co-prime with every power-of-two
        // set count, so the 600 traces spread over all sets.
        let stream: Vec<TraceRecord> =
            (0..20_000u64).map(|i| trace(0x1000 + (i % 600) * 52, 8)).collect();
        let mut small = CoverageModel::new(ItrCacheConfig::new(256, Associativity::Ways(2)));
        let mut large = CoverageModel::new(ItrCacheConfig::new(1024, Associativity::Ways(2)));
        for t in &stream {
            small.observe(t);
            large.observe(t);
        }
        assert!(
            large.report().recovery_loss_pct() < small.report().recovery_loss_pct(),
            "1024 entries must beat 256 on a 600-trace working set"
        );
    }
}
