//! Coarse-grain checkpointing hook (§2.3 of the paper).
//!
//! Recovery coverage can be extended beyond the lightweight flush-restart
//! by taking a coarse-grain architectural checkpoint whenever the ITR
//! cache holds *no unchecked (unreferenced) lines* — at that instant every
//! recorded signature has been confirmed, so the checkpoint is known
//! fault-free with respect to the frontend. When a fault is later detected
//! on a trace whose faulty instance already committed, the processor can
//! roll back to the checkpoint instead of aborting.
//!
//! This type tracks checkpoint *opportunities*; the host simulator decides
//! what state to snapshot.

/// Tracks when a coarse-grain checkpoint may safely be taken and how far
/// back a rollback would reach.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoarseCheckpointer {
    /// Minimum committed-instruction gap between checkpoints, to model the
    /// cost of checkpointing (0 = checkpoint at every opportunity).
    min_gap: u64,
    last_checkpoint_at: Option<u64>,
    checkpoints_taken: u64,
    opportunities: u64,
}

impl CoarseCheckpointer {
    /// Creates a checkpointer with the given minimum spacing (in committed
    /// instructions).
    pub fn new(min_gap: u64) -> CoarseCheckpointer {
        CoarseCheckpointer { min_gap, ..CoarseCheckpointer::default() }
    }

    /// Reports the current state; returns `true` when a checkpoint should
    /// be taken now.
    ///
    /// * `unreferenced_lines` — from
    ///   [`ItrCache::unreferenced_count`](crate::ItrCache::unreferenced_count),
    /// * `committed_instrs` — the host's committed-instruction counter.
    pub fn observe(&mut self, unreferenced_lines: u64, committed_instrs: u64) -> bool {
        if unreferenced_lines != 0 {
            return false;
        }
        self.opportunities += 1;
        let due = match self.last_checkpoint_at {
            None => true,
            Some(at) => committed_instrs.saturating_sub(at) >= self.min_gap,
        };
        if due {
            self.last_checkpoint_at = Some(committed_instrs);
            self.checkpoints_taken += 1;
        }
        due
    }

    /// Committed-instruction count at the most recent checkpoint.
    pub fn last_checkpoint_at(&self) -> Option<u64> {
        self.last_checkpoint_at
    }

    /// Checkpoints actually taken.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Cycles in which a checkpoint *could* have been taken (no unchecked
    /// lines resident).
    pub fn opportunities(&self) -> u64 {
        self.opportunities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_checkpoint_while_unchecked_lines_exist() {
        let mut c = CoarseCheckpointer::new(0);
        assert!(!c.observe(3, 100));
        assert_eq!(c.checkpoints_taken(), 0);
    }

    #[test]
    fn checkpoint_at_every_opportunity_with_zero_gap() {
        let mut c = CoarseCheckpointer::new(0);
        assert!(c.observe(0, 100));
        assert!(c.observe(0, 101));
        assert_eq!(c.checkpoints_taken(), 2);
    }

    #[test]
    fn min_gap_spaces_checkpoints() {
        let mut c = CoarseCheckpointer::new(1000);
        assert!(c.observe(0, 100));
        assert!(!c.observe(0, 500));
        assert!(c.observe(0, 1100));
        assert_eq!(c.checkpoints_taken(), 2);
        assert_eq!(c.last_checkpoint_at(), Some(1100));
        assert_eq!(c.opportunities(), 3);
    }

    #[test]
    fn gap_boundary_is_inclusive() {
        // A gap of exactly `min_gap` is due; one instruction less is not.
        let mut c = CoarseCheckpointer::new(1000);
        assert!(c.observe(0, 100));
        assert!(!c.observe(0, 1099)); // gap 999 < 1000: blocked
        assert!(c.observe(0, 1100)); // gap exactly 1000: taken
        assert_eq!(c.checkpoints_taken(), 2);
        assert_eq!(c.last_checkpoint_at(), Some(1100));
    }

    #[test]
    fn blocked_opportunities_are_still_counted() {
        // Opportunities count §2.3-safe instants whether or not min_gap
        // lets the checkpoint happen; unchecked-line instants never count.
        let mut c = CoarseCheckpointer::new(u64::MAX);
        assert!(!c.observe(5, 10));
        assert!(c.observe(0, 20)); // first checkpoint is always due
        assert!(!c.observe(0, 30));
        assert!(!c.observe(0, 40));
        assert_eq!(c.opportunities(), 3);
        assert_eq!(c.checkpoints_taken(), 1);
        assert_eq!(c.last_checkpoint_at(), Some(20));
    }

    #[test]
    fn first_checkpoint_at_commit_zero_anchors_the_gap() {
        // Committed-instruction zero is a valid checkpoint position and
        // subsequent spacing is measured from it, not from "no checkpoint".
        let mut c = CoarseCheckpointer::new(100);
        assert!(c.observe(0, 0));
        assert_eq!(c.last_checkpoint_at(), Some(0));
        assert!(!c.observe(0, 99));
        assert!(c.observe(0, 100));
        assert_eq!(c.checkpoints_taken(), 2);
    }
}
