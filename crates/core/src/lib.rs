//! # itr-core — Inherent Time Redundancy
//!
//! The primary contribution of the DSN 2007 paper *"Inherent Time
//! Redundancy (ITR): Using Program Repetition for Low-Overhead Fault
//! Tolerance"* (Reddy & Rotenberg): detect transient faults in a
//! processor's fetch and decode units by recording and confirming
//! microarchitectural events that depend only on the program's
//! instructions.
//!
//! Programs re-execute the same static instruction *traces* (sequences
//! terminated by a branching instruction or a 16-instruction limit) at
//! short dynamic distances. The decode-unit output signals of a trace are
//! XOR-folded into a 64-bit *signature* ([`SignatureGen`]); signatures are
//! stored in a small PC-indexed [`ItrCache`] and compared each time the
//! trace recurs. A mismatch indicates a transient fault in the fetch or
//! decode unit of either the current or the recorded instance; a pipeline
//! flush and re-execution (*retry*) disambiguates the two and selects
//! between lightweight recovery and a machine-check abort.
//!
//! ## Components
//!
//! * [`SignatureGen`] / [`TraceBuilder`] — signature generation (§2.1),
//! * [`ItrRob`] — in-flight trace status with `chk`/`miss`/`retry` bits
//!   and the one-hot encoding of §2.4 (§2.2),
//! * [`ItrCache`] — the signature cache with LRU replacement, optional
//!   parity protection and optional checked-bit-aware replacement (§2.2,
//!   §2.3, §2.4),
//! * [`ItrUnit`] — the controller that a pipeline embeds: dispatch-side
//!   trace formation and cache probing, commit-side interlock, retry and
//!   machine-check decisions (§2.2),
//! * [`SequentialPcChecker`] — the retirement-PC (`spc`) check of §2.5,
//! * [`Watchdog`] — the deadlock watchdog (`wdog`) used in §4,
//! * [`CoverageModel`] — trace-stream evaluation of fault detection /
//!   recovery coverage loss (§3, Figs. 6 and 7),
//! * [`CoarseCheckpointer`] — the coarse-grain checkpointing hook of §2.3,
//! * [`tap`] / [`replay`] — the `itr-tap/v1` decode-signal stream and
//!   its replay engine: record one simulation, fan it out to N design
//!   points with byte-identical results.
//!
//! ## Example
//!
//! ```
//! use itr_core::{ItrCacheConfig, Associativity, CoverageModel, TraceRecord};
//!
//! // Evaluate coverage loss of a 2-way, 1024-entry ITR cache over a tiny
//! // synthetic trace stream that alternates between two traces.
//! let config = ItrCacheConfig::new(1024, Associativity::Ways(2));
//! let mut model = CoverageModel::new(config);
//! for i in 0..100u64 {
//!     let start_pc = 0x400 + (i % 2) * 64;
//!     model.observe(&TraceRecord { start_pc, signature: start_pc * 7, len: 8 });
//! }
//! let report = model.report();
//! assert!(report.detection_loss_pct() < 1.0);
//! ```

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod checkpoint;
mod config;
mod coverage;
mod itr_cache;
mod itr_rob;
pub mod replay;
mod signature;
mod spc;
pub mod tap;
mod unit;
mod watchdog;

pub use checkpoint::CoarseCheckpointer;
pub use config::{Associativity, ItrCacheConfig, ItrConfig, ItrMode};
pub use coverage::{CoverageModel, CoverageReport};
pub use itr_cache::{CacheStats, Eviction, FlushSummary, ItrCache, ProbeResult};
pub use itr_rob::{ControlState, ItrRob, ItrRobEntry, ItrRobFull, ItrRobIndex};
pub use replay::{fan_out_records, replay_units, TapReplayer, TraceReplay};
pub use signature::{FoldKind, SignatureGen, TraceBuilder, TraceRecord, MAX_TRACE_LEN};
pub use spc::SequentialPcChecker;
pub use tap::{TapEvent, TapStream, TAP_VERSION};
pub use unit::{CommitAction, DispatchResult, ItrEvent, ItrSnapshot, ItrUnit, UnitStats};
pub use watchdog::Watchdog;
