//! The ITR cache: a small, PC-indexed store of trace signatures (§2.2).

use crate::config::ItrCacheConfig;
use itr_stats::{Counter, Counters, Report, Unit as StatUnit};

/// One signature line.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    /// Full start PC of the trace (used as the tag).
    start_pc: u64,
    signature: u64,
    /// Stored parity of the signature (§2.4 protection).
    parity: bool,
    /// Set once any later instance has read this line ("referenced"):
    /// eviction of an unreferenced line is a loss of *detection* coverage.
    referenced: bool,
    /// Set once the line has been used in a check — the candidate bit for
    /// the checked-bit-aware replacement policy sketched in §2.3.
    checked: bool,
    /// Dynamic instructions in the instance that inserted this line;
    /// coverage loss is measured in instructions (§3).
    len_at_insert: u32,
    /// LRU timestamp.
    last_use: u64,
}

/// Result of probing the cache at trace dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The trace's signature was found.
    Hit {
        /// The stored signature to compare against.
        signature: u64,
        /// `false` if the stored parity no longer matches the stored
        /// signature — i.e. the ITR cache itself took a fault (§2.4).
        parity_ok: bool,
    },
    /// No counterpart recorded; the trace's own signature will be written
    /// at commit.
    Miss,
}

/// Description of a line displaced by an insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Start PC of the displaced trace.
    pub start_pc: u64,
    /// `true` if the line was never referenced after its insert — a loss
    /// of fault-detection coverage for its instructions (§2.3).
    pub unreferenced: bool,
    /// Instruction count of the instance that inserted the displaced line.
    pub len_at_insert: u32,
}

/// What one whole-cache flush ([`ItrCache::invalidate_all`]) discarded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushSummary {
    /// Valid lines invalidated.
    pub lines: u64,
    /// Invalidated lines that were never referenced — each one a loss of
    /// detection coverage.
    pub unreferenced_lines: u64,
    /// Dynamic instructions of the inserting instances behind those
    /// unreferenced lines (the §3 detection-loss measure).
    pub unreferenced_instrs: u64,
}

/// Running access statistics (a point-in-time snapshot; the live values
/// are kept in an `itr-stats` counter registry — see [`ItrCache::export`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probe count (one per dispatched trace).
    pub reads: u64,
    /// Insert/update count (one per missed trace at commit).
    pub writes: u64,
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Valid lines displaced by inserts.
    pub evictions: u64,
    /// Displaced lines that were never referenced.
    pub evictions_unreferenced: u64,
}

/// Counter registry + handles for one cache instance.
#[derive(Debug, Clone)]
struct CacheMetrics {
    counters: Counters,
    reads: Counter,
    writes: Counter,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    evictions_unreferenced: Counter,
}

impl CacheMetrics {
    fn new() -> CacheMetrics {
        let mut c = Counters::new();
        let reads = c.register("reads", StatUnit::Accesses, "probes (one per dispatched trace)");
        let writes =
            c.register("writes", StatUnit::Accesses, "inserts (one per missed trace at commit)");
        let hits = c.register("hits", StatUnit::Accesses, "probe hits");
        let misses = c.register("misses", StatUnit::Accesses, "probe misses");
        let evictions = c.register("evictions", StatUnit::Events, "valid lines displaced");
        let evictions_unreferenced = c.register(
            "evictions_unreferenced",
            StatUnit::Events,
            "displaced lines never referenced (§2.3 detection loss)",
        );
        CacheMetrics { counters: c, reads, writes, hits, misses, evictions, evictions_unreferenced }
    }

    fn snapshot(&self) -> CacheStats {
        let g = |c| self.counters.get(c);
        CacheStats {
            reads: g(self.reads),
            writes: g(self.writes),
            hits: g(self.hits),
            misses: g(self.misses),
            evictions: g(self.evictions),
            evictions_unreferenced: g(self.evictions_unreferenced),
        }
    }
}

/// The ITR cache (§2.2): stores signatures of previously executed traces,
/// indexed by trace start PC, with LRU replacement.
///
/// The key property (§1) is that a *miss* does not directly forfeit fault
/// detection — the missed instance's signature is inserted and a future hit
/// checks both instances at once. Only the eviction of a line that was
/// never referenced loses detection coverage.
///
/// # Example
///
/// ```
/// use itr_core::{Associativity, ItrCache, ItrCacheConfig, ProbeResult};
///
/// let mut cache = ItrCache::new(ItrCacheConfig::new(256, Associativity::Ways(2)));
/// assert_eq!(cache.probe(0x400), ProbeResult::Miss);
/// cache.insert(0x400, 0xDEAD_BEEF, 8);
/// match cache.probe(0x400) {
///     ProbeResult::Hit { signature, parity_ok } => {
///         assert_eq!(signature, 0xDEAD_BEEF);
///         assert!(parity_ok);
///     }
///     ProbeResult::Miss => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ItrCache {
    config: ItrCacheConfig,
    /// `sets * ways` lines, row-major by set.
    lines: Vec<Line>,
    metrics: CacheMetrics,
    tick: u64,
    /// Valid lines never referenced since insertion (maintained
    /// incrementally so the §2.3 checkpointing query is O(1)).
    unreferenced: u64,
}

impl ItrCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: ItrCacheConfig) -> ItrCache {
        ItrCache {
            config,
            lines: vec![Line::default(); config.entries as usize],
            metrics: CacheMetrics::new(),
            tick: 0,
            unreferenced: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &ItrCacheConfig {
        &self.config
    }

    /// Access statistics since construction (or the last [`reset_stats`]),
    /// as a point-in-time snapshot.
    ///
    /// [`reset_stats`]: ItrCache::reset_stats
    pub fn stats(&self) -> CacheStats {
        self.metrics.snapshot()
    }

    /// Clears the statistics counters (the contents stay).
    pub fn reset_stats(&mut self) {
        self.metrics.counters.reset();
    }

    /// Appends the `itr_cache` section to an `itr-stats` report.
    pub fn export(&self, report: &mut Report) {
        report.push_section("itr_cache", &self.metrics.counters, &[]);
    }

    fn set_of(&self, start_pc: u64) -> usize {
        self.config.set_index(start_pc) as usize
    }

    fn set_range(&self, start_pc: u64) -> std::ops::Range<usize> {
        let ways = self.config.ways() as usize;
        let base = self.set_of(start_pc) * ways;
        base..base + ways
    }

    fn parity_of(signature: u64) -> bool {
        signature.count_ones() % 2 == 1
    }

    /// Probes for `start_pc`'s signature, as done when a trace is
    /// dispatched. A hit marks the line referenced and checked.
    pub fn probe(&mut self, start_pc: u64) -> ProbeResult {
        self.metrics.counters.inc(self.metrics.reads);
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(start_pc);
        for line in &mut self.lines[range] {
            if line.valid && line.start_pc == start_pc {
                if !line.referenced {
                    self.unreferenced -= 1;
                }
                line.referenced = true;
                line.checked = true;
                line.last_use = tick;
                self.metrics.counters.inc(self.metrics.hits);
                return ProbeResult::Hit {
                    signature: line.signature,
                    parity_ok: line.parity == Self::parity_of(line.signature),
                };
            }
        }
        self.metrics.counters.inc(self.metrics.misses);
        ProbeResult::Miss
    }

    /// Reads a stored signature without touching LRU/reference state.
    pub fn peek(&self, start_pc: u64) -> Option<u64> {
        self.lines[self.set_range(start_pc)]
            .iter()
            .find(|l| l.valid && l.start_pc == start_pc)
            .map(|l| l.signature)
    }

    /// `true` if the line for `start_pc` is present but has never been
    /// referenced since insertion (an "unchecked" line in §2.3's terms).
    pub fn is_unreferenced(&self, start_pc: u64) -> bool {
        self.lines[self.set_range(start_pc)]
            .iter()
            .any(|l| l.valid && l.start_pc == start_pc && !l.referenced)
    }

    /// Number of valid lines that have not yet been referenced — the
    /// quantity tracked by the coarse-grain checkpointing scheme of §2.3.
    /// Maintained incrementally; O(1).
    pub fn unreferenced_count(&self) -> u64 {
        debug_assert_eq!(
            self.unreferenced,
            self.lines.iter().filter(|l| l.valid && !l.referenced).count() as u64
        );
        self.unreferenced
    }

    /// Number of valid unreferenced lines inserted within the last
    /// `max_age` cache events (probes + inserts) — the *young* unchecked
    /// lines of the bounded-wait checkpoint policy.
    ///
    /// The strict §2.3 condition ([`unreferenced_count`]) never fires in
    /// a program with any run-once trace: the prologue's line stays
    /// unreferenced forever and blocks every checkpoint. Bounded wait
    /// lets a line that has sat unreferenced for a full age window stop
    /// blocking — it has demonstrably left the working set, so the next
    /// probe that could check it is not imminent. The price is that such
    /// a line may still hold committed corruption, making a checkpoint
    /// over a corrupt prefix possible (measured by the recovery engine
    /// as `rollback-sdc`, never silently).
    ///
    /// An unreferenced line's `last_use` is its insertion tick (only a
    /// probe hit updates `last_use`, and that also marks it referenced),
    /// so age falls out of the existing LRU state. O(lines).
    ///
    /// [`unreferenced_count`]: ItrCache::unreferenced_count
    pub fn unreferenced_young_count(&self, max_age: u64) -> u64 {
        self.lines
            .iter()
            .filter(|l| l.valid && !l.referenced && self.tick - l.last_use < max_age)
            .count() as u64
    }

    /// Inserts (or overwrites) the signature of a missed trace, as done
    /// when its trace-ending instruction commits. Returns the displaced
    /// line, if a valid one was evicted.
    pub fn insert(&mut self, start_pc: u64, signature: u64, len: u32) -> Option<Eviction> {
        self.metrics.counters.inc(self.metrics.writes);
        self.tick += 1;
        let tick = self.tick;
        let checked_pref = self.config.checked_bit_replacement && self.config.ways() > 1;
        let range = self.set_range(start_pc);
        let set = &mut self.lines[range];

        // Same-tag overwrite (retry/parity-repair path) or invalid way.
        let mut victim = None;
        for (i, line) in set.iter().enumerate() {
            if line.valid && line.start_pc == start_pc {
                victim = Some(i);
                break;
            }
        }
        if victim.is_none() {
            victim = set.iter().position(|l| !l.valid);
        }
        let victim = victim.unwrap_or_else(|| {
            // LRU, optionally preferring already-checked lines (§2.3).
            // Falls back to plain LRU when no way is checked yet.
            let candidates: Vec<usize> = if checked_pref {
                let checked: Vec<usize> = (0..set.len()).filter(|&i| set[i].checked).collect();
                if checked.is_empty() {
                    (0..set.len()).collect()
                } else {
                    checked
                }
            } else {
                (0..set.len()).collect()
            };
            candidates.into_iter().min_by_key(|&i| set[i].last_use).expect("non-empty set")
        });

        let old = set[victim];
        if old.valid && !old.referenced {
            self.unreferenced -= 1;
        }
        self.unreferenced += 1; // the new line starts unreferenced
        let evicted = if old.valid && old.start_pc != start_pc {
            self.metrics.counters.inc(self.metrics.evictions);
            if !old.referenced {
                self.metrics.counters.inc(self.metrics.evictions_unreferenced);
            }
            Some(Eviction {
                start_pc: old.start_pc,
                unreferenced: !old.referenced,
                len_at_insert: old.len_at_insert,
            })
        } else {
            None
        };
        set[victim] = Line {
            valid: true,
            start_pc,
            signature,
            parity: Self::parity_of(signature),
            referenced: false,
            checked: false,
            len_at_insert: len,
            last_use: tick,
        };
        evicted
    }

    /// Invalidates the line for `start_pc` (the §2.4 repair path when a
    /// parity error shows the cache copy itself is faulty).
    pub fn invalidate(&mut self, start_pc: u64) {
        let range = self.set_range(start_pc);
        for line in &mut self.lines[range] {
            if line.valid && line.start_pc == start_pc {
                if !line.referenced {
                    self.unreferenced -= 1;
                }
                line.valid = false;
            }
        }
    }

    /// Invalidates every line — a context-switch flush (the hostile-
    /// environment "flush-on-switch" policy, where the OS clears the ITR
    /// cache rather than let the next program's traces alias into stale
    /// signatures). Returns what the flush cost: evicting a line that was
    /// never referenced forfeits detection coverage for the instructions
    /// of the instance that inserted it, exactly like a capacity
    /// eviction (§2.3).
    pub fn invalidate_all(&mut self) -> FlushSummary {
        let mut summary = FlushSummary::default();
        for line in &mut self.lines {
            if line.valid {
                summary.lines += 1;
                if !line.referenced {
                    summary.unreferenced_lines += 1;
                    summary.unreferenced_instrs += u64::from(line.len_at_insert);
                }
                line.valid = false;
            }
        }
        self.unreferenced = 0;
        summary
    }

    /// Flips one bit of a stored signature *without* updating parity —
    /// models a transient fault striking the ITR cache itself (§2.4).
    /// Returns `true` if the line was present.
    pub fn corrupt_signature(&mut self, start_pc: u64, bit: u32) -> bool {
        let range = self.set_range(start_pc);
        for line in &mut self.lines[range] {
            if line.valid && line.start_pc == start_pc {
                line.signature ^= 1u64 << (bit % 64);
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently stored.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Iterates over all resident `(start_pc, signature)` pairs (used by
    /// fault studies to find still-unconfirmed faulty signatures at the
    /// end of an observation window — the paper's "MayITR" outcomes).
    pub fn iter_lines(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.lines.iter().filter(|l| l.valid).map(|l| (l.start_pc, l.signature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;

    fn cache(entries: u32, assoc: Associativity) -> ItrCache {
        ItrCache::new(ItrCacheConfig::new(entries, assoc))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(16, Associativity::Ways(2));
        assert_eq!(c.probe(0x100), ProbeResult::Miss);
        assert!(c.insert(0x100, 42, 5).is_none());
        assert_eq!(c.probe(0x100), ProbeResult::Hit { signature: 42, parity_ok: true });
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Fully associative, 4 entries, distinct PCs.
        let mut c = cache(4, Associativity::Full);
        for i in 0..4u64 {
            c.insert(0x100 + i * 4, i, 1);
        }
        // Touch all but 0x104.
        c.probe(0x100);
        c.probe(0x108);
        c.probe(0x10C);
        let ev = c.insert(0x200, 99, 1).expect("must evict");
        assert_eq!(ev.start_pc, 0x104);
        assert!(ev.unreferenced, "0x104 was never probed after insert");
    }

    #[test]
    fn referenced_lines_evict_without_detection_loss() {
        let mut c = cache(1, Associativity::Direct);
        c.insert(0x100, 1, 3);
        c.probe(0x100); // reference it
        let ev = c.insert(0x104, 2, 4).unwrap();
        assert!(!ev.unreferenced);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().evictions_unreferenced, 0);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = cache(4, Associativity::Direct);
        // PCs 0x100 and 0x110 map to the same set (word index mod 4).
        c.insert(0x100, 1, 1);
        let ev = c.insert(0x110, 2, 1).expect("conflict eviction");
        assert_eq!(ev.start_pc, 0x100);
        // Different sets do not conflict.
        c.insert(0x104, 3, 1);
        assert_eq!(c.peek(0x110), Some(2));
        assert_eq!(c.peek(0x104), Some(3));
    }

    #[test]
    fn same_tag_insert_overwrites_in_place() {
        let mut c = cache(4, Associativity::Ways(2));
        c.insert(0x100, 1, 1);
        assert!(c.insert(0x100, 2, 1).is_none(), "overwrite is not an eviction");
        assert_eq!(c.peek(0x100), Some(2));
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn parity_detects_cache_faults() {
        let mut c = cache(16, Associativity::Ways(2));
        c.insert(0x100, 0xABCD, 4);
        assert!(c.corrupt_signature(0x100, 7));
        match c.probe(0x100) {
            ProbeResult::Hit { parity_ok, .. } => assert!(!parity_ok),
            ProbeResult::Miss => panic!("line should still hit"),
        }
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache(16, Associativity::Ways(2));
        c.insert(0x100, 1, 1);
        c.invalidate(0x100);
        assert_eq!(c.probe(0x100), ProbeResult::Miss);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn checked_bit_replacement_prefers_checked_victims() {
        let cfg = ItrCacheConfig::new(4, Associativity::Full).with_checked_bit_replacement(true);
        let mut c = ItrCache::new(cfg);
        for i in 0..4u64 {
            c.insert(0x100 + i * 4, i, 1);
        }
        // Check (probe) only 0x100 — it becomes the preferred victim even
        // though it is the most recently used.
        c.probe(0x100);
        let ev = c.insert(0x200, 9, 1).unwrap();
        assert_eq!(ev.start_pc, 0x100);
        assert!(!ev.unreferenced, "checked victim was referenced");
    }

    #[test]
    fn checked_bit_replacement_falls_back_to_lru() {
        let cfg = ItrCacheConfig::new(2, Associativity::Full).with_checked_bit_replacement(true);
        let mut c = ItrCache::new(cfg);
        c.insert(0x100, 1, 1);
        c.insert(0x104, 2, 1);
        // No line checked yet: plain LRU applies (§2.3 notes the policy
        // breaks down in this case).
        let ev = c.insert(0x200, 3, 1).unwrap();
        assert_eq!(ev.start_pc, 0x100);
    }

    #[test]
    fn invalidate_all_accounts_detection_loss() {
        let mut c = cache(16, Associativity::Ways(2));
        c.insert(0x100, 1, 5);
        c.insert(0x104, 2, 7);
        c.insert(0x108, 3, 11);
        c.probe(0x104); // referenced: its instructions were checked
        let summary = c.invalidate_all();
        assert_eq!(
            summary,
            FlushSummary { lines: 3, unreferenced_lines: 2, unreferenced_instrs: 16 }
        );
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.unreferenced_count(), 0);
        assert_eq!(c.probe(0x104), ProbeResult::Miss);
        // An empty cache flushes for free.
        assert_eq!(c.invalidate_all(), FlushSummary::default());
    }

    #[test]
    fn unreferenced_count_tracks_inserts_and_probes() {
        let mut c = cache(16, Associativity::Ways(2));
        c.insert(0x100, 1, 1);
        c.insert(0x104, 2, 1);
        assert_eq!(c.unreferenced_count(), 2);
        c.probe(0x100);
        assert_eq!(c.unreferenced_count(), 1);
    }

    #[test]
    fn young_unreferenced_lines_age_out_of_the_blocking_set() {
        let mut c = cache(16, Associativity::Ways(2));
        c.insert(0x100, 1, 1); // the "run-once prologue" line
        assert_eq!(c.unreferenced_young_count(4), 1);
        // Each probe is one cache event; after 4 events the line has
        // aged past the window and stops blocking, while the strict
        // count still sees it.
        for _ in 0..4 {
            c.probe(0x900); // misses: events that never reference 0x100
        }
        assert_eq!(c.unreferenced_young_count(4), 0);
        assert_eq!(c.unreferenced_count(), 1);
        // A fresh insert re-enters the young set; u64::MAX degenerates
        // to the strict count.
        c.insert(0x200, 2, 1);
        assert_eq!(c.unreferenced_young_count(4), 1);
        assert_eq!(c.unreferenced_young_count(u64::MAX), c.unreferenced_count());
    }
}
