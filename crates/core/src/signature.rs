//! Trace formation and signature generation (§2.1 of the paper).

use itr_isa::DecodeSignals;

/// Maximum trace length used throughout the paper: traces terminate on a
/// branching instruction or on reaching 16 instructions.
pub const MAX_TRACE_LEN: u32 = 16;

/// A completed trace: its identity (`start_pc`), folded signature, and
/// dynamic instruction count.
///
/// Because trace termination depends only on static properties (branching
/// opcode or the length limit), the start PC uniquely identifies a static
/// trace and its fault-free signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// PC of the first instruction in the trace.
    pub start_pc: u64,
    /// XOR-fold of the packed decode signals of every instruction.
    pub signature: u64,
    /// Number of instructions in the trace (1..=16).
    pub len: u32,
}

/// How per-instruction values are combined into the trace signature.
///
/// §2.1 of the paper: *"Signature generation could be done in many ways.
/// We chose to simply bitwise XOR the signals."* Plain XOR has two
/// documented blind spots — an even number of flips of the *same* bit
/// within one trace cancels, and XOR is order-insensitive so two swapped
/// instructions fold to the same signature. The rotate-XOR variant
/// closes both at the cost of one rotator in the fold path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FoldKind {
    /// The paper's choice: `acc ^= value`.
    #[default]
    Xor,
    /// Order-sensitive variant: `acc = acc.rotate_left(7) ^ value`.
    RotateXor,
}

impl FoldKind {
    /// Applies one fold step.
    pub fn step(self, acc: u64, value: u64) -> u64 {
        match self {
            FoldKind::Xor => acc ^ value,
            FoldKind::RotateXor => acc.rotate_left(7) ^ value,
        }
    }
}

/// Incremental signature generator.
///
/// With the default [`FoldKind::Xor`], any single faulty signal bit in
/// any instruction of the trace flips the corresponding signature bit, so
/// a single-event upset is always visible. (An even number of faults in
/// the *same* bit position would cancel — acceptable under the
/// single-event-upset model, §2.1.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SignatureGen {
    acc: u64,
    count: u32,
    kind: FoldKind,
}

impl SignatureGen {
    /// A fresh, empty XOR signature.
    pub fn new() -> SignatureGen {
        SignatureGen::default()
    }

    /// A fresh, empty signature with the given fold function.
    pub fn with_kind(kind: FoldKind) -> SignatureGen {
        SignatureGen { kind, ..SignatureGen::default() }
    }

    /// Folds one instruction's decode signals into the signature.
    pub fn fold(&mut self, signals: &DecodeSignals) {
        self.acc = self.kind.step(self.acc, signals.pack());
        self.count += 1;
    }

    /// Folds an extra raw value *without* advancing the instruction
    /// count. Used by the rename-protection extension (§1 of the paper:
    /// map-table indexes are constant across trace instances and can be
    /// recorded and confirmed alongside the decode signals).
    pub fn fold_raw(&mut self, value: u64) {
        self.acc ^= value;
    }

    /// Current folded value.
    pub fn value(&self) -> u64 {
        self.acc
    }

    /// Number of instructions folded so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Resets to the empty signature (the fold kind is kept).
    pub fn reset(&mut self) {
        self.acc = 0;
        self.count = 0;
    }
}

/// Builds traces from an in-order stream of decoded instructions.
///
/// Feed each instruction with [`TraceBuilder::push`]; a [`TraceRecord`] is
/// returned when the instruction terminates the current trace (it is a
/// branching instruction, or the length limit is reached).
///
/// # Example
///
/// ```
/// use itr_core::TraceBuilder;
/// use itr_isa::{DecodeSignals, Instruction, Opcode};
///
/// let mut tb = TraceBuilder::new(16);
/// let add = DecodeSignals::from_instruction(&Instruction::rrr(Opcode::Add, 1, 2, 3));
/// let beq = DecodeSignals::from_instruction(&Instruction::branch(Opcode::Beq, 1, 2, -1));
/// assert!(tb.push(0x400, &add).is_none());
/// let trace = tb.push(0x404, &beq).expect("branch ends the trace");
/// assert_eq!(trace.start_pc, 0x400);
/// assert_eq!(trace.len, 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceBuilder {
    gen: SignatureGen,
    start_pc: u64,
    max_len: u32,
}

impl TraceBuilder {
    /// Creates a builder that terminates traces at `max_len` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is zero.
    pub fn new(max_len: u32) -> TraceBuilder {
        TraceBuilder::with_kind(max_len, FoldKind::Xor)
    }

    /// Creates a builder using the given signature fold function.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is zero.
    pub fn with_kind(max_len: u32, kind: FoldKind) -> TraceBuilder {
        assert!(max_len > 0, "max_len must be positive");
        TraceBuilder { gen: SignatureGen::with_kind(kind), start_pc: 0, max_len }
    }

    /// Adds one instruction; returns the completed trace if this
    /// instruction terminated it.
    ///
    /// Trace termination follows §2.1: a branching instruction (anything
    /// with the `is_branch` flag, including jumps, calls, returns and
    /// traps) or the length limit. The *possibly faulty* flag is consulted,
    /// mirroring hardware, so a fault on `is_branch` perturbs trace
    /// formation for that dynamic instance exactly as it would in the real
    /// design.
    pub fn push(&mut self, pc: u64, signals: &DecodeSignals) -> Option<TraceRecord> {
        self.push_with_extra(pc, signals, 0)
    }

    /// Like [`push`](Self::push), additionally folding `extra` — an
    /// input-independent microarchitectural observation for this
    /// instruction (e.g. the rename map-table indexes it used).
    pub fn push_with_extra(
        &mut self,
        pc: u64,
        signals: &DecodeSignals,
        extra: u64,
    ) -> Option<TraceRecord> {
        if self.gen.count() == 0 {
            self.start_pc = pc;
        }
        self.gen.fold(signals);
        self.gen.fold_raw(extra);
        let is_branch = signals.flags.contains(itr_isa::SignalFlags::IS_BRANCH);
        if is_branch || self.gen.count() >= self.max_len {
            let record = TraceRecord {
                start_pc: self.start_pc,
                signature: self.gen.value(),
                len: self.gen.count(),
            };
            self.gen.reset();
            Some(record)
        } else {
            None
        }
    }

    /// Number of instructions accumulated in the in-progress trace.
    pub fn pending_len(&self) -> u32 {
        self.gen.count()
    }

    /// Start PC of the in-progress trace (meaningful when
    /// [`pending_len`](Self::pending_len) is non-zero).
    pub fn pending_start_pc(&self) -> u64 {
        self.start_pc
    }

    /// Captures the in-progress state (for branch-misprediction rollback).
    pub fn snapshot(&self) -> TraceBuilder {
        *self
    }

    /// Restores a previously captured state.
    pub fn restore(&mut self, snap: TraceBuilder) {
        *self = snap;
    }

    /// Discards the in-progress trace (e.g. after a full pipeline flush).
    pub fn reset(&mut self) {
        self.gen.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::{Instruction, Opcode};

    fn sig(inst: &Instruction) -> DecodeSignals {
        DecodeSignals::from_instruction(inst)
    }

    #[test]
    fn xor_fold_is_order_insensitive_but_content_sensitive() {
        let a = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let b = sig(&Instruction::rrr(Opcode::Sub, 4, 5, 6));
        let mut g1 = SignatureGen::new();
        g1.fold(&a);
        g1.fold(&b);
        let mut g2 = SignatureGen::new();
        g2.fold(&b);
        g2.fold(&a);
        assert_eq!(g1.value(), g2.value());
        let mut g3 = SignatureGen::new();
        g3.fold(&a);
        g3.fold(&a);
        assert_ne!(g1.value(), g3.value());
    }

    #[test]
    fn single_bit_fault_always_changes_signature() {
        let insts = [
            Instruction::rrr(Opcode::Add, 1, 2, 3),
            Instruction::mem(Opcode::Lw, 4, 29, 8),
            Instruction::rri(Opcode::Addi, 5, 5, 1),
            Instruction::branch(Opcode::Bne, 5, 6, -4),
        ];
        let clean: Vec<DecodeSignals> = insts.iter().map(sig).collect();
        let mut clean_gen = SignatureGen::new();
        for s in &clean {
            clean_gen.fold(s);
        }
        for victim in 0..insts.len() {
            for bit in 0..64 {
                let mut g = SignatureGen::new();
                for (i, s) in clean.iter().enumerate() {
                    if i == victim {
                        g.fold(&s.with_bit_flipped(bit));
                    } else {
                        g.fold(s);
                    }
                }
                assert_ne!(
                    g.value(),
                    clean_gen.value(),
                    "fault on instr {victim} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn rotate_xor_is_order_sensitive() {
        let a = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let b = sig(&Instruction::rrr(Opcode::Sub, 4, 5, 6));
        let mut ab = SignatureGen::with_kind(FoldKind::RotateXor);
        ab.fold(&a);
        ab.fold(&b);
        let mut ba = SignatureGen::with_kind(FoldKind::RotateXor);
        ba.fold(&b);
        ba.fold(&a);
        assert_ne!(ab.value(), ba.value(), "swapped instructions must differ");
    }

    #[test]
    fn rotate_xor_catches_same_bit_double_faults() {
        let a = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let b = sig(&Instruction::rrr(Opcode::Sub, 4, 5, 6));
        let mut clean = SignatureGen::with_kind(FoldKind::RotateXor);
        clean.fold(&a);
        clean.fold(&b);
        let mut faulty = SignatureGen::with_kind(FoldKind::RotateXor);
        faulty.fold(&a.with_bit_flipped(7));
        faulty.fold(&b.with_bit_flipped(7));
        assert_ne!(clean.value(), faulty.value(), "rotation separates the two flips");
    }

    #[test]
    fn even_faults_in_same_bit_cancel() {
        // Documented XOR limitation (§2.1): two flips of the same signal
        // bit in one trace cancel.
        let a = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let b = sig(&Instruction::rrr(Opcode::Sub, 4, 5, 6));
        let mut clean = SignatureGen::new();
        clean.fold(&a);
        clean.fold(&b);
        let mut faulty = SignatureGen::new();
        faulty.fold(&a.with_bit_flipped(7));
        faulty.fold(&b.with_bit_flipped(7));
        assert_eq!(clean.value(), faulty.value());
    }

    #[test]
    fn trace_terminates_on_branch() {
        let mut tb = TraceBuilder::new(16);
        assert!(tb.push(0x100, &sig(&Instruction::rrr(Opcode::Add, 1, 2, 3))).is_none());
        assert!(tb.push(0x104, &sig(&Instruction::rrr(Opcode::And, 1, 2, 3))).is_none());
        let t = tb.push(0x108, &sig(&Instruction::jump(Opcode::J, 0x40))).unwrap();
        assert_eq!((t.start_pc, t.len), (0x100, 3));
        assert_eq!(tb.pending_len(), 0);
    }

    #[test]
    fn trace_terminates_at_length_limit() {
        let mut tb = TraceBuilder::new(16);
        let add = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        for i in 0..15 {
            assert!(tb.push(0x200 + i * 4, &add).is_none(), "ended early at {i}");
        }
        let t = tb.push(0x200 + 15 * 4, &add).unwrap();
        assert_eq!(t.len, 16);
        assert_eq!(t.start_pc, 0x200);
    }

    #[test]
    fn identical_instances_produce_identical_signatures() {
        let mut tb = TraceBuilder::new(16);
        let body = [
            Instruction::rri(Opcode::Addi, 8, 8, 1),
            Instruction::mem(Opcode::Lw, 9, 8, 0),
            Instruction::branch(Opcode::Bne, 9, 0, -3),
        ];
        let mut first = None;
        for _ in 0..3 {
            let mut last = None;
            for (i, inst) in body.iter().enumerate() {
                last = tb.push(0x300 + i as u64 * 4, &sig(inst));
            }
            let t = last.unwrap();
            if let Some(f) = first {
                assert_eq!(t, f);
            }
            first = Some(t);
        }
    }

    #[test]
    fn snapshot_restore_rolls_back_partial_traces() {
        let mut tb = TraceBuilder::new(16);
        let add = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        tb.push(0x100, &add);
        let snap = tb.snapshot();
        tb.push(0x104, &add);
        tb.push(0x108, &add);
        tb.restore(snap);
        assert_eq!(tb.pending_len(), 1);
        // Finishing after restore matches finishing without the detour.
        let t1 = tb.push(0x104, &sig(&Instruction::jump(Opcode::J, 0))).unwrap();
        let mut fresh = TraceBuilder::new(16);
        fresh.push(0x100, &add);
        let t2 = fresh.push(0x104, &sig(&Instruction::jump(Opcode::J, 0))).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_trace_state_is_inert() {
        // The empty signature is the XOR identity, and an empty builder
        // carries no stale state into its first trace.
        let g = SignatureGen::new();
        assert_eq!((g.value(), g.count()), (0, 0));
        let mut g = SignatureGen::with_kind(FoldKind::RotateXor);
        assert_eq!(g.value(), 0, "rotate-xor shares the empty identity");
        g.reset();
        assert_eq!((g.value(), g.count()), (0, 0), "reset of empty is a no-op");

        let mut tb = TraceBuilder::new(16);
        assert_eq!(tb.pending_len(), 0);
        tb.reset(); // resetting with nothing pending must be harmless
        let t = tb.push(0x500, &sig(&Instruction::jump(Opcode::J, 0))).unwrap();
        assert_eq!((t.start_pc, t.len), (0x500, 1));
    }

    #[test]
    fn single_instruction_trace_folds_to_its_own_signals() {
        // A lone branching instruction forms the minimal trace: len 1,
        // signature equal to its packed decode signals (fold from 0).
        let j = sig(&Instruction::jump(Opcode::J, 0x40));
        let mut tb = TraceBuilder::new(16);
        let t = tb.push(0x700, &j).unwrap();
        assert_eq!((t.start_pc, t.len), (0x700, 1));
        assert_eq!(t.signature, j.pack());
        assert_eq!(tb.pending_len(), 0, "builder is empty again");
    }

    #[test]
    fn max_length_trace_rolls_into_a_fresh_trace() {
        // Termination at MAX_TRACE_LEN must leave no residue: the 17th
        // instruction starts a new trace at its own PC.
        let add = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let mut tb = TraceBuilder::new(MAX_TRACE_LEN);
        let mut full = None;
        for i in 0..MAX_TRACE_LEN as u64 {
            full = tb.push(0x600 + i * 4, &add);
        }
        let full = full.expect("length limit terminates");
        assert_eq!((full.start_pc, full.len), (0x600, MAX_TRACE_LEN));
        assert!(tb.push(0x640, &add).is_none(), "17th instruction opens a new trace");
        assert_eq!(tb.pending_start_pc(), 0x640);
        assert_eq!(tb.pending_len(), 1);
    }

    #[test]
    fn xor_fold_self_cancels_but_rotate_xor_does_not() {
        // Corollary of order-insensitivity: folding the same signals an
        // even number of times returns plain XOR to the empty signature
        // (the deeper reason same-bit double faults cancel), while the
        // rotation keeps the two contributions apart.
        let a = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let mut xor = SignatureGen::new();
        xor.fold(&a);
        xor.fold(&a);
        assert_eq!(xor.value(), 0, "a ^ a = 0");
        assert_eq!(xor.count(), 2, "count still advances");
        let mut rot = SignatureGen::with_kind(FoldKind::RotateXor);
        rot.fold(&a);
        rot.fold(&a);
        assert_ne!(rot.value(), 0, "rotate(a) ^ a != 0");
    }

    #[test]
    fn faulty_is_branch_flag_perturbs_trace_formation() {
        // A fault that sets is_branch mid-trace splits the trace; the
        // signature of the split trace differs from the recorded one.
        let add = sig(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        let j = sig(&Instruction::jump(Opcode::J, 0x40));
        let mut clean = TraceBuilder::new(16);
        assert!(clean.push(0x100, &add).is_none());
        let clean_t = clean.push(0x104, &j).unwrap();

        // Flip a flags bit that turns `is_branch` on for the first add.
        let is_branch_bit = 8 + 3; // flags field lsb=8, IS_BRANCH = bit 3
        let faulty_add = add.with_bit_flipped(is_branch_bit);
        let mut faulty = TraceBuilder::new(16);
        let t = faulty.push(0x100, &faulty_add).unwrap();
        assert_eq!(t.len, 1, "faulty is_branch terminates immediately");
        assert_ne!(t.signature, clean_t.signature);
    }
}
