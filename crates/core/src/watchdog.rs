//! The watchdog-timer (`wdog`) check used in the §4 fault-injection study
//! to detect deadlocks (e.g. from faulty source-register signals that make
//! an instruction wait on an operand that never arrives).

/// Counts cycles since the last committed instruction and fires when the
/// limit is exceeded.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    limit: u64,
    last_commit_cycle: u64,
    fired: bool,
}

impl Watchdog {
    /// Creates a watchdog that fires after `limit` commit-free cycles.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: u64) -> Watchdog {
        assert!(limit > 0, "watchdog limit must be positive");
        Watchdog { limit, last_commit_cycle: 0, fired: false }
    }

    /// Records that an instruction committed at `cycle`.
    pub fn pet(&mut self, cycle: u64) {
        self.last_commit_cycle = cycle;
    }

    /// Checks the timer at `cycle`; returns `true` (and latches) when the
    /// deadline has passed.
    pub fn expired(&mut self, cycle: u64) -> bool {
        if cycle.saturating_sub(self.last_commit_cycle) > self.limit {
            self.fired = true;
        }
        self.fired
    }

    /// `true` once the watchdog has fired.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Configured limit in cycles.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_after_limit() {
        let mut w = Watchdog::new(100);
        assert!(!w.expired(50));
        assert!(!w.expired(100));
        assert!(w.expired(101));
        assert!(w.fired());
    }

    #[test]
    fn petting_defers_expiry() {
        let mut w = Watchdog::new(100);
        w.pet(90);
        assert!(!w.expired(150));
        assert!(w.expired(191));
    }

    #[test]
    fn fired_state_latches() {
        let mut w = Watchdog::new(10);
        assert!(w.expired(11));
        w.pet(12);
        assert!(w.expired(13), "once fired, stays fired");
    }
}
