//! The `itr-tap/v1` decode-signal stream: a versioned record of every
//! interaction a host makes with its [`ItrUnit`](crate::ItrUnit).
//!
//! The ITR unit is deliberately oblivious to *how* instructions execute:
//! it consumes an in-order stream of per-dispatch decode signals plus
//! commit and squash notifications (§2.2 of the paper). That stream is a
//! property of the workload, not of the ITR geometry — every point of a
//! cache-size × associativity × trace-length × mode sweep consumes the
//! *same* stream. Recording it once ([`TapStream`]) and replaying it
//! against N independent units ([`crate::replay`]) therefore evaluates N
//! design points for the price of one simulation, with bit-exact results.
//!
//! ## Schema
//!
//! A stream is a version header, a workload label, and an ordered list of
//! events:
//!
//! | event          | payload                 | host action it records        |
//! |----------------|-------------------------|-------------------------------|
//! | `dispatch`     | `pc`, `sig`, `extra`    | `on_dispatch_extended`        |
//! | `commit`       | `n`                     | `n` oldest instructions retire|
//! | `rewind`       | `keep`                  | squash to `keep` in-flight    |
//! | `retry`        | `pc`                    | `on_retry_flush`              |
//! | `flush`        | —                       | `on_full_flush`               |
//! | `machine_check`| `pc`                    | `on_machine_check`            |
//!
//! `sig` is the [`DecodeSignals::pack`] encoding of the (possibly
//! faulty) decode signals; `extra` is the input-independent fold-in of
//! [`ItrUnit::on_dispatch_extended`](crate::ItrUnit::on_dispatch_extended)
//! (0 unless rename protection is on). `rewind` records a branch
//! misprediction: the host squashed its reorder buffer down to the
//! oldest `keep` in-flight instructions and restored the ITR snapshot of
//! the instruction now at the tail. Consecutive retirements coalesce
//! into one `commit` event.
//!
//! The JSON form (see [`TapStream::to_json`]) is what
//! `tests/golden_tap.json` pins.

use itr_isa::DecodeSignals;
use itr_stats::json::Value;

/// Version tag carried by every serialized stream.
pub const TAP_VERSION: &str = "itr-tap/v1";

/// One recorded host→unit interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapEvent {
    /// One instruction dispatched in order with its packed decode
    /// signals and the extra fold-in value.
    Dispatch {
        /// Program counter of the instruction.
        pc: u64,
        /// [`DecodeSignals::pack`] of its (possibly faulty) signals.
        signals: u64,
        /// Extra input-independent fold-in (rename protection), else 0.
        extra: u64,
    },
    /// The `n` oldest in-flight instructions retired, in order.
    Commit {
        /// Number of instructions retired.
        n: u64,
    },
    /// Branch misprediction: the in-flight window was squashed down to
    /// its oldest `keep` instructions and the ITR snapshot of the
    /// instruction now at the tail was restored.
    Rewind {
        /// In-flight instructions surviving the squash (≥ 1: the
        /// mispredicted branch itself survives).
        keep: u64,
    },
    /// An ITR retry flush ([`CommitAction::Retry`](crate::CommitAction)):
    /// all in-flight instructions are squashed and fetch restarts at the
    /// trace's start PC.
    RetryFlush {
        /// Start PC of the retried trace.
        start_pc: u64,
    },
    /// A full pipeline flush that is *not* an ITR retry (external
    /// exception, timing-check violation): in-flight state is discarded
    /// without arming a retry.
    FullFlush,
    /// A machine check was raised; the host aborts the program.
    MachineCheck {
        /// Start PC of the offending trace.
        start_pc: u64,
    },
}

/// A recorded `itr-tap/v1` stream for one workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TapStream {
    /// Workload label (informational; not consumed by replay).
    pub workload: String,
    /// The ordered event stream.
    pub events: Vec<TapEvent>,
}

impl TapStream {
    /// An empty stream for `workload`.
    pub fn new(workload: &str) -> TapStream {
        TapStream { workload: workload.to_string(), events: Vec::new() }
    }

    /// Records one dispatched instruction.
    pub fn record_dispatch(&mut self, pc: u64, signals: &DecodeSignals, extra: u64) {
        self.events.push(TapEvent::Dispatch { pc, signals: signals.pack(), extra });
    }

    /// Records one retirement, coalescing with an immediately preceding
    /// `commit` event.
    pub fn record_commit(&mut self) {
        if let Some(TapEvent::Commit { n }) = self.events.last_mut() {
            *n += 1;
            return;
        }
        self.events.push(TapEvent::Commit { n: 1 });
    }

    /// Records a misprediction squash down to `keep` in-flight
    /// instructions.
    pub fn record_rewind(&mut self, keep: u64) {
        self.events.push(TapEvent::Rewind { keep });
    }

    /// Records an ITR retry flush.
    pub fn record_retry_flush(&mut self, start_pc: u64) {
        self.events.push(TapEvent::RetryFlush { start_pc });
    }

    /// Records a non-retry full flush.
    pub fn record_full_flush(&mut self) {
        self.events.push(TapEvent::FullFlush);
    }

    /// Records a machine check.
    pub fn record_machine_check(&mut self, start_pc: u64) {
        self.events.push(TapEvent::MachineCheck { start_pc });
    }

    /// Iterates the dispatch events as `(pc, packed_signals, extra)` —
    /// the raw material of trace-level replay, where squash markers are
    /// irrelevant (functional streams contain none).
    pub fn dispatches(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.events.iter().filter_map(|e| match *e {
            TapEvent::Dispatch { pc, signals, extra } => Some((pc, signals, extra)),
            _ => None,
        })
    }

    /// Serializes to the pinned `itr-tap/v1` JSON form.
    pub fn to_json(&self) -> Value {
        let events = self
            .events
            .iter()
            .map(|e| {
                let fields = match *e {
                    TapEvent::Dispatch { pc, signals, extra } => vec![
                        ("e".to_string(), Value::Str("dispatch".to_string())),
                        ("pc".to_string(), Value::UInt(pc)),
                        ("sig".to_string(), Value::UInt(signals)),
                        ("extra".to_string(), Value::UInt(extra)),
                    ],
                    TapEvent::Commit { n } => vec![
                        ("e".to_string(), Value::Str("commit".to_string())),
                        ("n".to_string(), Value::UInt(n)),
                    ],
                    TapEvent::Rewind { keep } => vec![
                        ("e".to_string(), Value::Str("rewind".to_string())),
                        ("keep".to_string(), Value::UInt(keep)),
                    ],
                    TapEvent::RetryFlush { start_pc } => vec![
                        ("e".to_string(), Value::Str("retry".to_string())),
                        ("pc".to_string(), Value::UInt(start_pc)),
                    ],
                    TapEvent::FullFlush => {
                        vec![("e".to_string(), Value::Str("flush".to_string()))]
                    }
                    TapEvent::MachineCheck { start_pc } => vec![
                        ("e".to_string(), Value::Str("machine_check".to_string())),
                        ("pc".to_string(), Value::UInt(start_pc)),
                    ],
                };
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            ("version".to_string(), Value::Str(TAP_VERSION.to_string())),
            ("workload".to_string(), Value::Str(self.workload.clone())),
            ("events".to_string(), Value::Array(events)),
        ])
    }

    /// Deserializes a stream previously produced by
    /// [`to_json`](Self::to_json), rejecting unknown versions.
    pub fn from_json(value: &Value) -> Result<TapStream, String> {
        let version = value
            .get("version")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing version".to_string())?;
        if version != TAP_VERSION {
            return Err(format!("unsupported tap version {version:?} (want {TAP_VERSION:?})"));
        }
        let workload = value.get("workload").and_then(Value::as_str).unwrap_or("").to_string();
        let raw = value
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing events".to_string())?;
        let mut events = Vec::with_capacity(raw.len());
        for (i, ev) in raw.iter().enumerate() {
            let kind = ev
                .get("e")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event {i}: missing kind"))?;
            let field = |name: &str| {
                ev.get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i} ({kind}): missing field {name:?}"))
            };
            events.push(match kind {
                "dispatch" => TapEvent::Dispatch {
                    pc: field("pc")?,
                    signals: field("sig")?,
                    extra: field("extra")?,
                },
                "commit" => TapEvent::Commit { n: field("n")? },
                "rewind" => TapEvent::Rewind { keep: field("keep")? },
                "retry" => TapEvent::RetryFlush { start_pc: field("pc")? },
                "flush" => TapEvent::FullFlush,
                "machine_check" => TapEvent::MachineCheck { start_pc: field("pc")? },
                other => return Err(format!("event {i}: unknown kind {other:?}")),
            });
        }
        Ok(TapStream { workload, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::{Instruction, Opcode};

    fn sig(inst: &Instruction) -> DecodeSignals {
        DecodeSignals::from_instruction(inst)
    }

    fn sample() -> TapStream {
        let mut tap = TapStream::new("sample");
        tap.record_dispatch(0x100, &sig(&Instruction::rrr(Opcode::Add, 1, 2, 3)), 0);
        tap.record_dispatch(0x104, &sig(&Instruction::branch(Opcode::Bne, 1, 2, -1)), 7);
        tap.record_commit();
        tap.record_commit();
        tap.record_rewind(1);
        tap.record_retry_flush(0x100);
        tap.record_full_flush();
        tap.record_machine_check(0x100);
        tap
    }

    #[test]
    fn commits_coalesce() {
        let tap = sample();
        assert_eq!(tap.events[2], TapEvent::Commit { n: 2 });
        assert_eq!(tap.events.len(), 7);
    }

    #[test]
    fn json_round_trips() {
        let tap = sample();
        let json = tap.to_json().to_json();
        let back = TapStream::from_json(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back, tap);
        assert!(json.starts_with(r#"{"version":"itr-tap/v1""#));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut json = sample().to_json();
        let Value::Object(fields) = &mut json else { unreachable!() };
        fields[0].1 = Value::Str("itr-tap/v2".to_string());
        let err = TapStream::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported tap version"), "{err}");
    }

    #[test]
    fn dispatches_iterator_skips_markers() {
        let tap = sample();
        let d: Vec<_> = tap.dispatches().collect();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 0x100);
        assert_eq!(d[1].2, 7);
    }
}
