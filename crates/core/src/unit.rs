//! The ITR unit: the controller a pipeline embeds to exploit inherent time
//! redundancy (§2.2 of the paper).
//!
//! Interaction contract with the host pipeline:
//!
//! 1. **Dispatch (in order).** For every dispatched instruction call
//!    [`ItrUnit::on_dispatch`] with its PC and (possibly faulty) decode
//!    signals. The returned [`DispatchResult`] carries the trace sequence
//!    number the instruction belongs to and whether it terminated a trace.
//!    Tag the in-flight instruction with both.
//! 2. **Branch misprediction.** Capture [`ItrUnit::snapshot`] when a
//!    branch dispatches and [`ItrUnit::restore`] it when the branch
//!    resolves mispredicted (the paper stores the ITR ROB position in the
//!    branch checkpoint).
//! 3. **Commit (in order).** Before committing an instruction, call
//!    [`ItrUnit::commit_action`] with its trace sequence number and obey
//!    the returned [`CommitAction`]. After committing a trace-terminating
//!    instruction, call [`ItrUnit::on_trace_end_commit`].
//! 4. **Retry.** On [`CommitAction::Retry`], squash the whole pipeline,
//!    call [`ItrUnit::on_retry_flush`], and refetch from the returned
//!    start PC.

use crate::config::{ItrConfig, ItrMode};
use crate::itr_cache::{ItrCache, ProbeResult};
use crate::itr_rob::{ControlState, ItrRob, ItrRobEntry, ItrRobIndex};
use crate::signature::{TraceBuilder, TraceRecord};
use itr_isa::DecodeSignals;
use itr_stats::{Counter, Counters, Report, Unit as StatUnit};

/// Outcome of dispatching one instruction through the ITR unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchResult {
    /// Sequence number of the trace this instruction belongs to.
    pub trace_seq: ItrRobIndex,
    /// `true` if this instruction terminated its trace (an ITR ROB entry
    /// now exists for `trace_seq`).
    pub trace_end: bool,
}

/// What the commit stage must do for an instruction (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitAction {
    /// Commit normally.
    Proceed,
    /// Neither `chk` nor `miss` is set yet — stall commit.
    Stall,
    /// Signature mismatch: flush the pipeline and restart fetch at the
    /// trace's start PC.
    Retry {
        /// PC to refetch from.
        start_pc: u64,
    },
    /// Second mismatch after a retry: the *previous* instance executed
    /// with a fault and has already corrupted architectural state — raise
    /// a machine check and abort the program.
    MachineCheck {
        /// Start PC of the offending trace.
        start_pc: u64,
    },
}

/// Notable events, drained by the host with [`ItrUnit::drain_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItrEvent {
    /// A dispatched trace's signature disagreed with the ITR cache.
    Mismatch {
        /// Trace identity.
        start_pc: u64,
        /// Trace sequence number.
        trace_seq: ItrRobIndex,
        /// Signature stored in the ITR cache.
        cached_signature: u64,
        /// Signature of the dispatched instance.
        new_signature: u64,
    },
    /// A retry flush was initiated.
    RetryInitiated {
        /// Trace being retried.
        start_pc: u64,
    },
    /// The retried trace matched: the faulty instance never committed.
    RecoverySuccess {
        /// Recovered trace.
        start_pc: u64,
    },
    /// A second mismatch with good parity: program must abort.
    MachineCheck {
        /// Offending trace.
        start_pc: u64,
    },
    /// A second mismatch with bad parity: the ITR cache itself was faulty;
    /// the line was overwritten with the new signature (§2.4).
    CacheFaultRepaired {
        /// Repaired line.
        start_pc: u64,
    },
    /// A missed trace committed and its signature was written.
    MissCommitted {
        /// Trace identity.
        start_pc: u64,
        /// Instructions whose fault *recovery* coverage is lost (§2.3).
        len: u32,
    },
    /// An unreferenced line was evicted: fault *detection* coverage lost
    /// for the instructions of the inserting instance (§2.3).
    EvictionUnreferenced {
        /// Evicted trace identity.
        start_pc: u64,
        /// Instructions of the inserting instance.
        len: u32,
    },
}

/// Snapshot of dispatch-side ITR state, captured at branch dispatch.
#[derive(Debug, Clone, Copy)]
pub struct ItrSnapshot {
    builder: TraceBuilder,
    rob_next_seq: ItrRobIndex,
}

/// Aggregate counters (a point-in-time snapshot; the live values are kept
/// in an `itr-stats` counter registry — see [`ItrUnit::export`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Traces pushed into the ITR ROB at dispatch (includes wrong-path).
    pub traces_dispatched: u64,
    /// Trace-terminating instructions committed.
    pub traces_committed: u64,
    /// Instructions committed in checked or missed traces.
    pub instrs_committed: u64,
    /// Committed instructions in traces that missed — loss of *recovery*
    /// coverage (§2.3).
    pub recovery_loss_instrs: u64,
    /// Instructions of inserting instances whose lines were evicted
    /// unreferenced — loss of *detection* coverage (§2.3).
    pub detection_loss_instrs: u64,
    /// Signature mismatches observed.
    pub mismatches: u64,
    /// Traces confirmed against an older in-flight instance in the ITR
    /// ROB (forwarding; see [`ItrConfig::rob_forwarding`]).
    pub rob_forward_hits: u64,
    /// Retry flushes initiated.
    pub retries: u64,
    /// Successful recoveries (retry matched).
    pub recoveries: u64,
    /// Machine checks raised.
    pub machine_checks: u64,
    /// ITR cache lines repaired via parity (§2.4).
    pub parity_repairs: u64,
}

impl std::fmt::Display for UnitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} traces ({} instrs) committed; {} mismatches, {} retries, \
             {} recoveries, {} machine checks; loss: {} rec / {} det instrs",
            self.traces_committed,
            self.instrs_committed,
            self.mismatches,
            self.retries,
            self.recoveries,
            self.machine_checks,
            self.recovery_loss_instrs,
            self.detection_loss_instrs
        )
    }
}

/// Counter registry + handles for one unit instance.
#[derive(Debug, Clone)]
struct UnitMetrics {
    counters: Counters,
    traces_dispatched: Counter,
    traces_committed: Counter,
    instrs_committed: Counter,
    recovery_loss_instrs: Counter,
    detection_loss_instrs: Counter,
    mismatches: Counter,
    rob_forward_hits: Counter,
    retries: Counter,
    recoveries: Counter,
    machine_checks: Counter,
    parity_repairs: Counter,
}

impl UnitMetrics {
    fn new() -> UnitMetrics {
        let mut c = Counters::new();
        let traces_dispatched = c.register(
            "traces_dispatched",
            StatUnit::Traces,
            "traces pushed into the ITR ROB at dispatch (incl. wrong-path)",
        );
        let traces_committed =
            c.register("traces_committed", StatUnit::Traces, "trace-terminating commits");
        let instrs_committed = c.register(
            "instrs_committed",
            StatUnit::Instructions,
            "instructions committed in checked or missed traces",
        );
        let recovery_loss_instrs = c.register(
            "recovery_loss_instrs",
            StatUnit::Instructions,
            "committed instructions in missed traces (§2.3 recovery loss)",
        );
        let detection_loss_instrs = c.register(
            "detection_loss_instrs",
            StatUnit::Instructions,
            "instructions of instances evicted unreferenced (§2.3 detection loss)",
        );
        let mismatches = c.register("mismatches", StatUnit::Events, "signature mismatches");
        let rob_forward_hits = c.register(
            "rob_forward_hits",
            StatUnit::Events,
            "traces confirmed against an older in-flight instance",
        );
        let retries = c.register("retries", StatUnit::Events, "retry flushes initiated");
        let recoveries =
            c.register("recoveries", StatUnit::Events, "successful recoveries (retry matched)");
        let machine_checks =
            c.register("machine_checks", StatUnit::Events, "machine checks raised");
        let parity_repairs =
            c.register("parity_repairs", StatUnit::Events, "ITR cache lines repaired via parity");
        UnitMetrics {
            counters: c,
            traces_dispatched,
            traces_committed,
            instrs_committed,
            recovery_loss_instrs,
            detection_loss_instrs,
            mismatches,
            rob_forward_hits,
            retries,
            recoveries,
            machine_checks,
            parity_repairs,
        }
    }

    #[inline]
    fn inc(&mut self, c: Counter) {
        self.counters.inc(c);
    }

    fn snapshot(&self) -> UnitStats {
        let g = |c| self.counters.get(c);
        UnitStats {
            traces_dispatched: g(self.traces_dispatched),
            traces_committed: g(self.traces_committed),
            instrs_committed: g(self.instrs_committed),
            recovery_loss_instrs: g(self.recovery_loss_instrs),
            detection_loss_instrs: g(self.detection_loss_instrs),
            mismatches: g(self.mismatches),
            rob_forward_hits: g(self.rob_forward_hits),
            retries: g(self.retries),
            recoveries: g(self.recoveries),
            machine_checks: g(self.machine_checks),
            parity_repairs: g(self.parity_repairs),
        }
    }
}

/// The ITR unit: trace formation, ITR ROB, ITR cache and the
/// detection/recovery state machine.
#[derive(Debug, Clone)]
pub struct ItrUnit {
    config: ItrConfig,
    cache: ItrCache,
    rob: ItrRob,
    builder: TraceBuilder,
    /// `Some(start_pc)` while a retry of that trace is in flight.
    retry_armed: Option<u64>,
    /// Checks whose ITR cache read is still in flight
    /// ([`ItrConfig::cache_read_latency`] > 0).
    pending: std::collections::VecDeque<PendingCheck>,
    /// Cycle last passed to [`ItrUnit::advance`].
    now: u64,
    events: Vec<ItrEvent>,
    metrics: UnitMetrics,
}

/// A dispatched trace whose ITR cache read has not completed yet.
#[derive(Debug, Clone, Copy)]
struct PendingCheck {
    trace_seq: ItrRobIndex,
    record: TraceRecord,
    ready_cycle: u64,
}

impl ItrUnit {
    /// Creates a unit with the given configuration.
    pub fn new(config: ItrConfig) -> ItrUnit {
        ItrUnit {
            config,
            cache: ItrCache::new(config.cache),
            rob: ItrRob::new(config.rob_entries),
            builder: TraceBuilder::with_kind(config.max_trace_len, config.fold),
            retry_armed: None,
            pending: std::collections::VecDeque::new(),
            now: 0,
            events: Vec::new(),
            metrics: UnitMetrics::new(),
        }
    }

    /// Advances the unit's clock and completes any ITR cache reads whose
    /// latency has elapsed. Hosts modelling a non-zero
    /// [`ItrConfig::cache_read_latency`] must call this every cycle;
    /// with zero latency it is a no-op.
    pub fn advance(&mut self, cycle: u64) {
        self.now = cycle;
        while let Some(p) = self.pending.front() {
            if p.ready_cycle > cycle {
                break;
            }
            let p = self.pending.pop_front().expect("checked non-empty");
            // Identity guard: the entry may have been squashed (and its
            // sequence number reused) since the read was launched.
            let valid = self.rob.get(p.trace_seq).is_some_and(|e| {
                e.state == ControlState::NoneSet
                    && e.start_pc == p.record.start_pc
                    && e.signature == p.record.signature
            });
            if valid {
                let state = self.resolve_check(p.trace_seq, &p.record);
                self.rob.get_mut(p.trace_seq).expect("checked").state = state;
            }
        }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &ItrConfig {
        &self.config
    }

    /// The underlying ITR cache (for statistics and §2.4 fault studies).
    pub fn cache(&self) -> &ItrCache {
        &self.cache
    }

    /// Mutable access to the ITR cache (fault-injection experiments flip
    /// stored signature bits through this).
    pub fn cache_mut(&mut self) -> &mut ItrCache {
        &mut self.cache
    }

    /// Aggregate counters, as a point-in-time snapshot.
    pub fn stats(&self) -> UnitStats {
        self.metrics.snapshot()
    }

    /// Appends the `itr` and `itr_cache` sections to an `itr-stats`
    /// report.
    pub fn export(&self, report: &mut Report) {
        report.push_section("itr", &self.metrics.counters, &[]);
        self.cache.export(report);
    }

    /// `true` when a new trace cannot be accepted and dispatch must stall.
    pub fn rob_full(&self) -> bool {
        self.rob.is_full()
    }

    /// Removes and returns all pending events.
    pub fn drain_events(&mut self) -> Vec<ItrEvent> {
        std::mem::take(&mut self.events)
    }

    /// Feeds one dispatched instruction. Must be called in dispatch order.
    ///
    /// When the instruction terminates a trace, the signature is compared
    /// with (or recorded for) the ITR cache — the paper performs this read
    /// at dispatch so it completes before the trace can commit.
    pub fn on_dispatch(&mut self, pc: u64, signals: &DecodeSignals) -> DispatchResult {
        self.on_dispatch_extended(pc, signals, 0)
    }

    /// Like [`on_dispatch`](Self::on_dispatch), additionally folding an
    /// input-independent observation into the signature — the hook for
    /// extending ITR protection beyond the frontend (§1 sketches rename
    /// map-table indexes and issue order as candidates).
    pub fn on_dispatch_extended(
        &mut self,
        pc: u64,
        signals: &DecodeSignals,
        extra: u64,
    ) -> DispatchResult {
        let trace_seq = self.rob.next_seq();
        let Some(record) = self.builder.push_with_extra(pc, signals, extra) else {
            return DispatchResult { trace_seq, trace_end: false };
        };
        self.metrics.inc(self.metrics.traces_dispatched);
        let latency = self.config.cache_read_latency;
        if latency > 0 {
            // The read is launched now and completes `latency` cycles
            // later; until then the entry shows neither chk nor miss and
            // commit stalls on it (the §2.2 interlock).
            self.rob
                .push(ItrRobEntry {
                    start_pc: record.start_pc,
                    signature: record.signature,
                    len: record.len,
                    state: ControlState::NoneSet,
                })
                .expect("host must stall dispatch while rob_full()");
            self.pending.push_back(PendingCheck {
                trace_seq,
                record,
                ready_cycle: self.now + latency as u64,
            });
            return DispatchResult { trace_seq, trace_end: true };
        }
        let state = self.resolve_check(trace_seq, &record);
        self.rob
            .push(ItrRobEntry {
                start_pc: record.start_pc,
                signature: record.signature,
                len: record.len,
                state,
            })
            .expect("host must stall dispatch while rob_full()");
        DispatchResult { trace_seq, trace_end: true }
    }

    /// Probes the ITR cache (and, on a miss, older in-flight instances)
    /// and runs the §2.2/§2.4 decision logic for one completed trace.
    fn resolve_check(&mut self, trace_seq: ItrRobIndex, record: &TraceRecord) -> ControlState {
        match self.cache.probe(record.start_pc) {
            ProbeResult::Hit { signature, parity_ok } => {
                if signature == record.signature {
                    if self.retry_armed == Some(record.start_pc) {
                        // Retried trace now matches: the first instance was
                        // the faulty one and it never committed.
                        self.retry_armed = None;
                        self.metrics.inc(self.metrics.recoveries);
                        self.events.push(ItrEvent::RecoverySuccess { start_pc: record.start_pc });
                    }
                    ControlState::ChkOnly
                } else {
                    self.metrics.inc(self.metrics.mismatches);
                    self.events.push(ItrEvent::Mismatch {
                        start_pc: record.start_pc,
                        trace_seq,
                        cached_signature: signature,
                        new_signature: record.signature,
                    });
                    if self.retry_armed == Some(record.start_pc)
                        && self.config.cache.parity
                        && !parity_ok
                    {
                        // Second mismatch, but parity convicts the ITR
                        // cache itself: repair the line and proceed (§2.4).
                        self.cache.insert(record.start_pc, record.signature, record.len);
                        self.retry_armed = None;
                        self.metrics.inc(self.metrics.parity_repairs);
                        self.events
                            .push(ItrEvent::CacheFaultRepaired { start_pc: record.start_pc });
                        ControlState::ChkOnly
                    } else if self.config.mode == ItrMode::Passive {
                        // Observe-only: record the detection, commit anyway.
                        ControlState::ChkOnly
                    } else {
                        ControlState::ChkRetry
                    }
                }
            }
            ProbeResult::Miss => {
                if self.retry_armed == Some(record.start_pc) {
                    // The mismatching line disappeared (evicted between the
                    // flush and the refetch — only possible with extra
                    // writers); treat the retry as inconclusive and record
                    // the new signature.
                    self.retry_armed = None;
                }
                // ITR-ROB forwarding: an older in-flight instance of the
                // same trace can confirm this one before either commits
                // (tight loops iterate faster than commit can write the
                // ITR cache).
                match self
                    .config
                    .rob_forwarding
                    .then(|| self.rob.find_latest_before(record.start_pc, trace_seq))
                    .flatten()
                {
                    Some(older) if older.signature == record.signature => {
                        self.metrics.inc(self.metrics.rob_forward_hits);
                        ControlState::ChkOnly
                    }
                    Some(older) => {
                        self.metrics.inc(self.metrics.mismatches);
                        self.events.push(ItrEvent::Mismatch {
                            start_pc: record.start_pc,
                            trace_seq,
                            cached_signature: older.signature,
                            new_signature: record.signature,
                        });
                        if self.config.mode == ItrMode::Passive {
                            ControlState::ChkOnly
                        } else {
                            ControlState::ChkRetry
                        }
                    }
                    None => ControlState::Miss,
                }
            }
        }
    }

    /// Captures dispatch-side state for branch-misprediction rollback.
    pub fn snapshot(&self) -> ItrSnapshot {
        ItrSnapshot { builder: self.builder.snapshot(), rob_next_seq: self.rob.next_seq() }
    }

    /// Restores a snapshot taken at the mispredicted branch.
    pub fn restore(&mut self, snap: &ItrSnapshot) {
        self.builder.restore(snap.builder);
        self.rob.rollback_to(snap.rob_next_seq);
        self.pending.retain(|p| p.trace_seq < snap.rob_next_seq);
    }

    /// Reads an in-flight ITR ROB entry (used by the host's §3
    /// redundant-fetch fallback to find the signature to re-verify).
    pub fn rob_entry(&self, trace_seq: ItrRobIndex) -> Option<&ItrRobEntry> {
        self.rob.get(trace_seq)
    }

    /// Decides what commit must do for an instruction belonging to
    /// `trace_seq` (§2.2 head-polling).
    pub fn commit_action(&self, trace_seq: ItrRobIndex) -> CommitAction {
        let Some(entry) = self.rob.get(trace_seq) else {
            // Trace not formed yet (its terminating instruction has not
            // dispatched): commit must wait.
            return CommitAction::Stall;
        };
        match entry.state {
            ControlState::NoneSet => CommitAction::Stall,
            ControlState::ChkOnly | ControlState::Miss => CommitAction::Proceed,
            ControlState::ChkRetry => {
                if self.retry_armed == Some(entry.start_pc) {
                    CommitAction::MachineCheck { start_pc: entry.start_pc }
                } else {
                    CommitAction::Retry { start_pc: entry.start_pc }
                }
            }
        }
    }

    /// Must be called when the host performs a [`CommitAction::Retry`]
    /// flush: arms the retry and clears all in-flight ITR state.
    pub fn on_retry_flush(&mut self, start_pc: u64) {
        self.retry_armed = Some(start_pc);
        self.metrics.inc(self.metrics.retries);
        self.events.push(ItrEvent::RetryInitiated { start_pc });
        self.rob.clear();
        self.builder.reset();
        self.pending.clear();
    }

    /// Must be called when the host raises a machine check, for counters.
    pub fn on_machine_check(&mut self, start_pc: u64) {
        self.metrics.inc(self.metrics.machine_checks);
        self.events.push(ItrEvent::MachineCheck { start_pc });
    }

    /// Clears in-flight state on a full pipeline flush that is *not* an
    /// ITR retry (e.g. an external exception).
    pub fn on_full_flush(&mut self) {
        self.rob.clear();
        self.builder.reset();
        self.pending.clear();
    }

    /// Called after the trace-terminating instruction of the ITR ROB head
    /// commits: writes missed signatures and frees the entry (§2.2).
    ///
    /// # Panics
    ///
    /// Panics if `trace_seq` is not the head entry — traces commit in
    /// order by construction.
    pub fn on_trace_end_commit(&mut self, trace_seq: ItrRobIndex) {
        assert_eq!(trace_seq, self.rob.head_seq(), "traces must commit in order");
        let entry = self.rob.free_head();
        self.metrics.inc(self.metrics.traces_committed);
        self.metrics.counters.add(self.metrics.instrs_committed, entry.len as u64);
        if entry.state == ControlState::Miss {
            self.metrics.counters.add(self.metrics.recovery_loss_instrs, entry.len as u64);
            self.events.push(ItrEvent::MissCommitted { start_pc: entry.start_pc, len: entry.len });
            if let Some(ev) = self.cache.insert(entry.start_pc, entry.signature, entry.len) {
                if ev.unreferenced {
                    self.metrics
                        .counters
                        .add(self.metrics.detection_loss_instrs, ev.len_at_insert as u64);
                    self.events.push(ItrEvent::EvictionUnreferenced {
                        start_pc: ev.start_pc,
                        len: ev.len_at_insert,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ItrCacheConfig};
    use itr_isa::{DecodeSignals, Instruction, Opcode};

    fn unit() -> ItrUnit {
        ItrUnit::new(ItrConfig {
            cache: ItrCacheConfig::new(64, Associativity::Ways(2)),
            max_trace_len: 16,
            rob_entries: 8,
            mode: ItrMode::Active,
            ..ItrConfig::paper_default()
        })
    }

    fn add_sig() -> DecodeSignals {
        DecodeSignals::from_instruction(&Instruction::rrr(Opcode::Add, 1, 2, 3))
    }

    fn branch_sig() -> DecodeSignals {
        DecodeSignals::from_instruction(&Instruction::branch(Opcode::Bne, 1, 2, -2))
    }

    /// Dispatches a clean 3-instruction trace starting at `pc`; returns its
    /// sequence number.
    fn dispatch_trace(u: &mut ItrUnit, pc: u64) -> ItrRobIndex {
        assert!(!u.on_dispatch(pc, &add_sig()).trace_end);
        assert!(!u.on_dispatch(pc + 4, &add_sig()).trace_end);
        let r = u.on_dispatch(pc + 8, &branch_sig());
        assert!(r.trace_end);
        r.trace_seq
    }

    fn commit_trace(u: &mut ItrUnit, seq: ItrRobIndex) {
        assert_eq!(u.commit_action(seq), CommitAction::Proceed);
        u.on_trace_end_commit(seq);
    }

    #[test]
    fn first_instance_misses_then_second_hits_and_matches() {
        let mut u = unit();
        let a = dispatch_trace(&mut u, 0x100);
        commit_trace(&mut u, a);
        let events = u.drain_events();
        assert!(matches!(events[0], ItrEvent::MissCommitted { start_pc: 0x100, len: 3 }));

        let b = dispatch_trace(&mut u, 0x100);
        assert_eq!(u.commit_action(b), CommitAction::Proceed);
        u.on_trace_end_commit(b);
        assert!(u.drain_events().is_empty(), "clean re-execution: no events");
        assert_eq!(u.stats().mismatches, 0);
        assert_eq!(u.stats().recovery_loss_instrs, 3, "only the first (missed) instance");
    }

    #[test]
    fn commit_stalls_until_trace_is_formed() {
        let mut u = unit();
        let r = u.on_dispatch(0x100, &add_sig());
        assert!(!r.trace_end);
        assert_eq!(u.commit_action(r.trace_seq), CommitAction::Stall);
        u.on_dispatch(0x104, &branch_sig());
        assert_eq!(u.commit_action(r.trace_seq), CommitAction::Proceed);
    }

    #[test]
    fn mismatch_triggers_retry_then_recovery_on_match() {
        let mut u = unit();
        let a = dispatch_trace(&mut u, 0x100);
        commit_trace(&mut u, a);
        u.drain_events();

        // A faulty re-execution: flip a decode-signal bit of the first
        // instruction of the trace.
        let faulty = add_sig().with_bit_flipped(25);
        assert!(!u.on_dispatch(0x100, &faulty).trace_end);
        assert!(!u.on_dispatch(0x104, &add_sig()).trace_end);
        let r = u.on_dispatch(0x108, &branch_sig());
        let action = u.commit_action(r.trace_seq);
        let CommitAction::Retry { start_pc } = action else {
            panic!("expected retry, got {action:?}");
        };
        assert_eq!(start_pc, 0x100);
        u.on_retry_flush(start_pc);

        // Re-execution after the flush is clean (transient fault).
        let b = dispatch_trace(&mut u, 0x100);
        assert_eq!(u.commit_action(b), CommitAction::Proceed);
        u.on_trace_end_commit(b);
        let events = u.drain_events();
        assert!(events.iter().any(|e| matches!(e, ItrEvent::Mismatch { .. })));
        assert!(events.iter().any(|e| matches!(e, ItrEvent::RecoverySuccess { start_pc: 0x100 })));
        assert_eq!(u.stats().recoveries, 1);
        assert_eq!(u.stats().machine_checks, 0);
    }

    #[test]
    fn persistent_mismatch_raises_machine_check() {
        // The *cached* signature is the faulty one (inserted by a faulty
        // missed instance): every clean re-execution mismatches.
        let mut u = unit();
        // Dispatch a trace whose first instruction was faulty; it misses
        // and its (faulty) signature is written at commit.
        let faulty = add_sig().with_bit_flipped(30);
        u.on_dispatch(0x100, &faulty);
        u.on_dispatch(0x104, &add_sig());
        let r = u.on_dispatch(0x108, &branch_sig());
        commit_trace(&mut u, r.trace_seq);
        u.drain_events();

        // Clean instance: mismatch -> retry.
        let b = dispatch_trace(&mut u, 0x100);
        let CommitAction::Retry { start_pc } = u.commit_action(b) else {
            panic!("expected retry");
        };
        u.on_retry_flush(start_pc);

        // Clean again after flush: still mismatches (cached copy is bad,
        // parity is *valid* because the faulty signature was written
        // normally) -> machine check.
        let c = dispatch_trace(&mut u, 0x100);
        let action = u.commit_action(c);
        assert!(matches!(action, CommitAction::MachineCheck { start_pc: 0x100 }), "got {action:?}");
        u.on_machine_check(0x100);
        assert_eq!(u.stats().machine_checks, 1);
    }

    #[test]
    fn parity_error_convicts_the_cache_and_repairs() {
        let mut u = unit();
        let a = dispatch_trace(&mut u, 0x100);
        commit_trace(&mut u, a);
        // A fault strikes the stored signature itself.
        assert!(u.cache_mut().corrupt_signature(0x100, 13));

        let b = dispatch_trace(&mut u, 0x100);
        let CommitAction::Retry { start_pc } = u.commit_action(b) else {
            panic!("expected retry");
        };
        u.on_retry_flush(start_pc);

        // Retry mismatches again, but parity shows the cache is at fault:
        // the line is repaired and commit proceeds (§2.4).
        let c = dispatch_trace(&mut u, 0x100);
        assert_eq!(u.commit_action(c), CommitAction::Proceed);
        u.on_trace_end_commit(c);
        let events = u.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ItrEvent::CacheFaultRepaired { start_pc: 0x100 })));
        assert_eq!(u.stats().parity_repairs, 1);
        assert_eq!(u.stats().machine_checks, 0);
        // The repaired line now matches clean executions.
        let d = dispatch_trace(&mut u, 0x100);
        assert_eq!(u.commit_action(d), CommitAction::Proceed);
    }

    #[test]
    fn passive_mode_observes_but_proceeds() {
        let mut u = ItrUnit::new(ItrConfig {
            cache: ItrCacheConfig::new(64, Associativity::Ways(2)),
            max_trace_len: 16,
            rob_entries: 8,
            mode: ItrMode::Passive,
            ..ItrConfig::paper_default()
        });
        let a = dispatch_trace(&mut u, 0x100);
        commit_trace(&mut u, a);
        u.drain_events();
        let faulty = add_sig().with_bit_flipped(3);
        u.on_dispatch(0x100, &faulty);
        u.on_dispatch(0x104, &add_sig());
        let r = u.on_dispatch(0x108, &branch_sig());
        assert_eq!(u.commit_action(r.trace_seq), CommitAction::Proceed);
        assert!(u.drain_events().iter().any(|e| matches!(e, ItrEvent::Mismatch { .. })));
    }

    #[test]
    fn snapshot_restore_discards_wrong_path_traces() {
        let mut u = unit();
        let a = dispatch_trace(&mut u, 0x100);
        let snap = u.snapshot();
        // Wrong path: two more traces dispatched, then squashed.
        dispatch_trace(&mut u, 0x200);
        u.on_dispatch(0x300, &add_sig());
        u.restore(&snap);
        // Right path continues with a different trace.
        let b = dispatch_trace(&mut u, 0x400);
        assert_eq!(b, a + 1, "sequence numbers reused after rollback");
        commit_trace(&mut u, a);
        commit_trace(&mut u, b);
        assert_eq!(u.stats().traces_committed, 2);
    }

    #[test]
    fn mid_trace_snapshot_preserves_partial_signature() {
        let mut u = unit();
        // Trace: add, add, branch — snapshot after the first add.
        u.on_dispatch(0x100, &add_sig());
        let snap = u.snapshot();
        u.on_dispatch(0x104, &add_sig());
        u.restore(&snap);
        u.on_dispatch(0x104, &add_sig());
        let r = u.on_dispatch(0x108, &branch_sig());
        commit_trace(&mut u, r.trace_seq);
        u.drain_events();
        // Re-execute cleanly: the recorded signature must match, proving
        // the partial fold was restored correctly.
        let b = dispatch_trace(&mut u, 0x100);
        assert_eq!(u.commit_action(b), CommitAction::Proceed);
        assert_eq!(u.stats().mismatches, 0);
    }

    #[test]
    fn rob_forwarding_confirms_overlapping_instances() {
        // Two instances of the same trace in flight at once: the second
        // misses the cache (the first has not committed) but is confirmed
        // against the first via the ITR ROB.
        let mut u = unit();
        let a = dispatch_trace(&mut u, 0x100);
        let b = dispatch_trace(&mut u, 0x100);
        assert_eq!(u.commit_action(b), CommitAction::Proceed);
        assert_eq!(u.stats().rob_forward_hits, 1);
        commit_trace(&mut u, a);
        commit_trace(&mut u, b);
        // Only the first instance counts as a miss (recovery loss).
        assert_eq!(u.stats().recovery_loss_instrs, 3);
    }

    #[test]
    fn rob_forwarding_detects_mismatching_overlapping_instances() {
        let mut u = unit();
        let _a = dispatch_trace(&mut u, 0x100);
        // Second overlapping instance is faulty.
        let faulty = add_sig().with_bit_flipped(30);
        u.on_dispatch(0x100, &faulty);
        u.on_dispatch(0x104, &add_sig());
        let b = u.on_dispatch(0x108, &branch_sig());
        assert!(matches!(u.commit_action(b.trace_seq), CommitAction::Retry { start_pc: 0x100 }));
        assert_eq!(u.stats().mismatches, 1);
    }

    #[test]
    fn forwarding_disabled_treats_overlap_as_miss() {
        let mut u = ItrUnit::new(ItrConfig {
            cache: ItrCacheConfig::new(64, Associativity::Ways(2)),
            max_trace_len: 16,
            rob_entries: 8,
            mode: ItrMode::Active,
            rob_forwarding: false,
            ..ItrConfig::paper_default()
        });
        let a = dispatch_trace(&mut u, 0x100);
        let b = dispatch_trace(&mut u, 0x100);
        commit_trace(&mut u, a);
        commit_trace(&mut u, b);
        assert_eq!(u.stats().rob_forward_hits, 0);
        assert_eq!(u.stats().recovery_loss_instrs, 6, "both instances missed");
    }

    #[test]
    fn detection_loss_counted_on_unreferenced_eviction() {
        // Tiny fully-associative cache of 2 entries; three distinct traces
        // force an unreferenced eviction.
        let mut u = ItrUnit::new(ItrConfig {
            cache: ItrCacheConfig::new(2, Associativity::Full),
            max_trace_len: 16,
            rob_entries: 8,
            mode: ItrMode::Active,
            ..ItrConfig::paper_default()
        });
        for pc in [0x100u64, 0x200, 0x300] {
            let s = dispatch_trace(&mut u, pc);
            commit_trace(&mut u, s);
        }
        assert_eq!(u.stats().detection_loss_instrs, 3, "one 3-instr trace lost");
        assert_eq!(u.stats().recovery_loss_instrs, 9, "all three missed");
        assert!(u
            .drain_events()
            .iter()
            .any(|e| matches!(e, ItrEvent::EvictionUnreferenced { start_pc: 0x100, len: 3 })));
    }
}
