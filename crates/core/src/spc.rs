//! The sequential-PC (`spc`) check of §2.5: a commit-side assertion that
//! catches control-flow discontinuities the ITR cache cannot see, such as
//! PC faults at natural trace boundaries and faults on the `is_branch`
//! decode flag (§4 discusses the scenario in detail).

/// Commit-PC register plus the comparison rule of §2.5.
///
/// Sequential committing instructions add their length to the commit PC;
/// branching instructions update it with their calculated next PC. Every
/// committing instruction's PC is asserted equal to the commit PC.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialPcChecker {
    /// Expected PC of the next committing instruction; `None` until the
    /// first commit (or after a flush re-seeds it).
    expected: Option<u64>,
    violations: u64,
    checks: u64,
}

impl SequentialPcChecker {
    /// A fresh checker that accepts any first instruction.
    pub fn new() -> SequentialPcChecker {
        SequentialPcChecker::default()
    }

    /// Checks a committing instruction and advances the commit PC.
    ///
    /// * `pc` — the committing instruction's own PC,
    /// * `is_branch` — the (possibly faulty) `is_branch` decode flag,
    /// * `next_pc` — for branching instructions, the calculated next PC
    ///   from the execution unit; ignored for sequential instructions.
    ///
    /// Returns `true` if the check passed.
    pub fn check_and_advance(&mut self, pc: u64, is_branch: bool, next_pc: u64) -> bool {
        self.checks += 1;
        let ok = match self.expected {
            Some(exp) => exp == pc,
            None => true,
        };
        if !ok {
            self.violations += 1;
        }
        self.expected = Some(if is_branch { next_pc } else { pc + 4 });
        ok
    }

    /// Re-seeds the commit PC after a pipeline flush to `restart_pc`.
    pub fn reseed(&mut self, restart_pc: u64) {
        self.expected = Some(restart_pc);
    }

    /// Number of failed checks so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_flow_passes() {
        let mut c = SequentialPcChecker::new();
        assert!(c.check_and_advance(0x100, false, 0));
        assert!(c.check_and_advance(0x104, false, 0));
        assert!(c.check_and_advance(0x108, true, 0x200));
        assert!(c.check_and_advance(0x200, false, 0));
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn discontinuity_between_sequential_traces_fires() {
        // The §4 scenario: a branch whose is_branch flag was flipped to
        // false commits as "sequential", so the commit PC advances by 4;
        // the next instruction actually commits from the taken target.
        let mut c = SequentialPcChecker::new();
        assert!(c.check_and_advance(0x100, false, 0));
        // Faulty branch at 0x104 treated as sequential...
        assert!(c.check_and_advance(0x104, false, 0x300));
        // ...but the fetch unit correctly predicted taken to 0x300.
        assert!(!c.check_and_advance(0x300, false, 0), "spc must fire");
        assert_eq!(c.violations(), 1);
    }

    #[test]
    fn reseed_after_flush() {
        let mut c = SequentialPcChecker::new();
        c.check_and_advance(0x100, false, 0);
        c.reseed(0x500);
        assert!(c.check_and_advance(0x500, false, 0));
    }
}
