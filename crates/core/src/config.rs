//! Configuration of the ITR cache and unit.

use std::fmt;

/// Cache associativity, covering the full design space of §3 of the paper:
/// direct-mapped, 2/4/8/16-way, and fully associative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// Direct-mapped (one way per set).
    Direct,
    /// N-way set-associative.
    Ways(u32),
    /// Fully associative (a single set).
    Full,
}

impl Associativity {
    /// The six design points swept in Figures 6 and 7.
    pub const SWEEP: [Associativity; 6] = [
        Associativity::Direct,
        Associativity::Ways(2),
        Associativity::Ways(4),
        Associativity::Ways(8),
        Associativity::Ways(16),
        Associativity::Full,
    ];

    /// Number of ways given a total entry count.
    pub fn ways(self, entries: u32) -> u32 {
        match self {
            Associativity::Direct => 1,
            Associativity::Ways(w) => w,
            Associativity::Full => entries,
        }
    }

    /// Short label as used in the paper's figures (`dm`, `2-way`, ..., `fa`).
    pub fn label(self) -> String {
        match self {
            Associativity::Direct => "dm".to_string(),
            Associativity::Ways(w) => format!("{w}-way"),
            Associativity::Full => "fa".to_string(),
        }
    }
}

impl fmt::Display for Associativity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Geometry and policy options of an [`ItrCache`](crate::ItrCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItrCacheConfig {
    /// Total number of signature entries (256/512/1024 in the paper's sweep).
    pub entries: u32,
    /// Associativity.
    pub assoc: Associativity,
    /// Parity-protect each line so faults in the ITR cache itself are
    /// repaired instead of raising false machine checks (§2.4).
    pub parity: bool,
    /// Prefer evicting already-checked lines over unreferenced ones — the
    /// replacement-policy refinement sketched (but not studied) in §2.3.
    /// Not applicable to direct-mapped caches.
    pub checked_bit_replacement: bool,
}

impl ItrCacheConfig {
    /// A configuration with the given geometry and default policies
    /// (parity on, plain LRU).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, not a power of two, or not divisible by
    /// the way count.
    pub fn new(entries: u32, assoc: Associativity) -> ItrCacheConfig {
        let ways = assoc.ways(entries);
        assert!(entries > 0 && entries.is_power_of_two(), "entries must be a power of two");
        assert!(ways > 0 && entries.is_multiple_of(ways), "entries must divide into ways");
        ItrCacheConfig { entries, assoc, parity: true, checked_bit_replacement: false }
    }

    /// The paper's default evaluation point: 1024 signatures, 2-way (§4).
    pub fn paper_default() -> ItrCacheConfig {
        ItrCacheConfig::new(1024, Associativity::Ways(2))
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.assoc.ways(self.entries)
    }

    /// Number of ways per set.
    pub fn ways(&self) -> u32 {
        self.assoc.ways(self.entries)
    }

    /// The set a trace starting at `start_pc` indexes — the cache's
    /// PC-index mapping (§2.2: the word-aligned start PC, modulo the set
    /// count). [`crate::ItrCache`] and the static set-conflict analysis
    /// in `itr-analyze` share this function, so the analyzer's conflict
    /// map is the hardware mapping by construction.
    pub fn set_index(&self, start_pc: u64) -> u32 {
        ((start_pc >> 2) % u64::from(self.sets())) as u32
    }

    /// Enables or disables checked-bit-aware replacement (builder style).
    pub fn with_checked_bit_replacement(mut self, on: bool) -> ItrCacheConfig {
        self.checked_bit_replacement = on;
        self
    }

    /// Enables or disables per-line parity (builder style).
    pub fn with_parity(mut self, on: bool) -> ItrCacheConfig {
        self.parity = on;
        self
    }
}

impl Default for ItrCacheConfig {
    fn default() -> ItrCacheConfig {
        ItrCacheConfig::paper_default()
    }
}

/// Whether the [`ItrUnit`](crate::ItrUnit) acts on detections or only
/// records them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ItrMode {
    /// Detect and recover: signature mismatches trigger retry flushes and,
    /// on a second mismatch, a machine check (§2.2).
    #[default]
    Active,
    /// Detect only: mismatches are recorded as events but commit proceeds.
    /// Used by fault-injection campaigns to observe what *would* happen.
    Passive,
}

/// Full configuration of an [`ItrUnit`](crate::ItrUnit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItrConfig {
    /// ITR cache geometry and policies.
    pub cache: ItrCacheConfig,
    /// Maximum trace length before forced termination (16 in the paper).
    pub max_trace_len: u32,
    /// Capacity of the ITR ROB (sized to the number of in-flight branches).
    pub rob_entries: u32,
    /// Active (recovering) or passive (observing) operation.
    pub mode: ItrMode,
    /// On an ITR cache miss, also compare against an older *in-flight*
    /// instance of the same trace in the ITR ROB (analogous to
    /// store-queue forwarding). Without this, a loop shorter than the
    /// pipeline's in-flight window would never hit: iteration *i+1*
    /// dispatches and probes before iteration *i* commits and writes its
    /// signature. The paper does not discuss the window; forwarding is
    /// the natural hardware resolution and is on by default.
    pub rob_forwarding: bool,
    /// Signature fold function (§2.1: "could be done in many ways").
    pub fold: crate::FoldKind,
    /// ITR cache read latency in cycles. 0 models the paper's assumption
    /// that the read launched at dispatch "is complete before the
    /// instructions in the trace are ready to commit" (§2.2); a positive
    /// value makes the commit interlock stall until the read returns
    /// (the host must drive [`ItrUnit::advance`](crate::ItrUnit::advance)).
    pub cache_read_latency: u32,
    /// §3 fallback: when a trace misses in the ITR cache, redundantly
    /// fetch and decode it and compare the two copies before commit —
    /// conventional time redundancy engaged only where inherent time
    /// redundancy is unavailable. Closes the recovery-coverage gap at the
    /// cost of extra frontend bandwidth and energy on misses.
    pub redundant_fetch_on_miss: bool,
}

impl ItrConfig {
    /// The paper's configuration: 1024-signature 2-way cache, 16-instruction
    /// traces, 64-entry ITR ROB, active recovery.
    pub fn paper_default() -> ItrConfig {
        ItrConfig {
            cache: ItrCacheConfig::paper_default(),
            max_trace_len: crate::signature::MAX_TRACE_LEN,
            rob_entries: 64,
            mode: ItrMode::Active,
            rob_forwarding: true,
            fold: crate::FoldKind::Xor,
            cache_read_latency: 0,
            redundant_fetch_on_miss: false,
        }
    }
}

impl Default for ItrConfig {
    fn default() -> ItrConfig {
        ItrConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_paper_design_points() {
        assert_eq!(Associativity::SWEEP.len(), 6);
        assert_eq!(Associativity::SWEEP[0].label(), "dm");
        assert_eq!(Associativity::SWEEP[5].label(), "fa");
    }

    #[test]
    fn geometry_derivation() {
        let c = ItrCacheConfig::new(1024, Associativity::Ways(2));
        assert_eq!(c.sets(), 512);
        assert_eq!(c.ways(), 2);
        let c = ItrCacheConfig::new(256, Associativity::Direct);
        assert_eq!(c.sets(), 256);
        let c = ItrCacheConfig::new(256, Associativity::Full);
        assert_eq!(c.sets(), 1);
        assert_eq!(c.ways(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_entries_panic() {
        ItrCacheConfig::new(300, Associativity::Direct);
    }
}
