//! Replay: drive ITR state machines from a recorded [`TapStream`]
//! instead of a live pipeline.
//!
//! The decode-signal stream the ITR unit consumes depends only on the
//! workload (and injected faults), never on the ITR geometry under
//! evaluation — so one recorded stream can be fanned out to arbitrarily
//! many design points in a single pass. Three levels of replay are
//! provided, cheapest first:
//!
//! * [`fan_out_records`] — one committed-trace stream observed by N
//!   [`CoverageModel`]s (geometry sweeps at fixed trace length),
//! * [`TraceReplay`] — re-forms traces from raw dispatch signals with a
//!   different trace-length limit or fold function, without re-running
//!   the simulator (the trace-length ablation),
//! * [`TapReplayer`] / [`replay_units`] — a full [`ItrUnit`] driven
//!   through every dispatch, commit and squash of a pipeline run; its
//!   exported report is byte-identical to the in-pipeline unit's.
//!
//! The byte-identity invariant holds because the unit's behaviour is a
//! pure function of its call sequence, and the tap records exactly that
//! call sequence: dispatches in dispatch order, retirements in commit
//! order, and every squash with enough context to restore the same
//! snapshot the pipeline restored.

use crate::config::ItrConfig;
use crate::coverage::CoverageModel;
use crate::signature::{FoldKind, TraceBuilder, TraceRecord};
use crate::tap::{TapEvent, TapStream};
use crate::unit::{ItrSnapshot, ItrUnit};
use itr_isa::DecodeSignals;
use std::collections::VecDeque;

/// Observes one committed-trace stream with many coverage models in a
/// single pass. Each model sees exactly the sequence it would have seen
/// driven alone, so its report is byte-identical.
pub fn fan_out_records<'a, I>(stream: I, models: &mut [CoverageModel])
where
    I: IntoIterator<Item = &'a TraceRecord>,
{
    for trace in stream {
        for model in models.iter_mut() {
            model.observe(trace);
        }
    }
}

/// Re-forms committed traces from recorded dispatch signals.
///
/// Equivalent to running `TraceStream::with_trace_len` over the same
/// execution: the recorded stream contains every architecturally
/// executed instruction in order, and trace formation (§2.1) is a pure
/// function of that sequence. One recording therefore serves every
/// trace-length limit and fold function.
#[derive(Debug, Clone, Copy)]
pub struct TraceReplay {
    builder: TraceBuilder,
}

impl TraceReplay {
    /// Replays trace formation with the given length limit and XOR fold.
    pub fn new(max_len: u32) -> TraceReplay {
        TraceReplay::with_kind(max_len, FoldKind::Xor)
    }

    /// Replays trace formation with the given length limit and fold.
    pub fn with_kind(max_len: u32, kind: FoldKind) -> TraceReplay {
        TraceReplay { builder: TraceBuilder::with_kind(max_len, kind) }
    }

    /// Feeds one recorded dispatch `(pc, packed signals, extra)`;
    /// returns the completed trace when this instruction terminated one.
    pub fn push(&mut self, pc: u64, signals: u64, extra: u64) -> Option<TraceRecord> {
        self.builder.push_with_extra(pc, &DecodeSignals::unpack(signals), extra)
    }
}

/// One in-flight instruction mirrored from the recording host.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    trace_seq: crate::ItrRobIndex,
    trace_end: bool,
    snapshot: ItrSnapshot,
}

/// Drives one [`ItrUnit`] through a recorded tap stream.
///
/// The replayer keeps a mirror of the host's in-flight window so that
/// [`TapEvent::Commit`] retires the same instructions and
/// [`TapEvent::Rewind`] restores the same snapshot the host restored.
#[derive(Debug, Clone)]
pub struct TapReplayer {
    unit: ItrUnit,
    in_flight: VecDeque<InFlight>,
}

impl TapReplayer {
    /// Creates a replayer for one design point.
    ///
    /// # Panics
    ///
    /// Panics if `config.cache_read_latency` is non-zero: the tap
    /// stream carries no cycle timestamps, so latency-delayed cache
    /// reads cannot be replayed.
    pub fn new(config: ItrConfig) -> TapReplayer {
        assert_eq!(
            config.cache_read_latency, 0,
            "tap replay requires cache_read_latency = 0 (no cycle timestamps in the stream)"
        );
        TapReplayer { unit: ItrUnit::new(config), in_flight: VecDeque::new() }
    }

    /// Applies one recorded event.
    pub fn apply(&mut self, event: &TapEvent) {
        match *event {
            TapEvent::Dispatch { pc, signals, extra } => {
                let result =
                    self.unit.on_dispatch_extended(pc, &DecodeSignals::unpack(signals), extra);
                self.in_flight.push_back(InFlight {
                    trace_seq: result.trace_seq,
                    trace_end: result.trace_end,
                    snapshot: self.unit.snapshot(),
                });
            }
            TapEvent::Commit { n } => {
                for _ in 0..n {
                    let retired =
                        self.in_flight.pop_front().expect("commit event with empty window");
                    if retired.trace_end {
                        self.unit.on_trace_end_commit(retired.trace_seq);
                    }
                }
            }
            TapEvent::Rewind { keep } => {
                let keep = usize::try_from(keep).expect("rewind keep fits usize");
                assert!(
                    keep >= 1 && keep <= self.in_flight.len(),
                    "rewind to {keep} with {} in flight",
                    self.in_flight.len()
                );
                self.in_flight.truncate(keep);
                let tail = self.in_flight[keep - 1];
                self.unit.restore(&tail.snapshot);
            }
            TapEvent::RetryFlush { start_pc } => {
                self.unit.on_retry_flush(start_pc);
                self.in_flight.clear();
            }
            TapEvent::FullFlush => {
                self.unit.on_full_flush();
                self.in_flight.clear();
            }
            TapEvent::MachineCheck { start_pc } => {
                self.unit.on_machine_check(start_pc);
            }
        }
    }

    /// Applies every event of a stream.
    pub fn replay(&mut self, stream: &TapStream) {
        for event in &stream.events {
            self.apply(event);
        }
    }

    /// The replayed unit.
    pub fn unit(&self) -> &ItrUnit {
        &self.unit
    }

    /// Mutable access (e.g. to drain events mid-replay).
    pub fn unit_mut(&mut self) -> &mut ItrUnit {
        &mut self.unit
    }

    /// Consumes the replayer, returning the unit.
    pub fn into_unit(self) -> ItrUnit {
        self.unit
    }
}

/// Fans one recorded stream out to N design points in a single pass and
/// returns the replayed units, in `configs` order.
pub fn replay_units(stream: &TapStream, configs: &[ItrConfig]) -> Vec<ItrUnit> {
    let mut replayers: Vec<TapReplayer> =
        configs.iter().map(|&config| TapReplayer::new(config)).collect();
    for event in &stream.events {
        for replayer in replayers.iter_mut() {
            replayer.apply(event);
        }
    }
    replayers.into_iter().map(TapReplayer::into_unit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ItrCacheConfig, ItrMode};
    use itr_isa::{Instruction, Opcode};
    use itr_stats::Report;

    fn sig(inst: &Instruction) -> DecodeSignals {
        DecodeSignals::from_instruction(inst)
    }

    fn add_sig() -> DecodeSignals {
        sig(&Instruction::rrr(Opcode::Add, 1, 2, 3))
    }

    fn branch_sig() -> DecodeSignals {
        sig(&Instruction::branch(Opcode::Bne, 1, 2, -2))
    }

    fn small_config() -> ItrConfig {
        ItrConfig {
            cache: ItrCacheConfig::new(64, Associativity::Ways(2)),
            max_trace_len: 16,
            rob_entries: 8,
            mode: ItrMode::Active,
            ..ItrConfig::paper_default()
        }
    }

    fn export_json(unit: &ItrUnit) -> String {
        let mut report = Report::new();
        unit.export(&mut report);
        report.to_json()
    }

    /// Drives a unit directly while recording the same calls into a tap,
    /// then asserts the replayed unit exports identical bytes.
    #[test]
    fn replay_matches_direct_unit_with_squashes() {
        let mut unit = ItrUnit::new(small_config());
        let mut tap = TapStream::new("direct");
        let mut window: Vec<(crate::ItrRobIndex, bool)> = Vec::new();

        let dispatch = |unit: &mut ItrUnit,
                        tap: &mut TapStream,
                        window: &mut Vec<(crate::ItrRobIndex, bool)>,
                        pc: u64,
                        s: &DecodeSignals| {
            let r = unit.on_dispatch_extended(pc, s, 0);
            tap.record_dispatch(pc, s, 0);
            window.push((r.trace_seq, r.trace_end));
        };

        // Two committed traces at 0x100.
        for _ in 0..2 {
            dispatch(&mut unit, &mut tap, &mut window, 0x100, &add_sig());
            dispatch(&mut unit, &mut tap, &mut window, 0x104, &add_sig());
            dispatch(&mut unit, &mut tap, &mut window, 0x108, &branch_sig());
            for (seq, end) in window.drain(..) {
                if end {
                    unit.on_trace_end_commit(seq);
                }
                tap.record_commit();
            }
        }
        // Wrong path dispatched after the branch, then squashed back to it.
        dispatch(&mut unit, &mut tap, &mut window, 0x100, &add_sig());
        dispatch(&mut unit, &mut tap, &mut window, 0x104, &add_sig());
        dispatch(&mut unit, &mut tap, &mut window, 0x108, &branch_sig());
        let snap = unit.snapshot();
        dispatch(&mut unit, &mut tap, &mut window, 0x200, &add_sig());
        dispatch(&mut unit, &mut tap, &mut window, 0x204, &add_sig());
        unit.restore(&snap);
        window.truncate(3);
        tap.record_rewind(3);
        // Right path: commit the surviving trace.
        for (seq, end) in window.drain(..) {
            if end {
                unit.on_trace_end_commit(seq);
            }
            tap.record_commit();
        }
        // A retry flush and a fresh re-execution.
        unit.on_retry_flush(0x100);
        tap.record_retry_flush(0x100);
        dispatch(&mut unit, &mut tap, &mut window, 0x100, &add_sig());
        dispatch(&mut unit, &mut tap, &mut window, 0x104, &add_sig());
        dispatch(&mut unit, &mut tap, &mut window, 0x108, &branch_sig());
        for (seq, end) in window.drain(..) {
            if end {
                unit.on_trace_end_commit(seq);
            }
            tap.record_commit();
        }
        // And a non-retry full flush at the end.
        unit.on_full_flush();
        tap.record_full_flush();

        let mut replayer = TapReplayer::new(small_config());
        replayer.replay(&tap);
        assert_eq!(export_json(replayer.unit()), export_json(&unit));
        assert_eq!(replayer.unit().stats(), unit.stats());
    }

    #[test]
    fn replay_units_fans_one_stream_to_many_configs() {
        let mut tap = TapStream::new("fan");
        for round in 0..3u64 {
            for pc in [0x100u64, 0x200, 0x300] {
                tap.record_dispatch(pc, &add_sig(), 0);
                tap.record_commit();
                tap.record_dispatch(pc + 4, &branch_sig(), 0);
                tap.record_commit();
            }
            let _ = round;
        }
        let configs = [
            ItrConfig { cache: ItrCacheConfig::new(64, Associativity::Full), ..small_config() },
            ItrConfig { cache: ItrCacheConfig::new(2, Associativity::Full), ..small_config() },
        ];
        let units = replay_units(&tap, &configs);
        assert_eq!(units.len(), 2);
        // Both saw 9 trace-terminating commits; the 2-entry cache lost
        // coverage to evictions, the 64-entry one did not.
        assert_eq!(units[0].stats().traces_committed, 9);
        assert_eq!(units[1].stats().traces_committed, 9);
        assert_eq!(units[0].stats().detection_loss_instrs, 0);
        assert!(units[1].stats().detection_loss_instrs > 0);
    }

    #[test]
    fn trace_replay_matches_trace_builder() {
        let stream = [
            (0x100u64, add_sig()),
            (0x104, add_sig()),
            (0x108, branch_sig()),
            (0x10c, add_sig()),
            (0x110, branch_sig()),
        ];
        for max_len in [1u32, 2, 16] {
            let mut builder = TraceBuilder::new(max_len);
            let mut replay = TraceReplay::new(max_len);
            for (pc, s) in &stream {
                let direct = builder.push(*pc, s);
                let replayed = replay.push(*pc, s.pack(), 0);
                assert_eq!(direct, replayed, "max_len {max_len} pc {pc:#x}");
            }
        }
    }

    #[test]
    fn fan_out_records_matches_sequential_observation() {
        let records: Vec<TraceRecord> = (0..200u64)
            .map(|i| TraceRecord { start_pc: 0x400 + (i % 7) * 64, signature: i * 13, len: 4 })
            .collect();
        let configs = [
            ItrCacheConfig::new(4, Associativity::Direct),
            ItrCacheConfig::new(16, Associativity::Ways(2)),
        ];
        let mut fanned: Vec<CoverageModel> =
            configs.iter().map(|&c| CoverageModel::new(c)).collect();
        fan_out_records(&records, &mut fanned);
        for (i, &config) in configs.iter().enumerate() {
            let mut direct = CoverageModel::new(config);
            for t in &records {
                direct.observe(t);
            }
            let mut a = Report::new();
            let mut b = Report::new();
            direct.export(&mut a);
            fanned[i].export(&mut b);
            assert_eq!(a.to_json(), b.to_json(), "config {i}");
        }
    }

    #[test]
    #[should_panic(expected = "cache_read_latency")]
    fn latency_configs_are_rejected() {
        let config = ItrConfig { cache_read_latency: 2, ..small_config() };
        let _ = TapReplayer::new(config);
    }
}
