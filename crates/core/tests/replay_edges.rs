//! Replay edge cases around context-switch flush points.
//!
//! The hostile-environment scheduler (`itr-env`) injects
//! [`TapEvent::FullFlush`] markers at context switches, so recorded
//! streams now legitimately contain orderings the single-program
//! pipeline never produced: flushes back-to-back, a retry flush cut
//! short by a switch flush, rewinds relative to a post-flush window, and
//! machine checks adjacent to flush points. Each test drives an
//! [`ItrUnit`] directly while recording the identical call sequence into
//! a tap, then asserts the replayed unit's exported report is
//! byte-identical — the `itr-tap/v1` contract.

#![allow(clippy::unwrap_used)]

use itr_core::{
    Associativity, ItrCacheConfig, ItrConfig, ItrMode, ItrRobIndex, ItrUnit, TapReplayer, TapStream,
};
use itr_isa::{DecodeSignals, Instruction, Opcode};
use itr_stats::Report;

fn sig(inst: &Instruction) -> DecodeSignals {
    DecodeSignals::from_instruction(inst)
}

fn add_sig() -> DecodeSignals {
    sig(&Instruction::rrr(Opcode::Add, 1, 2, 3))
}

fn branch_sig() -> DecodeSignals {
    sig(&Instruction::branch(Opcode::Bne, 1, 2, -2))
}

fn small_config() -> ItrConfig {
    ItrConfig {
        cache: ItrCacheConfig::new(64, Associativity::Ways(2)),
        max_trace_len: 16,
        rob_entries: 8,
        mode: ItrMode::Active,
        ..ItrConfig::paper_default()
    }
}

fn export_json(unit: &ItrUnit) -> String {
    let mut report = Report::new();
    unit.export(&mut report);
    report.to_json()
}

/// Direct-drive harness mirroring what the pipeline host does, recording
/// every call into a tap for the replay comparison.
struct Host {
    unit: ItrUnit,
    tap: TapStream,
    window: Vec<(ItrRobIndex, bool)>,
}

impl Host {
    fn new(name: &str) -> Host {
        Host { unit: ItrUnit::new(small_config()), tap: TapStream::new(name), window: Vec::new() }
    }

    fn dispatch(&mut self, pc: u64, s: &DecodeSignals) {
        let r = self.unit.on_dispatch_extended(pc, s, 0);
        self.tap.record_dispatch(pc, s, 0);
        self.window.push((r.trace_seq, r.trace_end));
    }

    /// Dispatches one three-instruction trace at `base` and commits it.
    fn run_trace(&mut self, base: u64) {
        self.dispatch(base, &add_sig());
        self.dispatch(base + 4, &add_sig());
        self.dispatch(base + 8, &branch_sig());
        self.commit_all();
    }

    fn commit_all(&mut self) {
        for (seq, end) in self.window.drain(..) {
            if end {
                self.unit.on_trace_end_commit(seq);
            }
            self.tap.record_commit();
        }
    }

    fn full_flush(&mut self) {
        self.unit.on_full_flush();
        self.tap.record_full_flush();
        self.window.clear();
    }

    fn retry_flush(&mut self, start_pc: u64) {
        self.unit.on_retry_flush(start_pc);
        self.tap.record_retry_flush(start_pc);
        self.window.clear();
    }

    fn machine_check(&mut self, start_pc: u64) {
        self.unit.on_machine_check(start_pc);
        self.tap.record_machine_check(start_pc);
    }

    fn rewind_to(&mut self, keep: usize) {
        // The host restores the snapshot taken at the instruction that
        // survives at the tail; the replayer reconstructs the same
        // snapshot from its mirrored window.
        self.window.truncate(keep);
        self.tap.record_rewind(keep as u64);
    }

    fn assert_replay_matches(&self) {
        let mut replayer = TapReplayer::new(small_config());
        replayer.replay(&self.tap);
        assert_eq!(export_json(replayer.unit()), export_json(&self.unit));
        assert_eq!(replayer.unit().stats(), self.unit.stats());
    }
}

#[test]
fn back_to_back_full_flushes_replay_identically() {
    // A context switch right after another (quantum expires during the
    // switch path): the second flush must be a no-op on an already-empty
    // window, in both the direct unit and the replay.
    let mut h = Host::new("double-flush");
    h.run_trace(0x100);
    h.dispatch(0x100, &add_sig()); // left in flight across the switch
    h.full_flush();
    h.full_flush();
    h.run_trace(0x100);
    h.assert_replay_matches();
}

#[test]
fn retry_flush_then_switch_flush_replays_identically() {
    // A mismatch arms a retry, and the context switch flushes before the
    // retried trace completes: the retry stays armed across FullFlush
    // (the armed PC is unit state, not window state), and the re-entered
    // program re-runs the trace.
    let mut h = Host::new("retry-then-switch");
    h.run_trace(0x100);
    h.retry_flush(0x100);
    h.full_flush();
    h.run_trace(0x100);
    h.run_trace(0x100);
    h.assert_replay_matches();
}

#[test]
fn flush_then_rewind_replays_relative_to_the_new_window() {
    // A misprediction squash *after* a context-switch flush: the rewind's
    // `keep` is relative to the post-flush window only. The replayer's
    // mirror must agree — if the flush failed to clear its window the
    // restored snapshot would be the pre-flush one.
    let mut h = Host::new("flush-then-rewind");
    h.run_trace(0x100);
    h.dispatch(0x200, &add_sig()); // in flight at the switch
    h.full_flush();
    // Post-switch: a trace plus wrong-path dispatches.
    h.dispatch(0x100, &add_sig());
    h.dispatch(0x104, &add_sig());
    h.dispatch(0x108, &branch_sig());
    let snap = h.unit.snapshot();
    h.dispatch(0x300, &add_sig());
    h.dispatch(0x304, &add_sig());
    h.unit.restore(&snap);
    h.rewind_to(3);
    h.commit_all();
    h.assert_replay_matches();
}

#[test]
fn machine_check_ordering_around_flush_points() {
    // An abort raised at the switch boundary: machine check before the
    // flush (host aborts, OS flushes) and a later one with no flush
    // after it. Counters must replay exactly.
    let mut h = Host::new("mcheck-flush");
    h.run_trace(0x100);
    h.machine_check(0x100);
    h.full_flush();
    h.run_trace(0x100);
    h.machine_check(0x100);
    h.assert_replay_matches();
    assert_eq!(h.unit.stats().machine_checks, 2);
}

#[test]
fn back_to_back_retry_flushes_replay_identically() {
    // Two retries without a committed trace in between (the second
    // mismatch surfaces during the first retry's refetch). The replayer
    // must clear and re-clear its mirror without under- or over-counting.
    let mut h = Host::new("double-retry");
    h.run_trace(0x100);
    h.dispatch(0x100, &add_sig());
    h.retry_flush(0x100);
    h.retry_flush(0x100);
    h.run_trace(0x100);
    h.assert_replay_matches();
    assert_eq!(h.unit.stats().retries, 2);
}

#[test]
fn switch_flush_between_programs_preserves_cache_contents() {
    // The defining property of pollute-on-switch interleaving: FullFlush
    // clears in-flight state but NOT the ITR cache, so program A's lines
    // survive program B's quantum and still hit afterwards.
    let mut h = Host::new("cache-survives");
    h.run_trace(0x100); // program A: miss, insert
    h.full_flush(); // switch to B
    h.run_trace(0x8100); // program B: its own miss
    h.full_flush(); // switch back to A
    h.run_trace(0x100); // A's line still resident: hit
    h.assert_replay_matches();
    assert!(h.unit.cache().peek(0x100).is_some());
    assert!(h.unit.cache().peek(0x8100).is_some());
    assert_eq!(h.unit.cache().stats().hits, 1);
}

#[test]
#[should_panic(expected = "rewind to")]
fn rewind_across_a_flush_point_is_rejected() {
    // A rewind whose `keep` reaches across a flush is a malformed
    // stream: the replayer's window mirror is empty, so it must refuse
    // rather than silently restore a stale snapshot.
    let mut tap = TapStream::new("malformed");
    tap.record_dispatch(0x100, &add_sig(), 0);
    tap.record_full_flush();
    tap.record_rewind(1);
    let mut replayer = TapReplayer::new(small_config());
    replayer.replay(&tap);
}
