//! The artifact manifest (`results/MANIFEST.json`).
//!
//! Emit jobs advertise the files they wrote through their shard `data`
//! payload (`{"artifacts": ["fig8_injection.csv", ...]}`, paths relative
//! to the output directory); the manifest collects them with sizes and
//! provenance so a consumer can tell a complete reproduction from a
//! partial one without diffing directories.

use crate::job::Blackboard;
use itr_stats::json::Value;
use std::path::Path;

/// One manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Path relative to the output directory.
    pub path: String,
    /// File size in bytes (0 when missing on disk).
    pub bytes: u64,
    /// Job that produced the artifact.
    pub job: String,
}

/// Scans the blackboard for advertised artifacts, in job-name order.
pub fn collect_artifacts(board: &Blackboard, out_dir: &Path) -> Vec<ManifestEntry> {
    let mut entries = Vec::new();
    for (job, result) in board.iter() {
        for data in result.data() {
            let Some(list) = data.get("artifacts").and_then(Value::as_array) else { continue };
            for artifact in list {
                let Some(rel) = artifact.as_str() else { continue };
                let bytes = std::fs::metadata(out_dir.join(rel)).map(|m| m.len()).unwrap_or(0);
                entries.push(ManifestEntry { path: rel.to_string(), bytes, job: job.to_string() });
            }
        }
    }
    entries
}

/// Shard accounting recorded alongside the artifacts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardCounts {
    /// Shards executed this run.
    pub executed: u32,
    /// Shards replayed from the journal.
    pub journaled: u32,
    /// Shards quarantined.
    pub quarantined: u32,
}

/// Writes `MANIFEST.json` into `out_dir`.
pub fn write_manifest(
    out_dir: &Path,
    mode: &str,
    fingerprint: u64,
    counts: ShardCounts,
    artifacts: &[ManifestEntry],
) -> std::io::Result<()> {
    let entries = artifacts
        .iter()
        .map(|a| {
            Value::Object(vec![
                ("path".into(), Value::Str(a.path.clone())),
                ("bytes".into(), Value::UInt(a.bytes)),
                ("job".into(), Value::Str(a.job.clone())),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("schema".into(), Value::Str(crate::journal::SCHEMA.into())),
        ("mode".into(), Value::Str(mode.into())),
        ("fingerprint".into(), Value::UInt(fingerprint)),
        (
            "shards".into(),
            Value::Object(vec![
                ("executed".into(), Value::UInt(counts.executed as u64)),
                ("journaled".into(), Value::UInt(counts.journaled as u64)),
                ("quarantined".into(), Value::UInt(counts.quarantined as u64)),
            ]),
        ),
        ("artifacts".into(), Value::Array(entries)),
    ]);
    std::fs::create_dir_all(out_dir)?;
    std::fs::write(out_dir.join("MANIFEST.json"), doc.to_json() + "\n")
}
