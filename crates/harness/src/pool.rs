//! The work-stealing thread pool behind the scheduler, plus a scoped
//! helper for in-crate sharded fan-out (used by `faults::campaign`).
//!
//! Each worker owns a deque: it pushes/pops its own work at the front and
//! steals from the *back* of sibling deques when idle, so long shards
//! naturally spread across workers regardless of which job produced them.
//! The runner injects new shards round-robin. Workers are detached
//! threads: a worker stuck inside a hung shard can be *abandoned* by the
//! watchdog — its queue index is re-spawned with a fresh thread (bumping
//! the slot's epoch so the stuck thread retires itself if it ever
//! returns) and the run keeps going.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of pool work. The argument is the executing worker's index, so
/// the runner can tell the watchdog which thread to abandon on timeout.
pub type Task = Box<dyn FnOnce(usize) + Send>;

struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Per-slot epoch; a worker exits once its spawn epoch goes stale
    /// (the watchdog re-spawned its slot after abandoning it).
    epochs: Vec<AtomicUsize>,
    shutdown: AtomicBool,
    idle: Mutex<()>,
    wake: Condvar,
}

/// The work-stealing pool.
pub struct Pool {
    shared: Arc<Shared>,
    next: AtomicUsize,
}

impl Pool {
    /// Spawns `threads` detached workers (at least one).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            epochs: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        });
        let pool = Pool { shared, next: AtomicUsize::new(0) };
        for w in 0..threads {
            pool.spawn_worker(w, 0);
        }
        pool
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Enqueues a task (round-robin across worker deques).
    pub fn submit(&self, task: Task) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[w].lock().expect("queue poisoned").push_back(task);
        self.shared.wake.notify_all();
    }

    /// Replaces the worker in `slot` with a fresh thread. The previous
    /// occupant — presumed stuck inside an abandoned shard — sees the
    /// bumped epoch and exits instead of double-draining the queue if it
    /// ever comes back.
    pub fn respawn(&self, slot: usize) {
        let epoch = self.shared.epochs[slot].fetch_add(1, Ordering::SeqCst) + 1;
        self.spawn_worker(slot, epoch);
    }

    /// Asks workers to exit once the queues drain. Abandoned threads
    /// (still inside a hung shard) are leaked by design; they hold no
    /// locks and die with the process.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
    }

    fn spawn_worker(&self, slot: usize, epoch: usize) {
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name(format!("itr-harness-{slot}"))
            .spawn(move || worker_loop(&shared, slot, epoch))
            .expect("spawn pool worker");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, slot: usize, epoch: usize) {
    let n = shared.queues.len();
    loop {
        if shared.epochs[slot].load(Ordering::SeqCst) != epoch {
            return; // superseded by a respawn
        }
        // Own work first (front), then steal from siblings (back).
        let task = shared.queues[slot].lock().expect("queue poisoned").pop_front().or_else(|| {
            (1..n).find_map(|d| {
                shared.queues[(slot + d) % n].lock().expect("queue poisoned").pop_back()
            })
        });
        match task {
            Some(task) => task(slot),
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let guard = shared.idle.lock().expect("idle poisoned");
                // Re-check under the lock, then sleep briefly; the timeout
                // also bounds how long a stale-epoch worker lingers.
                let _unused = shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(25))
                    .expect("idle poisoned");
            }
        }
    }
}

/// Runs `tasks` across a scoped worker set and returns their outputs in
/// task order, independent of scheduling. Idle workers claim the next
/// unstarted task, so a slow shard never serializes the rest behind it.
/// `threads == 0` uses the available parallelism.
pub fn run_sharded<T, F>(threads: usize, tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let n = tasks.len();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let task = tasks[i].lock().expect("task slot poisoned").take().expect("claimed");
                *slots[i].lock().expect("result slot poisoned") = Some(task());
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot poisoned").expect("task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn pool_runs_every_task_across_workers() {
        let pool = Pool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100u32 {
            let tx = tx.clone();
            pool.submit(Box::new(move |_w| tx.send(i).expect("send")));
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn idle_workers_steal_queued_work() {
        // One worker slot gets all tasks (round-robin over 1 deque when
        // submitted before others wake), but with 4 workers every task
        // still completes promptly because siblings steal.
        let pool = Pool::new(4);
        let (tx, rx) = mpsc::channel();
        let workers_seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        for _ in 0..64 {
            let tx = tx.clone();
            let seen = Arc::clone(&workers_seen);
            pool.submit(Box::new(move |w| {
                std::thread::sleep(Duration::from_millis(2));
                seen.lock().expect("seen").insert(w);
                tx.send(()).expect("send");
            }));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 64);
        // With 64 × 2ms tasks and 4 workers, more than one worker must
        // have participated (stealing or round-robin injection).
        assert!(workers_seen.lock().expect("seen").len() > 1);
    }

    #[test]
    fn respawn_replaces_a_stuck_worker() {
        let pool = Pool::new(2);
        let (tx, rx) = mpsc::channel();
        let blocked = Arc::new(AtomicBool::new(false));
        let b = Arc::clone(&blocked);
        // Stick worker: spins until released, telling us its slot.
        let (slot_tx, slot_rx) = mpsc::channel();
        pool.submit(Box::new(move |w| {
            slot_tx.send(w).expect("send slot");
            while !b.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
        let stuck_slot = slot_rx.recv().expect("stuck task started");
        pool.respawn(stuck_slot);
        // New work lands on the respawned slot's queue and still runs.
        for i in 0..8u32 {
            let tx = tx.clone();
            pool.submit(Box::new(move |_| tx.send(i).expect("send")));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
        blocked.store(true, Ordering::SeqCst); // release the leaked thread
    }

    #[test]
    fn run_sharded_returns_outputs_in_task_order() {
        let tasks: Vec<_> = (0..17u64)
            .map(|i| {
                move || {
                    // Uneven durations exercise the claim loop.
                    std::thread::sleep(Duration::from_millis((17 - i) % 5));
                    i * i
                }
            })
            .collect();
        let out = run_sharded(4, tasks);
        assert_eq!(out, (0..17u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_sharded_handles_more_threads_than_tasks() {
        let out = run_sharded(16, vec![|| 1u32, || 2]);
        assert_eq!(out, vec![1, 2]);
        let empty: Vec<u32> = run_sharded(4, Vec::<fn() -> u32>::new());
        assert!(empty.is_empty());
    }
}
