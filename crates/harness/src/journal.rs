//! The append-only run journal (`results/journal.jsonl`).
//!
//! One JSON object per line, schema-tagged `itr-harness/v1`:
//!
//! ```json
//! {"schema":"itr-harness/v1","kind":"run","fingerprint":123,"mode":"quick"}
//! {"schema":"itr-harness/v1","kind":"shard","job":"fig8:bzip","shard":2,
//!  "seed_lo":50,"seed_hi":75,"elapsed_ms":810,
//!  "payload":{"rows":[...],"text":"...","report":{...},"data":{...}}}
//! {"schema":"itr-harness/v1","kind":"quarantine","job":"fig8:gcc","shard":1,
//!  "seed_lo":25,"seed_hi":50,"reason":"deadline 30s exceeded"}
//! ```
//!
//! Crash safety: every line is flushed before the shard counts as
//! journaled, the loader tolerates a torn final line (a crash mid-write
//! loses at most the in-flight shard), and resumption rewrites the file
//! from its valid entries via a temp-file rename so a torn tail can never
//! corrupt the lines appended after it. The `run` header pins the
//! configuration fingerprint; resuming under different scale parameters
//! is refused rather than silently mixing incompatible shards.

use crate::job::ShardPayload;
use itr_stats::json::Value;
use itr_stats::Report;
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Journal schema identifier.
pub const SCHEMA: &str = "itr-harness/v1";

/// One parsed journal line.
#[derive(Debug, Clone)]
pub enum Entry {
    /// The run header.
    Run {
        /// Configuration fingerprint the journal was written under.
        fingerprint: u64,
        /// Mode label (`quick`/`full`), informational.
        mode: String,
    },
    /// A completed shard with its payload.
    Shard {
        /// Owning job.
        job: String,
        /// Shard index within the job.
        index: u32,
        /// Covered seed range.
        seed_lo: u64,
        /// Exclusive upper bound of the range.
        seed_hi: u64,
        /// Wall-clock milliseconds the shard took.
        elapsed_ms: u64,
        /// The shard's output.
        payload: ShardPayload,
    },
    /// A shard the watchdog (or a panic) removed from the run.
    Quarantine {
        /// Owning job.
        job: String,
        /// Shard index within the job.
        index: u32,
        /// Covered seed range.
        seed_lo: u64,
        /// Exclusive upper bound of the range.
        seed_hi: u64,
        /// Why it was quarantined.
        reason: String,
    },
}

/// Append handle for a live run.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Starts a fresh journal (truncating any previous one) and writes
    /// the run header.
    pub fn create(path: &Path, fingerprint: u64, mode: &str) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::create(path)?;
        let mut journal = Journal { file, path: path.to_path_buf() };
        journal.append_entry(&Entry::Run { fingerprint, mode: mode.to_string() }).map(|_| journal)
    }

    /// Loads an existing journal for resumption. Fails if the header's
    /// fingerprint does not match the current configuration. The file is
    /// rewritten from its valid entries (dropping any torn tail) through
    /// a temp-file rename, then reopened for appending.
    pub fn resume(path: &Path, fingerprint: u64) -> Result<(Journal, Vec<Entry>), String> {
        let entries = load(path)?;
        match entries.first() {
            Some(Entry::Run { fingerprint: f, .. }) if *f == fingerprint => {}
            Some(Entry::Run { fingerprint: f, .. }) => {
                return Err(format!(
                    "journal {} was written for a different configuration \
                     (fingerprint {f:#x}, current {fingerprint:#x}); \
                     rerun without --resume to start fresh",
                    path.display()
                ));
            }
            _ => return Err(format!("journal {} has no run header", path.display())),
        }
        let tmp = path.with_extension("jsonl.tmp");
        let io = |e: std::io::Error| format!("rewrite journal {}: {e}", path.display());
        let mut journal = Journal { file: File::create(&tmp).map_err(io)?, path: tmp.clone() };
        for entry in &entries {
            journal.append_entry(entry).map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)?;
        journal.path = path.to_path_buf();
        Ok((journal, entries))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a completed shard. The line is flushed before returning,
    /// so once this succeeds the shard survives a crash.
    pub fn append_shard(
        &mut self,
        job: &str,
        index: u32,
        (seed_lo, seed_hi): (u64, u64),
        elapsed_ms: u64,
        payload: &ShardPayload,
    ) -> std::io::Result<()> {
        self.append_entry(&Entry::Shard {
            job: job.to_string(),
            index,
            seed_lo,
            seed_hi,
            elapsed_ms,
            payload: payload.clone(),
        })
    }

    /// Records a quarantined shard.
    pub fn append_quarantine(
        &mut self,
        job: &str,
        index: u32,
        (seed_lo, seed_hi): (u64, u64),
        reason: &str,
    ) -> std::io::Result<()> {
        self.append_entry(&Entry::Quarantine {
            job: job.to_string(),
            index,
            seed_lo,
            seed_hi,
            reason: reason.to_string(),
        })
    }

    fn append_entry(&mut self, entry: &Entry) -> std::io::Result<()> {
        let mut line = entry_to_value(entry).to_json();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// Parses a journal file, skipping a torn final line.
pub fn load(path: &Path) -> Result<Vec<Entry>, String> {
    let file = File::open(path).map_err(|e| format!("open journal {}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let lines: Vec<String> = reader
        .lines()
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read journal {}: {e}", path.display()))?;
    let mut entries = Vec::with_capacity(lines.len());
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Value::parse(line).ok().and_then(|v| entry_from_value(&v)) {
            Some(entry) => entries.push(entry),
            // A torn *final* line is the expected crash artifact; a
            // malformed line elsewhere means the file is not a journal.
            None if i == last => break,
            None => {
                return Err(format!(
                    "journal {} line {} is not a valid {SCHEMA} entry",
                    path.display(),
                    i + 1
                ));
            }
        }
    }
    Ok(entries)
}

fn entry_to_value(entry: &Entry) -> Value {
    let base = |kind: &str| {
        vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("kind".to_string(), Value::Str(kind.to_string())),
        ]
    };
    match entry {
        Entry::Run { fingerprint, mode } => {
            let mut fields = base("run");
            fields.push(("fingerprint".into(), Value::UInt(*fingerprint)));
            fields.push(("mode".into(), Value::Str(mode.clone())));
            Value::Object(fields)
        }
        Entry::Shard { job, index, seed_lo, seed_hi, elapsed_ms, payload } => {
            let mut fields = base("shard");
            fields.push(("job".into(), Value::Str(job.clone())));
            fields.push(("shard".into(), Value::UInt(*index as u64)));
            fields.push(("seed_lo".into(), Value::UInt(*seed_lo)));
            fields.push(("seed_hi".into(), Value::UInt(*seed_hi)));
            fields.push(("elapsed_ms".into(), Value::UInt(*elapsed_ms)));
            fields.push(("payload".into(), payload_to_value(payload)));
            Value::Object(fields)
        }
        Entry::Quarantine { job, index, seed_lo, seed_hi, reason } => {
            let mut fields = base("quarantine");
            fields.push(("job".into(), Value::Str(job.clone())));
            fields.push(("shard".into(), Value::UInt(*index as u64)));
            fields.push(("seed_lo".into(), Value::UInt(*seed_lo)));
            fields.push(("seed_hi".into(), Value::UInt(*seed_hi)));
            fields.push(("reason".into(), Value::Str(reason.clone())));
            Value::Object(fields)
        }
    }
}

fn entry_from_value(v: &Value) -> Option<Entry> {
    if v.get("schema")?.as_str()? != SCHEMA {
        return None;
    }
    let str_field = |key: &str| v.get(key)?.as_str().map(str::to_string);
    let u64_field = |key: &str| v.get(key)?.as_u64();
    match v.get("kind")?.as_str()? {
        "run" => {
            Some(Entry::Run { fingerprint: u64_field("fingerprint")?, mode: str_field("mode")? })
        }
        "shard" => Some(Entry::Shard {
            job: str_field("job")?,
            index: u64_field("shard")? as u32,
            seed_lo: u64_field("seed_lo")?,
            seed_hi: u64_field("seed_hi")?,
            elapsed_ms: u64_field("elapsed_ms")?,
            payload: payload_from_value(v.get("payload")?)?,
        }),
        "quarantine" => Some(Entry::Quarantine {
            job: str_field("job")?,
            index: u64_field("shard")? as u32,
            seed_lo: u64_field("seed_lo")?,
            seed_hi: u64_field("seed_hi")?,
            reason: str_field("reason")?,
        }),
        _ => None,
    }
}

fn payload_to_value(p: &ShardPayload) -> Value {
    let mut fields = vec![
        ("rows".to_string(), Value::Array(p.rows.iter().map(|r| Value::Str(r.clone())).collect())),
        ("text".to_string(), Value::Str(p.text.clone())),
    ];
    if let Some(report) = &p.report {
        // The report serializes through its own schema; embed it as the
        // parsed value so the journal line stays one JSON document.
        let value = Value::parse(&report.to_json()).expect("report emits valid JSON");
        fields.push(("report".to_string(), value));
    }
    if let Some(data) = &p.data {
        fields.push(("data".to_string(), data.clone()));
    }
    Value::Object(fields)
}

fn payload_from_value(v: &Value) -> Option<ShardPayload> {
    let rows = v
        .get("rows")?
        .as_array()?
        .iter()
        .map(|r| r.as_str().map(str::to_string))
        .collect::<Option<Vec<_>>>()?;
    let text = v.get("text")?.as_str()?.to_string();
    let report = match v.get("report") {
        Some(rv) => Some(Report::from_json(&rv.to_json()).ok()?),
        None => None,
    };
    let data = v.get("data").cloned();
    Some(ShardPayload { rows, text, report, data })
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_stats::{Counters, Unit};
    use std::fs::OpenOptions;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("itr-harness-journal-{}-{name}", std::process::id()));
        let _ignored = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("journal.jsonl")
    }

    fn payload() -> ShardPayload {
        let mut c = Counters::new();
        let n = c.register("faults", Unit::Events, "");
        c.add(n, 25);
        let mut report = Report::new();
        report.push_section("campaign", &c, &[]);
        ShardPayload {
            rows: vec!["a,1".into(), "b,2".into()],
            text: "two rows\n".into(),
            report: Some(report),
            data: Some(Value::Object(vec![("k".into(), Value::UInt(7))])),
        }
    }

    #[test]
    fn roundtrip_shard_and_quarantine() {
        let path = tmp("roundtrip");
        let mut j = Journal::create(&path, 42, "quick").expect("create");
        j.append_shard("fig8:bzip", 3, (75, 100), 1200, &payload()).expect("shard");
        j.append_quarantine("fig8:gcc", 1, (25, 50), "deadline exceeded").expect("quarantine");

        let (_j2, entries) = Journal::resume(&path, 42).expect("resume");
        assert_eq!(entries.len(), 3);
        match &entries[1] {
            Entry::Shard { job, index, seed_lo, seed_hi, elapsed_ms, payload: p } => {
                assert_eq!((job.as_str(), *index), ("fig8:bzip", 3));
                assert_eq!((*seed_lo, *seed_hi, *elapsed_ms), (75, 100, 1200));
                assert_eq!(p.rows, vec!["a,1", "b,2"]);
                assert_eq!(p.text, "two rows\n");
                assert_eq!(p.report.as_ref().unwrap().counter("campaign", "faults"), Some(25));
                assert_eq!(p.data.as_ref().unwrap().get("k").unwrap().as_u64(), Some(7));
            }
            other => panic!("expected shard entry, got {other:?}"),
        }
        match &entries[2] {
            Entry::Quarantine { job, index, reason, .. } => {
                assert_eq!((job.as_str(), *index), ("fig8:gcc", 1));
                assert!(reason.contains("deadline"));
            }
            other => panic!("expected quarantine entry, got {other:?}"),
        }
    }

    #[test]
    fn torn_final_line_is_dropped_and_repaired() {
        let path = tmp("torn");
        let mut j = Journal::create(&path, 7, "quick").expect("create");
        j.append_shard("a", 0, (0, 1), 5, &ShardPayload::default()).expect("shard");
        drop(j);
        // Simulate a crash mid-append.
        let mut f = OpenOptions::new().append(true).open(&path).expect("reopen");
        f.write_all(b"{\"schema\":\"itr-harness/v1\",\"kind\":\"shard\",\"jo").expect("tear");
        drop(f);
        let (mut j, entries) = Journal::resume(&path, 7).expect("resume");
        assert_eq!(entries.len(), 2, "header + whole shard; torn line dropped");
        // Appending after the repair produces a journal with no trace of
        // the torn fragment.
        j.append_shard("a", 1, (1, 2), 6, &ShardPayload::default()).expect("append");
        drop(j);
        let reloaded = load(&path).expect("reload");
        assert_eq!(reloaded.len(), 3);
        assert!(matches!(&reloaded[2], Entry::Shard { index: 1, .. }));
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let path = tmp("fingerprint");
        Journal::create(&path, 1, "quick").expect("create");
        let err = Journal::resume(&path, 2).unwrap_err();
        assert!(err.contains("different configuration"), "{err}");
    }

    #[test]
    fn corrupt_interior_line_is_an_error() {
        let path = tmp("corrupt");
        let mut j = Journal::create(&path, 7, "quick").expect("create");
        j.append_shard("a", 0, (0, 1), 5, &ShardPayload::default()).expect("shard");
        drop(j);
        let body = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, body.replacen("itr-harness/v1", "bogus/v0", 1)).expect("write");
        assert!(load(&path).is_err());
    }
}
