//! Jobs, shards and the declarative experiment registry.
//!
//! An experiment run is a DAG of [`JobSpec`]s. Each job names the jobs it
//! depends on; once those complete, its `build` closure is invoked with
//! the [`Blackboard`] of finished results and returns the job's
//! [`ShardSpec`]s — the independent units the scheduler fans out across
//! the work-stealing pool, *interleaved with shards of every other ready
//! job*. Shard decomposition must depend only on the experiment's scale
//! parameters (never on thread count), so that a journal written by one
//! run resumes correctly under any `--jobs` value.

use itr_stats::json::Value;
use itr_stats::Report;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default per-shard watchdog deadline.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(600);

/// Cooperative cancellation handle passed to every shard closure.
///
/// The watchdog raises the flag when the shard overruns its deadline;
/// well-behaved shards poll it between work items (e.g. between injected
/// faults) and return early. Shards that never poll are eventually
/// abandoned — quarantined in the journal while their worker thread is
/// replaced so the run keeps making progress.
#[derive(Debug, Clone, Default)]
pub struct ShardCtx {
    cancel: Arc<AtomicBool>,
}

impl ShardCtx {
    /// A context whose flag is shared with the watchdog.
    pub(crate) fn new(cancel: Arc<AtomicBool>) -> ShardCtx {
        ShardCtx { cancel }
    }

    /// `true` once the watchdog has asked this shard to stop.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// What one shard produced.
#[derive(Debug, Clone, Default)]
pub struct ShardPayload {
    /// CSV rows contributed to the job's artifact (merged in shard order).
    pub rows: Vec<String>,
    /// Human-readable fragment for the job's text artifact.
    pub text: String,
    /// The shard's `itr-stats/v1` report, if the shard ran simulations.
    pub report: Option<Report>,
    /// Free-form JSON consumed by dependent jobs via the blackboard.
    pub data: Option<Value>,
}

/// The closure executed for one shard.
pub type ShardFn = Box<dyn FnOnce(&ShardCtx) -> ShardPayload + Send>;

/// One schedulable unit of a job.
pub struct ShardSpec {
    /// Index within the job (dense from 0; the journal key).
    pub index: u32,
    /// Inclusive lower bound of the seed/work range this shard covers
    /// (experiment-defined: fault indices, workload seeds, …).
    pub seed_lo: u64,
    /// Exclusive upper bound of the covered range.
    pub seed_hi: u64,
    /// Watchdog deadline for this shard.
    pub deadline: Duration,
    /// The work itself.
    pub run: ShardFn,
}

impl ShardSpec {
    /// A shard with the default deadline.
    pub fn new(
        index: u32,
        (seed_lo, seed_hi): (u64, u64),
        run: impl FnOnce(&ShardCtx) -> ShardPayload + Send + 'static,
    ) -> ShardSpec {
        ShardSpec { index, seed_lo, seed_hi, deadline: DEFAULT_DEADLINE, run: Box::new(run) }
    }

    /// Overrides the watchdog deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> ShardSpec {
        self.deadline = deadline;
        self
    }
}

/// Builds a job's shards once its dependencies have completed.
pub type BuildFn = Box<dyn FnOnce(&Blackboard) -> Vec<ShardSpec> + Send>;

/// One registered experiment (or experiment slice).
pub struct JobSpec {
    /// Unique job name (`fig8:bzip`, `table1`, …).
    pub name: String,
    /// Names of jobs that must complete first.
    pub deps: Vec<String>,
    /// Shard factory, invoked when the dependencies are done.
    pub build: BuildFn,
}

impl JobSpec {
    /// A job whose shards are built from the dependency blackboard.
    pub fn new(
        name: impl Into<String>,
        deps: &[&str],
        build: impl FnOnce(&Blackboard) -> Vec<ShardSpec> + Send + 'static,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            build: Box::new(build),
        }
    }

    /// Convenience: a single-shard job.
    pub fn single(
        name: impl Into<String>,
        deps: &[&str],
        run: impl FnOnce(&ShardCtx, &Blackboard) -> ShardPayload + Send + 'static,
    ) -> JobSpec {
        JobSpec::new(name, deps, move |board: &Blackboard| {
            // The blackboard snapshot the shard needs is only borrowable
            // inside `build`, so capture the pieces eagerly via a clone.
            let board = board.clone();
            vec![ShardSpec::new(0, (0, 1), move |ctx: &ShardCtx| run(ctx, &board))]
        })
    }
}

/// A completed shard, as exposed to dependent jobs and the summary.
#[derive(Debug, Clone)]
pub struct ShardRecord {
    /// Shard index within its job.
    pub index: u32,
    /// Covered seed range (journal accounting).
    pub seed_lo: u64,
    /// Exclusive upper bound of the covered range.
    pub seed_hi: u64,
    /// The shard's output.
    pub payload: ShardPayload,
    /// `true` when the payload was replayed from the journal.
    pub from_journal: bool,
    /// Wall-clock milliseconds the shard took (0 when journaled).
    pub elapsed_ms: u64,
}

/// A shard removed from the run by the watchdog (or a panic).
#[derive(Debug, Clone)]
pub struct QuarantineRecord {
    /// Shard index within its job.
    pub index: u32,
    /// Covered seed range — the (workload, seed) pair to investigate.
    pub seed_lo: u64,
    /// Exclusive upper bound of the covered range.
    pub seed_hi: u64,
    /// Why the shard was quarantined.
    pub reason: String,
}

/// Completed state of one job.
#[derive(Debug, Clone, Default)]
pub struct JobResult {
    /// Completed shards, ordered by shard index.
    pub shards: Vec<ShardRecord>,
    /// Quarantined shards, ordered by shard index.
    pub quarantined: Vec<QuarantineRecord>,
}

impl JobResult {
    /// All CSV rows in deterministic (shard-index) order.
    pub fn rows(&self) -> Vec<String> {
        self.shards.iter().flat_map(|s| s.payload.rows.iter().cloned()).collect()
    }

    /// All text fragments concatenated in shard order.
    pub fn text(&self) -> String {
        self.shards.iter().map(|s| s.payload.text.as_str()).collect()
    }

    /// Deterministic fold of every shard's `itr-stats` report: shards are
    /// merged in index order, so the aggregate is identical regardless of
    /// thread count or completion order.
    pub fn merged_report(&self) -> Report {
        let mut merged = Report::new();
        for s in &self.shards {
            if let Some(r) = &s.payload.report {
                merged.merge(r);
            }
        }
        merged
    }

    /// The `data` payloads in shard order.
    pub fn data(&self) -> impl Iterator<Item = &Value> {
        self.shards.iter().filter_map(|s| s.payload.data.as_ref())
    }
}

/// Results of every finished job, keyed by name — the input to dependent
/// jobs' `build` closures.
#[derive(Debug, Clone, Default)]
pub struct Blackboard {
    jobs: BTreeMap<String, JobResult>,
}

impl Blackboard {
    /// Result of a finished job, if present.
    pub fn job(&self, name: &str) -> Option<&JobResult> {
        self.jobs.get(name)
    }

    /// Result of a finished job; panics with a clear message otherwise
    /// (a dependency bug in the registry, not a runtime condition).
    pub fn expect(&self, name: &str) -> &JobResult {
        self.jobs.get(name).unwrap_or_else(|| panic!("job `{name}` not on the blackboard"))
    }

    /// Iterates `(name, result)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &JobResult)> {
        self.jobs.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub(crate) fn insert(&mut self, name: String, result: JobResult) {
        self.jobs.insert(name, result);
    }
}

/// The declarative experiment registry: named jobs plus a configuration
/// fingerprint that binds any journal written for this registry to the
/// exact scale parameters it was produced under.
pub struct Registry {
    jobs: Vec<JobSpec>,
    fingerprint: u64,
}

impl Registry {
    /// An empty registry for a configuration with the given fingerprint.
    pub fn new(fingerprint: u64) -> Registry {
        Registry { jobs: Vec::new(), fingerprint }
    }

    /// The configuration fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Registers a job.
    pub fn add(&mut self, job: JobSpec) {
        self.jobs.push(job);
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Registered job names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.jobs.iter().map(|j| j.name.as_str())
    }

    /// Validates the DAG: unique names, known dependencies, no cycles.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = HashSet::new();
        for j in &self.jobs {
            if !seen.insert(j.name.as_str()) {
                return Err(format!("duplicate job name `{}`", j.name));
            }
        }
        for j in &self.jobs {
            for d in &j.deps {
                if !seen.contains(d.as_str()) {
                    return Err(format!("job `{}` depends on unknown job `{d}`", j.name));
                }
            }
        }
        // Kahn's algorithm; anything left over sits on a cycle.
        let mut indegree: HashMap<&str, usize> =
            self.jobs.iter().map(|j| (j.name.as_str(), j.deps.len())).collect();
        let mut dependents: HashMap<&str, Vec<&str>> = HashMap::new();
        for j in &self.jobs {
            for d in &j.deps {
                dependents.entry(d.as_str()).or_default().push(j.name.as_str());
            }
        }
        let mut ready: Vec<&str> =
            indegree.iter().filter(|(_, &d)| d == 0).map(|(&n, _)| n).collect();
        let mut done = 0usize;
        while let Some(n) = ready.pop() {
            done += 1;
            for &dep in dependents.get(n).map(Vec::as_slice).unwrap_or_default() {
                let e = indegree.get_mut(dep).expect("validated name");
                *e -= 1;
                if *e == 0 {
                    ready.push(dep);
                }
            }
        }
        if done != self.jobs.len() {
            return Err("dependency cycle among registered jobs".to_string());
        }
        Ok(())
    }

    /// Restricts the registry to the named jobs plus their transitive
    /// dependencies (the `--only` flag of `itr-repro`). Registration
    /// order is preserved, so shard interleaving and journal layout stay
    /// deterministic. Returns an error naming any unknown job.
    pub fn restrict(&mut self, names: &[&str]) -> Result<(), String> {
        let known: HashSet<&str> = self.jobs.iter().map(|j| j.name.as_str()).collect();
        for n in names {
            if !known.contains(n) {
                return Err(format!("unknown job `{n}` (known: {})", {
                    let mut v: Vec<&str> = known.iter().copied().collect();
                    v.sort_unstable();
                    v.join(", ")
                }));
            }
        }
        let deps_of: HashMap<&str, Vec<String>> =
            self.jobs.iter().map(|j| (j.name.as_str(), j.deps.clone())).collect();
        let mut keep: HashSet<String> = HashSet::new();
        let mut stack: Vec<String> = names.iter().map(|n| n.to_string()).collect();
        while let Some(n) = stack.pop() {
            if keep.insert(n.clone()) {
                if let Some(deps) = deps_of.get(n.as_str()) {
                    stack.extend(deps.iter().cloned());
                }
            }
        }
        self.jobs.retain(|j| keep.contains(&j.name));
        Ok(())
    }

    pub(crate) fn into_jobs(self) -> Vec<JobSpec> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(name: &str, deps: &[&str]) -> JobSpec {
        JobSpec::new(name, deps, |_| vec![])
    }

    #[test]
    fn validate_accepts_a_dag() {
        let mut r = Registry::new(1);
        r.add(noop("a", &[]));
        r.add(noop("b", &["a"]));
        r.add(noop("c", &["a", "b"]));
        assert!(r.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicates_unknowns_cycles() {
        let mut r = Registry::new(1);
        r.add(noop("a", &[]));
        r.add(noop("a", &[]));
        assert!(r.validate().unwrap_err().contains("duplicate"));

        let mut r = Registry::new(1);
        r.add(noop("a", &["ghost"]));
        assert!(r.validate().unwrap_err().contains("unknown"));

        let mut r = Registry::new(1);
        r.add(noop("a", &["b"]));
        r.add(noop("b", &["a"]));
        assert!(r.validate().unwrap_err().contains("cycle"));
    }

    #[test]
    fn restrict_keeps_transitive_deps_in_registration_order() {
        let mut r = Registry::new(1);
        r.add(noop("a", &[]));
        r.add(noop("b", &["a"]));
        r.add(noop("c", &["b"]));
        r.add(noop("d", &[]));
        r.restrict(&["c"]).expect("known job");
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["a", "b", "c"]);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn restrict_rejects_unknown_jobs() {
        let mut r = Registry::new(1);
        r.add(noop("a", &[]));
        let err = r.restrict(&["ghost"]).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["a"], "registry unchanged on error");
    }

    #[test]
    fn job_result_folds_in_shard_order() {
        let shard = |i: u32, row: &str| ShardRecord {
            index: i,
            seed_lo: 0,
            seed_hi: 1,
            payload: ShardPayload {
                rows: vec![row.to_string()],
                text: format!("{row}\n"),
                ..ShardPayload::default()
            },
            from_journal: false,
            elapsed_ms: 0,
        };
        let r =
            JobResult { shards: vec![shard(0, "first"), shard(1, "second")], quarantined: vec![] };
        assert_eq!(r.rows(), vec!["first".to_string(), "second".to_string()]);
        assert_eq!(r.text(), "first\nsecond\n");
    }
}
