//! Live progress and ETA reporting on stderr.
//!
//! On a terminal the line redraws in place (`\r`); on a pipe (CI logs) a
//! plain line is printed at most every few seconds so logs stay readable.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

/// Tracks shard completion and paints the progress line.
pub struct Progress {
    enabled: bool,
    tty: bool,
    start: Instant,
    last_print: Option<Instant>,
    painted: bool,
    /// Shards executed this run.
    pub executed: u32,
    /// Shards replayed from the journal.
    pub journaled: u32,
    /// Shards quarantined (this run or journaled).
    pub quarantined: u32,
}

impl Progress {
    /// A reporter; `enabled == false` silences all output.
    pub fn new(enabled: bool) -> Progress {
        Progress {
            enabled,
            tty: std::io::stderr().is_terminal(),
            start: Instant::now(),
            last_print: None,
            painted: false,
            executed: 0,
            journaled: 0,
            quarantined: 0,
        }
    }

    /// Elapsed wall-clock time since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Repaints the progress line. `done`/`total` count shards known so
    /// far (jobs build their shards lazily, so `total` can still grow);
    /// `jobs_done`/`jobs_total` count whole jobs.
    pub fn tick(&mut self, done: u32, total: u32, jobs_done: u32, jobs_total: u32) {
        if !self.enabled {
            return;
        }
        let min_interval =
            if self.tty { Duration::from_millis(200) } else { Duration::from_secs(3) };
        let finished = jobs_done == jobs_total;
        if let Some(last) = self.last_print {
            if last.elapsed() < min_interval && !finished {
                return;
            }
        }
        self.last_print = Some(Instant::now());
        let elapsed = self.start.elapsed().as_secs_f64();
        // ETA from the pace of shards actually executed this run;
        // journal replays are effectively free and would skew it.
        let eta = if self.executed > 0 && total > done {
            let per_shard = elapsed / self.executed as f64;
            format!("{:.0}s", per_shard * (total - done) as f64)
        } else {
            "--".to_string()
        };
        let mut line = format!(
            "[itr-repro] shards {done}/{total} ({} run, {} journaled, {} quarantined) \
             | jobs {jobs_done}/{jobs_total} | {elapsed:.1}s elapsed | eta {eta}",
            self.executed, self.journaled, self.quarantined
        );
        let mut err = std::io::stderr().lock();
        if self.tty {
            line.truncate(120);
            let _ignored = write!(err, "\r\x1b[2K{line}");
            let _ignored = err.flush();
            self.painted = true;
        } else {
            let _ignored = writeln!(err, "{line}");
        }
    }

    /// Ends an in-place progress line so subsequent output starts clean.
    pub fn finish(&mut self) {
        if self.enabled && self.tty && self.painted {
            let _ignored = writeln!(std::io::stderr());
        }
    }
}
