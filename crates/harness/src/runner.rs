//! The orchestrator: runs a [`Registry`] over the work-stealing pool with
//! journaling, per-shard watchdogs and deterministic result merging.
//!
//! Scheduling is DAG-driven: a job's shards are built (from the
//! blackboard of finished dependencies) the moment its last dependency
//! completes, then injected into the pool — so shards of *different*
//! experiments interleave freely and the machine never sits idle behind
//! one slow campaign. The single orchestrator thread owns the journal,
//! the blackboard and the watchdog clock; workers only execute shards
//! and report back over a channel.

use crate::job::{
    Blackboard, JobResult, JobSpec, QuarantineRecord, Registry, ShardCtx, ShardPayload,
    ShardRecord, ShardSpec,
};
use crate::journal::{Entry, Journal};
use crate::progress::Progress;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Knobs for one harness run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Journal location; `None` disables journaling (and resume).
    pub journal_path: Option<PathBuf>,
    /// Replay completed shards from an existing journal.
    pub resume: bool,
    /// Mode label recorded in the journal header.
    pub mode: String,
    /// Paint progress/ETA on stderr.
    pub progress: bool,
    /// How long past its deadline a non-cooperating shard may run before
    /// its worker is abandoned and replaced.
    pub grace: Duration,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            threads: 0,
            journal_path: None,
            resume: false,
            mode: "quick".to_string(),
            progress: false,
            grace: Duration::from_secs(15),
        }
    }
}

/// What a finished run looked like.
#[derive(Debug)]
pub struct RunSummary {
    /// Shards executed this run.
    pub executed: u32,
    /// Shards replayed from the journal without recomputation.
    pub journaled: u32,
    /// Shards quarantined (including journaled quarantines).
    pub quarantined: u32,
    /// Total shards across all jobs.
    pub total_shards: u32,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Every job's merged result.
    pub blackboard: Blackboard,
    /// `(job, shard, reason)` for each quarantined shard.
    pub quarantines: Vec<(String, u32, String)>,
}

type ShardKey = (String, u32);

struct RunningShard {
    started: Option<Instant>,
    deadline: Duration,
    cancel: Arc<AtomicBool>,
    worker: Option<usize>,
    cancelled_at: Option<Instant>,
    seed_range: (u64, u64),
}

enum Event {
    Started { key: ShardKey, worker: usize },
    Finished { key: ShardKey, outcome: Result<ShardPayload, String>, elapsed_ms: u64 },
}

struct JobState {
    pending: u32,
    records: Vec<ShardRecord>,
    quarantined: Vec<QuarantineRecord>,
}

/// Executes every job in the registry; returns the run summary or an
/// error for configuration-level failures (invalid DAG, bad journal).
/// Individual shard failures never fail the run — they quarantine.
pub fn run(registry: Registry, opts: &RunOptions) -> Result<RunSummary, String> {
    registry.validate()?;
    let fingerprint = registry.fingerprint();

    // -- journal: load prior shards, open for appending --
    let mut prior_done: HashMap<ShardKey, ((u64, u64), ShardPayload, u64)> = HashMap::new();
    let mut prior_quarantine: HashMap<ShardKey, ((u64, u64), String)> = HashMap::new();
    let mut journal = match &opts.journal_path {
        Some(path) if opts.resume && path.exists() => {
            let (journal, entries) = Journal::resume(path, fingerprint)?;
            for entry in entries {
                match entry {
                    Entry::Shard { job, index, seed_lo, seed_hi, elapsed_ms, payload } => {
                        prior_done.insert((job, index), ((seed_lo, seed_hi), payload, elapsed_ms));
                    }
                    Entry::Quarantine { job, index, seed_lo, seed_hi, reason } => {
                        prior_quarantine.insert((job, index), ((seed_lo, seed_hi), reason));
                    }
                    Entry::Run { .. } => {}
                }
            }
            Some(journal)
        }
        Some(path) => Some(
            Journal::create(path, fingerprint, &opts.mode)
                .map_err(|e| format!("create journal {}: {e}", path.display()))?,
        ),
        None => None,
    };

    // -- DAG state --
    let jobs = registry.into_jobs();
    let total_jobs = jobs.len() as u32;
    let mut dependents: HashMap<String, Vec<String>> = HashMap::new();
    let mut indegree: HashMap<String, usize> = HashMap::new();
    let order: Vec<String> = jobs.iter().map(|j| j.name.clone()).collect();
    for job in &jobs {
        indegree.insert(job.name.clone(), job.deps.len());
        for dep in &job.deps {
            dependents.entry(dep.clone()).or_default().push(job.name.clone());
        }
    }
    let mut specs: HashMap<String, JobSpec> =
        jobs.into_iter().map(|j| (j.name.clone(), j)).collect();

    // -- execution state --
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        opts.threads
    };
    let pool = crate::pool::Pool::new(threads);
    let (tx, rx) = mpsc::channel::<Event>();
    let running: Arc<Mutex<HashMap<ShardKey, RunningShard>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut states: HashMap<String, JobState> = HashMap::new();
    let mut blackboard = Blackboard::default();
    let mut progress = Progress::new(opts.progress);
    let mut jobs_done = 0u32;
    let mut total_shards = 0u32;
    let mut quarantines: Vec<(String, u32, String)> = Vec::new();

    // Launches a ready job: build shards, satisfy them from the journal
    // or dispatch to the pool. Returns the job's state.
    let launch = |name: &str,
                  specs: &mut HashMap<String, JobSpec>,
                  blackboard: &Blackboard,
                  journal: &mut Option<Journal>,
                  progress: &mut Progress,
                  quarantines: &mut Vec<(String, u32, String)>,
                  total_shards: &mut u32|
     -> Result<JobState, String> {
        let spec = specs.remove(name).expect("job launched once");
        let shards: Vec<ShardSpec> = (spec.build)(blackboard);
        *total_shards += shards.len() as u32;
        let mut state = JobState { pending: 0, records: Vec::new(), quarantined: Vec::new() };
        for shard in shards {
            let key: ShardKey = (name.to_string(), shard.index);
            let range = (shard.seed_lo, shard.seed_hi);
            if let Some((prior_range, reason)) = prior_quarantine.get(&key) {
                if *prior_range != range {
                    return Err(shard_range_mismatch(name, shard.index, *prior_range, range));
                }
                state.quarantined.push(QuarantineRecord {
                    index: shard.index,
                    seed_lo: range.0,
                    seed_hi: range.1,
                    reason: reason.clone(),
                });
                quarantines.push((name.to_string(), shard.index, reason.clone()));
                progress.quarantined += 1;
                continue;
            }
            if let Some((prior_range, payload, elapsed_ms)) = prior_done.get(&key) {
                if *prior_range != range {
                    return Err(shard_range_mismatch(name, shard.index, *prior_range, range));
                }
                state.records.push(ShardRecord {
                    index: shard.index,
                    seed_lo: range.0,
                    seed_hi: range.1,
                    payload: payload.clone(),
                    from_journal: true,
                    elapsed_ms: *elapsed_ms,
                });
                progress.journaled += 1;
                continue;
            }
            // Dispatch to the pool.
            let cancel = Arc::new(AtomicBool::new(false));
            running.lock().expect("running poisoned").insert(
                key.clone(),
                RunningShard {
                    started: None,
                    deadline: shard.deadline,
                    cancel: Arc::clone(&cancel),
                    worker: None,
                    cancelled_at: None,
                    seed_range: range,
                },
            );
            state.pending += 1;
            let tx = tx.clone();
            let ctx = ShardCtx::new(cancel);
            let run_fn = shard.run;
            pool.submit(Box::new(move |worker| {
                let _ignored = tx.send(Event::Started { key: key.clone(), worker });
                let start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| run_fn(&ctx)))
                    .map_err(|panic| format!("panicked: {}", panic_message(&*panic)));
                let elapsed_ms = start.elapsed().as_millis() as u64;
                let _ignored = tx.send(Event::Finished { key, outcome, elapsed_ms });
            }));
        }
        let _unused = journal; // journaling of fresh shards happens on completion
        Ok(state)
    };

    // Launch every root job (in registration order, for determinism).
    let mut ready: VecDeque<String> =
        order.iter().filter(|n| indegree[n.as_str()] == 0).cloned().collect();
    let mut finished_jobs: VecDeque<String> = VecDeque::new();
    while let Some(name) = ready.pop_front() {
        let state = launch(
            &name,
            &mut specs,
            &blackboard,
            &mut journal,
            &mut progress,
            &mut quarantines,
            &mut total_shards,
        )?;
        if state.pending == 0 {
            finished_jobs.push_back(name.clone());
        }
        states.insert(name, state);
    }

    // -- event loop --
    loop {
        // Finalize any jobs whose shards are all resolved; this can
        // cascade as dependents become ready.
        while let Some(name) = finished_jobs.pop_front() {
            let mut state = states.remove(&name).expect("job state exists");
            state.records.sort_by_key(|r| r.index);
            state.quarantined.sort_by_key(|q| q.index);
            blackboard.insert(
                name.clone(),
                JobResult { shards: state.records, quarantined: state.quarantined },
            );
            jobs_done += 1;
            for dependent in dependents.get(&name).cloned().unwrap_or_default() {
                let remaining = indegree.get_mut(&dependent).expect("known job");
                *remaining -= 1;
                if *remaining == 0 {
                    let state = launch(
                        &dependent,
                        &mut specs,
                        &blackboard,
                        &mut journal,
                        &mut progress,
                        &mut quarantines,
                        &mut total_shards,
                    )?;
                    if state.pending == 0 {
                        finished_jobs.push_back(dependent.clone());
                    }
                    states.insert(dependent, state);
                }
            }
        }
        if jobs_done == total_jobs {
            break;
        }

        let done = progress.executed + progress.journaled + progress.quarantined;
        progress.tick(done, total_shards, jobs_done, total_jobs);

        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Event::Started { key, worker }) => {
                if let Some(entry) = running.lock().expect("running poisoned").get_mut(&key) {
                    entry.started = Some(Instant::now());
                    entry.worker = Some(worker);
                }
            }
            Ok(Event::Finished { key, outcome, elapsed_ms }) => {
                let Some(entry) = running.lock().expect("running poisoned").remove(&key) else {
                    continue; // abandoned shard finishing late — already quarantined
                };
                let (job, index) = key;
                let range = entry.seed_range;
                let state = states.get_mut(&job).expect("job state exists");
                state.pending -= 1;
                let quarantine_reason = match outcome {
                    Ok(payload) => {
                        if entry.cancel.load(Ordering::Relaxed) {
                            Some(format!(
                                "deadline {:?} exceeded; shard stopped cooperatively",
                                entry.deadline
                            ))
                        } else {
                            if let Some(journal) = journal.as_mut() {
                                journal
                                    .append_shard(&job, index, range, elapsed_ms, &payload)
                                    .map_err(|e| format!("journal append: {e}"))?;
                            }
                            state.records.push(ShardRecord {
                                index,
                                seed_lo: range.0,
                                seed_hi: range.1,
                                payload,
                                from_journal: false,
                                elapsed_ms,
                            });
                            progress.executed += 1;
                            None
                        }
                    }
                    Err(panic) => Some(panic),
                };
                if let Some(reason) = quarantine_reason {
                    if let Some(journal) = journal.as_mut() {
                        journal
                            .append_quarantine(&job, index, range, &reason)
                            .map_err(|e| format!("journal append: {e}"))?;
                    }
                    state.quarantined.push(QuarantineRecord {
                        index,
                        seed_lo: range.0,
                        seed_hi: range.1,
                        reason: reason.clone(),
                    });
                    quarantines.push((job.clone(), index, reason));
                    progress.quarantined += 1;
                }
                if state.pending == 0 {
                    finished_jobs.push_back(job);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Watchdog sweep: flag overdue shards, abandon deaf ones.
                let now = Instant::now();
                let mut abandoned: Vec<(ShardKey, RunningShard)> = Vec::new();
                {
                    let mut running = running.lock().expect("running poisoned");
                    let mut overdue: Vec<ShardKey> = Vec::new();
                    for (key, entry) in running.iter_mut() {
                        let Some(started) = entry.started else { continue };
                        if now.duration_since(started) < entry.deadline {
                            continue;
                        }
                        match entry.cancelled_at {
                            None => {
                                entry.cancel.store(true, Ordering::Relaxed);
                                entry.cancelled_at = Some(now);
                            }
                            Some(cancelled_at)
                                if now.duration_since(cancelled_at) >= opts.grace =>
                            {
                                overdue.push(key.clone());
                            }
                            Some(_) => {}
                        }
                    }
                    for key in overdue {
                        let entry = running.remove(&key).expect("present");
                        abandoned.push((key, entry));
                    }
                }
                for ((job, index), entry) in abandoned {
                    if let Some(worker) = entry.worker {
                        pool.respawn(worker);
                    }
                    let reason = format!(
                        "deadline {:?} exceeded; worker abandoned and replaced",
                        entry.deadline
                    );
                    if let Some(journal) = journal.as_mut() {
                        journal
                            .append_quarantine(&job, index, entry.seed_range, &reason)
                            .map_err(|e| format!("journal append: {e}"))?;
                    }
                    let state = states.get_mut(&job).expect("job state exists");
                    state.pending -= 1;
                    state.quarantined.push(QuarantineRecord {
                        index,
                        seed_lo: entry.seed_range.0,
                        seed_hi: entry.seed_range.1,
                        reason: reason.clone(),
                    });
                    quarantines.push((job.clone(), index, reason));
                    progress.quarantined += 1;
                    if state.pending == 0 {
                        finished_jobs.push_back(job);
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("worker channel closed unexpectedly".to_string());
            }
        }
    }

    let done = progress.executed + progress.journaled + progress.quarantined;
    progress.tick(done, total_shards, jobs_done, total_jobs);
    progress.finish();
    pool.shutdown();

    Ok(RunSummary {
        executed: progress.executed,
        journaled: progress.journaled,
        quarantined: progress.quarantined,
        total_shards,
        elapsed: progress.elapsed(),
        blackboard,
        quarantines,
    })
}

fn shard_range_mismatch(job: &str, index: u32, prior: (u64, u64), current: (u64, u64)) -> String {
    format!(
        "journal shard {job}#{index} covers seeds {:?} but the registry now builds {:?}; \
         the shard decomposition changed without a fingerprint change — fix the \
         experiment's fingerprint inputs",
        prior, current
    )
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_stats::json::Value;
    use itr_stats::{Counters, Report, Unit};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("itr-harness-runner-{}-{name}", std::process::id()));
        let _ignored = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn counting_payload(n: u64) -> ShardPayload {
        let mut c = Counters::new();
        let events = c.register("events", Unit::Events, "");
        c.add(events, n);
        let mut report = Report::new();
        report.push_section("test", &c, &[]);
        ShardPayload {
            rows: vec![format!("row,{n}")],
            text: format!("shard {n}\n"),
            report: Some(report),
            data: Some(Value::UInt(n)),
        }
    }

    fn two_stage_registry() -> Registry {
        let mut registry = Registry::new(0xABCD);
        registry.add(JobSpec::new("produce", &[], |_| {
            (0..4u32)
                .map(|i| {
                    ShardSpec::new(i, (i as u64 * 10, i as u64 * 10 + 10), move |_ctx| {
                        counting_payload(i as u64 + 1)
                    })
                })
                .collect()
        }));
        registry.add(JobSpec::single("consume", &["produce"], |_ctx, board| {
            let total: u64 = board.expect("produce").data().map(|v| v.as_u64().unwrap_or(0)).sum();
            ShardPayload { rows: vec![format!("total,{total}")], ..ShardPayload::default() }
        }));
        registry
    }

    #[test]
    fn dag_runs_and_merges_deterministically() {
        let summary = run(two_stage_registry(), &RunOptions::default()).expect("run");
        assert_eq!(summary.executed, 5);
        assert_eq!(summary.quarantined, 0);
        let produce = summary.blackboard.expect("produce");
        assert_eq!(produce.rows(), vec!["row,1", "row,2", "row,3", "row,4"]);
        assert_eq!(produce.merged_report().counter("test", "events"), Some(10));
        let consume = summary.blackboard.expect("consume");
        assert_eq!(consume.rows(), vec!["total,10"], "dependent saw every shard payload");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let one = run(two_stage_registry(), &RunOptions { threads: 1, ..RunOptions::default() })
            .expect("run");
        let eight = run(two_stage_registry(), &RunOptions { threads: 8, ..RunOptions::default() })
            .expect("run");
        let rows = |s: &RunSummary| s.blackboard.expect("produce").rows();
        assert_eq!(rows(&one), rows(&eight));
        assert_eq!(
            one.blackboard.expect("produce").merged_report().to_json(),
            eight.blackboard.expect("produce").merged_report().to_json()
        );
    }

    #[test]
    fn resume_replays_journaled_shards_without_recomputation() {
        let dir = tmp_dir("resume");
        let journal_path = dir.join("journal.jsonl");
        let opts = RunOptions {
            journal_path: Some(journal_path.clone()),
            threads: 2,
            ..RunOptions::default()
        };
        let first = run(two_stage_registry(), &opts).expect("first run");
        assert_eq!(first.executed, 5);

        let resumed = run(two_stage_registry(), &RunOptions { resume: true, ..opts.clone() })
            .expect("resumed run");
        assert_eq!(resumed.executed, 0, "every shard replayed from the journal");
        assert_eq!(resumed.journaled, 5);
        assert_eq!(
            resumed.blackboard.expect("produce").merged_report().to_json(),
            first.blackboard.expect("produce").merged_report().to_json()
        );
        assert_eq!(
            resumed.blackboard.expect("consume").rows(),
            first.blackboard.expect("consume").rows()
        );
    }

    #[test]
    fn partial_journal_resumes_with_only_missing_shards() {
        // Simulate a run killed after journaling shard 0: write the
        // journal by hand, then resume — only shards 1..4 (and the
        // dependent job) may execute.
        let dir = tmp_dir("partial");
        let journal_path = dir.join("journal.jsonl");
        let registry = two_stage_registry();
        let fingerprint = registry.fingerprint();
        let mut journal =
            Journal::create(&journal_path, fingerprint, "quick").expect("create journal");
        journal.append_shard("produce", 0, (0, 10), 3, &counting_payload(1)).expect("append");
        drop(journal);

        let summary = run(
            registry,
            &RunOptions {
                journal_path: Some(journal_path),
                resume: true,
                threads: 2,
                ..RunOptions::default()
            },
        )
        .expect("run");
        assert_eq!(summary.journaled, 1);
        assert_eq!(summary.executed, 4, "three produce shards + consume");
        let fresh = run(two_stage_registry(), &RunOptions::default()).expect("fresh");
        assert_eq!(
            summary.blackboard.expect("produce").merged_report().to_json(),
            fresh.blackboard.expect("produce").merged_report().to_json(),
            "journal replay + fresh shards merge to the same aggregate"
        );
    }

    #[test]
    fn panicking_shard_is_quarantined_and_the_run_survives() {
        let mut registry = Registry::new(1);
        registry.add(JobSpec::new("mixed", &[], |_| {
            vec![
                ShardSpec::new(0, (0, 1), |_ctx| counting_payload(1)),
                ShardSpec::new(1, (1, 2), |_ctx| panic!("injected shard failure")),
                ShardSpec::new(2, (2, 3), |_ctx| counting_payload(3)),
            ]
        }));
        registry.add(JobSpec::single("after", &["mixed"], |_ctx, board| {
            let survivors = board.expect("mixed").shards.len() as u64;
            ShardPayload { rows: vec![format!("survivors,{survivors}")], ..Default::default() }
        }));
        let summary = run(registry, &RunOptions::default()).expect("run survives the panic");
        assert_eq!(summary.quarantined, 1);
        assert_eq!(summary.quarantines.len(), 1);
        assert!(
            summary.quarantines[0].2.contains("injected shard failure"),
            "{:?}",
            summary.quarantines
        );
        assert_eq!(summary.blackboard.expect("after").rows(), vec!["survivors,2"]);
    }

    #[test]
    fn watchdog_stops_a_cooperative_overrunner() {
        let mut registry = Registry::new(2);
        registry.add(JobSpec::new("slow", &[], |_| {
            vec![
                ShardSpec::new(0, (0, 1), |ctx: &ShardCtx| {
                    // Polls the flag like a well-behaved campaign shard.
                    while !ctx.cancelled() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    counting_payload(99)
                })
                .with_deadline(Duration::from_millis(60)),
                ShardSpec::new(1, (1, 2), |_ctx| counting_payload(1)),
            ]
        }));
        let summary = run(registry, &RunOptions::default()).expect("run");
        assert_eq!(summary.quarantined, 1);
        assert!(summary.quarantines[0].2.contains("cooperatively"), "{:?}", summary.quarantines);
        let slow = summary.blackboard.expect("slow");
        assert_eq!(slow.shards.len(), 1, "healthy shard survived");
        assert_eq!(slow.quarantined.len(), 1);
        assert_eq!(slow.quarantined[0].seed_lo, 0, "quarantine names the seed range");
    }

    #[test]
    fn watchdog_abandons_a_deaf_shard_and_keeps_the_run_alive() {
        let mut registry = Registry::new(3);
        registry.add(JobSpec::new("deaf", &[], |_| {
            vec![
                ShardSpec::new(0, (0, 1), |_ctx| {
                    // Never polls the cancel flag — a truly hung shard.
                    std::thread::sleep(Duration::from_secs(2));
                    counting_payload(1)
                })
                .with_deadline(Duration::from_millis(50)),
                ShardSpec::new(1, (1, 2), |_ctx| counting_payload(2)),
            ]
        }));
        let start = Instant::now();
        let summary = run(
            registry,
            &RunOptions { threads: 1, grace: Duration::from_millis(50), ..Default::default() },
        )
        .expect("run");
        assert!(start.elapsed() < Duration::from_secs(2), "run did not wait out the hang");
        assert_eq!(summary.quarantined, 1);
        assert!(summary.quarantines[0].2.contains("abandoned"));
        // With a single worker, shard 1 could only have run on the
        // replacement thread the watchdog spawned.
        assert_eq!(summary.blackboard.expect("deaf").shards.len(), 1);
    }
}
