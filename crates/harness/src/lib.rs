//! # itr-harness — resumable, sharded experiment orchestration
//!
//! The paper's evaluation is a DAG of dependent experiments (golden
//! functional runs feed trace characterization, which feeds coverage,
//! injection and energy studies). This crate runs that DAG the way a
//! fleet-scale fault campaign does:
//!
//! * [`Registry`] / [`JobSpec`] — each figure/table registers as a job
//!   with explicit dependencies; jobs split into [`ShardSpec`]s, the
//!   independent units of scheduling;
//! * [`pool`] — a work-stealing thread pool; shards of *all* ready jobs
//!   interleave, so one slow campaign never idles the machine;
//! * [`journal`] — an append-only `journal.jsonl` (`itr-harness/v1`)
//!   recording each completed shard's seed range and `itr-stats/v1`
//!   payload; an interrupted run resumes with zero recomputation;
//! * watchdogs — every shard carries a deadline; overdue shards are
//!   cancelled cooperatively or, if deaf, abandoned and quarantined
//!   while a replacement worker keeps the run alive;
//! * deterministic merge — [`JobResult`] folds per-shard rows, text and
//!   `itr-stats` reports in shard-index order, so the aggregate is
//!   byte-identical regardless of thread count or completion order;
//! * [`manifest`] — `MANIFEST.json` inventories the artifacts a run
//!   produced, with shard accounting for resume verification.
//!
//! The crate is experiment-agnostic: it depends only on `itr-stats`.
//! The experiment definitions live in `itr-bench::experiments`, and the
//! `itr-repro` binary drives the whole reproduction through [`runner::run`].

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod job;
pub mod journal;
pub mod manifest;
pub mod pool;
pub mod progress;
pub mod runner;

pub use job::{
    Blackboard, JobResult, JobSpec, QuarantineRecord, Registry, ShardCtx, ShardPayload,
    ShardRecord, ShardSpec, DEFAULT_DEADLINE,
};
pub use journal::{Entry, Journal};
pub use manifest::{collect_artifacts, write_manifest, ManifestEntry, ShardCounts};
pub use pool::{run_sharded, Pool};
pub use runner::{run, RunOptions, RunSummary};

/// FNV-1a over a canonical parameter string — the configuration
/// fingerprint that binds journals to the scale they were produced at.
pub fn fingerprint(canonical: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in canonical.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}
