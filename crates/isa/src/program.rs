//! Assembled program images and the programmatic builder API.

use crate::encode::encode;
use crate::instruction::Instruction;
use crate::opcode::Opcode;
use crate::INSTRUCTION_BYTES;
use std::collections::BTreeMap;
use std::fmt;

/// Default base address of the text (code) segment.
pub const TEXT_BASE: u64 = 0x0040_0000;
/// Default base address of the data segment.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Default initial stack pointer (grows down).
pub const STACK_TOP: u64 = 0x7FFF_F000;

/// Which segment a symbol or fixup lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Code.
    Text,
    /// Initialized/uninitialized data.
    Data,
}

/// An assembled program: a code image, a data image and a symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    text_base: u64,
    data_base: u64,
    entry: u64,
    text: Vec<u32>,
    data: Vec<u8>,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Base address of the text segment.
    pub fn text_base(&self) -> u64 {
        self.text_base
    }

    /// Base address of the data segment.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Entry-point address (the `main` label if defined, else the first
    /// text address).
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Encoded instruction words of the text segment.
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Initial bytes of the data segment.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Number of static instructions in the program.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols and their addresses.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Decodes the instruction stored at `addr`, if `addr` falls inside the
    /// text segment and decodes cleanly.
    pub fn instruction_at(&self, addr: u64) -> Option<Instruction> {
        if addr < self.text_base || !(addr - self.text_base).is_multiple_of(INSTRUCTION_BYTES) {
            return None;
        }
        let idx = ((addr - self.text_base) / INSTRUCTION_BYTES) as usize;
        self.text.get(idx).and_then(|&w| crate::decode(w).ok())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} instructions, {} data bytes, entry {:#x}",
            self.text.len(),
            self.data.len(),
            self.entry
        )
    }
}

/// Unresolved reference recorded while building.
#[derive(Debug, Clone)]
enum Fixup {
    /// PC-relative conditional-branch offset (I-format imm).
    Branch { text_index: usize, label: String },
    /// Absolute 26-bit jump target (J-format).
    Jump { text_index: usize, label: String },
    /// `lui`+`ori` pair loading a 32-bit address (index of the `lui`).
    LoadAddr { text_index: usize, label: String },
    /// A 32-bit data word holding a label's address (jump tables).
    DataAddr { data_offset: usize, label: String },
}

/// Error produced when finalizing a [`ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A conditional-branch displacement overflowed 16 bits.
    BranchOutOfRange { label: String, offset: i64 },
    /// A `j`/`jal` target fell outside the 28-bit J-format range.
    JumpOutOfRange { label: String, target: u64 },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset} words)")
            }
            BuildError::JumpOutOfRange { label, target } => {
                write!(f, "jump to `{label}` at {target:#x} outside the 28-bit J-format range")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally builds a [`Program`].
///
/// Used directly by workload generators and as the backend of the text
/// [assembler](crate::asm).
///
/// # Example
///
/// ```
/// use itr_isa::{Instruction, Opcode, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.label("main")?;
/// b.push(Instruction::rri(Opcode::Addi, 8, 0, 41));
/// b.push(Instruction::rri(Opcode::Addi, 8, 8, 1));
/// b.push(Instruction::trap(itr_isa::trap::HALT));
/// let program = b.build()?;
/// assert_eq!(program.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    text: Vec<u32>,
    data: Vec<u8>,
    labels: BTreeMap<String, (SegmentKind, u64)>,
    fixups: Vec<Fixup>,
    text_base: u64,
    data_base: u64,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default segment bases.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder { text_base: TEXT_BASE, data_base: DATA_BASE, ..ProgramBuilder::default() }
    }

    /// Address the next pushed instruction will occupy.
    pub fn here(&self) -> u64 {
        self.text_base + self.text.len() as u64 * INSTRUCTION_BYTES
    }

    /// Address the next data byte will occupy.
    pub fn data_here(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }

    /// Number of instructions emitted so far.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Defines `name` at the current text address.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateLabel`] if `name` already exists.
    pub fn label(&mut self, name: &str) -> Result<(), BuildError> {
        self.define(name, SegmentKind::Text, self.here())
    }

    /// Defines `name` at the current data address.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateLabel`] if `name` already exists.
    pub fn data_label(&mut self, name: &str) -> Result<(), BuildError> {
        self.define(name, SegmentKind::Data, self.data_here())
    }

    fn define(&mut self, name: &str, seg: SegmentKind, addr: u64) -> Result<(), BuildError> {
        if self.labels.insert(name.to_string(), (seg, addr)).is_some() {
            return Err(BuildError::DuplicateLabel(name.to_string()));
        }
        Ok(())
    }

    /// Emits one instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.text.push(encode(&inst));
    }

    /// Emits a conditional branch to `label` (offset patched at build time).
    pub fn branch_to(&mut self, op: Opcode, rs: u8, rt: u8, label: &str) {
        self.fixups.push(Fixup::Branch { text_index: self.text.len(), label: label.to_string() });
        self.push(Instruction::branch(op, rs, rt, 0));
    }

    /// Emits `j`/`jal` to `label` (target patched at build time).
    pub fn jump_to(&mut self, op: Opcode, label: &str) {
        self.fixups.push(Fixup::Jump { text_index: self.text.len(), label: label.to_string() });
        self.push(Instruction::jump(op, 0));
    }

    /// Emits `li rt, value` (expands to `lui`+`ori`, or a single `addi`/`ori`
    /// when the value fits in 16 bits).
    pub fn load_imm(&mut self, rt: u8, value: i64) {
        let v = value as i32;
        if (-32768..=32767).contains(&v) {
            self.push(Instruction::rri(Opcode::Addi, rt, 0, v));
        } else if (0..=0xFFFF).contains(&v) {
            self.push(Instruction::rri(Opcode::Ori, rt, 0, v));
        } else {
            let hi = ((v as u32) >> 16) as i32;
            let lo = (v as u32 & 0xFFFF) as i32;
            self.push(Instruction::rri(Opcode::Lui, rt, 0, hi));
            self.push(Instruction::rri(Opcode::Ori, rt, rt, lo));
        }
    }

    /// Emits `la rt, label` — a `lui`+`ori` pair patched at build time.
    pub fn load_addr(&mut self, rt: u8, label: &str) {
        self.fixups.push(Fixup::LoadAddr { text_index: self.text.len(), label: label.to_string() });
        self.push(Instruction::rri(Opcode::Lui, rt, 0, 0));
        self.push(Instruction::rri(Opcode::Ori, rt, rt, 0));
    }

    /// Appends a 32-bit little-endian word to the data segment.
    pub fn data_word(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a data word that will hold `label`'s address (patched at
    /// build time) — the building block of jump tables.
    pub fn data_word_addr(&mut self, label: &str) {
        self.fixups
            .push(Fixup::DataAddr { data_offset: self.data.len(), label: label.to_string() });
        self.data_word(0);
    }

    /// Appends `n` zero bytes to the data segment.
    pub fn data_space(&mut self, n: usize) {
        self.data.resize(self.data.len() + n, 0);
    }

    /// Appends raw bytes to the data segment.
    pub fn data_bytes(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Pads the data segment to the given power-of-two alignment.
    pub fn data_align(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Resolves all fixups and produces the final [`Program`].
    ///
    /// The entry point is the `main` label if defined, else `text_base`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for undefined labels or out-of-range
    /// branches.
    pub fn build(mut self) -> Result<Program, BuildError> {
        let lookup = |labels: &BTreeMap<String, (SegmentKind, u64)>,
                      name: &str|
         -> Result<u64, BuildError> {
            labels
                .get(name)
                .map(|&(_, a)| a)
                .ok_or_else(|| BuildError::UndefinedLabel(name.to_string()))
        };
        for fixup in std::mem::take(&mut self.fixups) {
            match fixup {
                Fixup::Branch { text_index, label } => {
                    let target = lookup(&self.labels, &label)?;
                    let pc = self.text_base + text_index as u64 * INSTRUCTION_BYTES;
                    let offset = (target as i64 - (pc as i64 + 4)) / 4;
                    if !(-32768..=32767).contains(&offset) {
                        return Err(BuildError::BranchOutOfRange { label, offset });
                    }
                    let mut inst = crate::decode(self.text[text_index]).expect("own encoding");
                    inst.imm = offset as i32;
                    self.text[text_index] = encode(&inst);
                }
                Fixup::Jump { text_index, label } => {
                    let target = lookup(&self.labels, &label)?;
                    // The J-format word index is 26 bits: targets at or
                    // above 1 << 28 (the data segment, for instance)
                    // would silently wrap.
                    if target >= 1 << 28 {
                        return Err(BuildError::JumpOutOfRange { label, target });
                    }
                    let mut inst = crate::decode(self.text[text_index]).expect("own encoding");
                    inst.imm = ((target >> 2) & 0x03FF_FFFF) as i32;
                    self.text[text_index] = encode(&inst);
                }
                Fixup::DataAddr { data_offset, label } => {
                    let target = lookup(&self.labels, &label)? as u32;
                    self.data[data_offset..data_offset + 4].copy_from_slice(&target.to_le_bytes());
                }
                Fixup::LoadAddr { text_index, label } => {
                    let target = lookup(&self.labels, &label)? as u32;
                    let mut lui = crate::decode(self.text[text_index]).expect("own encoding");
                    lui.imm = (target >> 16) as i32;
                    self.text[text_index] = encode(&lui);
                    let mut ori = crate::decode(self.text[text_index + 1]).expect("own encoding");
                    ori.imm = (target & 0xFFFF) as i32;
                    self.text[text_index + 1] = encode(&ori);
                }
            }
        }
        let entry = self.labels.get("main").map(|&(_, a)| a).unwrap_or(self.text_base);
        Ok(Program {
            text_base: self.text_base,
            data_base: self.data_base,
            entry,
            text: self.text,
            data: self.data,
            symbols: self.labels.into_iter().map(|(k, (_, a))| (k, a)).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trap;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = ProgramBuilder::new();
        b.label("main").unwrap();
        b.label("top").unwrap();
        b.push(Instruction::rri(Opcode::Addi, 8, 8, 1));
        b.branch_to(Opcode::Bne, 8, 9, "top");
        b.branch_to(Opcode::Beq, 8, 9, "done");
        b.push(Instruction::nop());
        b.label("done").unwrap();
        b.push(Instruction::trap(trap::HALT));
        let p = b.build().unwrap();
        // bne at index 1 targets index 0: offset = (0 - 2) = -2 words.
        let bne = p.instruction_at(p.text_base() + 4).unwrap();
        assert_eq!(bne.imm, -2);
        // beq at index 2 targets index 4: offset = (4 - 3) = 1 word.
        let beq = p.instruction_at(p.text_base() + 8).unwrap();
        assert_eq!(beq.imm, 1);
    }

    #[test]
    fn jump_fixup_targets_label_address() {
        let mut b = ProgramBuilder::new();
        b.label("main").unwrap();
        b.jump_to(Opcode::J, "end");
        b.push(Instruction::nop());
        b.label("end").unwrap();
        b.push(Instruction::trap(trap::HALT));
        let p = b.build().unwrap();
        let j = p.instruction_at(p.text_base()).unwrap();
        assert_eq!(j.direct_target(p.text_base()), p.symbol("end"));
    }

    #[test]
    fn load_addr_materializes_full_address() {
        let mut b = ProgramBuilder::new();
        b.label("main").unwrap();
        b.data_label("table").unwrap();
        b.data_word(42);
        b.load_addr(8, "table");
        b.push(Instruction::trap(trap::HALT));
        let p = b.build().unwrap();
        let lui = p.instruction_at(p.text_base()).unwrap();
        let ori = p.instruction_at(p.text_base() + 4).unwrap();
        let addr = ((lui.imm as u32) << 16) | (ori.imm as u32 & 0xFFFF);
        assert_eq!(addr as u64, p.symbol("table").unwrap());
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.jump_to(Opcode::J, "nowhere");
        assert_eq!(b.build().unwrap_err(), BuildError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.label("x").unwrap();
        assert!(matches!(b.label("x"), Err(BuildError::DuplicateLabel(_))));
    }

    #[test]
    fn entry_defaults_to_text_base_without_main() {
        let mut b = ProgramBuilder::new();
        b.push(Instruction::trap(trap::HALT));
        let p = b.build().unwrap();
        assert_eq!(p.entry(), p.text_base());
    }

    #[test]
    fn load_imm_small_and_large() {
        let mut b = ProgramBuilder::new();
        b.load_imm(8, 100); // 1 inst
        b.load_imm(9, -5); // 1 inst
        b.load_imm(10, 0x12345678); // 2 insts
        let p = b.build().unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn data_alignment_pads_with_zeros() {
        let mut b = ProgramBuilder::new();
        b.data_bytes(&[1, 2, 3]);
        b.data_align(8);
        b.data_word(7);
        let p = b.build().unwrap();
        assert_eq!(p.data().len(), 12);
        assert_eq!(&p.data()[8..12], &7u32.to_le_bytes());
    }
}
