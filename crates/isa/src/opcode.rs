//! The `rISA` operation list and its static properties.
//!
//! Every opcode carries the metadata the decode unit needs to produce the
//! Table-2 [`DecodeSignals`](crate::DecodeSignals) vector: control flags,
//! execution-latency class, operand counts and memory access size.

use crate::signals::SignalFlags;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Binary encoding format of an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `major=0x00`, funct-selected register-register operation.
    R,
    /// `major=0x11`, funct-selected floating-point operation.
    Fp,
    /// Immediate format: `major | rs | rt | imm16`.
    I,
    /// Jump format: `major | target26`.
    J,
}

/// Assembly-syntax class; drives operand parsing and printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syntax {
    /// `op rd, rs, rt`
    ThreeReg,
    /// `op rt, rs, imm`
    TwoRegImm,
    /// `op rd, rt, shamt`
    Shift,
    /// `op rd, rt, rs` (variable shift)
    ShiftV,
    /// `op rt, imm(rs)`
    Mem,
    /// `op rs, rt, label`
    Branch2,
    /// `op rs, label`
    Branch1,
    /// `op label` (absolute jump)
    Jump,
    /// `op rs`
    OneReg,
    /// `op rd, rs`
    TwoReg,
    /// `op rt, imm`
    RegImm16,
    /// `op fd, fs, ft`
    FpThree,
    /// `op fd, fs`
    FpTwo,
    /// `op fs, ft` (FP compare, writes FCC)
    FpCmp,
    /// `op label` (branch on FCC)
    FpBranch,
    /// `op rt, fs` (int/fp move)
    FpMove,
    /// `op ft, imm(rs)`
    FpMem,
    /// `op imm` (trap code)
    TrapCode,
}

/// Execution latency class, 2 bits wide as in Table 2 of the paper.
///
/// The scheduler maps a class to a pipeline latency via [`LatClass::cycles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LatClass {
    /// Single-cycle (ALU, branches).
    L1,
    /// Two cycles (cache-hit loads, FP moves).
    L2,
    /// Four cycles (integer multiply, FP arithmetic).
    L4,
    /// Twelve cycles (divide, square root).
    L12,
}

impl LatClass {
    /// Pipeline latency in cycles for this class.
    pub fn cycles(self) -> u64 {
        match self {
            LatClass::L1 => 1,
            LatClass::L2 => 2,
            LatClass::L4 => 4,
            LatClass::L12 => 12,
        }
    }

    /// 2-bit encoding used inside [`DecodeSignals`](crate::DecodeSignals).
    pub fn encode(self) -> u8 {
        match self {
            LatClass::L1 => 0,
            LatClass::L2 => 1,
            LatClass::L4 => 2,
            LatClass::L12 => 3,
        }
    }

    /// Inverse of [`LatClass::encode`] (only the low 2 bits are observed).
    pub fn from_bits(bits: u8) -> LatClass {
        match bits & 0b11 {
            0 => LatClass::L1,
            1 => LatClass::L2,
            2 => LatClass::L4,
            _ => LatClass::L12,
        }
    }
}

/// Static per-opcode properties.
#[derive(Debug, Clone, Copy)]
pub struct OpProperties {
    /// Mnemonic as written in assembly source.
    pub mnemonic: &'static str,
    /// 6-bit major opcode field.
    pub major: u8,
    /// 6-bit funct field for [`Format::R`]/[`Format::Fp`] encodings.
    pub funct: Option<u8>,
    /// Binary format.
    pub format: Format,
    /// Assembly syntax class.
    pub syntax: Syntax,
    /// Decode control flags (Table 2 `flags` field).
    pub flags: SignalFlags,
    /// Execution latency class (Table 2 `lat` field).
    pub lat: LatClass,
    /// Number of source register operands (Table 2 `num_rsrc`).
    pub num_rsrc: u8,
    /// Number of destination register operands (Table 2 `num_rdst`).
    pub num_rdst: u8,
    /// Memory access size in bytes (Table 2 `mem_size`), 0 for non-memory ops.
    pub mem_size: u8,
}

macro_rules! opcodes {
    ($(
        $name:ident {
            $mnem:literal, $major:literal, $funct:expr, $fmt:ident, $syn:ident,
            $lat:ident, nsrc: $nsrc:literal, ndst: $ndst:literal, msize: $msize:literal,
            [$($flag:ident)|*]
        }
    ),* $(,)?) => {
        /// Every operation in the `rISA` instruction set.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum Opcode {
            $($name),*
        }

        impl Opcode {
            /// All opcodes, in declaration order.
            pub const ALL: &'static [Opcode] = &[$(Opcode::$name),*];

            /// Static properties of this opcode.
            pub fn props(self) -> &'static OpProperties {
                match self {
                    $(Opcode::$name => {
                        static P: OpProperties = OpProperties {
                            mnemonic: $mnem,
                            major: $major,
                            funct: $funct,
                            format: Format::$fmt,
                            syntax: Syntax::$syn,
                            flags: SignalFlags::empty()$(.union(SignalFlags::$flag))*,
                            lat: LatClass::$lat,
                            num_rsrc: $nsrc,
                            num_rdst: $ndst,
                            mem_size: $msize,
                        };
                        &P
                    }),*
                }
            }
        }
    };
}

opcodes! {
    // ---- integer register-register (major 0x00, funct-selected) ----
    Sll   { "sll",   0x00, Some(0x00), R, Shift,    L1,  nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Srl   { "srl",   0x00, Some(0x02), R, Shift,    L1,  nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Sra   { "sra",   0x00, Some(0x03), R, Shift,    L1,  nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Sllv  { "sllv",  0x00, Some(0x04), R, ShiftV,   L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Srlv  { "srlv",  0x00, Some(0x06), R, ShiftV,   L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Srav  { "srav",  0x00, Some(0x07), R, ShiftV,   L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Jr    { "jr",    0x00, Some(0x08), R, OneReg,   L1,  nsrc: 1, ndst: 0, msize: 0, [IS_INT | IS_RR | IS_BRANCH | IS_UNCOND] },
    Jalr  { "jalr",  0x00, Some(0x09), R, TwoReg,   L1,  nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_BRANCH | IS_UNCOND] },
    Mul   { "mul",   0x00, Some(0x18), R, ThreeReg, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Div   { "div",   0x00, Some(0x1A), R, ThreeReg, L12, nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Rem   { "rem",   0x00, Some(0x1B), R, ThreeReg, L12, nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Add   { "add",   0x00, Some(0x20), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Sub   { "sub",   0x00, Some(0x22), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    And   { "and",   0x00, Some(0x24), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Or    { "or",    0x00, Some(0x25), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Xor   { "xor",   0x00, Some(0x26), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Nor   { "nor",   0x00, Some(0x27), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },
    Slt   { "slt",   0x00, Some(0x2A), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR | IS_SIGNED] },
    Sltu  { "sltu",  0x00, Some(0x2B), R, ThreeReg, L1,  nsrc: 2, ndst: 1, msize: 0, [IS_INT | IS_RR] },

    // ---- jumps ----
    J     { "j",     0x02, None, J, Jump, L1, nsrc: 0, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_UNCOND | IS_DIRECT] },
    Jal   { "jal",   0x03, None, J, Jump, L1, nsrc: 0, ndst: 1, msize: 0, [IS_INT | IS_BRANCH | IS_UNCOND | IS_DIRECT] },

    // ---- conditional branches ----
    Beq   { "beq",   0x04, None, I, Branch2, L1, nsrc: 2, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_DISP | IS_DIRECT] },
    Bne   { "bne",   0x05, None, I, Branch2, L1, nsrc: 2, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_DISP | IS_DIRECT] },
    Blez  { "blez",  0x06, None, I, Branch1, L1, nsrc: 1, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_DISP | IS_DIRECT | IS_SIGNED] },
    Bgtz  { "bgtz",  0x07, None, I, Branch1, L1, nsrc: 1, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_DISP | IS_DIRECT | IS_SIGNED] },
    Bltz  { "bltz",  0x10, None, I, Branch1, L1, nsrc: 1, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_DISP | IS_DIRECT | IS_SIGNED] },
    Bgez  { "bgez",  0x12, None, I, Branch1, L1, nsrc: 1, ndst: 0, msize: 0, [IS_INT | IS_BRANCH | IS_DISP | IS_DIRECT | IS_SIGNED] },

    // ---- integer immediates ----
    Addi  { "addi",  0x08, None, I, TwoRegImm, L1, nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_DISP | IS_SIGNED] },
    Slti  { "slti",  0x0A, None, I, TwoRegImm, L1, nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_DISP | IS_SIGNED] },
    Sltiu { "sltiu", 0x0B, None, I, TwoRegImm, L1, nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_DISP] },
    Andi  { "andi",  0x0C, None, I, TwoRegImm, L1, nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_DISP] },
    Ori   { "ori",   0x0D, None, I, TwoRegImm, L1, nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_DISP] },
    Xori  { "xori",  0x0E, None, I, TwoRegImm, L1, nsrc: 1, ndst: 1, msize: 0, [IS_INT | IS_DISP] },
    Lui   { "lui",   0x0F, None, I, RegImm16,  L1, nsrc: 0, ndst: 1, msize: 0, [IS_INT | IS_DISP] },

    // ---- loads ----
    Lb    { "lb",    0x20, None, I, Mem, L2, nsrc: 1, ndst: 1, msize: 1, [IS_INT | IS_LD | IS_DISP | IS_SIGNED] },
    Lh    { "lh",    0x21, None, I, Mem, L2, nsrc: 1, ndst: 1, msize: 2, [IS_INT | IS_LD | IS_DISP | IS_SIGNED] },
    Lwl   { "lwl",   0x22, None, I, Mem, L2, nsrc: 2, ndst: 1, msize: 4, [IS_INT | IS_LD | IS_DISP | MEM_LR] },
    Lw    { "lw",    0x23, None, I, Mem, L2, nsrc: 1, ndst: 1, msize: 4, [IS_INT | IS_LD | IS_DISP | IS_SIGNED] },
    Lbu   { "lbu",   0x24, None, I, Mem, L2, nsrc: 1, ndst: 1, msize: 1, [IS_INT | IS_LD | IS_DISP] },
    Lhu   { "lhu",   0x25, None, I, Mem, L2, nsrc: 1, ndst: 1, msize: 2, [IS_INT | IS_LD | IS_DISP] },
    Lwr   { "lwr",   0x26, None, I, Mem, L2, nsrc: 2, ndst: 1, msize: 4, [IS_INT | IS_LD | IS_DISP | MEM_LR] },

    // ---- stores ----
    Sb    { "sb",    0x28, None, I, Mem, L1, nsrc: 2, ndst: 0, msize: 1, [IS_INT | IS_ST | IS_DISP] },
    Sh    { "sh",    0x29, None, I, Mem, L1, nsrc: 2, ndst: 0, msize: 2, [IS_INT | IS_ST | IS_DISP] },
    Swl   { "swl",   0x2A, None, I, Mem, L1, nsrc: 2, ndst: 0, msize: 4, [IS_INT | IS_ST | IS_DISP | MEM_LR] },
    Sw    { "sw",    0x2B, None, I, Mem, L1, nsrc: 2, ndst: 0, msize: 4, [IS_INT | IS_ST | IS_DISP] },
    Swr   { "swr",   0x2E, None, I, Mem, L1, nsrc: 2, ndst: 0, msize: 4, [IS_INT | IS_ST | IS_DISP | MEM_LR] },

    // ---- floating point (major 0x11, funct-selected) ----
    AddS  { "add.s", 0x11, Some(0x00), Fp, FpThree, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    SubS  { "sub.s", 0x11, Some(0x01), Fp, FpThree, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    MulS  { "mul.s", 0x11, Some(0x02), Fp, FpThree, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    DivS  { "div.s", 0x11, Some(0x03), Fp, FpThree, L12, nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    SqrtS { "sqrt.s",0x11, Some(0x04), Fp, FpTwo,   L12, nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    AbsS  { "abs.s", 0x11, Some(0x05), Fp, FpTwo,   L1,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    MovS  { "mov.s", 0x11, Some(0x06), Fp, FpTwo,   L1,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR] },
    NegS  { "neg.s", 0x11, Some(0x07), Fp, FpTwo,   L1,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    Mfc1  { "mfc1",  0x11, Some(0x08), Fp, FpMove,  L2,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR] },
    Mtc1  { "mtc1",  0x11, Some(0x09), Fp, FpMove,  L2,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR] },
    CvtSW { "cvt.s.w", 0x11, Some(0x20), Fp, FpTwo, L4,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    CvtWS { "cvt.w.s", 0x11, Some(0x24), Fp, FpTwo, L4,  nsrc: 1, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    CEqS  { "c.eq.s",  0x11, Some(0x32), Fp, FpCmp, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    CLtS  { "c.lt.s",  0x11, Some(0x3C), Fp, FpCmp, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },
    CLeS  { "c.le.s",  0x11, Some(0x3E), Fp, FpCmp, L4,  nsrc: 2, ndst: 1, msize: 0, [IS_FP | IS_RR | IS_SIGNED] },

    // ---- FP branches on the condition flag ----
    Bc1t  { "bc1t",  0x13, None, I, FpBranch, L1, nsrc: 1, ndst: 0, msize: 0, [IS_FP | IS_BRANCH | IS_DISP | IS_DIRECT] },
    Bc1f  { "bc1f",  0x14, None, I, FpBranch, L1, nsrc: 1, ndst: 0, msize: 0, [IS_FP | IS_BRANCH | IS_DISP | IS_DIRECT] },

    // ---- FP memory ----
    Lwc1  { "lwc1",  0x31, None, I, FpMem, L2, nsrc: 1, ndst: 1, msize: 4, [IS_FP | IS_LD | IS_DISP] },
    Swc1  { "swc1",  0x39, None, I, FpMem, L1, nsrc: 2, ndst: 0, msize: 4, [IS_FP | IS_ST | IS_DISP] },

    // ---- traps ----
    Trap  { "trap",  0x3F, None, I, TrapCode, L1, nsrc: 1, ndst: 0, msize: 0, [IS_INT | IS_TRAP | IS_BRANCH | IS_UNCOND] },
}

impl Opcode {
    /// Opcode mnemonic, e.g. `"add.s"`.
    pub fn mnemonic(self) -> &'static str {
        self.props().mnemonic
    }

    /// `true` if this opcode terminates an ITR trace (any branching
    /// instruction per §2.1 of the paper; traps serialize and also
    /// terminate).
    pub fn ends_trace(self) -> bool {
        self.props().flags.contains(SignalFlags::IS_BRANCH)
    }

    /// `true` for conditional branches (branching but not unconditional).
    pub fn is_cond_branch(self) -> bool {
        let f = self.props().flags;
        f.contains(SignalFlags::IS_BRANCH) && !f.contains(SignalFlags::IS_UNCOND)
    }

    /// `true` for loads.
    pub fn is_load(self) -> bool {
        self.props().flags.contains(SignalFlags::IS_LD)
    }

    /// `true` for stores.
    pub fn is_store(self) -> bool {
        self.props().flags.contains(SignalFlags::IS_ST)
    }

    /// 8-bit canonical opcode identifier carried in the decode signals.
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Opcode::id`]; `None` when the 8-bit value does not name
    /// an opcode (possible after a fault flips opcode bits).
    pub fn from_id(id: u8) -> Option<Opcode> {
        Opcode::ALL.get(id as usize).copied()
    }

    /// Looks up an opcode by mnemonic.
    pub fn from_mnemonic(m: &str) -> Option<Opcode> {
        static TABLE: OnceLock<HashMap<&'static str, Opcode>> = OnceLock::new();
        TABLE
            .get_or_init(|| Opcode::ALL.iter().map(|&op| (op.mnemonic(), op)).collect())
            .get(m)
            .copied()
    }

    /// Looks up an opcode from its binary `(major, funct)` encoding.
    pub fn from_encoding(major: u8, funct: u8) -> Option<Opcode> {
        static TABLE: OnceLock<Box<[[Option<Opcode>; 64]; 64]>> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            let mut t = Box::new([[None; 64]; 64]);
            for &op in Opcode::ALL {
                let p = op.props();
                match p.funct {
                    Some(f) => t[p.major as usize][f as usize] = Some(op),
                    None => {
                        // Major-only opcodes occupy the whole funct row so
                        // decode never needs to know the format first.
                        for f in 0..64 {
                            t[p.major as usize][f] = Some(op);
                        }
                    }
                }
            }
            t
        });
        if major >= 64 || funct >= 64 {
            return None;
        }
        table[major as usize][funct as usize]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_round_trips_through_encoding() {
        for &op in Opcode::ALL {
            let p = op.props();
            let funct = p.funct.unwrap_or(0);
            assert_eq!(
                Opcode::from_encoding(p.major, funct),
                Some(op),
                "encoding round trip failed for {op}"
            );
        }
    }

    #[test]
    fn every_opcode_round_trips_through_mnemonic() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn every_opcode_round_trips_through_id() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_id(op.id()), Some(op));
        }
    }

    #[test]
    fn encodings_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for &op in Opcode::ALL {
            let p = op.props();
            assert!(seen.insert((p.major, p.funct)), "duplicate encoding for {op}");
            assert!(p.major < 64, "major out of range for {op}");
            if let Some(f) = p.funct {
                assert!(f < 64, "funct out of range for {op}");
            }
        }
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Beq.ends_trace());
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::J.ends_trace());
        assert!(!Opcode::J.is_cond_branch());
        assert!(Opcode::Jr.ends_trace());
        assert!(Opcode::Trap.ends_trace());
        assert!(!Opcode::Add.ends_trace());
        assert!(!Opcode::Lw.ends_trace());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Lw.is_load());
        assert!(!Opcode::Lw.is_store());
        assert!(Opcode::Sw.is_store());
        assert_eq!(Opcode::Lw.props().mem_size, 4);
        assert_eq!(Opcode::Lh.props().mem_size, 2);
        assert_eq!(Opcode::Sb.props().mem_size, 1);
        assert_eq!(Opcode::Add.props().mem_size, 0);
    }

    #[test]
    fn operand_counts_within_signal_widths() {
        for &op in Opcode::ALL {
            let p = op.props();
            assert!(p.num_rsrc <= 2, "{op}: num_rsrc exceeds 2-bit field");
            assert!(p.num_rdst <= 1, "{op}: num_rdst exceeds 1-bit field");
            assert!(p.mem_size <= 7, "{op}: mem_size exceeds 3-bit field");
        }
    }

    #[test]
    fn lat_class_round_trips() {
        for lat in [LatClass::L1, LatClass::L2, LatClass::L4, LatClass::L12] {
            assert_eq!(LatClass::from_bits(lat.encode()), lat);
        }
    }
}
