//! Architectural register names.

use std::fmt;
use std::str::FromStr;

/// An architectural register operand: either an integer register `r0..r31`
/// or a floating-point register `f0..f31`.
///
/// The 5-bit index is what appears in instruction encodings and in the
/// `rsrc1`/`rsrc2`/`rdst` decode-signal fields; whether it names the integer
/// or FP file is a property of the consuming opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Integer register `rN`.
    Int(u8),
    /// Floating-point register `fN`.
    Fp(u8),
}

impl Reg {
    /// The always-zero integer register.
    pub const ZERO: Reg = Reg::Int(0);
    /// Conventional return-address register (`r31`).
    pub const RA: Reg = Reg::Int(31);
    /// Conventional stack pointer (`r29`).
    pub const SP: Reg = Reg::Int(29);

    /// 5-bit register index within its file.
    ///
    /// ```
    /// use itr_isa::Reg;
    /// assert_eq!(Reg::Int(7).index(), 7);
    /// assert_eq!(Reg::Fp(3).index(), 3);
    /// ```
    pub fn index(self) -> u8 {
        match self {
            Reg::Int(i) | Reg::Fp(i) => i,
        }
    }

    /// `true` for floating-point registers.
    pub fn is_fp(self) -> bool {
        matches!(self, Reg::Fp(_))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(i) => write!(f, "r{i}"),
            Reg::Fp(i) => write!(f, "f{i}"),
        }
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `rN`, `fN`, and the conventional aliases `zero`, `ra`, `sp`,
    /// `gp`, `fp`, `at`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError(s.to_string());
        match s {
            "zero" => return Ok(Reg::Int(0)),
            "at" => return Ok(Reg::Int(1)),
            "gp" => return Ok(Reg::Int(28)),
            "sp" => return Ok(Reg::Int(29)),
            "fp" => return Ok(Reg::Int(30)),
            "ra" => return Ok(Reg::Int(31)),
            _ => {}
        }
        let (kind, num) = s.split_at(1);
        let idx: u8 = num.parse().map_err(|_| err())?;
        if idx >= 32 {
            return Err(err());
        }
        match kind {
            "r" | "R" => Ok(Reg::Int(idx)),
            "f" | "F" => Ok(Reg::Fp(idx)),
            _ => Err(err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_registers() {
        assert_eq!("r0".parse::<Reg>().unwrap(), Reg::Int(0));
        assert_eq!("r31".parse::<Reg>().unwrap(), Reg::Int(31));
        assert_eq!("f15".parse::<Reg>().unwrap(), Reg::Fp(15));
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::Int(0));
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::SP);
        assert_eq!("ra".parse::<Reg>().unwrap(), Reg::RA);
    }

    #[test]
    fn reject_out_of_range() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("f99".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for i in 0..32u8 {
            let r = Reg::Int(i);
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
            let f = Reg::Fp(i);
            assert_eq!(f.to_string().parse::<Reg>().unwrap(), f);
        }
    }
}
