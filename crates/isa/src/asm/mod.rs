//! A two-pass text assembler for `rISA`.
//!
//! Supported syntax:
//!
//! * comments: `#` or `;` to end of line,
//! * labels: `name:` (multiple per line allowed),
//! * directives: `.text`, `.data`, `.word v|label, ...`, `.byte v, ...`,
//!   `.ascii "s"`, `.asciiz "s"`, `.space n`, `.align n`,
//! * all opcode mnemonics from [`Opcode`], with MIPS-style operand order,
//! * pseudo-instructions: `li rt, imm`, `la rt, label`, `move rd, rs`,
//!   `nop`, `halt`, `b label`, `not rd, rs`, `neg rd, rs`.
//!
//! # Example
//!
//! ```
//! use itr_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p = assemble(
//!     r#"
//!     .data
//!     buf: .space 64
//!     .text
//!     main:
//!         la   r8, buf
//!         li   r9, 16
//!     loop:
//!         sw   r9, 0(r8)
//!         addi r8, r8, 4
//!         addi r9, r9, -1
//!         bgtz r9, loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(p.symbol("loop").is_some(), true);
//! # Ok(())
//! # }
//! ```

use crate::instruction::Instruction;
use crate::opcode::{Opcode, Syntax};
use crate::program::{BuildError, Program, ProgramBuilder};
use crate::reg::Reg;
use crate::trap;
use std::collections::BTreeMap;
use std::fmt;

/// Error produced by [`assemble`], tagged with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text (0 when the error has no
    /// usable source location).
    pub line: usize,
    /// What was rejected.
    pub kind: AsmErrorKind,
}

/// The rejected form behind an [`AsmError`].
///
/// Value-truncation hazards get their own variants: every place the
/// assembler used to silently mask a too-wide value (`as u8`, `as u16`,
/// 16-bit immediate fields, 28-bit jump targets) now rejects it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// `.ascii`/`.asciiz` literal contains a character outside ASCII;
    /// it would not survive the byte-per-char encoding.
    NonAsciiString {
        /// The offending character.
        ch: char,
    },
    /// `.byte` operand outside `-128..=255`.
    ByteOutOfRange {
        /// The rejected value.
        value: i64,
    },
    /// Immediate does not fit the 16-bit I-format field
    /// (`-32768..=65535`, covering both signed and unsigned users).
    ImmOutOfRange {
        /// Mnemonic the operand belonged to.
        mnemonic: String,
        /// The rejected value.
        value: i64,
    },
    /// Trap code outside the 16-bit `0..=65535` range.
    TrapCodeOutOfRange {
        /// The rejected value.
        value: i64,
    },
    /// Numeric jump target not 4-byte aligned.
    JumpTargetUnaligned {
        /// The rejected target address.
        target: i64,
    },
    /// Numeric jump target outside the 28-bit J-format range.
    JumpTargetOutOfRange {
        /// The rejected target address.
        target: i64,
    },
    /// Label-resolution failure from the program builder.
    Build(BuildError),
    /// Any other syntax error, described in prose.
    Syntax(String),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::NonAsciiString { ch } => {
                write!(f, "non-ASCII character {ch:?} in string literal")
            }
            AsmErrorKind::ByteOutOfRange { value } => {
                write!(f, ".byte value {value} out of range (-128..=255)")
            }
            AsmErrorKind::ImmOutOfRange { mnemonic, value } => {
                write!(f, "immediate {value} out of 16-bit range for `{mnemonic}`")
            }
            AsmErrorKind::TrapCodeOutOfRange { value } => {
                write!(f, "trap code {value} out of range (0..=65535)")
            }
            AsmErrorKind::JumpTargetUnaligned { target } => {
                write!(f, "jump target {target:#x} is not 4-byte aligned")
            }
            AsmErrorKind::JumpTargetOutOfRange { target } => {
                write!(f, "jump target {target:#x} out of 28-bit range")
            }
            AsmErrorKind::Build(e) => e.fmt(f),
            AsmErrorKind::Syntax(msg) => f.write_str(msg),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            self.kind.fmt(f)
        } else {
            write!(f, "line {}: {}", self.line, self.kind)
        }
    }
}

impl std::error::Error for AsmError {}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, kind: AsmErrorKind::Syntax(message.into()) }
    }

    fn typed(line: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, kind }
    }
}

impl From<BuildError> for AsmError {
    fn from(e: BuildError) -> AsmError {
        AsmError { line: 0, kind: AsmErrorKind::Build(e) }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assembles `rISA` source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax error, unknown
/// mnemonic, malformed operand, or unresolved/duplicate label.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut section = Section::Text;
    // First source line referencing each label, so label-resolution
    // errors surfaced at build time still point into the source.
    let mut refs: BTreeMap<String, usize> = BTreeMap::new();
    for (line_no, raw) in source.lines().enumerate() {
        let line_no = line_no + 1;
        let mut line = raw;
        if let Some(pos) = line.find(['#', ';']) {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        // Peel leading labels.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !is_ident(name) {
                break;
            }
            let result = match section {
                Section::Text => b.label(name),
                Section::Data => b.data_label(name),
            };
            result.map_err(|e| AsmError::new(line_no, e.to_string()))?;
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            parse_directive(&mut b, &mut section, &mut refs, directive, line_no)?;
            continue;
        }
        if section != Section::Text {
            return Err(AsmError::new(line_no, "instruction outside .text section"));
        }
        parse_instruction(&mut b, &mut refs, rest, line_no)?;
    }
    b.build().map_err(|e| {
        let line = match &e {
            BuildError::UndefinedLabel(l)
            | BuildError::DuplicateLabel(l)
            | BuildError::BranchOutOfRange { label: l, .. }
            | BuildError::JumpOutOfRange { label: l, .. } => refs.get(l).copied().unwrap_or(0),
        };
        AsmError { line, kind: AsmErrorKind::Build(e) }
    })
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_directive(
    b: &mut ProgramBuilder,
    section: &mut Section,
    refs: &mut BTreeMap<String, usize>,
    directive: &str,
    line: usize,
) -> Result<(), AsmError> {
    let (name, args) = directive.split_once(char::is_whitespace).unwrap_or((directive, ""));
    match name {
        "text" => *section = Section::Text,
        "data" => *section = Section::Data,
        "word" => {
            for arg in split_args(args) {
                if let Ok(v) = parse_int(&arg, line) {
                    b.data_word(v as u32);
                } else if is_ident(&arg) {
                    // A label: the word holds its address (jump tables).
                    refs.entry(arg.clone()).or_insert(line);
                    b.data_word_addr(&arg);
                } else {
                    return Err(AsmError::new(line, format!("invalid .word operand `{arg}`")));
                }
            }
        }
        "byte" => {
            for arg in split_args(args) {
                let v = parse_int(&arg, line)?;
                if !(-128..=255).contains(&v) {
                    return Err(AsmError::typed(line, AsmErrorKind::ByteOutOfRange { value: v }));
                }
                b.data_bytes(&[(v & 0xFF) as u8]);
            }
        }
        "ascii" | "asciiz" => {
            let arg = args.trim();
            let inner = arg
                .strip_prefix('"')
                .and_then(|a| a.strip_suffix('"'))
                .ok_or_else(|| AsmError::new(line, "string literal expected"))?;
            let mut bytes = Vec::with_capacity(inner.len());
            let mut chars = inner.chars();
            while let Some(c) = chars.next() {
                let b = if c == '\\' {
                    match chars.next() {
                        Some('n') => b'\n',
                        Some('t') => b'\t',
                        Some('0') => 0,
                        Some('\\') => b'\\',
                        Some('"') => b'"',
                        _ => return Err(AsmError::new(line, "unknown escape sequence")),
                    }
                } else if c.is_ascii() {
                    c as u8
                } else {
                    return Err(AsmError::typed(line, AsmErrorKind::NonAsciiString { ch: c }));
                };
                bytes.push(b);
            }
            if name == "asciiz" {
                bytes.push(0);
            }
            b.data_bytes(&bytes);
        }
        "space" => {
            let n = parse_int(args.trim(), line)?;
            if n < 0 {
                return Err(AsmError::new(line, ".space size must be non-negative"));
            }
            b.data_space(n as usize);
        }
        "align" => {
            let n = parse_int(args.trim(), line)?;
            if n <= 0 || !(n as usize).is_power_of_two() {
                return Err(AsmError::new(line, ".align requires a power of two"));
            }
            b.data_align(n as usize);
        }
        other => return Err(AsmError::new(line, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn split_args(s: &str) -> Vec<String> {
    s.split(',').map(|p| p.trim().to_string()).filter(|p| !p.is_empty()).collect()
}

fn parse_int(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError::new(line, format!("invalid integer `{s}`")))?;
    Ok(if neg { -value } else { value })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    s.trim().parse::<Reg>().map_err(|e| AsmError::new(line, e.to_string()))
}

fn parse_int_reg(s: &str, line: usize) -> Result<u8, AsmError> {
    match parse_reg(s, line)? {
        Reg::Int(i) => Ok(i),
        Reg::Fp(_) => Err(AsmError::new(line, format!("expected integer register, got `{s}`"))),
    }
}

fn parse_fp_reg(s: &str, line: usize) -> Result<u8, AsmError> {
    match parse_reg(s, line)? {
        Reg::Fp(i) => Ok(i),
        Reg::Int(_) => Err(AsmError::new(line, format!("expected FP register, got `{s}`"))),
    }
}

/// Parses `imm(reg)` or `(reg)`.
fn parse_mem_operand(s: &str, line: usize) -> Result<(i32, u8), AsmError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected `imm(reg)`, got `{s}`")))?;
    let close = s.rfind(')').ok_or_else(|| AsmError::new(line, format!("missing `)` in `{s}`")))?;
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() { 0 } else { parse_int(off_str, line)? as i32 };
    let base = parse_int_reg(&s[open + 1..close], line)?;
    Ok((offset, base))
}

fn expect_args(args: &[String], n: usize, mnem: &str, line: usize) -> Result<(), AsmError> {
    if args.len() != n {
        return Err(AsmError::new(
            line,
            format!("`{mnem}` expects {n} operand(s), got {}", args.len()),
        ));
    }
    Ok(())
}

/// Checks a value against the 16-bit I-format immediate field. The
/// accepted range spans both the signed (`addi`, `slti`, branches) and
/// zero-extended (`andi`, `ori`, `lui`) interpretations; anything wider
/// used to be masked silently at encode time.
fn check_imm16(mnem: &str, value: i64, line: usize) -> Result<i32, AsmError> {
    if !(-32768..=65535).contains(&value) {
        return Err(AsmError::typed(
            line,
            AsmErrorKind::ImmOutOfRange { mnemonic: mnem.to_string(), value },
        ));
    }
    Ok(value as i32)
}

fn parse_instruction(
    b: &mut ProgramBuilder,
    refs: &mut BTreeMap<String, usize>,
    text: &str,
    line: usize,
) -> Result<(), AsmError> {
    let (mnem, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let args = split_args(rest);

    // Pseudo-instructions first.
    match mnem {
        "nop" => {
            b.push(Instruction::nop());
            return Ok(());
        }
        "halt" => {
            b.push(Instruction::trap(trap::HALT));
            return Ok(());
        }
        "li" => {
            expect_args(&args, 2, mnem, line)?;
            let rt = parse_int_reg(&args[0], line)?;
            let v = parse_int(&args[1], line)?;
            b.load_imm(rt, v);
            return Ok(());
        }
        "la" => {
            expect_args(&args, 2, mnem, line)?;
            let rt = parse_int_reg(&args[0], line)?;
            refs.entry(args[1].clone()).or_insert(line);
            b.load_addr(rt, &args[1]);
            return Ok(());
        }
        "move" => {
            expect_args(&args, 2, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rs = parse_int_reg(&args[1], line)?;
            b.push(Instruction::rrr(Opcode::Or, rd, rs, 0));
            return Ok(());
        }
        "not" => {
            expect_args(&args, 2, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rs = parse_int_reg(&args[1], line)?;
            b.push(Instruction::rrr(Opcode::Nor, rd, rs, 0));
            return Ok(());
        }
        "neg" => {
            expect_args(&args, 2, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rs = parse_int_reg(&args[1], line)?;
            b.push(Instruction::rrr(Opcode::Sub, rd, 0, rs));
            return Ok(());
        }
        "b" => {
            expect_args(&args, 1, mnem, line)?;
            emit_branch(b, refs, Opcode::Beq, 0, 0, &args[0], line)?;
            return Ok(());
        }
        _ => {}
    }

    let op = Opcode::from_mnemonic(mnem)
        .ok_or_else(|| AsmError::new(line, format!("unknown mnemonic `{mnem}`")))?;
    match op.props().syntax {
        Syntax::ThreeReg => {
            expect_args(&args, 3, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rs = parse_int_reg(&args[1], line)?;
            let rt = parse_int_reg(&args[2], line)?;
            b.push(Instruction::rrr(op, rd, rs, rt));
        }
        Syntax::Shift => {
            expect_args(&args, 3, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rt = parse_int_reg(&args[1], line)?;
            let sh = parse_int(&args[2], line)?;
            if !(0..32).contains(&sh) {
                return Err(AsmError::new(line, "shift amount must be 0..31"));
            }
            b.push(Instruction::shift(op, rd, rt, sh as u8));
        }
        Syntax::ShiftV => {
            expect_args(&args, 3, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rt = parse_int_reg(&args[1], line)?;
            let rs = parse_int_reg(&args[2], line)?;
            b.push(Instruction { op, rs, rt, rd, shamt: 0, imm: 0 });
        }
        Syntax::TwoRegImm => {
            expect_args(&args, 3, mnem, line)?;
            let rt = parse_int_reg(&args[0], line)?;
            let rs = parse_int_reg(&args[1], line)?;
            let imm = check_imm16(mnem, parse_int(&args[2], line)?, line)?;
            b.push(Instruction::rri(op, rt, rs, imm));
        }
        Syntax::RegImm16 => {
            expect_args(&args, 2, mnem, line)?;
            let rt = parse_int_reg(&args[0], line)?;
            let imm = check_imm16(mnem, parse_int(&args[1], line)?, line)?;
            b.push(Instruction::rri(op, rt, 0, imm));
        }
        Syntax::Mem => {
            expect_args(&args, 2, mnem, line)?;
            let rt = parse_int_reg(&args[0], line)?;
            let (off, base) = parse_mem_operand(&args[1], line)?;
            b.push(Instruction::mem(op, rt, base, off));
        }
        Syntax::FpMem => {
            expect_args(&args, 2, mnem, line)?;
            let ft = parse_fp_reg(&args[0], line)?;
            let (off, base) = parse_mem_operand(&args[1], line)?;
            b.push(Instruction::mem(op, ft, base, off));
        }
        Syntax::Branch2 => {
            expect_args(&args, 3, mnem, line)?;
            let rs = parse_int_reg(&args[0], line)?;
            let rt = parse_int_reg(&args[1], line)?;
            emit_branch(b, refs, op, rs, rt, &args[2], line)?;
        }
        Syntax::Branch1 => {
            expect_args(&args, 2, mnem, line)?;
            let rs = parse_int_reg(&args[0], line)?;
            emit_branch(b, refs, op, rs, 0, &args[1], line)?;
        }
        Syntax::FpBranch => {
            expect_args(&args, 1, mnem, line)?;
            emit_branch(b, refs, op, 0, 0, &args[0], line)?;
        }
        Syntax::Jump => {
            expect_args(&args, 1, mnem, line)?;
            if let Ok(addr) = parse_int(&args[0], line) {
                if addr % 4 != 0 {
                    return Err(AsmError::typed(
                        line,
                        AsmErrorKind::JumpTargetUnaligned { target: addr },
                    ));
                }
                if !(0..1i64 << 28).contains(&addr) {
                    return Err(AsmError::typed(
                        line,
                        AsmErrorKind::JumpTargetOutOfRange { target: addr },
                    ));
                }
                b.push(Instruction::jump(op, (addr as u64 >> 2) as u32));
            } else {
                refs.entry(args[0].clone()).or_insert(line);
                b.jump_to(op, &args[0]);
            }
        }
        Syntax::OneReg => {
            expect_args(&args, 1, mnem, line)?;
            let rs = parse_int_reg(&args[0], line)?;
            b.push(Instruction { op, rs, rt: 0, rd: 0, shamt: 0, imm: 0 });
        }
        Syntax::TwoReg => {
            expect_args(&args, 2, mnem, line)?;
            let rd = parse_int_reg(&args[0], line)?;
            let rs = parse_int_reg(&args[1], line)?;
            b.push(Instruction { op, rs, rt: 0, rd, shamt: 0, imm: 0 });
        }
        Syntax::FpThree => {
            expect_args(&args, 3, mnem, line)?;
            let fd = parse_fp_reg(&args[0], line)?;
            let fs = parse_fp_reg(&args[1], line)?;
            let ft = parse_fp_reg(&args[2], line)?;
            b.push(Instruction::rrr(op, fd, fs, ft));
        }
        Syntax::FpTwo => {
            expect_args(&args, 2, mnem, line)?;
            let fd = parse_fp_reg(&args[0], line)?;
            let fs = parse_fp_reg(&args[1], line)?;
            b.push(Instruction { op, rs: fs, rt: 0, rd: fd, shamt: 0, imm: 0 });
        }
        Syntax::FpCmp => {
            expect_args(&args, 2, mnem, line)?;
            let fs = parse_fp_reg(&args[0], line)?;
            let ft = parse_fp_reg(&args[1], line)?;
            b.push(Instruction { op, rs: fs, rt: ft, rd: 0, shamt: 0, imm: 0 });
        }
        Syntax::FpMove => {
            expect_args(&args, 2, mnem, line)?;
            let rt = parse_int_reg(&args[0], line)?;
            let fs = parse_fp_reg(&args[1], line)?;
            b.push(Instruction { op, rs: fs, rt, rd: 0, shamt: 0, imm: 0 });
        }
        Syntax::TrapCode => {
            expect_args(&args, 1, mnem, line)?;
            let code = parse_int(&args[0], line)?;
            if !(0..=0xFFFF).contains(&code) {
                return Err(AsmError::typed(
                    line,
                    AsmErrorKind::TrapCodeOutOfRange { value: code },
                ));
            }
            b.push(Instruction::trap(code as u16));
        }
    }
    Ok(())
}

fn emit_branch(
    b: &mut ProgramBuilder,
    refs: &mut BTreeMap<String, usize>,
    op: Opcode,
    rs: u8,
    rt: u8,
    target: &str,
    line: usize,
) -> Result<(), AsmError> {
    if let Ok(offset) = parse_int(target, line) {
        let offset = check_imm16(op.mnemonic(), offset, line)?;
        b.push(Instruction::branch(op, rs, rt, offset));
    } else if is_ident(target) {
        refs.entry(target.to_string()).or_insert(line);
        b.branch_to(op, rs, rt, target);
    } else {
        return Err(AsmError::new(line, format!("invalid branch target `{target}`")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_loop() {
        let p = assemble(
            r#"
            .text
            main:
                li r8, 10
                li r9, 0
            top:
                add r9, r9, r8
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.symbol("top"), Some(p.text_base() + 8));
    }

    #[test]
    fn data_section_and_la() {
        let p = assemble(
            r#"
            .data
            nums: .word 1, 2, 3, 0x10
            pad:  .space 8
            .text
            main:
                la r8, nums
                lw r9, 4(r8)
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.data().len(), 24);
        assert_eq!(&p.data()[12..16], &0x10u32.to_le_bytes());
        assert_eq!(p.symbol("pad"), Some(p.data_base() + 16));
    }

    #[test]
    fn fp_instructions() {
        let p = assemble(
            r#"
            main:
                mtc1 r8, f0
                cvt.s.w f1, f0
                add.s f2, f1, f1
                c.lt.s f1, f2
                bc1t main
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble("main:\n  frobnicate r1, r2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn wrong_operand_count_is_rejected() {
        let err = assemble("main:\n add r1, r2\n").unwrap_err();
        assert!(err.to_string().contains("expects 3"));
    }

    #[test]
    fn wrong_register_file_is_rejected() {
        let err = assemble("main:\n add.s f1, r2, f3\n").unwrap_err();
        assert!(err.to_string().contains("expected FP register"));
    }

    #[test]
    fn instruction_in_data_section_is_rejected() {
        let err = assemble(".data\n add r1, r2, r3\n").unwrap_err();
        assert!(err.to_string().contains("outside .text"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble("# header\nmain: ; entry\n  halt # done\n\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn ascii_directives_emit_bytes() {
        let p = assemble(".data\nmsg: .asciiz \"hi\\n\"\n.text\nmain:\n halt\n").unwrap();
        assert_eq!(p.data(), b"hi\n\0");
    }

    #[test]
    fn word_directive_accepts_labels() {
        let p = assemble(".data\ntbl: .word f, g, 7\n.text\nmain:\n halt\nf:\n halt\ng:\n halt\n")
            .unwrap();
        let tbl = p.symbol("tbl").unwrap();
        let w = |i: u64| {
            u32::from_le_bytes(
                p.data()[(tbl - p.data_base() + i * 4) as usize..][..4].try_into().unwrap(),
            )
        };
        assert_eq!(w(0) as u64, p.symbol("f").unwrap());
        assert_eq!(w(1) as u64, p.symbol("g").unwrap());
        assert_eq!(w(2), 7);
    }

    #[test]
    fn mem_operand_without_offset() {
        let p = assemble("main:\n lw r1, (r2)\n halt\n").unwrap();
        let lw = p.instruction_at(p.text_base()).unwrap();
        assert_eq!(lw.imm, 0);
        assert_eq!(lw.rs, 2);
    }

    #[test]
    fn more_malformed_inputs_are_rejected_with_line_numbers() {
        for (src, needle) in [
            ("main:\n .word x y\n", "invalid"),
            ("main:\n .space -4\n", "non-negative"),
            ("main:\n .align 3\n", "power of two"),
            ("main:\n .bogus 1\n", "unknown directive"),
            ("main:\n sll r1, r2, 32\n", "shift amount"),
            ("main:\n lw r1, 4[r2]\n", "expected `imm(reg)`"),
            ("main:\n beq r1, r2, 3.5\n", "invalid branch target"),
            ("main:\nmain:\n halt\n", "duplicate label"),
            ("main:\n j nowhere\n", "undefined label"),
        ] {
            let err = assemble(src).expect_err(src);
            assert!(err.to_string().contains(needle), "{src:?}: got `{err}`, wanted `{needle}`");
        }
    }

    #[test]
    fn non_ascii_string_literal_is_rejected() {
        let err = assemble(".data\nmsg: .ascii \"héllo\"\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, AsmErrorKind::NonAsciiString { ch: 'é' });
    }

    #[test]
    fn out_of_range_byte_is_rejected() {
        let err = assemble(".data\nb: .byte 1, 2, 256\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::ByteOutOfRange { value: 256 });
        let err = assemble(".data\nb: .byte -129\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::ByteOutOfRange { value: -129 });
        // Both signed and unsigned byte spellings stay accepted.
        let p = assemble(".data\nb: .byte -128, 255\n.text\nmain:\n halt\n").unwrap();
        assert_eq!(p.data(), &[0x80, 0xFF]);
    }

    #[test]
    fn oversized_immediates_are_rejected_not_truncated() {
        let err = assemble("main:\n addi r8, r0, 70000\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::ImmOutOfRange { mnemonic: "addi".into(), value: 70000 });
        let err = assemble("main:\n ori r8, r8, -40000\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ImmOutOfRange { value: -40000, .. }));
        // The unsigned upper half stays available for `ori`/`lui`.
        assert!(assemble("main:\n ori r8, r0, 0xFFFF\n halt\n").is_ok());
    }

    #[test]
    fn out_of_range_trap_code_is_rejected() {
        let err = assemble("main:\n trap 65536\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::TrapCodeOutOfRange { value: 65536 });
        let err = assemble("main:\n trap -1\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::TrapCodeOutOfRange { value: -1 });
    }

    #[test]
    fn bad_numeric_jump_targets_are_rejected() {
        let err = assemble("main:\n j 0x400002\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::JumpTargetUnaligned { target: 0x400002 });
        let err = assemble("main:\n j 0x10000000\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::JumpTargetOutOfRange { target: 0x1000_0000 });
    }

    #[test]
    fn jump_to_data_label_is_rejected_with_the_referencing_line() {
        // DATA_BASE sits exactly at 1 << 28, outside the J-format range.
        let err = assemble(".data\nbuf: .space 4\n.text\nmain:\n nop\n j buf\n").unwrap_err();
        assert_eq!(err.line, 6, "error points at the `j buf` line");
        assert!(matches!(
            err.kind,
            AsmErrorKind::Build(BuildError::JumpOutOfRange { ref label, .. }) if label == "buf"
        ));
    }

    #[test]
    fn undefined_label_error_points_at_the_reference() {
        let err = assemble("main:\n nop\n beq r1, r2, nowhere\n halt\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, AsmErrorKind::Build(BuildError::UndefinedLabel(_))));
    }

    #[test]
    fn register_aliases_work() {
        let p = assemble("main:\n addi sp, sp, -16\n sw ra, 0(sp)\n halt\n").unwrap();
        let first = p.instruction_at(p.text_base()).unwrap();
        assert_eq!((first.rt, first.rs), (29, 29));
    }
}
