//! Binary encoding and decoding of 32-bit instruction words.

use crate::instruction::Instruction;
use crate::opcode::{Format, Opcode};
use std::fmt;

/// Error returned by [`decode`] for words that do not name a defined
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "undefined instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction into its 32-bit word.
///
/// Layouts:
/// * R/Fp: `major[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]`
/// * I:    `major[31:26] rs[25:21] rt[20:16] imm[15:0]`
/// * J:    `major[31:26] target[25:0]`
pub fn encode(inst: &Instruction) -> u32 {
    let p = inst.op.props();
    let major = (p.major as u32) << 26;
    match p.format {
        Format::R | Format::Fp => {
            major
                | ((inst.rs as u32 & 0x1F) << 21)
                | ((inst.rt as u32 & 0x1F) << 16)
                | ((inst.rd as u32 & 0x1F) << 11)
                | ((inst.shamt as u32 & 0x1F) << 6)
                | (p.funct.unwrap_or(0) as u32 & 0x3F)
        }
        Format::I => {
            major
                | ((inst.rs as u32 & 0x1F) << 21)
                | ((inst.rt as u32 & 0x1F) << 16)
                | (inst.imm as u32 & 0xFFFF)
        }
        Format::J => major | (inst.imm as u32 & 0x03FF_FFFF),
    }
}

/// Decodes a 32-bit word back into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the word's `(major, funct)` pair does not name
/// a defined operation.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let major = (word >> 26) as u8;
    let funct = (word & 0x3F) as u8;
    let op = Opcode::from_encoding(major, funct).ok_or(DecodeError { word })?;
    let p = op.props();
    let rs = ((word >> 21) & 0x1F) as u8;
    let rt = ((word >> 16) & 0x1F) as u8;
    Ok(match p.format {
        Format::R | Format::Fp => Instruction {
            op,
            rs,
            rt,
            rd: ((word >> 11) & 0x1F) as u8,
            shamt: ((word >> 6) & 0x1F) as u8,
            imm: 0,
        },
        Format::I => {
            Instruction { op, rs, rt, rd: 0, shamt: 0, imm: (word & 0xFFFF) as u16 as i16 as i32 }
        }
        Format::J => {
            Instruction { op, rs: 0, rt: 0, rd: 0, shamt: 0, imm: (word & 0x03FF_FFFF) as i32 }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Syntax;

    /// A representative instruction for each opcode, with distinctive field
    /// values so encode/decode mix-ups are caught.
    fn sample(op: Opcode) -> Instruction {
        match op.props().syntax {
            Syntax::ThreeReg | Syntax::FpThree => Instruction::rrr(op, 5, 9, 17),
            Syntax::Shift => Instruction::shift(op, 5, 9, 13),
            Syntax::ShiftV => Instruction { op, rs: 9, rt: 17, rd: 5, shamt: 0, imm: 0 },
            Syntax::Mem | Syntax::FpMem => Instruction::mem(op, 5, 9, -44),
            Syntax::Branch2 => Instruction::branch(op, 5, 9, -3),
            Syntax::Branch1 | Syntax::FpBranch => Instruction::branch(op, 5, 0, 7),
            Syntax::Jump => Instruction::jump(op, 0x123456),
            Syntax::OneReg => Instruction { op, rs: 9, rt: 0, rd: 0, shamt: 0, imm: 0 },
            Syntax::TwoReg | Syntax::FpTwo | Syntax::FpMove => {
                Instruction { op, rs: 9, rt: 5, rd: 5, shamt: 0, imm: 0 }
            }
            Syntax::FpCmp => Instruction { op, rs: 9, rt: 17, rd: 0, shamt: 0, imm: 0 },
            Syntax::TwoRegImm => Instruction::rri(op, 5, 9, -100),
            Syntax::RegImm16 => Instruction::rri(op, 5, 0, 0x7abc),
            Syntax::TrapCode => Instruction::trap(1),
        }
    }

    #[test]
    fn encode_decode_round_trips_every_opcode() {
        for &op in Opcode::ALL {
            let inst = sample(op);
            let word = encode(&inst);
            let back = decode(word).unwrap_or_else(|e| panic!("{op}: {e}"));
            assert_eq!(back, inst, "round trip failed for {op} (word {word:#010x})");
        }
    }

    #[test]
    fn negative_immediates_sign_extend() {
        let inst = Instruction::rri(Opcode::Addi, 1, 2, -1);
        let back = decode(encode(&inst)).unwrap();
        assert_eq!(back.imm, -1);
    }

    #[test]
    fn undefined_word_is_an_error() {
        // Major 0x3E is unassigned.
        assert!(decode(0x3E << 26).is_err());
        let msg = decode(0xF800_0000).unwrap_err().to_string();
        assert!(msg.contains("undefined instruction"));
    }

    #[test]
    fn every_word_either_decodes_or_errors_without_panicking() {
        // Sweep a structured sample of the word space: all majors × a few
        // funct/field patterns.
        for major in 0..64u32 {
            for pattern in [0x0000_0000, 0x03FF_FFFF, 0x0155_5555, 0x02AA_AAAA] {
                let word = (major << 26) | pattern;
                let _ = decode(word); // must not panic
            }
        }
    }

    #[test]
    fn decode_rejects_unassigned_functs() {
        // major 0x00, funct 0x3F is unassigned.
        assert!(decode(0x0000_003F).is_err());
        // major 0x11 (FP), funct 0x1F is unassigned.
        assert!(decode((0x11 << 26) | 0x1F).is_err());
    }

    #[test]
    fn nop_encodes_as_zero() {
        assert_eq!(encode(&Instruction::nop()), 0);
        assert_eq!(decode(0).unwrap(), Instruction::nop());
    }
}
