//! Decoded instruction record and convenience constructors.

use crate::opcode::{Opcode, Syntax};
use std::fmt;

/// A decoded `rISA` instruction.
///
/// Field meanings follow the MIPS convention (`rs`, `rt`, `rd`, `shamt`,
/// `imm`); which fields are live depends on [`Opcode::props`]. For J-format
/// instructions the 26-bit word target lives in `imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Operation.
    pub op: Opcode,
    /// `rs` field (5 bits) — usually the first source / base register.
    pub rs: u8,
    /// `rt` field (5 bits) — second source, store data, or I-format dest.
    pub rt: u8,
    /// `rd` field (5 bits) — R-format destination.
    pub rd: u8,
    /// Shift amount (5 bits).
    pub shamt: u8,
    /// Immediate: sign-extended I-format value, or 26-bit J-format word
    /// target (non-negative).
    pub imm: i32,
}

impl Instruction {
    /// Three-register ALU operation: `op rd, rs, rt`.
    pub fn rrr(op: Opcode, rd: u8, rs: u8, rt: u8) -> Instruction {
        Instruction { op, rs, rt, rd, shamt: 0, imm: 0 }
    }

    /// Register-immediate operation: `op rt, rs, imm`.
    pub fn rri(op: Opcode, rt: u8, rs: u8, imm: i32) -> Instruction {
        Instruction { op, rs, rt, rd: 0, shamt: 0, imm }
    }

    /// Memory access: `op rt, imm(rs)`.
    pub fn mem(op: Opcode, rt: u8, base: u8, offset: i32) -> Instruction {
        Instruction { op, rs: base, rt, rd: 0, shamt: 0, imm: offset }
    }

    /// Immediate shift: `op rd, rt, shamt`.
    pub fn shift(op: Opcode, rd: u8, rt: u8, shamt: u8) -> Instruction {
        Instruction { op, rs: 0, rt, rd, shamt: shamt & 0x1F, imm: 0 }
    }

    /// Conditional branch: `op rs, rt, word_offset` (offset relative to the
    /// instruction after the branch, in words).
    pub fn branch(op: Opcode, rs: u8, rt: u8, word_offset: i32) -> Instruction {
        Instruction { op, rs, rt, rd: 0, shamt: 0, imm: word_offset }
    }

    /// Absolute jump: `op word_target` (26-bit word address).
    pub fn jump(op: Opcode, word_target: u32) -> Instruction {
        Instruction { op, rs: 0, rt: 0, rd: 0, shamt: 0, imm: (word_target & 0x03FF_FFFF) as i32 }
    }

    /// Trap: `trap code`.
    pub fn trap(code: u16) -> Instruction {
        Instruction { op: Opcode::Trap, rs: 4, rt: 0, rd: 0, shamt: 0, imm: code as i32 }
    }

    /// `nop` — encoded as `sll r0, r0, 0`.
    pub fn nop() -> Instruction {
        Instruction::shift(Opcode::Sll, 0, 0, 0)
    }

    /// The raw 16-bit immediate field as carried in the decode signals.
    ///
    /// For J-format instructions only the low 16 bits of the 26-bit target
    /// enter the signal vector (Table 2 fixes `imm` at 16 bits); the full
    /// target still flows to the fetch unit through the instruction word.
    pub fn imm_bits(&self) -> u16 {
        (self.imm as u32 & 0xFFFF) as u16
    }

    /// `true` if this instruction terminates an ITR trace.
    pub fn ends_trace(&self) -> bool {
        self.op.ends_trace()
    }

    /// Branch target for direct branches, given the branch's own PC.
    ///
    /// Conditional branches are PC-relative (`pc + 4 + imm*4`); J-format
    /// jumps are absolute within the current 256 MiB segment.
    pub fn direct_target(&self, pc: u64) -> Option<u64> {
        match self.op.props().syntax {
            Syntax::Branch2 | Syntax::Branch1 | Syntax::FpBranch => {
                Some((pc as i64 + 4 + (self.imm as i64) * 4) as u64)
            }
            Syntax::Jump => {
                let seg = pc & 0xFFFF_FFFF_F000_0000;
                Some(seg | ((self.imm as u64 & 0x03FF_FFFF) << 2))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_target_is_pc_relative() {
        let b = Instruction::branch(Opcode::Beq, 1, 2, 3);
        assert_eq!(b.direct_target(0x1000), Some(0x1000 + 4 + 12));
        let b = Instruction::branch(Opcode::Bne, 1, 2, -2);
        assert_eq!(b.direct_target(0x1000), Some(0x1000 + 4 - 8));
    }

    #[test]
    fn jump_target_is_segment_absolute() {
        let j = Instruction::jump(Opcode::J, 0x100);
        assert_eq!(j.direct_target(0x0040_0000), Some(0x400));
    }

    #[test]
    fn alu_has_no_direct_target() {
        assert_eq!(Instruction::rrr(Opcode::Add, 1, 2, 3).direct_target(0), None);
    }

    #[test]
    fn nop_is_sll_zero() {
        let n = Instruction::nop();
        assert_eq!(n.op, Opcode::Sll);
        assert_eq!((n.rd, n.rt, n.shamt), (0, 0, 0));
    }

    #[test]
    fn imm_bits_truncates_to_16() {
        let j = Instruction::jump(Opcode::J, 0x3FF_FFFF);
        assert_eq!(j.imm_bits(), 0xFFFF);
        let a = Instruction::rri(Opcode::Addi, 1, 2, -1);
        assert_eq!(a.imm_bits(), 0xFFFF);
    }
}
