//! The decode-unit output vector — Table 2 of the ITR paper, bit for bit.
//!
//! `DecodeSignals` is the value the ITR signature folds over and the value
//! transient faults are injected into. Field widths reproduce Table 2
//! exactly and sum to 64 bits:
//!
//! | field      | width | description                          |
//! |------------|-------|--------------------------------------|
//! | `opcode`   | 8     | canonical instruction opcode          |
//! | `flags`    | 12    | decoded control flags                 |
//! | `shamt`    | 5     | shift amount                          |
//! | `rsrc1`    | 5     | source register operand               |
//! | `rsrc2`    | 5     | source register operand               |
//! | `rdst`     | 5     | destination register operand          |
//! | `lat`      | 2     | execution latency class               |
//! | `imm`      | 16    | immediate                             |
//! | `num_rsrc` | 2     | number of source operands             |
//! | `num_rdst` | 1     | number of destination operands        |
//! | `mem_size` | 3     | size of memory word                   |

use crate::instruction::Instruction;
use crate::opcode::{LatClass, Opcode, Syntax};
use std::fmt;

/// The 12 decoded control flags of Table 2.
///
/// `is_signed/unsigned` and `mem_left/right` are each a single bit, matching
/// the paper's field list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SignalFlags(u16);

impl SignalFlags {
    /// Integer-unit instruction.
    pub const IS_INT: SignalFlags = SignalFlags(1 << 0);
    /// Floating-point-unit instruction.
    pub const IS_FP: SignalFlags = SignalFlags(1 << 1);
    /// Signed (vs. unsigned) semantics.
    pub const IS_SIGNED: SignalFlags = SignalFlags(1 << 2);
    /// Branching instruction (terminates an ITR trace).
    pub const IS_BRANCH: SignalFlags = SignalFlags(1 << 3);
    /// Unconditional control transfer.
    pub const IS_UNCOND: SignalFlags = SignalFlags(1 << 4);
    /// Memory load.
    pub const IS_LD: SignalFlags = SignalFlags(1 << 5);
    /// Memory store.
    pub const IS_ST: SignalFlags = SignalFlags(1 << 6);
    /// Unaligned left/right memory variant (`lwl`/`lwr`/`swl`/`swr`).
    pub const MEM_LR: SignalFlags = SignalFlags(1 << 7);
    /// Register-register format.
    pub const IS_RR: SignalFlags = SignalFlags(1 << 8);
    /// Uses a displacement/immediate operand.
    pub const IS_DISP: SignalFlags = SignalFlags(1 << 9);
    /// Direct (PC-relative or absolute) control-transfer target.
    pub const IS_DIRECT: SignalFlags = SignalFlags(1 << 10);
    /// Trap/system instruction.
    pub const IS_TRAP: SignalFlags = SignalFlags(1 << 11);

    /// Number of defined flag bits (the Table 2 `flags` width).
    pub const WIDTH: u32 = 12;

    /// No flags set.
    pub const fn empty() -> SignalFlags {
        SignalFlags(0)
    }

    /// Union of two flag sets (usable in `const` context).
    pub const fn union(self, other: SignalFlags) -> SignalFlags {
        SignalFlags(self.0 | other.0)
    }

    /// `true` if every flag in `other` is set in `self`.
    pub const fn contains(self, other: SignalFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw 12-bit value.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs flags from raw bits; bits above the field width are
    /// discarded (mirrors a hardware latch of fixed width).
    pub const fn from_bits_truncate(bits: u16) -> SignalFlags {
        SignalFlags(bits & ((1 << Self::WIDTH) - 1))
    }
}

impl std::ops::BitOr for SignalFlags {
    type Output = SignalFlags;
    fn bitor(self, rhs: SignalFlags) -> SignalFlags {
        self.union(rhs)
    }
}

impl fmt::Display for SignalFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [(u16, &str); 12] = [
            (1 << 0, "int"),
            (1 << 1, "fp"),
            (1 << 2, "signed"),
            (1 << 3, "branch"),
            (1 << 4, "uncond"),
            (1 << 5, "ld"),
            (1 << 6, "st"),
            (1 << 7, "mem_lr"),
            (1 << 8, "rr"),
            (1 << 9, "disp"),
            (1 << 10, "direct"),
            (1 << 11, "trap"),
        ];
        let mut first = true;
        for (bit, name) in NAMES {
            if self.0 & bit != 0 {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("none")?;
        }
        Ok(())
    }
}

/// One row of Table 2: a named signal field and its bit range within the
/// packed 64-bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalField {
    /// Field name as printed in Table 2.
    pub name: &'static str,
    /// Description from Table 2.
    pub description: &'static str,
    /// Least-significant bit position in the packed vector.
    pub lsb: u32,
    /// Field width in bits.
    pub width: u32,
}

/// Field layout of the packed decode-signal vector (Table 2 order).
pub const SIGNAL_FIELDS: [SignalField; 11] = [
    SignalField { name: "opcode", description: "instruction opcode", lsb: 0, width: 8 },
    SignalField { name: "flags", description: "decoded control flags", lsb: 8, width: 12 },
    SignalField { name: "shamt", description: "shift amount", lsb: 20, width: 5 },
    SignalField { name: "rsrc1", description: "source register operand", lsb: 25, width: 5 },
    SignalField { name: "rsrc2", description: "source register operand", lsb: 30, width: 5 },
    SignalField { name: "rdst", description: "destination register operand", lsb: 35, width: 5 },
    SignalField { name: "lat", description: "execution latency", lsb: 40, width: 2 },
    SignalField { name: "imm", description: "immediate", lsb: 42, width: 16 },
    SignalField { name: "num_rsrc", description: "number of source operands", lsb: 58, width: 2 },
    SignalField {
        name: "num_rdst",
        description: "number of destination operands",
        lsb: 60,
        width: 1,
    },
    SignalField { name: "mem_size", description: "size of memory word", lsb: 61, width: 3 },
];

/// Total width of the decode-signal vector: 64 bits, as in Table 2.
pub const TOTAL_SIGNAL_BITS: u32 = 64;

/// The decode unit's output for one instruction.
///
/// All downstream pipeline behaviour in `itr-sim` is derived from this
/// record — not from the original instruction word — so a fault injected
/// here corrupts execution exactly the way a decode-unit upset would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DecodeSignals {
    /// Canonical 8-bit opcode identifier ([`Opcode::id`]).
    pub opcode: u8,
    /// Control flags.
    pub flags: SignalFlags,
    /// Shift amount (5 bits).
    pub shamt: u8,
    /// First source register index (5 bits).
    pub rsrc1: u8,
    /// Second source register index (5 bits).
    pub rsrc2: u8,
    /// Destination register index (5 bits).
    pub rdst: u8,
    /// Execution latency class (2 bits).
    pub lat: u8,
    /// Immediate (16 bits, raw; sign extension is an opcode property).
    pub imm: u16,
    /// Number of source register operands (2 bits).
    pub num_rsrc: u8,
    /// Number of destination register operands (1 bit).
    pub num_rdst: u8,
    /// Memory access size in bytes (3 bits).
    pub mem_size: u8,
}

impl DecodeSignals {
    /// Derives the decode signals for an instruction, as the decode unit
    /// would produce them.
    ///
    /// Register-operand conventions:
    /// * first source (`rsrc1`) — `rs` for most formats, `rt` for shifts
    ///   and FP stores' data operand base ordering, `fs` for FP,
    /// * second source (`rsrc2`) — `rt` (store data, second ALU operand,
    ///   `ft` for FP three-operand forms),
    /// * destination (`rdst`) — `rd` for R-format, `rt` for immediates and
    ///   loads, `fd` for FP.
    pub fn from_instruction(inst: &Instruction) -> DecodeSignals {
        let p = inst.op.props();
        let (rsrc1, rsrc2) = match p.syntax {
            Syntax::ThreeReg | Syntax::FpThree | Syntax::FpCmp => (inst.rs, inst.rt),
            Syntax::Shift => (inst.rt, 0),
            Syntax::ShiftV => (inst.rt, inst.rs),
            Syntax::Mem | Syntax::FpMem => {
                if p.flags.contains(SignalFlags::IS_ST) || p.flags.contains(SignalFlags::MEM_LR) {
                    (inst.rs, inst.rt) // base, data (LR loads also read old dst)
                } else {
                    (inst.rs, 0)
                }
            }
            Syntax::Branch2 => (inst.rs, inst.rt),
            Syntax::Branch1 | Syntax::OneReg => (inst.rs, 0),
            Syntax::TwoReg | Syntax::FpTwo | Syntax::TwoRegImm => (inst.rs, 0),
            Syntax::FpMove => {
                // mfc1 rt, fs reads the FP fs; mtc1 rt, fs reads the integer rt.
                if inst.op == Opcode::Mtc1 {
                    (inst.rt, 0)
                } else {
                    (inst.rs, 0)
                }
            }
            Syntax::FpBranch => (0, 0), // reads FCC, not a GPR
            Syntax::Jump | Syntax::RegImm16 => (0, 0),
            Syntax::TrapCode => (4, 0), // traps read the r4 argument register
        };
        let rdst = match p.syntax {
            Syntax::ThreeReg | Syntax::Shift | Syntax::ShiftV | Syntax::TwoReg => inst.rd,
            Syntax::FpThree | Syntax::FpTwo => inst.rd,
            Syntax::FpCmp => 0, // writes FCC
            Syntax::TwoRegImm | Syntax::RegImm16 | Syntax::Mem | Syntax::FpMem => inst.rt,
            Syntax::FpMove => {
                // mfc1 rt, fs writes the integer rt; mtc1 rt, fs writes fs.
                if inst.op == Opcode::Mtc1 {
                    inst.rs
                } else {
                    inst.rt
                }
            }
            Syntax::Jump => 31, // jal link register
            Syntax::Branch1
            | Syntax::Branch2
            | Syntax::OneReg
            | Syntax::FpBranch
            | Syntax::TrapCode => 0,
        };
        DecodeSignals {
            opcode: inst.op.id(),
            flags: p.flags,
            shamt: inst.shamt & 0x1F,
            rsrc1: rsrc1 & 0x1F,
            rsrc2: rsrc2 & 0x1F,
            rdst: rdst & 0x1F,
            lat: p.lat.encode(),
            imm: inst.imm_bits(),
            num_rsrc: p.num_rsrc,
            num_rdst: p.num_rdst,
            mem_size: p.mem_size,
        }
    }

    /// Packs the signals into the 64-bit vector per [`SIGNAL_FIELDS`].
    ///
    /// This is the value the ITR signature generator XOR-folds (§2.1 of the
    /// paper).
    pub fn pack(&self) -> u64 {
        (self.opcode as u64)
            | ((self.flags.bits() as u64 & 0xFFF) << 8)
            | ((self.shamt as u64 & 0x1F) << 20)
            | ((self.rsrc1 as u64 & 0x1F) << 25)
            | ((self.rsrc2 as u64 & 0x1F) << 30)
            | ((self.rdst as u64 & 0x1F) << 35)
            | ((self.lat as u64 & 0x3) << 40)
            | ((self.imm as u64) << 42)
            | ((self.num_rsrc as u64 & 0x3) << 58)
            | ((self.num_rdst as u64 & 0x1) << 60)
            | ((self.mem_size as u64 & 0x7) << 61)
    }

    /// Inverse of [`DecodeSignals::pack`].
    pub fn unpack(bits: u64) -> DecodeSignals {
        DecodeSignals {
            opcode: (bits & 0xFF) as u8,
            flags: SignalFlags::from_bits_truncate(((bits >> 8) & 0xFFF) as u16),
            shamt: ((bits >> 20) & 0x1F) as u8,
            rsrc1: ((bits >> 25) & 0x1F) as u8,
            rsrc2: ((bits >> 30) & 0x1F) as u8,
            rdst: ((bits >> 35) & 0x1F) as u8,
            lat: ((bits >> 40) & 0x3) as u8,
            imm: ((bits >> 42) & 0xFFFF) as u16,
            num_rsrc: ((bits >> 58) & 0x3) as u8,
            num_rdst: ((bits >> 60) & 0x1) as u8,
            mem_size: ((bits >> 61) & 0x7) as u8,
        }
    }

    /// Flips one bit of the packed vector — the single-event-upset fault
    /// model of §4 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn with_bit_flipped(&self, bit: u32) -> DecodeSignals {
        assert!(bit < TOTAL_SIGNAL_BITS, "bit index out of range");
        DecodeSignals::unpack(self.pack() ^ (1u64 << bit))
    }

    /// Name of the Table-2 field containing `bit`.
    pub fn field_of_bit(bit: u32) -> &'static str {
        SIGNAL_FIELDS
            .iter()
            .find(|f| bit >= f.lsb && bit < f.lsb + f.width)
            .map(|f| f.name)
            .unwrap_or("?")
    }

    /// The opcode named by the `opcode` field, if the 8-bit value is a
    /// defined operation (it may not be after a fault).
    pub fn opcode_enum(&self) -> Option<Opcode> {
        Opcode::from_id(self.opcode)
    }

    /// Sign- or zero-extends the immediate per the (possibly faulty) signed
    /// flag.
    pub fn imm_extended(&self) -> i64 {
        if self.flags.contains(SignalFlags::IS_SIGNED)
            || self.flags.contains(SignalFlags::IS_BRANCH)
        {
            self.imm as i16 as i64
        } else {
            self.imm as i64
        }
    }

    /// Latency class decoded from the 2-bit `lat` field.
    pub fn lat_class(&self) -> LatClass {
        LatClass::from_bits(self.lat)
    }
}

impl fmt::Display for DecodeSignals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "op={:#04x} flags=[{}] shamt={} rs1={} rs2={} rd={} lat={} imm={:#06x} nsrc={} ndst={} msz={}",
            self.opcode, self.flags, self.shamt, self.rsrc1, self.rsrc2, self.rdst,
            self.lat, self.imm, self.num_rsrc, self.num_rdst, self.mem_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction;

    #[test]
    fn table2_field_widths_sum_to_64() {
        let total: u32 = SIGNAL_FIELDS.iter().map(|f| f.width).sum();
        assert_eq!(total, TOTAL_SIGNAL_BITS);
    }

    #[test]
    fn table2_fields_are_contiguous_and_disjoint() {
        let mut next = 0;
        for f in SIGNAL_FIELDS {
            assert_eq!(f.lsb, next, "field {} misplaced", f.name);
            next += f.width;
        }
        assert_eq!(next, 64);
    }

    #[test]
    fn pack_unpack_round_trip_for_all_opcodes() {
        for &op in Opcode::ALL {
            let inst = Instruction { op, rs: 3, rt: 7, rd: 12, shamt: 5, imm: 0x1234 };
            let s = DecodeSignals::from_instruction(&inst);
            assert_eq!(DecodeSignals::unpack(s.pack()), s, "round trip for {op}");
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let inst = Instruction::rrr(Opcode::Add, 1, 2, 3);
        let s = DecodeSignals::from_instruction(&inst);
        for bit in 0..64 {
            let flipped = s.with_bit_flipped(bit);
            assert_eq!((flipped.pack() ^ s.pack()).count_ones(), 1);
            assert_eq!(flipped.pack() ^ s.pack(), 1u64 << bit);
        }
    }

    #[test]
    fn field_of_bit_matches_layout() {
        assert_eq!(DecodeSignals::field_of_bit(0), "opcode");
        assert_eq!(DecodeSignals::field_of_bit(7), "opcode");
        assert_eq!(DecodeSignals::field_of_bit(8), "flags");
        assert_eq!(DecodeSignals::field_of_bit(19), "flags");
        assert_eq!(DecodeSignals::field_of_bit(20), "shamt");
        assert_eq!(DecodeSignals::field_of_bit(42), "imm");
        assert_eq!(DecodeSignals::field_of_bit(57), "imm");
        assert_eq!(DecodeSignals::field_of_bit(63), "mem_size");
    }

    #[test]
    fn store_reads_base_and_data() {
        let sw = Instruction::mem(Opcode::Sw, 9, 29, -8);
        let s = DecodeSignals::from_instruction(&sw);
        assert_eq!(s.rsrc1, 29, "store base register");
        assert_eq!(s.rsrc2, 9, "store data register");
        assert_eq!(s.num_rsrc, 2);
        assert_eq!(s.num_rdst, 0);
        assert_eq!(s.mem_size, 4);
    }

    #[test]
    fn load_writes_rt() {
        let lw = Instruction::mem(Opcode::Lw, 9, 29, 16);
        let s = DecodeSignals::from_instruction(&lw);
        assert_eq!(s.rdst, 9);
        assert_eq!(s.rsrc1, 29);
        assert_eq!(s.num_rsrc, 1);
        assert_eq!(s.num_rdst, 1);
    }

    #[test]
    fn jal_links_r31() {
        let jal = Instruction::jump(Opcode::Jal, 0x400);
        let s = DecodeSignals::from_instruction(&jal);
        assert_eq!(s.rdst, 31);
        assert_eq!(s.num_rdst, 1);
        assert!(s.flags.contains(SignalFlags::IS_UNCOND));
    }

    #[test]
    fn signed_immediate_extension_follows_flag() {
        let addi = Instruction::rri(Opcode::Addi, 8, 9, -4);
        let s = DecodeSignals::from_instruction(&addi);
        assert_eq!(s.imm_extended(), -4);
        let ori = Instruction::rri(Opcode::Ori, 8, 9, 0xFFFC_u16 as i32);
        let s = DecodeSignals::from_instruction(&ori);
        assert_eq!(s.imm_extended(), 0xFFFC);
    }

    #[test]
    fn flags_display_is_never_empty() {
        assert_eq!(SignalFlags::empty().to_string(), "none");
        let f = SignalFlags::IS_LD | SignalFlags::IS_INT;
        assert_eq!(f.to_string(), "int|ld");
    }
}
