//! # itr-isa — the `rISA` instruction set
//!
//! A 32-bit, MIPS/PISA-like RISC instruction set used as the substrate for
//! the ITR (Inherent Time Redundancy) reproduction. The crate provides:
//!
//! * [`Opcode`] — the full operation list with static properties
//!   (latency class, operand counts, control flags),
//! * [`Instruction`] — a decoded instruction record,
//! * binary [`encode`]/[`decode`] to/from 32-bit words,
//! * [`DecodeSignals`] — the 64-bit decode-unit output vector replicated
//!   field-for-field from Table 2 of the DSN 2007 ITR paper; this is the
//!   value that ITR signatures are folded over and that transient faults
//!   are injected into,
//! * a two-pass [assembler](asm) and a [disassembler](disasm),
//! * [`Program`] — an assembled memory image plus a programmatic
//!   [`ProgramBuilder`] used by workload
//!   generators.
//!
//! # Example
//!
//! ```
//! use itr_isa::{asm::assemble, DecodeSignals};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r#"
//!     .text
//!     main:
//!         li   r8, 5
//!         addi r9, r8, 37
//!         halt
//!     "#,
//! )?;
//! let first = program.instruction_at(program.entry()).unwrap();
//! let signals = DecodeSignals::from_instruction(&first);
//! assert_eq!(signals.pack().count_ones() > 0, true);
//! # Ok(())
//! # }
//! ```

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod asm;
pub mod disasm;
mod encode;
mod instruction;
mod opcode;
mod program;
mod reg;
mod signals;

pub use encode::{decode, encode, DecodeError};
pub use instruction::Instruction;
pub use opcode::{Format, LatClass, Opcode, Syntax};
pub use program::{
    BuildError, Program, ProgramBuilder, SegmentKind, DATA_BASE, STACK_TOP, TEXT_BASE,
};
pub use reg::Reg;
pub use signals::{DecodeSignals, SignalField, SignalFlags, SIGNAL_FIELDS, TOTAL_SIGNAL_BITS};

/// Size of one instruction word in bytes.
pub const INSTRUCTION_BYTES: u64 = 4;

/// Number of architectural integer registers (`r0` is hardwired to zero).
pub const NUM_INT_REGS: usize = 32;

/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// Trap codes carried in the immediate field of [`Opcode::Trap`].
pub mod trap {
    /// Terminate the program successfully.
    pub const HALT: u16 = 0;
    /// Print the integer in `r4` (a simulator service, not a fault).
    pub const PUT_INT: u16 = 1;
    /// Print the low byte of `r4` as a character.
    pub const PUT_CHAR: u16 = 2;
    /// Abort the program with the failure code in `r4`.
    pub const ABORT: u16 = 3;
}
