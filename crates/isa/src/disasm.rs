//! Textual disassembly of instructions.

use crate::instruction::Instruction;
use crate::opcode::Syntax;

/// Renders an instruction in assembly syntax.
///
/// The output parses back to an equal instruction through the
/// [assembler](crate::asm) for every syntax class except label-relative
/// branches and jumps, which print numeric offsets/targets.
pub fn disassemble(inst: &Instruction) -> String {
    let m = inst.op.mnemonic();
    match inst.op.props().syntax {
        Syntax::ThreeReg => format!("{m} r{}, r{}, r{}", inst.rd, inst.rs, inst.rt),
        Syntax::Shift => format!("{m} r{}, r{}, {}", inst.rd, inst.rt, inst.shamt),
        Syntax::ShiftV => format!("{m} r{}, r{}, r{}", inst.rd, inst.rt, inst.rs),
        Syntax::TwoRegImm => format!("{m} r{}, r{}, {}", inst.rt, inst.rs, inst.imm),
        Syntax::RegImm16 => format!("{m} r{}, {}", inst.rt, inst.imm),
        Syntax::Mem => format!("{m} r{}, {}(r{})", inst.rt, inst.imm, inst.rs),
        Syntax::FpMem => format!("{m} f{}, {}(r{})", inst.rt, inst.imm, inst.rs),
        Syntax::Branch2 => format!("{m} r{}, r{}, {}", inst.rs, inst.rt, inst.imm),
        Syntax::Branch1 => format!("{m} r{}, {}", inst.rs, inst.imm),
        Syntax::FpBranch => format!("{m} {}", inst.imm),
        Syntax::Jump => format!("{m} {:#x}", (inst.imm as u32 as u64) << 2),
        Syntax::OneReg => format!("{m} r{}", inst.rs),
        Syntax::TwoReg => format!("{m} r{}, r{}", inst.rd, inst.rs),
        Syntax::FpThree => format!("{m} f{}, f{}, f{}", inst.rd, inst.rs, inst.rt),
        Syntax::FpTwo => format!("{m} f{}, f{}", inst.rd, inst.rs),
        Syntax::FpCmp => format!("{m} f{}, f{}", inst.rs, inst.rt),
        Syntax::FpMove => format!("{m} r{}, f{}", inst.rt, inst.rs),
        Syntax::TrapCode => format!("{m} {}", inst.imm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn common_forms_render() {
        assert_eq!(disassemble(&Instruction::rrr(Opcode::Add, 1, 2, 3)), "add r1, r2, r3");
        assert_eq!(disassemble(&Instruction::mem(Opcode::Lw, 4, 29, -8)), "lw r4, -8(r29)");
        assert_eq!(disassemble(&Instruction::shift(Opcode::Sll, 2, 2, 4)), "sll r2, r2, 4");
        assert_eq!(disassemble(&Instruction::trap(0)), "trap 0");
    }

    #[test]
    fn fp_forms_render() {
        assert_eq!(disassemble(&Instruction::rrr(Opcode::AddS, 1, 2, 3)), "add.s f1, f2, f3");
        assert_eq!(
            disassemble(&Instruction { op: Opcode::CEqS, rs: 2, rt: 3, rd: 0, shamt: 0, imm: 0 }),
            "c.eq.s f2, f3"
        );
    }
}
