//! Fault-model library beyond single-bit SEU (hostile environments).
//!
//! The paper's §4 campaign injects exactly one single-event upset per
//! run. Deployed hardware also faces *multi-bit* upsets (one particle
//! strike flipping physically adjacent latches, or independent strikes
//! within a window), *defect-induced* stuck-at and intermittent faults
//! (ITHICA's fault class: a marginal circuit active for a window with a
//! duty cycle), and *burst* noise clustered around an upset — including
//! during the ITR retry itself, which stresses the recovery controller.
//!
//! Each [`FaultModel`] expands to the `itr-sim` fault-injection hooks
//! ([`DecodeFault`], [`SignalFault`], [`BurstFault`]) and is observed
//! and classified through the same passive-run machinery and outcome
//! taxonomy as the SEU campaign, so Figure-8-style outcome profiles are
//! directly comparable across models.
//!
//! ## Soundness notes
//!
//! One model instance is one *logical* fault, however many decodes it
//! strikes; [`observe_model`] therefore produces exactly one
//! [`Observation`] (and [`crate::classify_logical`] folds multi-epoch
//! observations) so a stuck-at fault is never tallied as thousands of
//! injections. Active-mode recovery prediction (`ITR+SDC+R` ⇒ retry
//! succeeds) is only sound for [`FaultPersistence::Transient`] models:
//! a persistent or intermittent fault can re-strike the refetched trace,
//! so [`FaultModel::active_recovery_sound`] gates which instances the
//! differential oracles (`itr-fuzz`) may validate that way.

use crate::campaign::{golden_reference, seal_report, CampaignConfig};
use crate::classify::{classify, Observation, Outcome};
use itr_core::{ItrConfig, ItrEvent, ItrMode};
use itr_isa::Program;
use itr_sim::{
    BurstFault, CommitRecord, DecodeFault, Pipeline, PipelineConfig, RunExit, SignalFault, SignalOp,
};
use itr_stats::{Report, SplitMix64};
use std::collections::{BTreeMap, HashMap};

/// How long a fault model keeps perturbing the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPersistence {
    /// Strikes one dynamic instant and is gone (SEU-like). Retrying the
    /// detected trace re-executes fault-free, so active-mode recovery
    /// predictions are sound.
    Transient,
    /// Active over a bounded window (possibly with a duty cycle); a
    /// retry inside the window may be struck again.
    Intermittent,
    /// Active for the rest of the run (hard defect); every retry of an
    /// affected trace re-strikes.
    Persistent,
}

/// The fault-model kinds of the hostile-environment study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ModelKind {
    /// Baseline single-event upset (the paper's §4 model).
    Seu,
    /// One strike flipping 2–3 physically adjacent signal bits.
    MultiBitAdjacent,
    /// 2–4 independent bit flips on the same decoded instruction.
    MultiBitRandom,
    /// A signal bit stuck at 0 for a window of decodes.
    StuckAt0,
    /// A signal bit stuck at 1 for a window of decodes.
    StuckAt1,
    /// ITHICA-style intermittent: repeated flips of one bit, active
    /// `duty`-in-`period` decodes inside a bounded window.
    Intermittent,
    /// An SEU whose detection arms a noise burst striking the decodes
    /// that follow the first mismatch — in active mode, the retry.
    BurstOnRetry,
}

impl ModelKind {
    /// Every kind, in report order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::Seu,
        ModelKind::MultiBitAdjacent,
        ModelKind::MultiBitRandom,
        ModelKind::StuckAt0,
        ModelKind::StuckAt1,
        ModelKind::Intermittent,
        ModelKind::BurstOnRetry,
    ];

    /// Stable label used in reports, CSVs and counter names.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Seu => "seu",
            ModelKind::MultiBitAdjacent => "mbu-adjacent",
            ModelKind::MultiBitRandom => "mbu-random",
            ModelKind::StuckAt0 => "stuck-at-0",
            ModelKind::StuckAt1 => "stuck-at-1",
            ModelKind::Intermittent => "intermittent",
            ModelKind::BurstOnRetry => "burst-on-retry",
        }
    }
}

/// One concrete fault-model instance (one *logical* fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultModel {
    /// Single-bit upset on one decoded instruction.
    Seu(DecodeFault),
    /// `width` adjacent bits (`bit..bit+width`) flipped on one decode.
    MultiBitAdjacent {
        /// Zero-based decode index struck.
        nth_decode: u64,
        /// Lowest flipped bit.
        bit: u32,
        /// Number of adjacent bits flipped (`bit + width <= 64`).
        width: u32,
    },
    /// Independent distinct bits flipped on one decode.
    MultiBitRandom {
        /// Zero-based decode index struck.
        nth_decode: u64,
        /// Distinct flipped bit positions.
        bits: Vec<u32>,
    },
    /// One bit forced to `value` for `[from_decode, until_decode)`.
    StuckAt {
        /// First struck decode index.
        from_decode: u64,
        /// Exclusive end (`u64::MAX` = hard defect for the rest of the run).
        until_decode: u64,
        /// Stuck bit position.
        bit: u32,
        /// Forced value.
        value: bool,
    },
    /// Repeated flips with a duty cycle inside a bounded window.
    Intermittent {
        /// First decode index of the active window.
        from_decode: u64,
        /// Exclusive end of the active window.
        until_decode: u64,
        /// Flipped bit position.
        bit: u32,
        /// Duty-cycle period in decodes.
        period: u64,
        /// Active decodes per period.
        duty: u64,
    },
    /// A primary SEU plus a burst armed by the first ITR mismatch.
    BurstOnRetry {
        /// The upset that causes the arming mismatch.
        primary: DecodeFault,
        /// Bit flipped by each burst decode.
        bit: u32,
        /// Burst length in decodes.
        len: u64,
    },
}

impl FaultModel {
    /// This instance's kind.
    pub fn kind(&self) -> ModelKind {
        match self {
            FaultModel::Seu(_) => ModelKind::Seu,
            FaultModel::MultiBitAdjacent { .. } => ModelKind::MultiBitAdjacent,
            FaultModel::MultiBitRandom { .. } => ModelKind::MultiBitRandom,
            FaultModel::StuckAt { value: false, .. } => ModelKind::StuckAt0,
            FaultModel::StuckAt { value: true, .. } => ModelKind::StuckAt1,
            FaultModel::Intermittent { .. } => ModelKind::Intermittent,
            FaultModel::BurstOnRetry { .. } => ModelKind::BurstOnRetry,
        }
    }

    /// How long the fault keeps perturbing the machine.
    pub fn persistence(&self) -> FaultPersistence {
        match self {
            FaultModel::Seu(_)
            | FaultModel::MultiBitAdjacent { .. }
            | FaultModel::MultiBitRandom { .. } => FaultPersistence::Transient,
            FaultModel::StuckAt { until_decode: u64::MAX, .. } => FaultPersistence::Persistent,
            FaultModel::StuckAt { .. }
            | FaultModel::Intermittent { .. }
            | FaultModel::BurstOnRetry { .. } => FaultPersistence::Intermittent,
        }
    }

    /// `true` when the passive `ITR+SDC+R` classification soundly
    /// predicts that an active-mode retry recovers: only transient
    /// models qualify — anything that can re-strike the refetched trace
    /// (intermittent windows, stuck-at defects, retry bursts) makes the
    /// prediction typical-case at best.
    pub fn active_recovery_sound(&self) -> bool {
        self.persistence() == FaultPersistence::Transient
    }

    /// First decode index the fault can strike — the phase-1 injection
    /// point the observer runs past before opening the window. (A
    /// [`FaultModel::BurstOnRetry`] burst arms later, but its primary
    /// strikes here.)
    pub fn first_strike(&self) -> u64 {
        match *self {
            FaultModel::Seu(f) => f.nth_decode,
            FaultModel::MultiBitAdjacent { nth_decode, .. } => nth_decode,
            FaultModel::MultiBitRandom { nth_decode, .. } => nth_decode,
            FaultModel::StuckAt { from_decode, .. } => from_decode,
            FaultModel::Intermittent { from_decode, .. } => from_decode,
            FaultModel::BurstOnRetry { primary, .. } => primary.nth_decode,
        }
    }

    /// Expands the model into the pipeline's fault-injection hooks.
    pub fn inject_into(&self, cfg: &mut PipelineConfig) {
        match self {
            FaultModel::Seu(f) => cfg.faults.push(*f),
            FaultModel::MultiBitAdjacent { nth_decode, bit, width } => {
                for i in 0..*width {
                    cfg.faults.push(DecodeFault { nth_decode: *nth_decode, bit: bit + i });
                }
            }
            FaultModel::MultiBitRandom { nth_decode, bits } => {
                for &bit in bits {
                    cfg.faults.push(DecodeFault { nth_decode: *nth_decode, bit });
                }
            }
            FaultModel::StuckAt { from_decode, until_decode, bit, value } => {
                cfg.signal_faults.push(SignalFault {
                    from_decode: *from_decode,
                    until_decode: *until_decode,
                    bit: *bit,
                    op: if *value { SignalOp::Stuck1 } else { SignalOp::Stuck0 },
                    period: 0,
                    duty: 0,
                });
            }
            FaultModel::Intermittent { from_decode, until_decode, bit, period, duty } => {
                cfg.signal_faults.push(SignalFault {
                    from_decode: *from_decode,
                    until_decode: *until_decode,
                    bit: *bit,
                    op: SignalOp::Flip,
                    period: *period,
                    duty: *duty,
                });
            }
            FaultModel::BurstOnRetry { primary, bit, len } => {
                cfg.faults.push(*primary);
                cfg.burst_fault = Some(BurstFault { bit: *bit, len: *len });
            }
        }
    }

    /// Samples one instance of `kind` with the strike point in
    /// `[min_decode, max_decode)`. Deterministic in the RNG state.
    pub fn sample(
        kind: ModelKind,
        rng: &mut SplitMix64,
        min_decode: u64,
        max_decode: u64,
    ) -> FaultModel {
        let nth = rng.gen_range(min_decode..max_decode);
        match kind {
            ModelKind::Seu => {
                FaultModel::Seu(DecodeFault { nth_decode: nth, bit: rng.gen_range(0..64) })
            }
            ModelKind::MultiBitAdjacent => {
                let width: u32 = rng.gen_range(2..=3);
                FaultModel::MultiBitAdjacent {
                    nth_decode: nth,
                    bit: rng.gen_range(0..(64 - width)),
                    width,
                }
            }
            ModelKind::MultiBitRandom => {
                let k: usize = rng.gen_range(2..=4);
                let mut bits: Vec<u32> = Vec::with_capacity(k);
                while bits.len() < k {
                    let b = rng.gen_range(0..64);
                    if !bits.contains(&b) {
                        bits.push(b);
                    }
                }
                FaultModel::MultiBitRandom { nth_decode: nth, bits }
            }
            ModelKind::StuckAt0 | ModelKind::StuckAt1 => FaultModel::StuckAt {
                from_decode: nth,
                until_decode: nth + rng.gen_range(100..2_000u64),
                bit: rng.gen_range(0..64),
                value: kind == ModelKind::StuckAt1,
            },
            ModelKind::Intermittent => {
                let period: u64 = rng.gen_range(2..20);
                FaultModel::Intermittent {
                    from_decode: nth,
                    until_decode: nth + rng.gen_range(200..2_000u64),
                    bit: rng.gen_range(0..64),
                    period,
                    duty: rng.gen_range(1..=period / 2 + 1),
                }
            }
            ModelKind::BurstOnRetry => FaultModel::BurstOnRetry {
                primary: DecodeFault { nth_decode: nth, bit: rng.gen_range(0..64) },
                bit: rng.gen_range(0..64),
                len: rng.gen_range(2..16u64),
            },
        }
    }
}

/// Runs one model instance in passive-ITR mode and collects the single
/// logical-fault observation, exactly like
/// [`crate::observe_fault`] does for an SEU.
pub fn observe_model(
    program: &Program,
    model: &FaultModel,
    golden: &[CommitRecord],
    itr: ItrConfig,
    window_cycles: u64,
) -> (Observation, Report) {
    let mut cfg = PipelineConfig {
        itr: Some(ItrConfig { mode: ItrMode::Passive, ..itr }),
        spc_check: true,
        ..PipelineConfig::default()
    };
    model.inject_into(&mut cfg);
    let mut pipe = Pipeline::new(program, cfg);

    let mut sdc = false;
    let mut commit_idx = 0usize;
    let first_strike = model.first_strike();

    // Phase 1: run until the model's first possible strike has decoded
    // (or the program ends first).
    let chunk = 10_000u64;
    let inject_cycle = loop {
        let budget = pipe.cycle() + chunk;
        let exit = pipe.run_with(budget, |r| {
            if commit_idx >= golden.len() || golden[commit_idx] != *r {
                sdc = true;
            }
            commit_idx += 1;
            true
        });
        if pipe.stats().decoded > first_strike {
            break pipe.cycle();
        }
        if exit != RunExit::CycleLimit || pipe.cycle() > 50_000_000 {
            break pipe.cycle();
        }
    };

    // Phase 2: observe at the window boundary.
    let exit = pipe.run_with(inject_cycle + window_cycles, |r| {
        if commit_idx >= golden.len() || golden[commit_idx] != *r {
            sdc = true;
        }
        commit_idx += 1;
        true
    });
    let sdc = sdc
        || (matches!(exit, RunExit::Halted | RunExit::Aborted(_)) && commit_idx != golden.len());
    let report =
        Report::from_json(&pipe.stats_json()).expect("pipeline emits a valid itr-stats/v1 report");
    let first_mismatch = if report.counter("itr", "mismatches").unwrap_or(0) == 0 {
        None
    } else {
        pipe.itr_events().iter().find_map(|(_, e)| match e {
            ItrEvent::Mismatch { start_pc, cached_signature, new_signature, .. } => {
                Some((*start_pc, *cached_signature, *new_signature))
            }
            _ => None,
        })
    };
    let resident_lines = pipe.itr().map(|u| u.cache().iter_lines().collect()).unwrap_or_default();
    let obs = Observation {
        sdc,
        deadlock: exit == RunExit::Deadlock,
        first_mismatch,
        spc_fired: report.counter("pipeline", "spc_violations").unwrap_or(0) > 0,
        resident_lines,
    };
    (obs, report)
}

/// Cross-validates a passive `ITR+SDC+R` classification of a *transient*
/// model in active recovery mode: the retried trace re-executes
/// fault-free, so the active run must reproduce the golden committed
/// stream without a machine check.
///
/// Panics (via `Err`) when called for a model whose
/// [`FaultModel::active_recovery_sound`] is false — the caller is
/// responsible for gating, because validating a re-striking model this
/// way is exactly the unsoundness the gate exists to prevent.
pub fn validate_model_recovery(
    program: &Program,
    model: &FaultModel,
    golden: &[CommitRecord],
    itr: ItrConfig,
    window_cycles: u64,
) -> Result<(), String> {
    if !model.active_recovery_sound() {
        return Err(format!(
            "{}: active-recovery validation is unsound for {:?} models",
            model.kind().label(),
            model.persistence()
        ));
    }
    let mut cfg = PipelineConfig {
        itr: Some(ItrConfig { mode: ItrMode::Active, ..itr }),
        ..PipelineConfig::default()
    };
    model.inject_into(&mut cfg);
    let mut pipe = Pipeline::new(program, cfg);
    let mut diverged_at = None;
    let mut idx = 0usize;
    let exit = pipe.run_with(window_cycles * 4 + 1_000_000, |r| {
        if idx >= golden.len() || golden[idx] != *r {
            diverged_at.get_or_insert(idx);
        }
        idx += 1;
        true
    });
    if let Some(at) = diverged_at {
        return Err(format!("active run diverged at commit {at} despite predicted recovery"));
    }
    if matches!(exit, RunExit::MachineCheck { .. }) {
        return Err("unexpected machine check in predicted-recoverable run".to_string());
    }
    Ok(())
}

/// One sampled model instance with its classified outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRecord {
    /// The injected model instance.
    pub model: FaultModel,
    /// Classified outcome (same taxonomy as the SEU campaign).
    pub outcome: Outcome,
}

/// The classified records and merged report of one model-campaign shard.
#[derive(Debug, Clone, Default)]
pub struct ModelShard {
    /// Records in sample order.
    pub records: Vec<ModelRecord>,
    /// Merged `itr-stats` report plus `campaign` outcome counters.
    pub report: Report,
}

/// Precomputed per-(program, kind) campaign state: golden references and
/// the full sampled model list, addressed by shards as `[lo, hi)` index
/// ranges (same decomposition contract as [`crate::CampaignPlan`]).
pub struct ModelPlan {
    golden: Vec<CommitRecord>,
    clean_sigs: HashMap<u64, u64>,
    models: Vec<FaultModel>,
}

impl ModelPlan {
    /// Builds the golden references and samples `cfg.faults` instances
    /// of `kind`. The RNG seed is perturbed by the kind's position so
    /// different kinds over the same program draw independent streams.
    pub fn new(program: &Program, kind: ModelKind, cfg: &CampaignConfig) -> ModelPlan {
        let golden_len = cfg.max_decode + cfg.window_cycles * 4 + 10_000;
        let (golden, clean_sigs) = golden_reference(program, golden_len);
        let max_decode = cfg.max_decode.min(golden.len() as u64).max(cfg.min_decode + 1);
        let kind_idx =
            ModelKind::ALL.iter().position(|&k| k == kind).expect("kind is in ALL") as u64;
        let mut rng = SplitMix64::new(cfg.seed ^ (kind_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let models = (0..cfg.faults)
            .map(|_| FaultModel::sample(kind, &mut rng, cfg.min_decode, max_decode))
            .collect();
        ModelPlan { golden, clean_sigs, models }
    }

    /// The sampled model list (index space for [`ModelPlan::run_range`]).
    pub fn models(&self) -> &[FaultModel] {
        &self.models
    }

    /// The golden committed stream (also what
    /// [`validate_model_recovery`] compares against).
    pub fn golden(&self) -> &[CommitRecord] {
        &self.golden
    }

    /// The clean per-trace signature map.
    pub fn clean_signatures(&self) -> &HashMap<u64, u64> {
        &self.clean_sigs
    }

    /// Runs and classifies the sampled models in `[lo, hi)`.
    pub fn run_range(
        &self,
        program: &Program,
        cfg: &CampaignConfig,
        lo: u32,
        hi: u32,
        cancelled: &dyn Fn() -> bool,
    ) -> ModelShard {
        let mut shard = ModelShard::default();
        let mut counts: BTreeMap<Outcome, u32> = BTreeMap::new();
        for model in &self.models[lo as usize..hi as usize] {
            if cancelled() {
                break;
            }
            let (obs, report) =
                observe_model(program, model, &self.golden, cfg.itr, cfg.window_cycles);
            let outcome = classify(&obs, &self.clean_sigs);
            *counts.entry(outcome).or_insert(0) += 1;
            shard.records.push(ModelRecord { model: model.clone(), outcome });
            shard.report.merge(&report);
        }
        seal_report(&mut shard.report, shard.records.len(), &counts);
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_workloads::kernels;

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            faults: 8,
            window_cycles: 20_000,
            min_decode: 20,
            max_decode: 2_000,
            seed: 7,
            ..CampaignConfig::default()
        }
    }

    fn outcomes_for(kind: ModelKind) -> Vec<Outcome> {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let c = cfg();
        let plan = ModelPlan::new(&p, kind, &c);
        let shard = plan.run_range(&p, &c, 0, c.faults, &|| false);
        assert_eq!(shard.records.len(), c.faults as usize, "every instance classified once");
        assert_eq!(
            shard.report.counter("campaign", "injected"),
            Some(u64::from(c.faults)),
            "one logical fault = one injection, however many decodes it strikes"
        );
        shard.records.iter().map(|r| r.outcome).collect()
    }

    #[test]
    fn every_kind_classifies_each_instance_exactly_once() {
        for kind in ModelKind::ALL {
            let outcomes = outcomes_for(kind);
            assert!(!outcomes.is_empty(), "{}", kind.label());
        }
    }

    #[test]
    fn multi_bit_models_are_detected_in_a_hot_loop() {
        // Distinct-bit flips never cancel in the XOR fold, so a hot loop
        // detects multi-bit upsets at least as readily as SEUs.
        for kind in [ModelKind::MultiBitAdjacent, ModelKind::MultiBitRandom] {
            let outcomes = outcomes_for(kind);
            assert!(
                outcomes.iter().any(|o| o.itr_detected()),
                "{}: no ITR detection in {outcomes:?}",
                kind.label()
            );
        }
    }

    #[test]
    fn stuck_at_models_classify_without_double_counting() {
        // A stuck-at fault strikes hundreds of decodes; the campaign
        // section must still count it as a single injection (asserted in
        // `outcomes_for`) and the observation must classify.
        for kind in [ModelKind::StuckAt0, ModelKind::StuckAt1] {
            let outcomes = outcomes_for(kind);
            assert_eq!(outcomes.len(), 8, "{}", kind.label());
        }
    }

    #[test]
    fn intermittent_model_is_detected_or_masked_never_lost() {
        let outcomes = outcomes_for(ModelKind::Intermittent);
        // The taxonomy is total: every instance lands in some bucket.
        assert_eq!(outcomes.len(), 8);
        assert!(outcomes.iter().any(|o| o.itr_detected() || *o == Outcome::UndetMask));
    }

    #[test]
    fn burst_on_retry_arms_only_after_a_mismatch() {
        // A burst with an unstrikable primary (decode index far past the
        // window) never arms: the run is fault-free.
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let model = FaultModel::BurstOnRetry {
            primary: DecodeFault { nth_decode: u64::MAX - 1, bit: 0 },
            bit: 3,
            len: 8,
        };
        let c = cfg();
        let golden_len = c.max_decode + c.window_cycles * 4 + 10_000;
        let (golden, clean) = golden_reference(&p, golden_len);
        let (obs, _) = observe_model(&p, &model, &golden, c.itr, c.window_cycles);
        assert_eq!(classify(&obs, &clean), Outcome::UndetMask);
    }

    #[test]
    fn burst_on_retry_strikes_after_the_primary_mismatch() {
        let outcomes = outcomes_for(ModelKind::BurstOnRetry);
        // The primary SEU alone already mismatches in a hot loop; the
        // burst can only add further perturbation, never hide it.
        assert!(outcomes.iter().any(|o| o.itr_detected()), "{outcomes:?}");
    }

    #[test]
    fn persistence_and_soundness_gates() {
        let seu = FaultModel::Seu(DecodeFault { nth_decode: 5, bit: 1 });
        assert_eq!(seu.persistence(), FaultPersistence::Transient);
        assert!(seu.active_recovery_sound());
        let hard =
            FaultModel::StuckAt { from_decode: 5, until_decode: u64::MAX, bit: 1, value: true };
        assert_eq!(hard.persistence(), FaultPersistence::Persistent);
        assert!(!hard.active_recovery_sound());
        let window =
            FaultModel::StuckAt { from_decode: 5, until_decode: 500, bit: 1, value: false };
        assert_eq!(window.persistence(), FaultPersistence::Intermittent);
        let burst = FaultModel::BurstOnRetry {
            primary: DecodeFault { nth_decode: 5, bit: 1 },
            bit: 2,
            len: 4,
        };
        assert!(!burst.active_recovery_sound());
        assert!(validate_model_recovery(
            &assemble(kernels::FIB.source).unwrap(),
            &burst,
            &[],
            ItrConfig::paper_default(),
            1_000
        )
        .is_err());
    }

    #[test]
    fn transient_recoverable_instances_validate_in_active_mode() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let c = CampaignConfig { faults: 30, ..cfg() };
        let mut validated = 0;
        for kind in [ModelKind::Seu, ModelKind::MultiBitAdjacent, ModelKind::MultiBitRandom] {
            let plan = ModelPlan::new(&p, kind, &c);
            let shard = plan.run_range(&p, &c, 0, c.faults, &|| false);
            for r in &shard.records {
                if r.outcome == Outcome::ItrSdcR && r.model.active_recovery_sound() {
                    validate_model_recovery(&p, &r.model, plan.golden(), c.itr, c.window_cycles)
                        .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
                    validated += 1;
                }
            }
        }
        assert!(validated > 0, "no recoverable transient instances sampled");
    }

    #[test]
    fn sampling_is_deterministic_and_kind_faithful() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for kind in ModelKind::ALL {
            let ma = FaultModel::sample(kind, &mut a, 10, 1_000);
            let mb = FaultModel::sample(kind, &mut b, 10, 1_000);
            assert_eq!(ma, mb);
            assert_eq!(ma.kind(), kind);
            assert!(ma.first_strike() >= 10 && ma.first_strike() < 1_000);
        }
    }
}
