//! Fault-outcome taxonomy and classification rules (§4, Figure 8).

use std::collections::HashMap;
use std::fmt;

/// The outcome categories of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// Detected by ITR; architecturally masked. (The signature differs
    /// even when the flipped signal was irrelevant to the instruction.)
    ItrMask,
    /// Detected by ITR at the accessing (faulty) instance: the commit
    /// interlock blocks the trace, so flush-and-restart recovers what
    /// would otherwise have been silent data corruption.
    ItrSdcR,
    /// Detected by ITR only at the *next* instance: the faulty missed
    /// instance already committed, so only detection (abort) is possible.
    ItrSdcD,
    /// Detected by ITR; without the retry the fault would have deadlocked
    /// the pipeline (caught by the watchdog in the passive run).
    ItrWdogR,
    /// Undetected in the window, but the faulty signature is still in the
    /// ITR cache: a future instance may still detect the SDC.
    MayItrSdc,
    /// As above, with the fault architecturally masked.
    MayItrMask,
    /// Caught only by the sequential-PC check; silent data corruption.
    SpcSdc,
    /// Undetected silent data corruption.
    UndetSdc,
    /// Undetected by ITR; deadlock caught by the watchdog alone.
    UndetWdog,
    /// Undetected and masked.
    UndetMask,
}

impl Outcome {
    /// All outcomes in the order Figure 8 stacks them.
    pub const ALL: [Outcome; 10] = [
        Outcome::ItrMask,
        Outcome::ItrSdcR,
        Outcome::ItrSdcD,
        Outcome::ItrWdogR,
        Outcome::MayItrSdc,
        Outcome::MayItrMask,
        Outcome::SpcSdc,
        Outcome::UndetSdc,
        Outcome::UndetWdog,
        Outcome::UndetMask,
    ];

    /// Figure 8 legend label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::ItrMask => "ITR+Mask",
            Outcome::ItrSdcR => "ITR+SDC+R",
            Outcome::ItrSdcD => "ITR+SDC+D",
            Outcome::ItrWdogR => "ITR+wdog+R",
            Outcome::MayItrSdc => "MayITR+SDC",
            Outcome::MayItrMask => "MayITR+Mask",
            Outcome::SpcSdc => "spc+SDC",
            Outcome::UndetSdc => "Undet+SDC",
            Outcome::UndetWdog => "Undet+wdog",
            Outcome::UndetMask => "Undet+Mask",
        }
    }

    /// `true` for outcomes counted as "detected through the ITR cache".
    pub fn itr_detected(self) -> bool {
        matches!(self, Outcome::ItrMask | Outcome::ItrSdcR | Outcome::ItrSdcD | Outcome::ItrWdogR)
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything observed from one passive faulty run, ready to classify.
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// The committed stream diverged from the golden stream.
    pub sdc: bool,
    /// The run ended in a watchdog-detected deadlock.
    pub deadlock: bool,
    /// The first ITR signature mismatch, if any: `(start_pc,
    /// cached_signature, new_signature)`.
    pub first_mismatch: Option<(u64, u64, u64)>,
    /// The sequential-PC check fired.
    pub spc_fired: bool,
    /// Resident `(start_pc, signature)` ITR cache lines at window end.
    pub resident_lines: Vec<(u64, u64)>,
}

/// Classifies one observation against the golden per-trace signature map.
///
/// The `clean_signatures` map gives the fault-free signature of each
/// static trace (keyed by start PC), taken from a golden trace-stream run
/// of the same program.
pub fn classify(obs: &Observation, clean_signatures: &HashMap<u64, u64>) -> Outcome {
    if let Some((start_pc, _cached, new_sig)) = obs.first_mismatch {
        if obs.deadlock {
            return Outcome::ItrWdogR;
        }
        if obs.sdc {
            // Which side of the mismatch is anomalous? If the accessing
            // instance's signature differs from the clean one (or the
            // trace never exists in a clean run), the faulty instance is
            // the accessor and was still uncommitted at detection time:
            // recoverable. If the accessor is clean, the cached copy came
            // from a faulty instance that already committed: detect-only.
            let accessor_clean = clean_signatures.get(&start_pc) == Some(&new_sig);
            return if accessor_clean { Outcome::ItrSdcD } else { Outcome::ItrSdcR };
        }
        return Outcome::ItrMask;
    }
    if obs.spc_fired && obs.sdc {
        return Outcome::SpcSdc;
    }
    if obs.deadlock {
        return Outcome::UndetWdog;
    }
    // No detection inside the window: check whether a faulty signature is
    // still resident (MayITR: a future hit would detect it).
    let tainted_resident = obs.resident_lines.iter().any(|(pc, sig)| {
        match clean_signatures.get(pc) {
            Some(clean) => clean != sig,
            None => true, // a trace the clean run never produced
        }
    });
    match (tainted_resident, obs.sdc) {
        (true, true) => Outcome::MayItrSdc,
        (true, false) => Outcome::MayItrMask,
        (false, true) => Outcome::UndetSdc,
        (false, false) => Outcome::UndetMask,
    }
}

/// Classifies one *logical* fault observed over several epochs as a
/// single injection.
///
/// Multi-cycle fault models (stuck-at windows, intermittent duty cycles,
/// retry bursts) can be observed more than once — e.g. at successive
/// window boundaries, or once per active phase. Counting each epoch as
/// its own injection would double-count the fault and skew the Figure-8
/// distribution, so this folds the epochs into one [`Observation`]
/// first and classifies exactly once:
///
/// * `sdc` / `spc_fired` latch — architectural divergence or an SPC
///   violation in any epoch is divergence of the logical fault;
/// * `first_mismatch` is the *earliest* epoch's mismatch (detection
///   happens once, at the first surfaced mismatch);
/// * `deadlock` and `resident_lines` come from the *last* epoch — they
///   describe machine state, which only the final snapshot reflects.
///
/// Folding a single epoch is the identity, so `classify_logical(&[obs])
/// == classify(&obs)`.
pub fn classify_logical(epochs: &[Observation], clean_signatures: &HashMap<u64, u64>) -> Outcome {
    let last = epochs.last().expect("at least one epoch observed");
    let folded = Observation {
        sdc: epochs.iter().any(|o| o.sdc),
        deadlock: last.deadlock,
        first_mismatch: epochs.iter().find_map(|o| o.first_mismatch),
        spc_fired: epochs.iter().any(|o| o.spc_fired),
        resident_lines: last.resident_lines.clone(),
    };
    classify(&folded, clean_signatures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_map() -> HashMap<u64, u64> {
        HashMap::from([(0x100, 111u64), (0x200, 222u64)])
    }

    #[test]
    fn accessor_faulty_mismatch_is_recoverable() {
        let obs = Observation {
            sdc: true,
            first_mismatch: Some((0x100, 111, 999)), // cached clean, accessor odd
            ..Observation::default()
        };
        assert_eq!(classify(&obs, &clean_map()), Outcome::ItrSdcR);
    }

    #[test]
    fn cached_faulty_mismatch_is_detect_only() {
        let obs = Observation {
            sdc: true,
            first_mismatch: Some((0x100, 999, 111)), // accessor matches clean
            ..Observation::default()
        };
        assert_eq!(classify(&obs, &clean_map()), Outcome::ItrSdcD);
    }

    #[test]
    fn masked_mismatch_is_itr_mask() {
        let obs = Observation { first_mismatch: Some((0x100, 111, 998)), ..Observation::default() };
        assert_eq!(classify(&obs, &clean_map()), Outcome::ItrMask);
    }

    #[test]
    fn deadlock_with_mismatch_is_itr_wdog_r() {
        let obs = Observation {
            deadlock: true,
            first_mismatch: Some((0x100, 111, 998)),
            ..Observation::default()
        };
        assert_eq!(classify(&obs, &clean_map()), Outcome::ItrWdogR);
    }

    #[test]
    fn spc_only_detection() {
        let obs = Observation { sdc: true, spc_fired: true, ..Observation::default() };
        assert_eq!(classify(&obs, &clean_map()), Outcome::SpcSdc);
    }

    #[test]
    fn resident_faulty_signature_is_may_itr() {
        let obs = Observation {
            sdc: true,
            resident_lines: vec![(0x100, 111), (0x200, 555)], // 0x200 tainted
            ..Observation::default()
        };
        assert_eq!(classify(&obs, &clean_map()), Outcome::MayItrSdc);
        let obs = Observation { resident_lines: vec![(0x200, 555)], ..Observation::default() };
        assert_eq!(classify(&obs, &clean_map()), Outcome::MayItrMask);
    }

    #[test]
    fn plain_undetected_outcomes() {
        let clean = clean_map();
        let obs =
            Observation { sdc: true, resident_lines: vec![(0x100, 111)], ..Observation::default() };
        assert_eq!(classify(&obs, &clean), Outcome::UndetSdc);
        let obs = Observation { deadlock: true, ..Observation::default() };
        assert_eq!(classify(&obs, &clean), Outcome::UndetWdog);
        let obs = Observation::default();
        assert_eq!(classify(&obs, &clean), Outcome::UndetMask);
    }

    #[test]
    fn logical_fold_of_one_epoch_is_identity() {
        let clean = clean_map();
        for obs in [
            Observation::default(),
            Observation {
                sdc: true,
                first_mismatch: Some((0x100, 111, 999)),
                ..Default::default()
            },
            Observation { deadlock: true, ..Default::default() },
        ] {
            assert_eq!(
                classify_logical(std::slice::from_ref(&obs), &clean),
                classify(&obs, &clean)
            );
        }
    }

    #[test]
    fn intermittent_epochs_fold_to_one_injection() {
        // An intermittent fault observed across three active phases:
        // masked, then a detected mismatch, then quiet again. The logical
        // fault is ONE detected-SDC injection, not three outcomes.
        let clean = clean_map();
        let epochs = [
            Observation::default(),
            Observation {
                sdc: true,
                first_mismatch: Some((0x100, 111, 999)),
                ..Default::default()
            },
            Observation { resident_lines: vec![(0x100, 111)], ..Default::default() },
        ];
        assert_eq!(classify_logical(&epochs, &clean), Outcome::ItrSdcR);
    }

    #[test]
    fn stuck_at_epochs_latch_sdc_and_keep_the_earliest_mismatch() {
        // A stuck-at window whose first epoch already mismatches with a
        // faulty accessor; a later epoch mismatches again with a clean
        // accessor. The earliest mismatch decides recoverability.
        let clean = clean_map();
        let epochs = [
            Observation { first_mismatch: Some((0x100, 111, 999)), ..Default::default() },
            Observation {
                sdc: true,
                first_mismatch: Some((0x100, 999, 111)),
                ..Default::default()
            },
        ];
        assert_eq!(classify_logical(&epochs, &clean), Outcome::ItrSdcR);
    }

    #[test]
    fn burst_epochs_take_machine_state_from_the_last_snapshot() {
        // A burst whose early epoch left a tainted line that the final
        // snapshot shows evicted: no MayITR claim survives, but a
        // deadlock in the final epoch does.
        let clean = clean_map();
        let epochs = [
            Observation { resident_lines: vec![(0x200, 555)], ..Default::default() },
            Observation {
                deadlock: true,
                resident_lines: vec![(0x100, 111)],
                ..Default::default()
            },
        ];
        assert_eq!(classify_logical(&epochs, &clean), Outcome::UndetWdog);
    }

    #[test]
    fn spc_latches_across_epochs() {
        let clean = clean_map();
        let epochs = [
            Observation { spc_fired: true, ..Default::default() },
            Observation { sdc: true, ..Default::default() },
        ];
        assert_eq!(classify_logical(&epochs, &clean), Outcome::SpcSdc);
    }

    #[test]
    fn labels_match_figure8_legend() {
        assert_eq!(Outcome::ItrSdcR.label(), "ITR+SDC+R");
        assert_eq!(Outcome::ALL.len(), 10);
        assert!(Outcome::ItrWdogR.itr_detected());
        assert!(!Outcome::SpcSdc.itr_detected());
    }
}
