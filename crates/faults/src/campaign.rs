//! Campaign runner: golden reference, faulty runs, parallel fan-out.

use crate::classify::{classify, Observation, Outcome};
use itr_core::{ItrConfig, ItrEvent, ItrMode};
use itr_isa::Program;
use itr_sim::{CommitRecord, DecodeFault, FuncSim, Pipeline, PipelineConfig, RunExit, TraceStream};
use itr_stats::{Counters, Report, SplitMix64, Unit};
use std::collections::{BTreeMap, HashMap};

/// Parameters of one fault-injection campaign (per benchmark).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of faults to inject (the paper uses 1000).
    pub faults: u32,
    /// Observation window in cycles after injection (the paper uses one
    /// million).
    pub window_cycles: u64,
    /// Faults strike a uniformly random decoded instruction in
    /// `[min_decode, max_decode)`.
    pub min_decode: u64,
    /// Exclusive upper bound of the injection point.
    pub max_decode: u64,
    /// RNG seed (printed with results for reproducibility).
    pub seed: u64,
    /// Worker threads (0 = one per available CPU).
    pub threads: usize,
    /// ITR configuration for the monitored pipeline.
    pub itr: ItrConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            faults: 200,
            window_cycles: 100_000,
            min_decode: 100,
            max_decode: 20_000,
            seed: 0xD51F_2007,
            threads: 0,
            itr: ItrConfig { mode: ItrMode::Passive, ..ItrConfig::paper_default() },
        }
    }
}

/// One injected fault and its classified outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The injected fault.
    pub fault: DecodeFault,
    /// Signal field the flipped bit belongs to.
    pub field: &'static str,
    /// Classified outcome.
    pub outcome: Outcome,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Every fault with its outcome.
    pub records: Vec<FaultRecord>,
    /// Outcome counts.
    pub counts: BTreeMap<Outcome, u32>,
    /// The campaign's aggregated `itr-stats` report: every faulty run's
    /// export merged, plus a `campaign` section with per-outcome
    /// counters. Identical for any shard decomposition or thread count.
    pub report: Report,
}

impl CampaignResult {
    /// Fraction of faults with the given outcome.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        *self.counts.get(&outcome).unwrap_or(&0) as f64 / self.records.len() as f64
    }

    /// Fraction of faults detected through the ITR cache (the paper
    /// reports 95.4% on average).
    pub fn itr_detected_fraction(&self) -> f64 {
        self.records.iter().filter(|r| r.outcome.itr_detected()).count() as f64
            / self.records.len().max(1) as f64
    }

    /// Outcome counts grouped by the Table-2 field the flipped bit
    /// belongs to — the analysis behind the paper's §4 discussion of
    /// field-specific behaviour (masked `lat` flips, deadlocking
    /// `num_rsrc` flips, `is_branch` flips caught by `spc`, …).
    pub fn by_field(&self) -> BTreeMap<&'static str, BTreeMap<Outcome, u32>> {
        let mut map: BTreeMap<&'static str, BTreeMap<Outcome, u32>> = BTreeMap::new();
        for r in &self.records {
            *map.entry(r.field).or_default().entry(r.outcome).or_insert(0) += 1;
        }
        map
    }
}

/// Builds the golden references: the committed stream and the per-trace
/// clean-signature map.
pub(crate) fn golden_reference(
    program: &Program,
    max_instrs: u64,
) -> (Vec<CommitRecord>, HashMap<u64, u64>) {
    let mut sim = FuncSim::new(program);
    let (records, _) = sim.run_collect(max_instrs);
    let mut sigs = HashMap::new();
    for t in TraceStream::new(program, max_instrs) {
        sigs.entry(t.start_pc).or_insert(t.signature);
    }
    (records, sigs)
}

/// Runs one faulty execution in passive-ITR mode and collects the
/// observation for classification, along with the run's full
/// `itr-stats/v1` export (merged into the campaign report).
///
/// `golden` must be the *complete* committed stream of the fault-free
/// program (or at least cover every commit the faulty run can make
/// within the window) — commits past its end are counted as
/// architectural divergence. Public so the `itr-fuzz` fault-consistency
/// oracle can observe single faults outside a campaign.
pub fn observe_fault(
    program: &Program,
    fault: DecodeFault,
    golden: &[CommitRecord],
    itr: ItrConfig,
    window_cycles: u64,
) -> (Observation, Report) {
    observe_fault_multi(program, fault, golden, itr, &[window_cycles])
        .pop()
        .expect("one window observed")
}

/// [`observe_fault`] fanned out over several observation windows in one
/// faulty execution — the engine of the window-sensitivity study, which
/// previously re-simulated the same fault once per window.
///
/// `windows` must be strictly ascending. The injection phase is
/// window-independent, and [`Pipeline::run_with`] does not latch
/// [`RunExit::CycleLimit`], so resuming the same pipeline with each
/// successively larger budget executes exactly the cycles a dedicated
/// single-window run would. The observation captured at each boundary
/// (point-in-time report, first mismatch event, resident cache lines)
/// is therefore identical to what [`observe_fault`] returns for that
/// window alone.
pub fn observe_fault_multi(
    program: &Program,
    fault: DecodeFault,
    golden: &[CommitRecord],
    itr: ItrConfig,
    windows: &[u64],
) -> Vec<(Observation, Report)> {
    assert!(windows.windows(2).all(|w| w[0] < w[1]), "windows must be strictly ascending");
    let cfg = PipelineConfig {
        itr: Some(ItrConfig { mode: ItrMode::Passive, ..itr }),
        faults: vec![fault],
        spc_check: true,
        ..PipelineConfig::default()
    };
    let mut pipe = Pipeline::new(program, cfg);

    let mut sdc = false;
    let mut commit_idx = 0usize;

    // Phase 1: run until the fault has been injected (or the program ends
    // first — then the fault never materialized).
    let chunk = 10_000u64;
    let inject_cycle = loop {
        let budget = pipe.cycle() + chunk;
        let exit = {
            let golden = &golden;
            pipe.run_with(budget, |r| {
                if commit_idx >= golden.len() || golden[commit_idx] != *r {
                    sdc = true;
                }
                commit_idx += 1;
                true
            })
        };
        if pipe.stats().decoded > fault.nth_decode {
            break pipe.cycle();
        }
        if exit != RunExit::CycleLimit {
            break pipe.cycle(); // program ended before the injection point
        }
        if pipe.cycle() > 50_000_000 {
            break pipe.cycle(); // safety valve
        }
    };

    // Phase 2: observe at each window boundary, resuming the same run.
    let mut observed = Vec::with_capacity(windows.len());
    for &window in windows {
        let limit = inject_cycle + window;
        let exit = {
            let golden = &golden;
            pipe.run_with(limit, |r| {
                if commit_idx >= golden.len() || golden[commit_idx] != *r {
                    sdc = true;
                }
                commit_idx += 1;
                true
            })
        };
        // A faulty run that halts/aborts earlier or later than the golden
        // run is an architectural divergence too. Computed per boundary
        // (not folded into `sdc`): the same condition re-evaluates
        // identically at every later boundary once the run has ended.
        let sdc_here = sdc
            || (matches!(exit, RunExit::Halted | RunExit::Aborted(_))
                && commit_idx != golden.len());

        // Classification consumes the run's `itr-stats/v1` export:
        // mismatch and SPC counts come from the report, and only a
        // non-zero mismatch count is resolved to its first event for the
        // signature detail.
        let report = Report::from_json(&pipe.stats_json())
            .expect("pipeline emits a valid itr-stats/v1 report");
        let first_mismatch = if report.counter("itr", "mismatches").unwrap_or(0) == 0 {
            None
        } else {
            pipe.itr_events().iter().find_map(|(_, e)| match e {
                ItrEvent::Mismatch { start_pc, cached_signature, new_signature, .. } => {
                    Some((*start_pc, *cached_signature, *new_signature))
                }
                _ => None,
            })
        };
        let resident_lines =
            pipe.itr().map(|u| u.cache().iter_lines().collect()).unwrap_or_default();
        let obs = Observation {
            sdc: sdc_here,
            deadlock: exit == RunExit::Deadlock,
            first_mismatch,
            spc_fired: report.counter("pipeline", "spc_violations").unwrap_or(0) > 0,
            resident_lines,
        };
        observed.push((obs, report));
    }
    observed
}

/// Cross-validates a passive classification in *active* recovery mode:
/// re-runs the fault with the full retry machinery enabled and checks the
/// architectural outcome the passive taxonomy predicts.
///
/// * [`Outcome::ItrSdcR`] / [`Outcome::ItrMask`] / [`Outcome::ItrWdogR`]
///   — the active run must finish with the golden committed stream (the
///   retry recovers, or the fault was masked anyway);
/// * [`Outcome::ItrSdcD`] — the active run must raise a machine check
///   (the faulty instance already committed; abort is the only option).
///
/// The predictions are *typical-case*, not invariant: `ItrMask` cannot
/// tell whether the faulty instance accessed or *recorded* the cached
/// signature (in the latter case active mode machine-checks a masked
/// fault — a spurious DUE inherent to the scheme), and an eviction
/// between retry flush and refetch can turn a predicted `ItrSdcD`
/// machine check into a clean re-record. Only the `ItrSdcR` prediction
/// is sound in every corner case — differential checks (`itr-fuzz`)
/// validate that one alone.
///
/// Returns `Ok(())` when the prediction holds, or a description of the
/// divergence.
pub fn validate_active_recovery(
    program: &Program,
    record: &FaultRecord,
    golden: &[CommitRecord],
    itr: ItrConfig,
    window_cycles: u64,
) -> Result<(), String> {
    let cfg = PipelineConfig {
        itr: Some(ItrConfig { mode: ItrMode::Active, ..itr }),
        faults: vec![record.fault],
        ..PipelineConfig::default()
    };
    let mut pipe = Pipeline::new(program, cfg);
    let mut diverged = false;
    let mut idx = 0usize;
    let exit = pipe.run_with(window_cycles * 4 + 1_000_000, |r| {
        if idx >= golden.len() || golden[idx] != *r {
            diverged = true;
        }
        idx += 1;
        true
    });
    match record.outcome {
        Outcome::ItrSdcR | Outcome::ItrMask | Outcome::ItrWdogR => {
            if diverged {
                return Err(format!(
                    "{}: active run diverged at commit {idx} despite predicted recovery",
                    record.outcome
                ));
            }
            if matches!(exit, RunExit::MachineCheck { .. }) {
                return Err(format!("{}: unexpected machine check", record.outcome));
            }
            Ok(())
        }
        Outcome::ItrSdcD => match exit {
            RunExit::MachineCheck { .. } => Ok(()),
            other => Err(format!("ItrSdcD: expected machine check, got {other:?}")),
        },
        _ => Ok(()), // no active-mode prediction for the other classes
    }
}

/// Splits `faults` into at most `shards` contiguous `[lo, hi)` ranges.
///
/// Empty ranges are never emitted: with fewer faults than shards the
/// trailing shards simply don't exist (the old chunking spawned workers
/// over empty chunks in that case). The decomposition depends only on
/// the two arguments — callers that keep them fixed get the same shard
/// boundaries on every run, which is what makes journaled shards
/// replayable under a different thread count.
pub fn shard_bounds(faults: u32, shards: u32) -> Vec<(u32, u32)> {
    if faults == 0 || shards == 0 {
        return Vec::new();
    }
    let chunk = faults.div_ceil(shards);
    let mut bounds = Vec::new();
    let mut lo = 0;
    while lo < faults {
        let hi = (lo + chunk).min(faults);
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

/// Precomputed per-campaign state shared by every shard: the golden
/// committed stream, the clean-signature map and the full planned fault
/// list. Shards address `faults()` by `[lo, hi)` index range, so the
/// shard decomposition is a pure function of the campaign parameters —
/// never of thread count or scheduling.
pub struct CampaignPlan {
    golden: Vec<CommitRecord>,
    clean_sigs: HashMap<u64, u64>,
    faults: Vec<DecodeFault>,
}

/// The classified records and merged `itr-stats` report of one shard
/// (one contiguous fault range).
#[derive(Debug, Clone, Default)]
pub struct CampaignShard {
    /// Records for the shard's fault range, in fault order.
    pub records: Vec<FaultRecord>,
    /// Merged report of the shard's faulty runs plus its `campaign`
    /// outcome counters.
    pub report: Report,
}

impl CampaignPlan {
    /// Builds the golden references and samples the fault list.
    pub fn new(program: &Program, cfg: &CampaignConfig) -> CampaignPlan {
        // Golden streams must cover the longest possible faulty
        // observation: commits ≤ decodes before injection + width ×
        // window cycles.
        let golden_len = cfg.max_decode + cfg.window_cycles * 4 + 10_000;
        let (golden, clean_sigs) = golden_reference(program, golden_len);

        // Clamp the injection range to instructions the program actually
        // decodes (committed length is a lower bound on decoded length),
        // so every sampled fault materializes.
        let max_decode = cfg.max_decode.min(golden.len() as u64).max(cfg.min_decode + 1);
        let mut rng = SplitMix64::new(cfg.seed);
        let faults: Vec<DecodeFault> = (0..cfg.faults)
            .map(|_| DecodeFault {
                nth_decode: rng.gen_range(cfg.min_decode..max_decode),
                bit: rng.gen_range(0..64),
            })
            .collect();
        CampaignPlan { golden, clean_sigs, faults }
    }

    /// The planned fault list (index space for [`CampaignPlan::run_range`]).
    pub fn faults(&self) -> &[DecodeFault] {
        &self.faults
    }

    /// The golden committed stream (also used by
    /// [`validate_active_recovery`]).
    pub fn golden(&self) -> &[CommitRecord] {
        &self.golden
    }

    /// Runs and classifies the faults in `[lo, hi)`.
    ///
    /// `cancelled` is polled between faulty runs; when it turns true the
    /// shard stops early and returns what it has (the harness treats a
    /// cancelled shard as quarantined, so a partial result is never
    /// journaled as complete).
    pub fn run_range(
        &self,
        program: &Program,
        cfg: &CampaignConfig,
        lo: u32,
        hi: u32,
        cancelled: &dyn Fn() -> bool,
    ) -> CampaignShard {
        let mut shard = CampaignShard::default();
        let mut counts: BTreeMap<Outcome, u32> = BTreeMap::new();
        for &fault in &self.faults[lo as usize..hi as usize] {
            if cancelled() {
                break;
            }
            let (obs, report) =
                observe_fault(program, fault, &self.golden, cfg.itr, cfg.window_cycles);
            let record = FaultRecord {
                fault,
                field: itr_isa::DecodeSignals::field_of_bit(fault.bit),
                outcome: classify(&obs, &self.clean_sigs),
            };
            *counts.entry(record.outcome).or_insert(0) += 1;
            shard.records.push(record);
            shard.report.merge(&report);
        }
        seal_shard(&mut shard, &counts);
        shard
    }

    /// [`CampaignPlan::run_range`] fanned out over several observation
    /// windows: every fault in `[lo, hi)` is simulated **once** (via
    /// [`observe_fault_multi`]) and classified at each boundary of the
    /// strictly ascending `windows`. Returns one [`CampaignShard`] per
    /// window, each identical to what `run_range` would produce for a
    /// campaign dedicated to that window.
    pub fn run_range_windows(
        &self,
        program: &Program,
        cfg: &CampaignConfig,
        windows: &[u64],
        lo: u32,
        hi: u32,
        cancelled: &dyn Fn() -> bool,
    ) -> Vec<CampaignShard> {
        let mut shards: Vec<CampaignShard> =
            windows.iter().map(|_| CampaignShard::default()).collect();
        let mut counts: Vec<BTreeMap<Outcome, u32>> = vec![BTreeMap::new(); windows.len()];
        for &fault in &self.faults[lo as usize..hi as usize] {
            if cancelled() {
                break;
            }
            let observed = observe_fault_multi(program, fault, &self.golden, cfg.itr, windows);
            for (wi, (obs, report)) in observed.into_iter().enumerate() {
                let record = FaultRecord {
                    fault,
                    field: itr_isa::DecodeSignals::field_of_bit(fault.bit),
                    outcome: classify(&obs, &self.clean_sigs),
                };
                *counts[wi].entry(record.outcome).or_insert(0) += 1;
                shards[wi].records.push(record);
                shards[wi].report.merge(&report);
            }
        }
        for (shard, counts) in shards.iter_mut().zip(&counts) {
            seal_shard(shard, counts);
        }
        shards
    }
}

/// Appends the outcome tallies as a `campaign` section, registered for
/// every outcome (zeros included) so all shards export the same counter
/// set and the merged report is shard-decomposition-independent.
fn seal_shard(shard: &mut CampaignShard, counts: &BTreeMap<Outcome, u32>) {
    seal_report(&mut shard.report, shard.records.len(), counts);
}

/// The [`seal_shard`] core, shared with the fault-model campaigns
/// (`crate::models`): one `injected` counter plus one counter per
/// outcome, zeros included.
pub(crate) fn seal_report(report: &mut Report, injected: usize, counts: &BTreeMap<Outcome, u32>) {
    let mut campaign = Counters::new();
    let c = campaign.register("injected", Unit::Events, "faults injected and classified");
    campaign.set(c, injected as u64);
    for outcome in Outcome::ALL {
        let c = campaign.register(outcome.label(), Unit::Events, "faults with this outcome");
        campaign.set(c, u64::from(*counts.get(&outcome).unwrap_or(&0)));
    }
    report.push_section("campaign", &campaign, &[]);
}

impl CampaignResult {
    /// Folds per-shard results in shard order into the aggregate. The
    /// outcome is identical for any shard decomposition of the same
    /// fault list ([`Report::merge`] is commutative over disjoint runs;
    /// records concatenate in fault order because shards are contiguous
    /// ranges).
    pub fn from_shards<I: IntoIterator<Item = CampaignShard>>(shards: I) -> CampaignResult {
        let mut result = CampaignResult::default();
        for shard in shards {
            result.records.extend(shard.records);
            result.report.merge(&shard.report);
        }
        for r in &result.records {
            *result.counts.entry(r.outcome).or_insert(0) += 1;
        }
        result
    }
}

/// Runs a full campaign over `program`.
///
/// Faults are sampled uniformly over `(decode index, signal bit)` pairs;
/// each faulty run is compared against a shared golden reference and
/// classified. The fault list splits into contiguous range shards
/// ([`shard_bounds`]) that fan out over [`itr_harness::run_sharded`];
/// aggregation is deterministic in the thread count.
pub fn run_campaign(program: &Program, cfg: &CampaignConfig) -> CampaignResult {
    let plan = CampaignPlan::new(program, cfg);
    // Fixed-size range shards: the decomposition is a function of the
    // fault count alone, never of `cfg.threads`, so the aggregate (and
    // its serialized report) is identical under any worker count.
    let n = plan.faults().len() as u32;
    let bounds = shard_bounds(n, n.div_ceil(8));
    let plan_ref = &plan;
    let tasks: Vec<_> = bounds
        .into_iter()
        .map(|(lo, hi)| move || plan_ref.run_range(program, cfg, lo, hi, &|| false))
        .collect();
    let shards = itr_harness::run_sharded(cfg.threads, tasks);
    CampaignResult::from_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;
    use itr_workloads::kernels;

    fn small_campaign(faults: u32) -> CampaignConfig {
        CampaignConfig {
            faults,
            window_cycles: 20_000,
            min_decode: 20,
            max_decode: 2_000,
            seed: 1,
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_classifies_every_fault() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let result = run_campaign(&p, &small_campaign(40));
        assert_eq!(result.records.len(), 40);
        let total: u32 = result.counts.values().sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn tight_loop_faults_are_mostly_itr_detected() {
        // A hot loop re-executes its traces constantly, so the paper's
        // headline (most faults detected through the ITR cache) must show.
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let result = run_campaign(&p, &small_campaign(60));
        let detected = result.itr_detected_fraction();
        assert!(
            detected > 0.5,
            "only {:.0}% ITR-detected in a tight loop; counts: {:?}",
            detected * 100.0,
            result.counts
        );
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let p = assemble(kernels::FIB.source).unwrap();
        let cfg = small_campaign(20);
        let a = run_campaign(&p, &cfg);
        let b = run_campaign(&p, &cfg);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn campaign_identical_across_thread_counts() {
        // Aggregation must be a pure function of (program, seed, faults):
        // one worker and eight workers have to produce byte-identical
        // serialized reports and the same record sequence.
        let p = assemble(kernels::FIB.source).unwrap();
        let serial = run_campaign(&p, &CampaignConfig { threads: 1, ..small_campaign(20) });
        let parallel = run_campaign(&p, &CampaignConfig { threads: 8, ..small_campaign(20) });
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.counts, parallel.counts);
        assert_eq!(serial.report.to_json(), parallel.report.to_json());
        assert_eq!(serial.report.counter("campaign", "injected"), Some(20));
    }

    #[test]
    fn more_threads_than_faults_loses_nothing() {
        // Regression: the old chunking produced empty chunks (and idle
        // panicking-prone workers) when faults < threads.
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let result = run_campaign(&p, &CampaignConfig { threads: 8, ..small_campaign(3) });
        assert_eq!(result.records.len(), 3);
        assert_eq!(result.counts.values().sum::<u32>(), 3);
    }

    #[test]
    fn shard_bounds_skips_empty_ranges() {
        assert_eq!(shard_bounds(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(shard_bounds(10, 4), vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert_eq!(shard_bounds(0, 4), vec![]);
        assert_eq!(shard_bounds(5, 0), vec![]);
        assert_eq!(shard_bounds(8, 1), vec![(0, 8)]);
        for (n, s) in [(1u32, 7u32), (13, 5), (64, 64), (100, 3)] {
            let bounds = shard_bounds(n, s);
            assert!(bounds.len() <= s as usize);
            assert!(bounds.iter().all(|&(lo, hi)| lo < hi), "empty range in {bounds:?}");
            assert_eq!(bounds.iter().map(|&(lo, hi)| hi - lo).sum::<u32>(), n);
            assert_eq!(bounds.first().map(|b| b.0), Some(0));
            assert!(bounds.windows(2).all(|w| w[0].1 == w[1].0), "gap in {bounds:?}");
        }
    }

    #[test]
    fn multi_window_fanout_matches_per_window_campaigns() {
        // One simulated execution per fault, observed at three window
        // boundaries, must classify and report exactly like three
        // dedicated single-window campaigns.
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let windows = [5_000u64, 20_000, 80_000];
        let cfg = CampaignConfig { window_cycles: *windows.last().unwrap(), ..small_campaign(12) };
        let plan = CampaignPlan::new(&p, &cfg);
        let fanned = plan.run_range_windows(&p, &cfg, &windows, 0, 12, &|| false);
        assert_eq!(fanned.len(), windows.len());
        for (&w, shard) in windows.iter().zip(&fanned) {
            let cfg_w = CampaignConfig { window_cycles: w, ..cfg.clone() };
            let plan_w = CampaignPlan::new(&p, &cfg_w);
            let direct = plan_w.run_range(&p, &cfg_w, 0, 12, &|| false);
            assert_eq!(direct.records, shard.records, "window {w}");
            assert_eq!(direct.report.to_json(), shard.report.to_json(), "window {w}");
        }
    }

    #[test]
    fn run_range_respects_cancellation() {
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let cfg = small_campaign(10);
        let plan = CampaignPlan::new(&p, &cfg);
        let shard = plan.run_range(&p, &cfg, 0, 10, &|| true);
        assert!(shard.records.is_empty());
    }

    #[test]
    fn active_mode_predictions_hold_for_every_itr_outcome() {
        // Cross-validate the passive taxonomy against full active-mode
        // recovery for every ITR-detected fault in a small campaign.
        let p = assemble(kernels::FIB.source).unwrap();
        let cfg = small_campaign(50);
        let golden_len = cfg.max_decode + cfg.window_cycles * 4 + 10_000;
        let (golden, _) = super::golden_reference(&p, golden_len);
        let result = run_campaign(&p, &cfg);
        let mut validated = 0;
        for r in &result.records {
            if r.outcome.itr_detected() {
                validate_active_recovery(&p, r, &golden, cfg.itr, cfg.window_cycles)
                    .unwrap_or_else(|e| panic!("fault {:?}: {e}", r.fault));
                validated += 1;
            }
        }
        assert!(validated > 20, "only {validated} ITR-detected faults to validate");
    }

    #[test]
    fn recovery_validated_in_active_mode() {
        // Take a fault classified as recoverable SDC in the passive run
        // and confirm active-mode ITR actually recovers it end-to-end.
        let p = assemble(kernels::SUM_LOOP.source).unwrap();
        let result = run_campaign(&p, &small_campaign(80));
        let candidate = result
            .records
            .iter()
            .find(|r| r.outcome == Outcome::ItrSdcR)
            .expect("a recoverable SDC exists in 80 faults");
        let cfg = PipelineConfig { faults: vec![candidate.fault], ..PipelineConfig::with_itr() };
        let mut pipe = Pipeline::new(&p, cfg);
        let exit = pipe.run(5_000_000);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), kernels::SUM_LOOP.expected_output);
        assert!(pipe.itr().unwrap().stats().recoveries >= 1);
    }
}
