//! # itr-faults — the fault-injection study of §4
//!
//! Reproduces the paper's methodology: for each benchmark, inject
//! single-event upsets (random bit flips) on the decode signals of random
//! dynamic instructions, run the faulty processor alongside a golden
//! (fault-free) reference, and classify each fault by
//!
//! * **detection** — detected by an ITR signature mismatch (`ITR`),
//!   possibly detectable in the future because the faulty signature is
//!   still resident in the ITR cache (`MayITR`), caught only by the
//!   sequential-PC check (`spc`), or undetected (`Undet`); and
//! * **effect** — corrupts architectural state (`SDC`), causes a commit
//!   deadlock caught by the watchdog (`wdog`), or is masked (`Mask`); and
//! * for ITR-detected SDCs, **recoverability** — whether the *accessing*
//!   instance was the faulty one (retry recovers, `+R`) or the faulty
//!   instance already committed its signature on a miss (`+D`, abort).
//!
//! The faulty pipeline runs the ITR unit in *passive* mode (detect,
//! record, but commit anyway) so a single run observes both the would-be
//! detection and the would-be architectural outcome; active-mode recovery
//! is validated separately by `itr-sim`'s pipeline tests and the
//! `fault_injection` example.

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod campaign;
mod classify;
mod models;

pub use campaign::{
    observe_fault, observe_fault_multi, run_campaign, shard_bounds, validate_active_recovery,
    CampaignConfig, CampaignPlan, CampaignResult, CampaignShard, FaultRecord,
};
pub use classify::{classify, classify_logical, Observation, Outcome};
pub use models::{
    observe_model, validate_model_recovery, FaultModel, FaultPersistence, ModelKind, ModelPlan,
    ModelRecord, ModelShard,
};
