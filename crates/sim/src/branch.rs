//! Frontend branch predictors: gshare direction predictor, branch target
//! buffer, and return-address stack.

/// Gshare direction predictor: a table of 2-bit saturating counters
/// indexed by `PC ⊕ global-history`.
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<u8>,
    history_bits: u32,
    ghr: u32,
}

impl Gshare {
    /// Creates a predictor with `2^history_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or above 20.
    pub fn new(history_bits: u32) -> Gshare {
        assert!((1..=20).contains(&history_bits), "history_bits out of range");
        Gshare { counters: vec![2; 1 << history_bits], history_bits, ghr: 0 }
    }

    fn index(&self, pc: u64, ghr: u32) -> usize {
        let mask = (1u32 << self.history_bits) - 1;
        ((((pc >> 2) as u32) ^ ghr) & mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc` and
    /// speculatively updates the global history.
    pub fn predict_and_update_history(&mut self, pc: u64) -> bool {
        let taken = self.counters[self.index(pc, self.ghr)] >= 2;
        self.push_history(taken);
        taken
    }

    /// Current global history register (snapshot before prediction for
    /// misprediction repair).
    pub fn history(&self) -> u32 {
        self.ghr
    }

    /// Restores the global history (misprediction repair), then records
    /// the branch's actual direction.
    pub fn repair(&mut self, snapshot: u32, actual_taken: bool) {
        self.ghr = snapshot;
        self.push_history(actual_taken);
    }

    fn push_history(&mut self, taken: bool) {
        let mask = (1u32 << self.history_bits) - 1;
        self.ghr = ((self.ghr << 1) | taken as u32) & mask;
    }

    /// Trains the counter for a resolved branch. `history` must be the
    /// global history *at prediction time* (the per-branch snapshot).
    pub fn train(&mut self, pc: u64, history: u32, taken: bool) {
        let idx = self.index(pc, history);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Direct-mapped branch target buffer for indirect jumps (`jr`/`jalr` to
/// non-return targets).
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>,
}

impl Btb {
    /// Creates a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(entries > 0 && entries.is_power_of_two());
        Btb { entries: vec![None; entries as usize] }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }
}

/// Return-address stack. Speculative and unrepaired: a misprediction may
/// leave it misaligned, which only costs accuracy (the execution unit
/// corrects all targets).
#[derive(Debug, Clone)]
pub struct ReturnStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl ReturnStack {
    /// Creates a stack holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> ReturnStack {
        ReturnStack { stack: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address (drops the oldest when full).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_a_bias() {
        // Train the counter reached under history 0, then pin the history
        // back to 0 (via repair) and observe the learned direction.
        let mut g = Gshare::new(10);
        for _ in 0..3 {
            g.train(0x400, 0, true);
        }
        g.repair(0, false); // GHR = 0b0
        g.repair(0, false); // GHR = 0b0 again (shifted-in zero)
        assert_eq!(g.history(), 0);
        assert!(g.predict_and_update_history(0x400), "saturated taken");
        for _ in 0..4 {
            g.train(0x400, 0, false);
        }
        g.repair(0, false);
        assert!(!g.predict_and_update_history(0x400), "retrained not-taken");
    }

    #[test]
    fn gshare_repair_restores_history() {
        let mut g = Gshare::new(8);
        let snap = g.history();
        g.predict_and_update_history(0x100);
        g.predict_and_update_history(0x200);
        g.repair(snap, true);
        assert_eq!(g.history(), ((snap << 1) | 1) & 0xFF);
    }

    #[test]
    fn btb_tags_avoid_aliasing_lies() {
        let mut b = Btb::new(16);
        b.update(0x100, 0x500);
        assert_eq!(b.lookup(0x100), Some(0x500));
        // 0x100 and 0x140 share a slot (16 entries, word-indexed).
        assert_eq!(b.lookup(0x140), None, "different tag must miss");
        b.update(0x140, 0x900);
        assert_eq!(b.lookup(0x100), None, "displaced");
    }

    #[test]
    fn ras_is_lifo_and_bounded() {
        let mut r = ReturnStack::new(2);
        r.push(0x10);
        r.push(0x20);
        r.push(0x30);
        assert_eq!(r.pop(), Some(0x30));
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), None, "0x10 was dropped when full");
    }
}
