//! Cycle-level out-of-order superscalar pipeline with embedded ITR support
//! (Figure 5 of the paper).
//!
//! The microarchitecture follows the MIPS-R10K template the paper's
//! simulator models: a fetch unit with BTB + gshare + return-address
//! stack, decode producing the Table-2 signal vector, register renaming
//! through a map table and physical register file, an issue queue with
//! oldest-first select, a store queue with forwarding, a reorder buffer,
//! and in-order commit. The shaded ITR components of Figure 5 — signature
//! generation, ITR ROB, ITR cache, commit interlock, retry recovery — are
//! provided by [`itr_core::ItrUnit`] and wired in at dispatch and commit.
//!
//! Faults are injected by flipping one bit of one instruction's decode
//! signals ([`DecodeFault`]); every downstream stage consumes the signal
//! vector, so the fault propagates exactly as a decode-unit upset would.

use crate::arch::CommitRecord;
use crate::branch::{Btb, Gshare, ReturnStack};
use crate::cache::TimingCache;
use crate::config::{DecodeFault, PipelineConfig, RenameFault, SchedulerFault};
use crate::mem::Memory;
use crate::semantics::{execute, operand_plan, ExecInput, LoadSource, StoreOp, TrapAction};
use itr_core::{
    CoarseCheckpointer, CommitAction, ItrEvent, ItrSnapshot, ItrUnit, SequentialPcChecker,
    Watchdog,
};
use itr_isa::{decode, DecodeSignals, Instruction, Opcode, Program, SignalFlags};
use std::collections::VecDeque;

/// Why a pipeline run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// `trap HALT` committed.
    Halted,
    /// `trap ABORT` committed with the given code.
    Aborted(u32),
    /// The ITR unit raised a machine check (§2.2): a faulty trace already
    /// corrupted architectural state.
    MachineCheck {
        /// Start PC of the offending trace.
        start_pc: u64,
    },
    /// The watchdog detected a commit deadlock (§4's `wdog`).
    Deadlock,
    /// The cycle budget ran out.
    CycleLimit,
    /// The caller's commit callback requested a stop.
    Stopped,
}

/// A failed sequential-PC assertion at retirement (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpcViolation {
    /// Cycle of the violating commit.
    pub cycle: u64,
    /// PC of the instruction that failed the check.
    pub pc: u64,
}

/// Aggregate pipeline statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions decoded (includes wrong-path).
    pub decoded: u64,
    /// Branch mispredictions repaired at execute.
    pub mispredicts: u64,
    /// ITR retry flushes performed.
    pub retry_flushes: u64,
    /// I-cache accesses (one per productive fetch cycle).
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache load accesses.
    pub dcache_accesses: u64,
    /// D-cache load misses.
    pub dcache_misses: u64,
    /// Fetch groups spent re-fetching missed traces (§3 fallback).
    pub redundant_fetch_groups: u64,
    /// Missed traces verified by redundant fetch/decode.
    pub redundant_verifies: u64,
    /// Faults caught by the redundant copy (mismatch on re-decode).
    pub redundant_detects: u64,
    /// Instructions issued (issue-order index for scheduler faults).
    pub issued: u64,
    /// TAC issue-order assertion failures (§1 scheduler check).
    pub tac_violations: u64,
    /// Flush-restarts performed by the TAC check.
    pub tac_recoveries: u64,
}

impl PipelineStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    pc: u64,
    inst: Instruction,
    predicted_next: u64,
    ghr_snapshot: u32,
    used_gshare: bool,
}

#[derive(Debug, Clone, Copy)]
struct DstAlloc {
    arch: u16,
    phys: u16,
    prev: u16,
}

#[derive(Debug, Clone)]
struct Uop {
    seq: u64,
    pc: u64,
    inst: Instruction,
    sig: DecodeSignals,
    srcs: [Option<u16>; 2], // physical tags
    phantom: bool,
    dst: Option<DstAlloc>,
    issued: bool,
    done: bool,
    done_cycle: u64,
    result: u32,
    next_pc: u64,
    taken: Option<bool>,
    predicted_next: u64,
    ghr_snapshot: u32,
    used_gshare: bool,
    store: Option<StoreOp>,
    trap: Option<TrapAction>,
    trace_seq: u64,
    trace_end: bool,
    itr_snap: Option<ItrSnapshot>,
}

impl Uop {
    fn is_load(&self) -> bool {
        self.sig.opcode_enum().map(|o| o.is_load()).unwrap_or(false)
    }

    fn is_store(&self) -> bool {
        self.sig.opcode_enum().map(|o| o.is_store()).unwrap_or(false)
    }
}

struct OverlayLoader<'a> {
    mem: &'a Memory,
    stores: Vec<StoreOp>,
}

impl LoadSource for OverlayLoader<'_> {
    fn load(&self, addr: u64, size: u8) -> u32 {
        let size = size.min(4) as u64;
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate().take(size as usize) {
            *b = self.mem.read_u8(addr + i as u64);
        }
        for s in &self.stores {
            for j in 0..s.size.min(4) as u64 {
                let a = s.addr + j;
                if a >= addr && a < addr + size {
                    bytes[(a - addr) as usize] = (s.value >> (8 * j)) as u8;
                }
            }
        }
        u32::from_le_bytes(bytes)
    }
}

/// The cycle-level pipeline.
#[derive(Debug)]
pub struct Pipeline {
    cfg: PipelineConfig,
    mem: Memory,
    cycle: u64,

    // Frontend.
    fetch_pc: u64,
    icache: TimingCache,
    icache_stall: u32,
    fetch_queue: VecDeque<Fetched>,
    fetch_halted: bool,
    gshare: Gshare,
    btb: Btb,
    ras: ReturnStack,

    // Rename.
    map: [u16; 65],
    free_list: VecDeque<u16>,
    phys_val: Vec<u32>,
    phys_ready: Vec<bool>,

    // Window.
    rob: VecDeque<Uop>,
    head_seq: u64,
    iq: Vec<u64>,
    dcache: TimingCache,

    // Checks.
    itr: Option<ItrUnit>,
    checkpointer: CoarseCheckpointer,
    itr_events: Vec<(u64, ItrEvent)>,
    spc: SequentialPcChecker,
    spc_violations: Vec<SpcViolation>,
    wdog: Watchdog,

    // §3 redundant-fetch fallback state: the trace being re-verified and
    // the cycle its redundant copy completes.
    redundant_verify: Option<(u64, u64)>,
    verified_miss: Option<u64>,

    // Fault injection.
    faults: Vec<DecodeFault>,
    swap_done: bool,

    // Program interface.
    output: String,
    exit: Option<RunExit>,
    stats: PipelineStats,
}

impl Pipeline {
    /// Loads `program` into a fresh pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no headroom of physical registers.
    pub fn new(program: &Program, cfg: PipelineConfig) -> Pipeline {
        assert!(cfg.phys_regs as usize > 65, "need more physical than architectural registers");
        if let Some(itr) = &cfg.itr {
            // The §2.2 commit interlock stalls every instruction of a
            // trace until its terminating instruction has dispatched and
            // checked. The machine's commit-bound windows must therefore
            // hold at least one full trace, or a fault-free program can
            // interlock-deadlock (e.g. an LSQ smaller than a trace's
            // memory instructions). The paper sizes these implicitly; we
            // enforce the rule.
            assert!(
                cfg.rob_entries >= itr.max_trace_len,
                "ROB must hold a full trace ({} < {})",
                cfg.rob_entries,
                itr.max_trace_len
            );
            assert!(
                cfg.lsq_entries >= itr.max_trace_len,
                "LSQ must hold a full trace of memory instructions ({} < {})",
                cfg.lsq_entries,
                itr.max_trace_len
            );
        }
        let mut map = [0u16; 65];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u16;
        }
        let mut phys_val = vec![0u32; cfg.phys_regs as usize];
        phys_val[29] = itr_isa::STACK_TOP as u32;
        let phys_ready = vec![true; cfg.phys_regs as usize];
        let free_list: VecDeque<u16> = (65..cfg.phys_regs as u16).collect();
        Pipeline {
            mem: Memory::with_program(program),
            cycle: 0,
            fetch_pc: program.entry(),
            icache: TimingCache::new(cfg.icache),
            icache_stall: 0,
            fetch_queue: VecDeque::new(),
            fetch_halted: false,
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnStack::new(cfg.ras_entries as usize),
            map,
            free_list,
            phys_val,
            phys_ready,
            rob: VecDeque::new(),
            head_seq: 0,
            iq: Vec::new(),
            dcache: TimingCache::new(cfg.dcache),
            itr: cfg.itr.map(ItrUnit::new),
            checkpointer: CoarseCheckpointer::new(cfg.checkpoint_min_gap),
            itr_events: Vec::new(),
            spc: SequentialPcChecker::new(),
            spc_violations: Vec::new(),
            wdog: Watchdog::new(cfg.watchdog_cycles),
            redundant_verify: None,
            verified_miss: None,
            faults: cfg.faults.clone(),
            swap_done: false,
            output: String::new(),
            exit: None,
            stats: PipelineStats::default(),
            cfg,
        }
    }

    /// Runs until program exit or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.run_with(max_cycles, |_| true)
    }

    /// Runs, invoking `on_commit` for every committed instruction; the
    /// callback may return `false` to stop the run (exit
    /// [`RunExit::Stopped`]).
    pub fn run_with<F: FnMut(&CommitRecord) -> bool>(
        &mut self,
        max_cycles: u64,
        mut on_commit: F,
    ) -> RunExit {
        while self.exit.is_none() && self.cycle < max_cycles {
            self.do_cycle(&mut on_commit);
        }
        // CycleLimit is not latched: callers may resume with a larger
        // budget (fault campaigns run in windows).
        self.exit.unwrap_or(RunExit::CycleLimit)
    }

    /// The run's terminal state, if it has reached one.
    pub fn exit(&self) -> Option<RunExit> {
        self.exit
    }

    /// Program text written via `trap PUT_INT`/`PUT_CHAR`.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Pipeline statistics.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The embedded ITR unit, when configured.
    pub fn itr(&self) -> Option<&ItrUnit> {
        self.itr.as_ref()
    }

    /// Mutable access to the ITR unit (for §2.4 cache-fault experiments).
    pub fn itr_mut(&mut self) -> Option<&mut ItrUnit> {
        self.itr.as_mut()
    }

    /// ITR events paired with the cycle they surfaced in.
    pub fn itr_events(&self) -> &[(u64, ItrEvent)] {
        &self.itr_events
    }

    /// Sequential-PC check violations observed at retirement.
    pub fn spc_violations(&self) -> &[SpcViolation] {
        &self.spc_violations
    }

    /// The §2.3 coarse-grain checkpointing tracker (opportunities arise
    /// whenever the ITR cache holds no unchecked lines).
    pub fn checkpointer(&self) -> &CoarseCheckpointer {
        &self.checkpointer
    }

    /// Memory contents (e.g. to inspect results after a run).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn do_cycle<F: FnMut(&CommitRecord) -> bool>(&mut self, on_commit: &mut F) {
        if let Some(unit) = &mut self.itr {
            unit.advance(self.cycle);
        }
        self.commit(on_commit);
        if self.exit.is_none() {
            self.complete();
            self.issue();
            self.dispatch();
            self.fetch();
        }
        if let Some(unit) = &mut self.itr {
            let cycle = self.cycle;
            self.itr_events.extend(unit.drain_events().into_iter().map(|e| (cycle, e)));
        }
        if self.exit.is_none() && self.wdog.expired(self.cycle) {
            self.exit = Some(RunExit::Deadlock);
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
    }

    // ---------------------------------------------------------------- fetch

    fn predecode(&mut self, pc: u64, inst: Instruction) -> Fetched {
        let ghr_snapshot = self.gshare.history();
        let mut used_gshare = false;
        let predicted_next = match inst.op {
            op if op.is_cond_branch() => {
                used_gshare = true;
                let taken = self.gshare.predict_and_update_history(pc);
                if taken {
                    inst.direct_target(pc).unwrap_or(pc + 4)
                } else {
                    pc + 4
                }
            }
            Opcode::J => inst.direct_target(pc).unwrap_or(pc + 4),
            Opcode::Jal => {
                self.ras.push(pc + 4);
                inst.direct_target(pc).unwrap_or(pc + 4)
            }
            Opcode::Jr => {
                if inst.rs == 31 {
                    self.ras.pop().unwrap_or(pc + 4)
                } else {
                    self.btb.lookup(pc).unwrap_or(pc + 4)
                }
            }
            Opcode::Jalr => {
                self.ras.push(pc + 4);
                self.btb.lookup(pc).unwrap_or(pc + 4)
            }
            _ => pc + 4,
        };
        Fetched { pc, inst, predicted_next, ghr_snapshot, used_gshare }
    }

    fn fetch(&mut self) {
        if self.fetch_halted {
            return;
        }
        if self.icache_stall > 0 {
            self.icache_stall -= 1;
            return;
        }
        if self.fetch_queue.len() as u32 >= self.cfg.fetch_queue {
            return;
        }
        // One I-cache access per productive fetch cycle (the unit of the
        // §5 energy accounting).
        let hit = self.icache.access(self.fetch_pc);
        self.stats.icache_accesses += 1;
        if !hit {
            self.stats.icache_misses += 1;
            self.icache_stall = self.cfg.icache_miss_penalty;
            return;
        }
        for _ in 0..self.cfg.width {
            if self.fetch_queue.len() as u32 >= self.cfg.fetch_queue {
                break;
            }
            let pc = self.fetch_pc;
            let word = self.mem.read_u32(pc);
            let Ok(inst) = decode(word) else {
                // Un-decodable word (wild fetch): stall until a redirect.
                self.fetch_halted = true;
                break;
            };
            let fetched = self.predecode(pc, inst);
            let next = fetched.predicted_next;
            self.fetch_queue.push_back(fetched);
            self.fetch_pc = next;
            if next != pc + 4 {
                break; // predicted-taken redirect ends the fetch group
            }
            if !self.icache.same_line(pc, next) {
                break; // next instruction sits in a different cache line
            }
        }
    }

    // ------------------------------------------------------------- dispatch

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            if self.fetch_queue.is_empty()
                || self.rob.len() as u32 >= self.cfg.rob_entries
                || self.iq.len() as u32 >= self.cfg.iq_entries
                || self.free_list.is_empty()
            {
                return;
            }
            if let Some(unit) = &self.itr {
                if unit.rob_full() {
                    return;
                }
            }
            let lsq_used = self.rob.iter().filter(|u| u.is_load() || u.is_store()).count();
            if lsq_used as u32 >= self.cfg.lsq_entries {
                return;
            }
            // Fetch-reorder fault: swap the next two instruction words
            // (their PCs and predictions keep their slots).
            if let Some(nth) = self.cfg.swap_fault {
                if !self.swap_done && self.stats.decoded == nth && self.fetch_queue.len() >= 2 {
                    let inst0 = self.fetch_queue[0].inst;
                    self.fetch_queue[0].inst = self.fetch_queue[1].inst;
                    self.fetch_queue[1].inst = inst0;
                    self.swap_done = true;
                }
            }
            let f = self.fetch_queue.pop_front().expect("checked non-empty");

            // Decode: derive the signal vector, injecting any planned
            // upsets striking this instruction.
            let mut sig = DecodeSignals::from_instruction(&f.inst);
            for fault in &self.faults {
                if self.stats.decoded == fault.nth_decode {
                    sig = sig.with_bit_flipped(fault.bit);
                }
            }
            self.stats.decoded += 1;

            // Rename: derive the map-table indexes, strike them with the
            // planned rename fault if this is the chosen instruction.
            let plan = operand_plan(&sig);
            let rename_idx = self.stats.decoded - 1;
            let perturb = |arch: u16, operand: u8| -> u16 {
                match self.cfg.rename_fault {
                    Some(RenameFault { nth_rename, operand: o, bit })
                        if nth_rename == rename_idx && o == operand =>
                    {
                        (arch ^ (1 << (bit % 7)) as u16) % 65
                    }
                    _ => arch,
                }
            };
            let src_arch = [
                plan.srcs[0].map(|a| perturb(a, 0)),
                plan.srcs[1].map(|a| perturb(a, 1)),
            ];
            let dst_arch = plan.dst.map(|a| perturb(a, 2)).filter(|&a| a != 0);

            // ITR dispatch tap (§2.1/§2.2), optionally folding the rename
            // indexes actually used (§1 rename-unit extension).
            let extra = if self.cfg.rename_protection {
                Self::rename_extra(src_arch, dst_arch)
            } else {
                0
            };
            let (trace_seq, trace_end) = match &mut self.itr {
                Some(unit) => {
                    let r = unit.on_dispatch_extended(f.pc, &sig, extra);
                    (r.trace_seq, r.trace_end)
                }
                None => (0, false),
            };

            let srcs = src_arch.map(|o| o.map(|arch| self.map[arch as usize]));
            let dst = dst_arch.map(|arch| {
                let phys = self.free_list.pop_front().expect("checked non-empty");
                let prev = self.map[arch as usize];
                self.map[arch as usize] = phys;
                self.phys_ready[phys as usize] = false;
                DstAlloc { arch, phys, prev }
            });

            let seq = self.head_seq + self.rob.len() as u64;
            // Snapshot ITR state after any control-flow-affecting
            // instruction dispatches, for misprediction rollback.
            let may_redirect = f.inst.op.ends_trace();
            let itr_snap = if may_redirect {
                self.itr.as_ref().map(|u| u.snapshot())
            } else {
                None
            };
            self.rob.push_back(Uop {
                seq,
                pc: f.pc,
                inst: f.inst,
                sig,
                srcs,
                phantom: plan.phantom_src,
                dst,
                issued: false,
                done: false,
                done_cycle: 0,
                result: 0,
                next_pc: f.pc + 4,
                taken: None,
                predicted_next: f.predicted_next,
                ghr_snapshot: f.ghr_snapshot,
                used_gshare: f.used_gshare,
                store: None,
                trap: None,
                trace_seq,
                trace_end,
                itr_snap,
            });
            self.iq.push(seq);
        }
    }

    // ---------------------------------------------------------------- issue

    fn idx(&self, seq: u64) -> usize {
        (seq - self.head_seq) as usize
    }

    fn idx_checked(&self, seq: u64) -> Option<usize> {
        let off = seq.checked_sub(self.head_seq)?;
        ((off as usize) < self.rob.len()).then_some(off as usize)
    }

    fn srcs_ready(&self, u: &Uop) -> bool {
        !u.phantom && u.srcs.iter().flatten().all(|&p| self.phys_ready[p as usize])
    }

    fn older_stores_done(&self, seq: u64) -> bool {
        self.rob
            .iter()
            .take_while(|u| u.seq < seq)
            .all(|u| !u.is_store() || u.issued)
    }

    fn collect_older_stores(&self, seq: u64) -> Vec<StoreOp> {
        self.rob
            .iter()
            .take_while(|u| u.seq < seq)
            .filter_map(|u| if u.is_store() { u.store } else { None })
            .collect()
    }

    fn issue(&mut self) {
        // Oldest-first select among ready instructions.
        let mut candidates: Vec<u64> = self
            .iq
            .iter()
            .copied()
            .filter(|&seq| {
                let u = &self.rob[self.idx(seq)];
                self.srcs_ready(u) && (!u.is_load() || self.older_stores_done(seq))
            })
            .collect();
        candidates.sort_unstable();
        candidates.truncate(self.cfg.issue_width as usize);

        // Scheduler fault: at the chosen issue index the select logic
        // wrongly grabs the oldest not-ready instruction instead.
        if let Some(SchedulerFault { nth_issue }) = self.cfg.scheduler_fault {
            let in_window = self.stats.issued <= nth_issue
                && nth_issue < self.stats.issued + candidates.len().max(1) as u64;
            if in_window {
                let victim = self
                    .iq
                    .iter()
                    .copied()
                    .filter(|&seq| {
                        let u = &self.rob[self.idx(seq)];
                        !u.phantom && !self.srcs_ready(u) && !u.is_load() && !u.is_store()
                    })
                    .min();
                if let Some(v) = victim {
                    let slot = (nth_issue - self.stats.issued) as usize;
                    if slot < candidates.len() {
                        candidates[slot] = v;
                    } else {
                        candidates.push(v);
                    }
                    candidates.sort_unstable();
                    candidates.dedup();
                }
            }
        }

        for seq in candidates {
            let Some(i) = self.idx_checked(seq) else { continue };
            self.stats.issued += 1;
            // TAC-style issue-order assertion (§1): the sources of an
            // issuing instruction must be ready. A violation means the
            // select logic mis-fired; squash from the offender and
            // restart (its re-execution issues correctly).
            if self.cfg.tac_check && !self.srcs_ready(&self.rob[i]) {
                self.stats.tac_violations += 1;
                self.stats.tac_recoveries += 1;
                let restart_pc = self.rob[i].pc;
                if let Some(unit) = &mut self.itr {
                    unit.on_full_flush();
                }
                self.full_flush_to(restart_pc);
                return;
            }
            let u = &self.rob[i];
            let src = |o: Option<u16>| o.map_or(0, |p| self.phys_val[p as usize]);
            let input = ExecInput {
                sig: &u.sig,
                pc: u.pc,
                raw_jump_target: u.inst.direct_target(u.pc),
                src1: src(u.srcs[0]),
                src2: src(u.srcs[1]),
            };
            let out = if u.is_load() {
                let overlay = OverlayLoader {
                    mem: &self.mem,
                    stores: self.collect_older_stores(seq),
                };
                execute(input, &overlay)
            } else {
                execute(input, &self.mem)
            };

            let mut latency = u.sig.lat_class().cycles();
            if let Some((addr, _)) = out.load {
                self.stats.dcache_accesses += 1;
                if !self.dcache.access(addr) {
                    self.stats.dcache_misses += 1;
                    latency += self.cfg.dcache_miss_penalty as u64;
                }
            }

            let cycle = self.cycle;
            let u = &mut self.rob[i];
            u.issued = true;
            u.done_cycle = cycle + latency.max(1);
            u.result = out.value;
            u.next_pc = out.next_pc;
            u.taken = out.taken;
            u.store = out.store;
            u.trap = out.trap;
            if let Some(d) = u.dst {
                self.phys_val[d.phys as usize] = out.value;
            }
            self.iq.retain(|&s| s != seq);
        }
    }

    // ------------------------------------------------------------- complete

    fn complete(&mut self) {
        // Completions in age order; a misprediction squashes everything
        // younger, including any later completions this cycle.
        let completing: Vec<u64> = {
            let mut v: Vec<u64> = self
                .rob
                .iter()
                .filter(|u| u.issued && !u.done && u.done_cycle <= self.cycle)
                .map(|u| u.seq)
                .collect();
            v.sort_unstable();
            v
        };
        for seq in completing {
            let Some(i) = self.idx_checked(seq) else {
                continue; // squashed by an older completion this cycle
            };
            self.rob[i].done = true;
            if let Some(d) = self.rob[i].dst {
                self.phys_ready[d.phys as usize] = true;
            }
            let u = &self.rob[i];
            if u.taken.is_some() && u.next_pc != u.predicted_next {
                self.stats.mispredicts += 1;
                self.repair_mispredict(seq);
            }
        }
    }

    fn repair_mispredict(&mut self, branch_seq: u64) {
        // Squash younger than the branch, walking the ROB tail backwards
        // to undo renaming.
        while let Some(u) = self.rob.back() {
            if u.seq <= branch_seq {
                break;
            }
            let u = self.rob.pop_back().expect("checked non-empty");
            if let Some(d) = u.dst {
                self.map[d.arch as usize] = d.prev;
                self.free_list.push_front(d.phys);
            }
        }
        self.iq.retain(|&s| s <= branch_seq);
        self.fetch_queue.clear();
        self.fetch_halted = false;
        self.icache_stall = 0;

        let i = self.idx(branch_seq);
        let (snap, used_gshare, taken, target, itr_snap) = {
            let u = &self.rob[i];
            (u.ghr_snapshot, u.used_gshare, u.taken == Some(true), u.next_pc, u.itr_snap)
        };
        if used_gshare {
            self.gshare.repair(snap, taken);
        }
        if let (Some(unit), Some(snap)) = (&mut self.itr, itr_snap.as_ref()) {
            unit.restore(snap);
        }
        self.fetch_pc = target;
        // Mark the prediction repaired so the uop does not re-trigger.
        self.rob[i].predicted_next = target;
    }

    // --------------------------------------------------------------- commit

    fn full_flush_to(&mut self, restart_pc: u64) {
        while let Some(u) = self.rob.pop_back() {
            if let Some(d) = u.dst {
                self.map[d.arch as usize] = d.prev;
                self.free_list.push_front(d.phys);
            }
        }
        self.iq.clear();
        self.fetch_queue.clear();
        self.fetch_halted = false;
        self.icache_stall = 0;
        self.fetch_pc = restart_pc;
        self.spc.reseed(restart_pc);
    }

    /// Encoding of the rename map-table indexes folded into the
    /// signature under `rename_protection` (must be identical wherever a
    /// signature is (re)generated).
    fn rename_extra(src_arch: [Option<u16>; 2], dst_arch: Option<u16>) -> u64 {
        let enc = |o: Option<u16>| o.map_or(0x7F, u64::from);
        (enc(src_arch[0]) | (enc(src_arch[1]) << 7) | (enc(dst_arch) << 14)).rotate_left(23)
    }

    /// Re-decodes the static trace at `start_pc` straight from memory —
    /// the redundant copy of the §3 fallback. Returns its signature
    /// (ground truth under a single-event-upset model: the second fetch
    /// and decode are fault-free) and its instruction count.
    fn redecode_trace(&self, start_pc: u64, max_len: u32) -> Option<(u64, u32)> {
        let fold = self.itr.as_ref().map(|u| u.config().fold).unwrap_or_default();
        let mut builder = itr_core::TraceBuilder::with_kind(max_len, fold);
        let mut pc = start_pc;
        for _ in 0..max_len {
            let inst = decode(self.mem.read_u32(pc)).ok()?;
            let sig = DecodeSignals::from_instruction(&inst);
            let extra = if self.cfg.rename_protection {
                let plan = operand_plan(&sig);
                Self::rename_extra(plan.srcs, plan.dst)
            } else {
                0
            };
            if let Some(t) = builder.push_with_extra(pc, &sig, extra) {
                return Some((t.signature, t.len));
            }
            pc += 4;
        }
        None
    }

    /// §3 fallback: before any instruction of a missed trace commits,
    /// re-fetch and re-decode the trace and compare the two copies.
    /// Returns `true` if commit must stall this cycle.
    fn redundant_verify_stall(&mut self, trace_seq: u64) -> bool {
        let Some(unit) = &self.itr else { return false };
        if !unit.config().redundant_fetch_on_miss {
            return false;
        }
        if self.verified_miss == Some(trace_seq) {
            return false;
        }
        let Some(entry) = unit.rob_entry(trace_seq) else { return false };
        if entry.state != itr_core::ControlState::Miss {
            return false;
        }
        let (start_pc, len, in_flight_sig) = (entry.start_pc, entry.len, entry.signature);
        let max_len = unit.config().max_trace_len;
        match self.redundant_verify {
            None => {
                // Launch the redundant fetch: frontend depth plus one
                // fetch group per `width` instructions.
                let groups = (len as u64).div_ceil(self.cfg.width as u64);
                self.stats.redundant_fetch_groups += groups;
                self.redundant_verify = Some((trace_seq, self.cycle + 6 + groups));
                true
            }
            Some((seq, done)) if seq == trace_seq => {
                if self.cycle < done {
                    return true;
                }
                self.redundant_verify = None;
                self.stats.redundant_verifies += 1;
                let clean = self.redecode_trace(start_pc, max_len);
                if clean.map(|(sig, _)| sig) == Some(in_flight_sig) {
                    self.verified_miss = Some(trace_seq);
                    false
                } else {
                    // The in-flight copy is faulty: flush before anything
                    // commits and refetch, exactly like an ITR retry.
                    self.stats.redundant_detects += 1;
                    self.stats.retry_flushes += 1;
                    self.itr.as_mut().expect("checked").on_retry_flush(start_pc);
                    self.full_flush_to(start_pc);
                    true
                }
            }
            Some(_) => {
                // A stale verify for a squashed trace: restart.
                self.redundant_verify = None;
                true
            }
        }
    }

    fn commit<F: FnMut(&CommitRecord) -> bool>(&mut self, on_commit: &mut F) {
        for _ in 0..self.cfg.width {
            if self.rob.front().is_none() {
                return;
            }

            // ITR commit interlock (§2.2). Consulted before the completion
            // check: a retry can rescue a deadlocked trace (ITR+wdog+R).
            if self.itr.is_some() {
                let trace_seq = self.rob.front().expect("checked").trace_seq;
                let action = self.itr.as_ref().expect("checked").commit_action(trace_seq);
                match action {
                    CommitAction::Proceed => {}
                    CommitAction::Stall => return,
                    CommitAction::Retry { start_pc } => {
                        self.stats.retry_flushes += 1;
                        self.itr.as_mut().expect("checked").on_retry_flush(start_pc);
                        self.full_flush_to(start_pc);
                        return;
                    }
                    CommitAction::MachineCheck { start_pc } => {
                        self.itr.as_mut().expect("checked").on_machine_check(start_pc);
                        self.exit = Some(RunExit::MachineCheck { start_pc });
                        return;
                    }
                }
            }

            if self.itr.is_some() {
                let trace_seq = self.rob.front().expect("checked").trace_seq;
                if self.redundant_verify_stall(trace_seq) {
                    return;
                }
            }

            if !self.rob.front().expect("checked").done {
                return;
            }
            let u = self.rob.pop_front().expect("checked");
            self.head_seq = u.seq + 1;

            // Sequential-PC check (§2.5).
            if self.cfg.spc_check {
                let is_branch_flag = u.sig.flags.contains(SignalFlags::IS_BRANCH);
                if !self.spc.check_and_advance(u.pc, is_branch_flag, u.next_pc) {
                    self.spc_violations.push(SpcViolation { cycle: self.cycle, pc: u.pc });
                }
            }

            // Architectural effects.
            let mut record = CommitRecord { pc: u.pc, dst: None, store: None, next_pc: u.next_pc };
            if let Some(d) = u.dst {
                record.dst = Some((d.arch, u.result));
                self.free_list.push_back(d.prev);
            }
            if let Some(s) = u.store {
                self.mem.write(s.addr, s.size, s.value);
                record.store = Some((s.addr, s.size, s.value));
            }
            match u.trap {
                Some(TrapAction::Halt) => self.exit = Some(RunExit::Halted),
                Some(TrapAction::Abort(code)) => self.exit = Some(RunExit::Aborted(code)),
                Some(TrapAction::PutInt(v)) => self.output.push_str(&(v as i32).to_string()),
                Some(TrapAction::PutChar(c)) => self.output.push(c as char),
                Some(TrapAction::Nop) | None => {}
            }

            // Predictor training.
            if u.used_gshare {
                if let Some(taken) = u.taken {
                    self.gshare.train(u.pc, u.ghr_snapshot, taken);
                }
            }
            if matches!(u.inst.op, Opcode::Jr | Opcode::Jalr) && u.taken == Some(true) {
                self.btb.update(u.pc, u.next_pc);
            }

            self.wdog.pet(self.cycle);
            self.stats.committed += 1;
            if u.trace_end {
                if let Some(unit) = &mut self.itr {
                    unit.on_trace_end_commit(u.trace_seq);
                    // §2.3: a coarse-grain checkpoint is safe whenever no
                    // unchecked (unreferenced) lines are resident.
                    self.checkpointer
                        .observe(unit.cache().unreferenced_count(), self.stats.committed);
                }
            }
            if !on_commit(&record) {
                self.exit = Some(RunExit::Stopped);
                return;
            }
            if self.exit.is_some() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FuncSim, StopReason};
    use itr_isa::asm::assemble;

    const SUM_LOOP: &str = r#"
        main:
            li r8, 100
            li r9, 0
        top:
            add r9, r9, r8
            addi r8, r8, -1
            bgtz r8, top
            move r4, r9
            trap 1
            halt
    "#;

    fn run_pipeline(src: &str, cfg: PipelineConfig) -> (Pipeline, RunExit) {
        let p = assemble(src).expect("assembles");
        let mut pipe = Pipeline::new(&p, cfg);
        let exit = pipe.run(2_000_000);
        (pipe, exit)
    }

    #[test]
    fn sum_loop_halts_with_correct_output() {
        let (pipe, exit) = run_pipeline(SUM_LOOP, PipelineConfig::default());
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert!(pipe.stats().ipc() > 0.5, "ipc = {}", pipe.stats().ipc());
    }

    #[test]
    fn itr_enabled_run_is_architecturally_identical() {
        let (plain, e1) = run_pipeline(SUM_LOOP, PipelineConfig::default());
        let (itr, e2) = run_pipeline(SUM_LOOP, PipelineConfig::with_itr());
        assert_eq!(e1, RunExit::Halted);
        assert_eq!(e2, RunExit::Halted);
        assert_eq!(plain.output(), itr.output());
        let unit = itr.itr().expect("unit present");
        assert_eq!(unit.stats().mismatches, 0, "fault-free run never mismatches");
        assert!(unit.stats().traces_committed > 100);
    }

    #[test]
    fn pipeline_matches_functional_commit_stream() {
        let src = r#"
            .data
            arr: .word 9, 2, 7, 4, 5, 1, 8, 3
            .text
            main:
                la r8, arr
                li r9, 8
                li r10, 0
                li r11, 0
            loop:
                lw r12, 0(r8)
                add r10, r10, r12
                andi r13, r12, 1
                beq r13, r0, skip
                addi r11, r11, 1
            skip:
                sw r10, 0(r8)
                addi r8, r8, 4
                addi r9, r9, -1
                bgtz r9, loop
                halt
        "#;
        let p = assemble(src).unwrap();
        let mut golden = FuncSim::new(&p);
        let (grecs, greason) = golden.run_collect(100_000);
        assert_eq!(greason, StopReason::Halted);

        let mut precs = Vec::new();
        let mut pipe = Pipeline::new(&p, PipelineConfig::with_itr());
        let exit = pipe.run_with(1_000_000, |r| {
            precs.push(*r);
            true
        });
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(precs.len(), grecs.len(), "same dynamic instruction count");
        for (i, (a, b)) in precs.iter().zip(&grecs).enumerate() {
            assert_eq!(a, b, "commit {i} diverged: pipeline {a} vs functional {b}");
        }
    }

    #[test]
    fn indirect_calls_and_returns_work() {
        let src = r#"
            main:
                li r16, 0
                li r17, 5
            call_loop:
                move r4, r17
                jal double
                move r17, r2
                addi r16, r16, 1
                slti r9, r16, 4
                bgtz r9, call_loop
                move r4, r17
                trap 1
                halt
            double:
                add r2, r4, r4
                jr ra
        "#;
        let (pipe, exit) = run_pipeline(src, PipelineConfig::with_itr());
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "80", "5 doubled 4 times");
    }

    #[test]
    fn store_load_forwarding_is_correct() {
        let src = r#"
            .data
            buf: .space 16
            .text
            main:
                la r8, buf
                li r9, 0x1234
                sw r9, 0(r8)
                lw r10, 0(r8)    # must see the in-flight store
                sb r0, 1(r8)
                lw r11, 0(r8)    # partially overwritten
                move r4, r10
                trap 1
                move r4, r11
                trap 1
                halt
        "#;
        let (pipe, exit) = run_pipeline(src, PipelineConfig::default());
        assert_eq!(exit, RunExit::Halted);
        // 0x1234 = bytes [34, 12, 00, 00]; zeroing byte 1 gives 0x0034.
        assert_eq!(pipe.output(), format!("{}{}", 0x1234, 0x0034));
    }

    #[test]
    fn deadlock_fault_is_caught_by_watchdog() {
        // Flip num_rsrc of a loop-body add to 3: phantom operand. num_rsrc
        // field lsb = 58; add has num_rsrc=2 (0b10); flipping bit 58 gives
        // 0b11 = 3.
        let cfg = PipelineConfig {
            faults: vec![DecodeFault { nth_decode: 2, bit: 58 }],
            watchdog_cycles: 2_000,
            ..PipelineConfig::default()
        };
        let (_, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Deadlock);
    }

    #[test]
    fn itr_retry_recovers_from_transient_fault() {
        // Inject into a mid-loop instruction after the loop trace has been
        // cached; ITR detects the mismatch at commit and the retry flush
        // re-executes cleanly, so the program output is unaffected.
        let cfg = PipelineConfig {
            faults: vec![DecodeFault { nth_decode: 50, bit: 25 }], // rsrc1 bit
            ..PipelineConfig::with_itr()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050", "recovery preserved the result");
        let unit = pipe.itr().unwrap();
        assert!(unit.stats().mismatches >= 1, "fault detected");
        assert_eq!(unit.stats().recoveries, 1, "recovered via retry");
        assert_eq!(unit.stats().machine_checks, 0);
    }

    #[test]
    fn unprotected_pipeline_corrupts_on_the_same_fault() {
        // The same fault without ITR: the wrong-source add corrupts r9.
        let cfg = PipelineConfig {
            faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_ne!(pipe.output(), "5050", "fault silently corrupted data");
    }

    #[test]
    fn cycle_limit_is_reported() {
        let p = assemble("main:\n j main\n").unwrap();
        let mut pipe = Pipeline::new(&p, PipelineConfig::default());
        assert_eq!(pipe.run(1_000), RunExit::CycleLimit);
    }

    #[test]
    fn commit_callback_can_stop_the_run() {
        let p = assemble(SUM_LOOP).unwrap();
        let mut pipe = Pipeline::new(&p, PipelineConfig::default());
        let mut n = 0;
        let exit = pipe.run_with(1_000_000, |_| {
            n += 1;
            n < 10
        });
        assert_eq!(exit, RunExit::Stopped);
        assert_eq!(n, 10);
    }

    #[test]
    fn redundant_fetch_fallback_runs_cleanly() {
        use itr_core::ItrConfig;
        let cfg = PipelineConfig {
            itr: Some(ItrConfig { redundant_fetch_on_miss: true, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        let s = pipe.stats();
        assert!(s.redundant_verifies > 0, "misses were re-verified");
        assert_eq!(s.redundant_detects, 0, "no faults to catch");
        assert!(s.redundant_fetch_groups > 0);
    }

    #[test]
    fn redundant_fetch_catches_faults_on_first_instance_traces() {
        use itr_core::ItrConfig;
        // Inject into the very first dynamic instance of the program's
        // first trace: plain ITR can only detect this later (the faulty
        // signature enters the cache); the §3 fallback catches it before
        // commit and recovers.
        let faults = vec![DecodeFault { nth_decode: 0, bit: 35 }]; // rdst bit
        let plain = PipelineConfig { faults: faults.clone(), ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(SUM_LOOP, plain);
        assert_eq!(exit, RunExit::Halted);
        assert_ne!(pipe.output(), "5050", "plain ITR misses the cold-trace fault");

        let fallback = PipelineConfig {
            faults,
            itr: Some(ItrConfig { redundant_fetch_on_miss: true, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, fallback);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050", "fallback recovers the cold-trace fault");
        assert!(pipe.stats().redundant_detects >= 1);
    }

    #[test]
    fn same_bit_double_fault_evades_xor_but_not_rotate_xor() {
        use itr_core::{FoldKind, ItrConfig};
        // Two flips of the same signal bit on adjacent instructions of one
        // hot-loop trace instance (SUM_LOOP decodes architecturally until
        // the final mispredict, so iteration 17's add/addi are decodes
        // #53/#54; bit 30 = rsrc2, which corrupts the add but is masked
        // on the addi): the XOR fold cancels (§2.1's documented
        // limitation), the rotate-XOR fold does not.
        let faults = vec![
            DecodeFault { nth_decode: 53, bit: 30 },
            DecodeFault { nth_decode: 54, bit: 30 },
        ];
        let xor_cfg = PipelineConfig { faults: faults.clone(), ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(SUM_LOOP, xor_cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "XOR is blind");
        assert_ne!(pipe.output(), "5050", "yet the double fault corrupts");

        let rot_cfg = PipelineConfig {
            faults,
            itr: Some(ItrConfig { fold: FoldKind::RotateXor, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, rot_cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050", "rotate-XOR detects and recovers");
        assert!(pipe.itr().unwrap().stats().mismatches >= 1);
    }

    #[test]
    fn fetch_reorder_fault_evades_xor_but_not_rotate_xor() {
        use itr_core::{FoldKind, ItrConfig};
        // Swap two adjacent non-branch instructions inside the cached hot
        // loop trace: same signal multiset, different order.
        let swap_at = 53u64; // iteration 17's add/addi pair (same trace)
        let xor_cfg = PipelineConfig { swap_fault: Some(swap_at), ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(SUM_LOOP, xor_cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(
            pipe.itr().unwrap().stats().mismatches,
            0,
            "XOR cannot see a within-trace swap"
        );

        let rot_cfg = PipelineConfig {
            swap_fault: Some(swap_at),
            itr: Some(ItrConfig { fold: FoldKind::RotateXor, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, rot_cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050", "rotate-XOR detects and the retry recovers");
        assert!(pipe.itr().unwrap().stats().mismatches >= 1);
        assert_eq!(pipe.itr().unwrap().stats().recoveries, 1);
    }

    #[test]
    fn tiny_resources_stall_but_never_break() {
        use itr_core::ItrConfig;
        // Starve every queue: a 2-entry ITR ROB, minimal IQ, single-entry
        // LSQ headroom, barely enough physical registers. Dispatch stalls
        // constantly; architecture must be unaffected.
        let cfg = PipelineConfig {
            width: 4,
            issue_width: 2,
            rob_entries: 16, // = max trace length, the legal minimum
            iq_entries: 4,
            lsq_entries: 16,
            phys_regs: 96,
            itr: Some(ItrConfig { rob_entries: 2, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert!(pipe.stats().ipc() < 1.5, "starved machine must be slower");
    }

    #[test]
    fn tiny_itr_rob_with_recovery_still_works() {
        use itr_core::ItrConfig;
        let cfg = PipelineConfig {
            faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
            itr: Some(ItrConfig { rob_entries: 2, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert_eq!(pipe.itr().unwrap().stats().recoveries, 1);
    }

    #[test]
    fn memory_heavy_kernel_survives_single_lsq_slot() {
        let src = r#"
            .data
            buf: .space 64
            .text
            main:
                la r8, buf
                li r9, 16
            fill:
                sw r9, 0(r8)
                lw r10, 0(r8)
                add r11, r11, r10
                addi r8, r8, 4
                addi r9, r9, -1
                bgtz r9, fill
                move r4, r11
                trap 1
                halt
        "#;
        // The legal minimum LSQ under ITR is one full trace (16); below
        // that the commit interlock can deadlock a fault-free program —
        // see the sizing assertions in Pipeline::new.
        let cfg = PipelineConfig { lsq_entries: 16, ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(src, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "136"); // 16+15+...+1
    }

    #[test]
    #[should_panic(expected = "LSQ must hold a full trace")]
    fn undersized_lsq_with_itr_is_rejected() {
        let p = assemble(SUM_LOOP).unwrap();
        let cfg = PipelineConfig { lsq_entries: 4, ..PipelineConfig::with_itr() };
        let _ = Pipeline::new(&p, cfg);
    }

    #[test]
    fn scheduler_fault_corrupts_without_tac() {
        use crate::config::SchedulerFault;
        // The mis-selected instruction reads a stale physical register.
        let cfg = PipelineConfig {
            scheduler_fault: Some(SchedulerFault { nth_issue: 60 }),
            ..PipelineConfig::with_itr()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_ne!(pipe.output(), "5050", "stale read corrupts the sum");
        assert_eq!(
            pipe.itr().unwrap().stats().mismatches,
            0,
            "decode-signal signatures cannot see scheduler faults"
        );
    }

    #[test]
    fn tac_check_detects_and_recovers_scheduler_fault() {
        use crate::config::SchedulerFault;
        let cfg = PipelineConfig {
            scheduler_fault: Some(SchedulerFault { nth_issue: 60 }),
            tac_check: true,
            ..PipelineConfig::with_itr()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050", "TAC recovery preserves the result");
        assert_eq!(pipe.stats().tac_violations, 1);
        assert_eq!(pipe.stats().tac_recoveries, 1);
    }

    #[test]
    fn tac_check_is_silent_fault_free() {
        let cfg = PipelineConfig { tac_check: true, ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert_eq!(pipe.stats().tac_violations, 0);
    }

    #[test]
    fn delayed_itr_cache_reads_preserve_correctness() {
        use itr_core::ItrConfig;
        // A realistic 2-cycle SRAM read: absorbed by the dispatch-to-
        // commit distance, so IPC is essentially unchanged and results
        // identical.
        for latency in [2u32, 8, 40] {
            let cfg = PipelineConfig {
                itr: Some(ItrConfig {
                    cache_read_latency: latency,
                    ..ItrConfig::paper_default()
                }),
                ..PipelineConfig::default()
            };
            let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
            assert_eq!(exit, RunExit::Halted, "latency {latency}");
            assert_eq!(pipe.output(), "5050", "latency {latency}");
            assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
        }
    }

    #[test]
    fn long_itr_read_latency_stalls_commit_but_stays_correct() {
        use itr_core::ItrConfig;
        let fast = {
            let (pipe, _) = run_pipeline(SUM_LOOP, PipelineConfig::with_itr());
            pipe.stats().ipc()
        };
        let cfg = PipelineConfig {
            itr: Some(ItrConfig { cache_read_latency: 40, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert!(
            pipe.stats().ipc() < fast * 0.8,
            "a 40-cycle read must show in IPC: {} vs {}",
            pipe.stats().ipc(),
            fast
        );
    }

    #[test]
    fn recovery_works_with_delayed_reads() {
        use itr_core::ItrConfig;
        let cfg = PipelineConfig {
            faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
            itr: Some(ItrConfig { cache_read_latency: 3, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert_eq!(pipe.itr().unwrap().stats().recoveries, 1);
    }

    #[test]
    fn rotate_xor_runs_cleanly_fault_free() {
        use itr_core::{FoldKind, ItrConfig};
        let cfg = PipelineConfig {
            itr: Some(ItrConfig { fold: FoldKind::RotateXor, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
    }

    #[test]
    fn rename_fault_is_invisible_to_plain_itr() {
        use crate::config::RenameFault;
        // Strike the rename map index of a hot-loop source operand: the
        // decode signals are clean, so the plain signature cannot see it.
        let fault = RenameFault { nth_rename: 50, operand: 0, bit: 1 };
        let cfg = PipelineConfig {
            rename_fault: Some(fault),
            ..PipelineConfig::with_itr()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_ne!(pipe.output(), "5050", "rename fault corrupts the result");
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "plain ITR is blind to it");
    }

    #[test]
    fn rename_protection_detects_and_recovers_rename_faults() {
        use crate::config::RenameFault;
        let fault = RenameFault { nth_rename: 50, operand: 0, bit: 1 };
        let cfg = PipelineConfig {
            rename_fault: Some(fault),
            rename_protection: true,
            ..PipelineConfig::with_itr()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050", "extended signature recovers the fault");
        let s = pipe.itr().unwrap().stats();
        assert!(s.mismatches >= 1);
        assert_eq!(s.recoveries, 1);
    }

    #[test]
    fn rename_protection_is_transparent_when_fault_free() {
        let cfg = PipelineConfig { rename_protection: true, ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "5050");
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
    }

    #[test]
    fn checkpoint_opportunities_arise_in_hot_loops() {
        // A workload whose every trace repeats: once the loop trace is
        // confirmed the ITR cache holds no unchecked lines and §2.3
        // checkpoints become possible. (Any resident run-once trace
        // blocks the scheme — the paper's condition is strict.)
        let src = r#"
            main:
                addi r8, r8, 1
                slti r9, r8, 200
                bgtz r9, main
                halt
        "#;
        let cfg = PipelineConfig { checkpoint_min_gap: 50, ..PipelineConfig::with_itr() };
        let (pipe, exit) = run_pipeline(src, cfg);
        assert_eq!(exit, RunExit::Halted);
        assert!(
            pipe.checkpointer().checkpoints_taken() >= 2,
            "took {} checkpoints over {} opportunities",
            pipe.checkpointer().checkpoints_taken(),
            pipe.checkpointer().opportunities()
        );
    }

    #[test]
    fn fp_program_runs_correctly_out_of_order() {
        let src = r#"
            main:
                li r8, 12
                mtc1 r8, f0
                cvt.s.w f0, f0
                li r8, 4
                mtc1 r8, f1
                cvt.s.w f1, f1
                div.s f2, f0, f1
                cvt.w.s f3, f2
                mfc1 r4, f3
                trap 1
                halt
        "#;
        let (pipe, exit) = run_pipeline(src, PipelineConfig::with_itr());
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(pipe.output(), "3");
    }
}
