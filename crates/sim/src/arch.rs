//! Architectural state and commit records.

use std::fmt;

/// Number of architectural registers: 32 integer + 32 FP + the FP
/// condition flag.
pub const NUM_ARCH_REGS: usize = 65;

/// Architectural index of the FP condition flag written by `c.*.s`
/// compares and read by `bc1t`/`bc1f`.
pub const FCC_REG: u16 = 64;

/// Architectural register file: integer registers occupy indices 0..32
/// (index 0 hardwired to zero), FP registers 32..64, and the FCC flag 64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    regs: [u32; NUM_ARCH_REGS],
}

impl ArchState {
    /// Zeroed state starting at `pc`.
    pub fn new(pc: u64) -> ArchState {
        ArchState { pc, regs: [0; NUM_ARCH_REGS] }
    }

    /// Reads an architectural register by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 65`.
    pub fn reg(&self, idx: u16) -> u32 {
        self.regs[idx as usize]
    }

    /// Writes an architectural register; writes to integer register 0 are
    /// discarded.
    pub fn set_reg(&mut self, idx: u16, value: u32) {
        if idx != 0 {
            self.regs[idx as usize] = value;
        }
    }

    /// Reads integer register `rN`.
    pub fn int_reg(&self, n: u8) -> u32 {
        self.regs[n as usize]
    }

    /// Writes integer register `rN` (`r0` stays zero).
    pub fn set_int_reg(&mut self, n: u8, value: u32) {
        self.set_reg(n as u16, value);
    }

    /// Reads FP register `fN` as raw bits.
    pub fn fp_reg(&self, n: u8) -> u32 {
        self.regs[32 + n as usize]
    }

    /// Writes FP register `fN` (raw bits).
    pub fn set_fp_reg(&mut self, n: u8, bits: u32) {
        self.regs[32 + n as usize] = bits;
    }

    /// The FP condition flag.
    pub fn fcc(&self) -> bool {
        self.regs[FCC_REG as usize] != 0
    }

    /// The whole register file, as a flat array (snapshot capture).
    pub fn regs(&self) -> &[u32; NUM_ARCH_REGS] {
        &self.regs
    }
}

/// One committed instruction's architectural effect — the unit of
/// comparison between a golden and a faulty run (§4 of the paper compares
/// committed state to classify silent data corruption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// PC of the committed instruction.
    pub pc: u64,
    /// Destination register and the value written, if any.
    pub dst: Option<(u16, u32)>,
    /// Store effect `(address, size, value)`, if any.
    pub store: Option<(u64, u8, u32)>,
    /// Next architectural PC after this instruction.
    pub next_pc: u64,
}

impl fmt::Display for CommitRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.pc)?;
        if let Some((r, v)) = self.dst {
            write!(f, " r{r}<={v:#x}")?;
        }
        if let Some((a, s, v)) = self.store {
            write!(f, " mem[{a:#x};{s}]<={v:#x}")?;
        }
        write!(f, " ->{:#010x}", self.next_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = ArchState::new(0x400);
        a.set_int_reg(0, 99);
        assert_eq!(a.int_reg(0), 0);
        a.set_reg(0, 99);
        assert_eq!(a.reg(0), 0);
    }

    #[test]
    fn int_and_fp_files_are_disjoint() {
        let mut a = ArchState::new(0);
        a.set_int_reg(5, 10);
        a.set_fp_reg(5, 20);
        assert_eq!(a.int_reg(5), 10);
        assert_eq!(a.fp_reg(5), 20);
    }

    #[test]
    fn fcc_is_reg_64() {
        let mut a = ArchState::new(0);
        assert!(!a.fcc());
        a.set_reg(FCC_REG, 1);
        assert!(a.fcc());
    }

    #[test]
    fn commit_record_display_is_informative() {
        let r = CommitRecord { pc: 0x400, dst: Some((3, 7)), store: None, next_pc: 0x404 };
        let s = r.to_string();
        assert!(s.contains("0x00000400"));
        assert!(s.contains("r3"));
    }
}
