//! Sparse byte-addressable memory.

use itr_isa::Program;
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse little-endian memory backed by 4 KiB pages.
///
/// Reads of unmapped addresses return zero without allocating (so a
/// faulty wild load cannot exhaust memory); writes allocate on demand.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// A memory preloaded with a program's text and data segments.
    pub fn with_program(program: &Program) -> Memory {
        let mut m = Memory::new();
        m.load_program(program);
        m
    }

    /// Copies a program's text and data segments into memory.
    pub fn load_program(&mut self, program: &Program) {
        for (i, word) in program.text().iter().enumerate() {
            self.write_u32(program.text_base() + i as u64 * 4, *word);
        }
        for (i, byte) in program.data().iter().enumerate() {
            self.write_u8(program.data_base() + i as u64, *byte);
        }
    }

    /// Reads one byte (zero if unmapped).
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(page) => page[(addr & (PAGE_SIZE as u64 - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & (PAGE_SIZE as u64 - 1)) as usize] = value;
    }

    /// Reads `size` bytes (1..=4, little-endian) into the low bytes of a
    /// `u32`. `size == 0` reads nothing and returns 0; sizes above 4 are
    /// clamped (a faulty `mem_size` signal cannot read more than a word).
    pub fn read(&self, addr: u64, size: u8) -> u32 {
        let size = size.min(4);
        let mut v = 0u32;
        for i in 0..size as u64 {
            v |= (self.read_u8(addr + i) as u32) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes (1..=4, little-endian) of `value`.
    /// `size == 0` writes nothing; sizes above 4 are clamped.
    pub fn write(&mut self, addr: u64, size: u8, value: u32) {
        let size = size.min(4);
        for i in 0..size as u64 {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Reads an aligned-or-not 32-bit word.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read(addr, 4)
    }

    /// Writes a 32-bit word.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write(addr, 4, value);
    }

    /// Number of resident pages (each 4 KiB).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_zero_and_do_not_allocate() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new();
        m.write_u32(0x1000, 0x1122_3344);
        assert_eq!(m.read_u8(0x1000), 0x44);
        assert_eq!(m.read_u8(0x1003), 0x11);
        assert_eq!(m.read(0x1000, 2), 0x3344);
        assert_eq!(m.read_u32(0x1000), 0x1122_3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        m.write_u32(0x1FFE, 0xAABB_CCDD);
        assert_eq!(m.read_u32(0x1FFE), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_write_preserves_neighbors() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0xFFFF_FFFF);
        m.write(0x101, 1, 0x00);
        assert_eq!(m.read_u32(0x100), 0xFFFF_00FF);
    }

    #[test]
    fn size_zero_and_oversize_are_safe() {
        let mut m = Memory::new();
        m.write(0x100, 0, 0x42);
        assert_eq!(m.read_u32(0x100), 0);
        m.write(0x100, 7, 0x1234_5678);
        assert_eq!(m.read(0x100, 7), 0x1234_5678);
    }

    #[test]
    fn program_loading_places_segments() {
        use itr_isa::asm::assemble;
        let p = assemble(".data\nx: .word 99\n.text\nmain:\n halt\n").unwrap();
        let m = Memory::with_program(&p);
        assert_eq!(m.read_u32(p.symbol("x").unwrap()), 99);
        assert_ne!(m.read_u32(p.text_base()), 0, "halt instruction present");
    }
}
