//! Signal-driven instruction semantics, shared by the functional simulator
//! and the pipeline's execution units.
//!
//! Everything here consumes the [`DecodeSignals`] record rather than the
//! original instruction word. This is the property that makes fault
//! injection faithful: flipping a signal bit changes which registers are
//! read, which operation executes, which address is accessed, whether a
//! branch is verified — exactly the failure modes §4 of the paper studies
//! (wrong-source reads, phantom operands that deadlock, unrepaired
//! mispredictions from a flipped `is_branch`, and plain masked faults).
//!
//! The only value not carried in the signals is the 26-bit target of
//! J-format jumps (Table 2 fixes the `imm` signal at 16 bits); the full
//! target flows from the fetch unit alongside the instruction, mirroring
//! the paper's observation that branch targets are protected by the
//! execution unit's target check rather than by the signature.

use crate::arch::FCC_REG;
use crate::mem::Memory;
use itr_isa::{DecodeSignals, Opcode, SignalFlags};

/// Which register file an operand index names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegFile {
    Int,
    Fp,
    Fcc,
}

fn flat(file: RegFile, idx: u8) -> u16 {
    match file {
        RegFile::Int => idx as u16,
        RegFile::Fp => 32 + idx as u16,
        RegFile::Fcc => FCC_REG,
    }
}

/// Per-opcode operand register files: (src1, src2, dst).
fn files(op: Option<Opcode>) -> (RegFile, RegFile, RegFile) {
    use Opcode::*;
    use RegFile::*;
    match op {
        Some(AddS | SubS | MulS | DivS | SqrtS | AbsS | MovS | NegS | CvtSW | CvtWS) => {
            (Fp, Fp, Fp)
        }
        Some(CEqS | CLtS | CLeS) => (Fp, Fp, Fcc),
        Some(Bc1t | Bc1f) => (Fcc, Int, Int),
        Some(Mfc1) => (Fp, Int, Int),
        Some(Mtc1) => (Int, Int, Fp),
        Some(Lwc1) => (Int, Int, Fp),
        Some(Swc1) => (Int, Fp, Int),
        _ => (Int, Int, Int),
    }
}

/// Which architectural registers an instruction reads and writes,
/// honoring the *possibly faulty* `num_rsrc`/`num_rdst` signals.
///
/// A faulty `num_rsrc` of 3 (no operation has three register sources)
/// produces a *phantom* operand whose tag never becomes ready — the
/// deadlock mechanism the paper's watchdog check exists for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperandPlan {
    /// Flat architectural indices of the register sources actually waited
    /// on and read (unplanned sources read as zero).
    pub srcs: [Option<u16>; 2],
    /// `true` when `num_rsrc == 3`: the instruction waits forever.
    pub phantom_src: bool,
    /// Flat architectural destination (writes to integer `r0` are
    /// suppressed here).
    pub dst: Option<u16>,
}

/// Computes the operand plan for one instruction's decode signals.
pub fn operand_plan(sig: &DecodeSignals) -> OperandPlan {
    let op = sig.opcode_enum();
    let (f1, f2, fd) = files(op);
    let n = sig.num_rsrc;
    let srcs = [(n >= 1).then(|| flat(f1, sig.rsrc1)), (n >= 2).then(|| flat(f2, sig.rsrc2))];
    let dst = if sig.num_rdst >= 1 {
        let d = flat(fd, sig.rdst);
        (d != 0).then_some(d)
    } else {
        None
    };
    OperandPlan { srcs, phantom_src: n == 3, dst }
}

/// Source of load data. [`Memory`] implements it directly; the pipeline
/// wraps memory with a store-queue overlay so in-flight stores forward.
pub trait LoadSource {
    /// Reads `size` little-endian bytes at `addr`.
    fn load(&self, addr: u64, size: u8) -> u32;
}

impl LoadSource for Memory {
    fn load(&self, addr: u64, size: u8) -> u32 {
        self.read(addr, size)
    }
}

/// A store side-effect to be applied when the instruction commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOp {
    /// Byte address.
    pub addr: u64,
    /// Bytes written (already clamped to 0..=4 by [`Memory::write`]).
    pub size: u8,
    /// Little-endian value (low `size` bytes significant).
    pub value: u32,
}

/// A trap side-effect, decoded from the trap code immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapAction {
    /// Terminate the program successfully.
    Halt,
    /// Print the integer argument (`r4`).
    PutInt(u32),
    /// Print the low byte of the argument as a character.
    PutChar(u8),
    /// Abort with the argument as the failure code.
    Abort(u32),
    /// Unknown trap code (possible after a fault): no effect.
    Nop,
}

/// Everything the execution stage produces for one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutput {
    /// Result value for the destination register (0 when none).
    pub value: u32,
    /// Architectural next PC.
    pub next_pc: u64,
    /// `Some(direction)` when this instruction was *verified as a branch*
    /// (its `is_branch` signal is set); `None` means the frontend's
    /// prediction, if any, goes unrepaired.
    pub taken: Option<bool>,
    /// Store to apply at commit.
    pub store: Option<StoreOp>,
    /// Load address and size actually accessed (for D-cache timing).
    pub load: Option<(u64, u8)>,
    /// Trap side-effect to apply at commit.
    pub trap: Option<TrapAction>,
}

/// Inputs to [`execute`].
#[derive(Debug, Clone, Copy)]
pub struct ExecInput<'a> {
    /// The (possibly faulty) decode signals.
    pub sig: &'a DecodeSignals,
    /// The instruction's PC.
    pub pc: u64,
    /// Full direct target for J-format jumps, from the raw instruction
    /// word (see module docs).
    pub raw_jump_target: Option<u64>,
    /// First source value (0 if unplanned).
    pub src1: u32,
    /// Second source value (0 if unplanned).
    pub src2: u32,
}

fn mask32(v: i64) -> u64 {
    (v as u64) & 0xFFFF_FFFF
}

fn branch_target(pc: u64, imm_ext: i64) -> u64 {
    mask32(pc as i64 + 4 + imm_ext * 4)
}

fn mem_addr(src1: u32, imm_ext: i64) -> u64 {
    mask32(src1 as i64 + imm_ext)
}

fn f32_of(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// Executes one instruction from its decode signals.
///
/// `loader` supplies load data (memory, possibly overlaid with in-flight
/// stores). Stores and traps are returned as side-effects for the caller
/// to apply at the architecturally correct time.
pub fn execute(input: ExecInput<'_>, loader: &dyn LoadSource) -> ExecOutput {
    use Opcode::*;
    let sig = input.sig;
    let pc = input.pc;
    let (s1, s2) = (input.src1, input.src2);
    let imm = sig.imm_extended();
    let seq = pc + 4;
    let mut out =
        ExecOutput { value: 0, next_pc: seq, taken: None, store: None, load: None, trap: None };
    let verified_branch = sig.flags.contains(SignalFlags::IS_BRANCH);

    let Some(op) = sig.opcode_enum() else {
        // Undefined opcode after a fault: executes as a NOP (the result
        // write, if the faulty num_rdst requests one, is zero).
        return out;
    };

    match op {
        // ---- shifts (src1 = rt for immediate forms; rt, rs for variable) ----
        Sll => out.value = s1 << sig.shamt,
        Srl => out.value = s1 >> sig.shamt,
        Sra => out.value = ((s1 as i32) >> sig.shamt) as u32,
        Sllv => out.value = s1 << (s2 & 31),
        Srlv => out.value = s1 >> (s2 & 31),
        Srav => out.value = ((s1 as i32) >> (s2 & 31)) as u32,

        // ---- integer ALU ----
        Add => out.value = s1.wrapping_add(s2),
        Sub => out.value = s1.wrapping_sub(s2),
        Mul => out.value = s1.wrapping_mul(s2),
        Div => out.value = (s1 as i32).checked_div(s2 as i32).unwrap_or(0) as u32,
        Rem => out.value = (s1 as i32).checked_rem(s2 as i32).unwrap_or(0) as u32,
        And => out.value = s1 & s2,
        Or => out.value = s1 | s2,
        Xor => out.value = s1 ^ s2,
        Nor => out.value = !(s1 | s2),
        Slt => out.value = ((s1 as i32) < (s2 as i32)) as u32,
        Sltu => out.value = (s1 < s2) as u32,
        Addi => out.value = (s1 as i64).wrapping_add(imm) as u32,
        Slti => out.value = ((s1 as i32 as i64) < imm) as u32,
        Sltiu => out.value = ((s1 as u64) < imm as u64) as u32,
        Andi => out.value = s1 & imm as u32,
        Ori => out.value = s1 | imm as u32,
        Xori => out.value = s1 ^ imm as u32,
        Lui => out.value = (sig.imm as u32) << 16,

        // ---- loads ----
        Lb | Lbu | Lh | Lhu | Lw | Lwc1 => {
            let addr = mem_addr(s1, imm);
            let raw = loader.load(addr, sig.mem_size);
            out.load = Some((addr, sig.mem_size));
            out.value = match op {
                Lb => raw as u8 as i8 as i32 as u32,
                Lbu => raw & 0xFF,
                Lh => raw as u16 as i16 as i32 as u32,
                Lhu => raw & 0xFFFF,
                _ => raw,
            };
        }
        Lwl => {
            // rISA semantics: k = addr & 3; fill bytes [k..4) of the old
            // destination (src2) from memory starting at addr.
            let addr = mem_addr(s1, imm);
            let k = (addr & 3) as u32;
            let nbytes = 4 - k;
            let data = loader.load(addr, nbytes as u8);
            let keep_mask = (1u64 << (8 * k)) - 1;
            out.load = Some((addr, nbytes as u8));
            out.value = ((s2 as u64 & keep_mask) | ((data as u64) << (8 * k))) as u32;
        }
        Lwr => {
            // Fill bytes [0..=k] of the old destination from memory ending
            // at addr.
            let addr = mem_addr(s1, imm);
            let k = (addr & 3) as u32;
            let nbytes = k + 1;
            let base = addr - k as u64;
            let data = loader.load(base, nbytes as u8);
            let fill_mask = if nbytes == 4 { u32::MAX } else { (1u32 << (8 * nbytes)) - 1 };
            out.load = Some((base, nbytes as u8));
            out.value = (s2 & !fill_mask) | (data & fill_mask);
        }

        // ---- stores (src1 = base, src2 = data) ----
        Sb | Sh | Sw | Swc1 => {
            out.store = Some(StoreOp { addr: mem_addr(s1, imm), size: sig.mem_size, value: s2 });
        }
        Swl => {
            let addr = mem_addr(s1, imm);
            let k = (addr & 3) as u32;
            out.store = Some(StoreOp { addr, size: (4 - k) as u8, value: s2 >> (8 * k) });
        }
        Swr => {
            let addr = mem_addr(s1, imm);
            let k = (addr & 3) as u32;
            out.store = Some(StoreOp { addr: addr - k as u64, size: (k + 1) as u8, value: s2 });
        }

        // ---- conditional branches ----
        Beq | Bne | Blez | Bgtz | Bltz | Bgez | Bc1t | Bc1f => {
            let cond = match op {
                Beq => s1 == s2,
                Bne => s1 != s2,
                Blez => (s1 as i32) <= 0,
                Bgtz => (s1 as i32) > 0,
                Bltz => (s1 as i32) < 0,
                Bgez => (s1 as i32) >= 0,
                Bc1t => s1 != 0,
                _ => s1 == 0, // Bc1f
            };
            if verified_branch {
                out.taken = Some(cond);
                out.next_pc = if cond { branch_target(pc, imm) } else { seq };
            }
            // A flipped-off is_branch leaves next_pc sequential and the
            // prediction unverified — the §4 SDC/spc scenario.
        }

        // ---- jumps ----
        J | Jal => {
            if verified_branch {
                out.taken = Some(true);
                out.next_pc = input.raw_jump_target.unwrap_or(seq);
            }
            if op == Jal {
                out.value = seq as u32;
            }
        }
        Jr | Jalr => {
            if verified_branch {
                out.taken = Some(true);
                out.next_pc = mask32(s1 as i64);
            }
            if op == Jalr {
                out.value = seq as u32;
            }
        }

        // ---- floating point ----
        AddS => out.value = (f32_of(s1) + f32_of(s2)).to_bits(),
        SubS => out.value = (f32_of(s1) - f32_of(s2)).to_bits(),
        MulS => out.value = (f32_of(s1) * f32_of(s2)).to_bits(),
        DivS => {
            let d = f32_of(s2);
            out.value = if d == 0.0 { 0 } else { (f32_of(s1) / d).to_bits() };
        }
        SqrtS => {
            let v = f32_of(s1);
            out.value = if v < 0.0 { 0 } else { v.sqrt().to_bits() };
        }
        AbsS => out.value = f32_of(s1).abs().to_bits(),
        NegS => out.value = (-f32_of(s1)).to_bits(),
        MovS | Mfc1 | Mtc1 => out.value = s1,
        CvtSW => out.value = ((s1 as i32) as f32).to_bits(),
        CvtWS => out.value = (f32_of(s1) as i32) as u32,
        CEqS => out.value = (f32_of(s1) == f32_of(s2)) as u32,
        CLtS => out.value = (f32_of(s1) < f32_of(s2)) as u32,
        CLeS => out.value = (f32_of(s1) <= f32_of(s2)) as u32,

        // ---- traps ----
        Trap => {
            out.trap = Some(match sig.imm {
                itr_isa::trap::HALT => TrapAction::Halt,
                itr_isa::trap::PUT_INT => TrapAction::PutInt(s1),
                itr_isa::trap::PUT_CHAR => TrapAction::PutChar(s1 as u8),
                itr_isa::trap::ABORT => TrapAction::Abort(s1),
                _ => TrapAction::Nop,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::Instruction;

    fn sig_of(inst: &Instruction) -> DecodeSignals {
        DecodeSignals::from_instruction(inst)
    }

    fn run(inst: &Instruction, pc: u64, src1: u32, src2: u32) -> ExecOutput {
        let sig = sig_of(inst);
        let mem = Memory::new();
        execute(
            ExecInput { sig: &sig, pc, raw_jump_target: inst.direct_target(pc), src1, src2 },
            &mem,
        )
    }

    #[test]
    fn alu_basics() {
        assert_eq!(run(&Instruction::rrr(Opcode::Add, 1, 2, 3), 0, 5, 7).value, 12);
        assert_eq!(run(&Instruction::rrr(Opcode::Sub, 1, 2, 3), 0, 5, 7).value, (-2i32) as u32);
        assert_eq!(run(&Instruction::rrr(Opcode::Mul, 1, 2, 3), 0, 6, 7).value, 42);
        assert_eq!(run(&Instruction::rrr(Opcode::Div, 1, 2, 3), 0, 42, 6).value, 7);
        assert_eq!(run(&Instruction::rrr(Opcode::Div, 1, 2, 3), 0, 42, 0).value, 0, "div by zero");
        assert_eq!(
            run(&Instruction::rrr(Opcode::Slt, 1, 2, 3), 0, u32::MAX, 1).value,
            1,
            "-1 < 1 signed"
        );
        assert_eq!(run(&Instruction::rrr(Opcode::Sltu, 1, 2, 3), 0, u32::MAX, 1).value, 0);
    }

    #[test]
    fn shifts_use_shamt_signal() {
        assert_eq!(run(&Instruction::shift(Opcode::Sll, 1, 2, 4), 0, 3, 0).value, 48);
        assert_eq!(
            run(&Instruction::shift(Opcode::Sra, 1, 2, 1), 0, (-4i32) as u32, 0).value,
            (-2i32) as u32
        );
    }

    #[test]
    fn immediates_extend_correctly() {
        assert_eq!(run(&Instruction::rri(Opcode::Addi, 1, 2, -3), 0, 10, 0).value, 7);
        assert_eq!(run(&Instruction::rri(Opcode::Ori, 1, 2, 0xF0F0), 0, 0x0F0F, 0).value, 0xFFFF);
        assert_eq!(run(&Instruction::rri(Opcode::Lui, 1, 0, 0x1234), 0, 0, 0).value, 0x1234_0000);
    }

    #[test]
    fn loads_and_extensions() {
        let mut mem = Memory::new();
        mem.write_u32(0x1000, 0xFFFF_FF80);
        let lb = sig_of(&Instruction::mem(Opcode::Lb, 1, 2, 0));
        let out = execute(
            ExecInput { sig: &lb, pc: 0, raw_jump_target: None, src1: 0x1000, src2: 0 },
            &mem,
        );
        assert_eq!(out.value, (-128i32) as u32, "lb sign-extends");
        let lbu = sig_of(&Instruction::mem(Opcode::Lbu, 1, 2, 0));
        let out = execute(
            ExecInput { sig: &lbu, pc: 0, raw_jump_target: None, src1: 0x1000, src2: 0 },
            &mem,
        );
        assert_eq!(out.value, 0x80);
    }

    #[test]
    fn store_produces_side_effect_not_memory_write() {
        let out = run(&Instruction::mem(Opcode::Sw, 9, 8, 4), 0, 0x2000, 0xAB);
        assert_eq!(out.store, Some(StoreOp { addr: 0x2004, size: 4, value: 0xAB }));
    }

    #[test]
    fn lwl_lwr_pair_assembles_unaligned_word() {
        let mut mem = Memory::new();
        for i in 0..8 {
            mem.write_u8(0x1000 + i, 0x10 + i as u8);
        }
        // Unaligned word at 0x1001 = bytes 11,12,13,14.
        let lwr = sig_of(&Instruction::mem(Opcode::Lwr, 1, 2, 0));
        // lwr at addr 0x1003: k=3 → bytes [0..=3] from 0x1000.. wait, base
        // = addr-k = 0x1000; that's the aligned word. Use lwl at 0x1001 to
        // get the upper 3 bytes into [1..4) and lwr at 0x1001+?; simplest
        // checked here: lwl fills [k..4) from addr.
        let lwl = sig_of(&Instruction::mem(Opcode::Lwl, 1, 2, 0));
        let out_l = execute(
            ExecInput { sig: &lwl, pc: 0, raw_jump_target: None, src1: 0x1001, src2: 0 },
            &mem,
        );
        // k=1: bytes[1..4) = mem[0x1001..0x1004] = 11,12,13.
        assert_eq!(out_l.value, 0x1312_1100);
        let out_r = execute(
            ExecInput { sig: &lwr, pc: 0, raw_jump_target: None, src1: 0x1000, src2: out_l.value },
            &mem,
        );
        // k=0: byte[0] = mem[0x1000] = 0x10, upper bytes preserved.
        assert_eq!(out_r.value, 0x1312_1110);
    }

    #[test]
    fn branch_direction_and_target() {
        let beq = Instruction::branch(Opcode::Beq, 1, 2, 3);
        let out = run(&beq, 0x100, 5, 5);
        assert_eq!(out.taken, Some(true));
        assert_eq!(out.next_pc, 0x100 + 4 + 12);
        let out = run(&beq, 0x100, 5, 6);
        assert_eq!(out.taken, Some(false));
        assert_eq!(out.next_pc, 0x104);
    }

    #[test]
    fn flipped_is_branch_leaves_prediction_unverified() {
        let beq = Instruction::branch(Opcode::Beq, 1, 2, 3);
        let mut sig = sig_of(&beq);
        // Clear IS_BRANCH (flags lsb is bit 8; IS_BRANCH is flag bit 3).
        sig = sig.with_bit_flipped(8 + 3);
        let mem = Memory::new();
        let out = execute(
            ExecInput { sig: &sig, pc: 0x100, raw_jump_target: None, src1: 5, src2: 5 },
            &mem,
        );
        assert_eq!(out.taken, None, "no verification");
        assert_eq!(out.next_pc, 0x104, "treated as sequential");
    }

    #[test]
    fn jumps_and_links() {
        let jal = Instruction::jump(Opcode::Jal, 0x400 >> 2);
        let out = run(&jal, 0x100, 0, 0);
        assert_eq!(out.next_pc, 0x400);
        assert_eq!(out.value, 0x104, "link value");
        let jr = Instruction { op: Opcode::Jr, rs: 31, rt: 0, rd: 0, shamt: 0, imm: 0 };
        let out = run(&jr, 0x200, 0x104, 0);
        assert_eq!(out.next_pc, 0x104);
    }

    #[test]
    fn fp_arithmetic() {
        let a = 2.5f32.to_bits();
        let b = 0.5f32.to_bits();
        assert_eq!(
            f32::from_bits(run(&Instruction::rrr(Opcode::AddS, 1, 2, 3), 0, a, b).value),
            3.0
        );
        assert_eq!(
            f32::from_bits(run(&Instruction::rrr(Opcode::MulS, 1, 2, 3), 0, a, b).value),
            1.25
        );
        assert_eq!(
            run(&Instruction { op: Opcode::CLtS, rs: 2, rt: 3, rd: 0, shamt: 0, imm: 0 }, 0, b, a)
                .value,
            1
        );
        let cvt = Instruction { op: Opcode::CvtSW, rs: 1, rt: 0, rd: 2, shamt: 0, imm: 0 };
        assert_eq!(f32::from_bits(run(&cvt, 0, 7, 0).value), 7.0);
    }

    #[test]
    fn trap_actions_decode() {
        let halt = run(&Instruction::trap(itr_isa::trap::HALT), 0, 0, 0);
        assert_eq!(halt.trap, Some(TrapAction::Halt));
        let put = run(&Instruction::trap(itr_isa::trap::PUT_INT), 0, 42, 0);
        assert_eq!(put.trap, Some(TrapAction::PutInt(42)));
    }

    #[test]
    fn undefined_opcode_executes_as_nop() {
        let mut sig = sig_of(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        sig.opcode = 0xFF;
        let mem = Memory::new();
        let out = execute(
            ExecInput { sig: &sig, pc: 0x10, raw_jump_target: None, src1: 5, src2: 7 },
            &mem,
        );
        assert_eq!(out.value, 0);
        assert_eq!(out.next_pc, 0x14);
        assert_eq!(out.store, None);
    }

    #[test]
    fn variable_shifts_mask_to_five_bits() {
        let sllv = Instruction { op: Opcode::Sllv, rs: 3, rt: 2, rd: 1, shamt: 0, imm: 0 };
        assert_eq!(run(&sllv, 0, 1, 33).value, 2, "shift amount taken mod 32");
        let srav = Instruction { op: Opcode::Srav, rs: 3, rt: 2, rd: 1, shamt: 0, imm: 0 };
        assert_eq!(run(&srav, 0, (-8i32) as u32, 2).value, (-2i32) as u32);
    }

    #[test]
    fn rem_and_div_signs() {
        let rem = Instruction::rrr(Opcode::Rem, 1, 2, 3);
        assert_eq!(run(&rem, 0, 7, 3).value, 1);
        assert_eq!(run(&rem, 0, (-7i32) as u32, 3).value, (-1i32) as u32);
        assert_eq!(run(&rem, 0, 7, 0).value, 0, "rem by zero is defined as 0");
        let div = Instruction::rrr(Opcode::Div, 1, 2, 3);
        assert_eq!(run(&div, 0, (-7i32) as u32, 2).value, (-3i32) as u32, "truncating");
        // i32::MIN / -1 overflows in hardware; we define it as 0.
        assert_eq!(run(&div, 0, i32::MIN as u32, u32::MAX).value, 0);
    }

    #[test]
    fn sltiu_compares_against_sign_extended_immediate_as_unsigned() {
        // MIPS quirk preserved: the immediate is NOT sign-extended for
        // sltiu in rISA (IS_SIGNED is clear), so -1 parses as 0xFFFF.
        let i = Instruction::rri(Opcode::Sltiu, 1, 2, 0x00FF);
        assert_eq!(run(&i, 0, 0x0010, 0).value, 1);
        assert_eq!(run(&i, 0, 0x0100, 0).value, 0);
    }

    #[test]
    fn swl_swr_pair_stores_unaligned_word() {
        // swl at addr stores the high bytes, swr the low bytes; together
        // they write a full word at an unaligned address.
        let swl = run(&Instruction::mem(Opcode::Swl, 9, 8, 0), 0, 0x1001, 0xAABBCCDD);
        let st = swl.store.unwrap();
        assert_eq!((st.addr, st.size), (0x1001, 3), "upper 3 bytes at 0x1001");
        assert_eq!(st.value, 0x00AABBCC, "value shifted down by k bytes");
        let swr = run(&Instruction::mem(Opcode::Swr, 9, 8, 0), 0, 0x1000, 0xAABBCCDD);
        let st = swr.store.unwrap();
        assert_eq!((st.addr, st.size), (0x1000, 1), "low byte at the aligned base");
    }

    #[test]
    fn fp_unary_operations() {
        let neg = Instruction { op: Opcode::NegS, rs: 2, rt: 0, rd: 1, shamt: 0, imm: 0 };
        assert_eq!(f32::from_bits(run(&neg, 0, 1.5f32.to_bits(), 0).value), -1.5);
        let abs = Instruction { op: Opcode::AbsS, rs: 2, rt: 0, rd: 1, shamt: 0, imm: 0 };
        assert_eq!(f32::from_bits(run(&abs, 0, (-2.25f32).to_bits(), 0).value), 2.25);
        let sqrt = Instruction { op: Opcode::SqrtS, rs: 2, rt: 0, rd: 1, shamt: 0, imm: 0 };
        assert_eq!(f32::from_bits(run(&sqrt, 0, 9.0f32.to_bits(), 0).value), 3.0);
        assert_eq!(run(&sqrt, 0, (-4.0f32).to_bits(), 0).value, 0, "sqrt of negative is 0");
    }

    #[test]
    fn fp_division_by_zero_is_zero() {
        let div = Instruction::rrr(Opcode::DivS, 1, 2, 3);
        assert_eq!(run(&div, 0, 3.0f32.to_bits(), 0.0f32.to_bits()).value, 0);
    }

    #[test]
    fn cvt_ws_saturates_deterministically() {
        let cvt = Instruction { op: Opcode::CvtWS, rs: 1, rt: 0, rd: 2, shamt: 0, imm: 0 };
        assert_eq!(run(&cvt, 0, 3.99f32.to_bits(), 0).value, 3, "truncates toward zero");
        assert_eq!(run(&cvt, 0, (-3.99f32).to_bits(), 0).value, (-3i32) as u32);
        assert_eq!(run(&cvt, 0, 1e30f32.to_bits(), 0).value, i32::MAX as u32, "saturates");
    }

    #[test]
    fn bltz_bgez_directions() {
        let bltz = Instruction::branch(Opcode::Bltz, 1, 0, 4);
        assert_eq!(run(&bltz, 0x100, (-1i32) as u32, 0).taken, Some(true));
        assert_eq!(run(&bltz, 0x100, 0, 0).taken, Some(false));
        let bgez = Instruction::branch(Opcode::Bgez, 1, 0, 4);
        assert_eq!(run(&bgez, 0x100, 0, 0).taken, Some(true));
        assert_eq!(run(&bgez, 0x100, (-1i32) as u32, 0).taken, Some(false));
    }

    #[test]
    fn bc1_branches_read_fcc() {
        let bc1t = Instruction::branch(Opcode::Bc1t, 0, 0, 2);
        assert_eq!(run(&bc1t, 0x100, 1, 0).taken, Some(true));
        assert_eq!(run(&bc1t, 0x100, 0, 0).taken, Some(false));
        let bc1f = Instruction::branch(Opcode::Bc1f, 0, 0, 2);
        assert_eq!(run(&bc1f, 0x100, 0, 0).taken, Some(true));
    }

    #[test]
    fn faulty_mem_size_truncates_or_extends_access() {
        let mut mem = Memory::new();
        mem.write_u32(0x1000, 0xAABBCCDD);
        // lw with mem_size faulted to 2: only two bytes read.
        let mut sig = sig_of(&Instruction::mem(Opcode::Lw, 1, 2, 0));
        sig.mem_size = 2;
        let out = execute(
            ExecInput { sig: &sig, pc: 0, raw_jump_target: None, src1: 0x1000, src2: 0 },
            &mem,
        );
        assert_eq!(out.value, 0xCCDD, "short read corrupts the upper half");
        // mem_size 0: reads nothing.
        sig.mem_size = 0;
        let out = execute(
            ExecInput { sig: &sig, pc: 0, raw_jump_target: None, src1: 0x1000, src2: 0 },
            &mem,
        );
        assert_eq!(out.value, 0);
    }

    #[test]
    fn faulty_shamt_changes_shift_result() {
        let sig = sig_of(&Instruction::shift(Opcode::Sll, 1, 2, 3));
        let faulty = sig.with_bit_flipped(20); // shamt lsb: 3 -> 2
        let mem = Memory::new();
        let clean =
            execute(ExecInput { sig: &sig, pc: 0, raw_jump_target: None, src1: 1, src2: 0 }, &mem);
        let bad = execute(
            ExecInput { sig: &faulty, pc: 0, raw_jump_target: None, src1: 1, src2: 0 },
            &mem,
        );
        assert_eq!(clean.value, 8);
        assert_eq!(bad.value, 4);
    }

    #[test]
    fn faulty_imm_changes_branch_target() {
        let beq = Instruction::branch(Opcode::Beq, 1, 2, 3);
        let sig = sig_of(&beq);
        let faulty = sig.with_bit_flipped(42); // imm lsb: offset 3 -> 2
        let mem = Memory::new();
        let out = execute(
            ExecInput { sig: &faulty, pc: 0x100, raw_jump_target: None, src1: 5, src2: 5 },
            &mem,
        );
        assert_eq!(out.next_pc, 0x100 + 4 + 8, "taken to the wrong target");
    }

    #[test]
    fn operand_plan_int_fp_and_fcc() {
        let add = operand_plan(&sig_of(&Instruction::rrr(Opcode::Add, 1, 2, 3)));
        assert_eq!(add.srcs, [Some(2), Some(3)]);
        assert_eq!(add.dst, Some(1));
        let adds = operand_plan(&sig_of(&Instruction::rrr(Opcode::AddS, 1, 2, 3)));
        assert_eq!(adds.srcs, [Some(34), Some(35)]);
        assert_eq!(adds.dst, Some(33));
        let cmp = operand_plan(&sig_of(&Instruction {
            op: Opcode::CEqS,
            rs: 2,
            rt: 3,
            rd: 0,
            shamt: 0,
            imm: 0,
        }));
        assert_eq!(cmp.dst, Some(FCC_REG), "compare writes FCC");
        let bc = operand_plan(&sig_of(&Instruction::branch(Opcode::Bc1t, 0, 0, 1)));
        assert_eq!(bc.srcs[0], Some(FCC_REG), "bc1t reads FCC");
    }

    #[test]
    fn operand_plan_r0_dst_is_suppressed() {
        let add = operand_plan(&sig_of(&Instruction::rrr(Opcode::Add, 0, 2, 3)));
        assert_eq!(add.dst, None);
    }

    #[test]
    fn faulty_num_rsrc_three_is_phantom() {
        let mut sig = sig_of(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        sig.num_rsrc = 3;
        let plan = operand_plan(&sig);
        assert!(plan.phantom_src, "deadlock-producing operand");
    }

    #[test]
    fn faulty_rsrc_changes_planned_register() {
        let sig = sig_of(&Instruction::rrr(Opcode::Add, 1, 2, 3));
        // rsrc1 field lsb = 25.
        let faulty = sig.with_bit_flipped(25);
        let plan = operand_plan(&faulty);
        assert_eq!(plan.srcs[0], Some(3), "register 2 became 3");
    }
}
