//! End-to-end pipeline tests: architecture, recovery, and fault studies.

use super::{Pipeline, RunExit};
use crate::config::{DecodeFault, PipelineConfig};
use crate::func::{FuncSim, StopReason};
use itr_isa::asm::assemble;

const SUM_LOOP: &str = r#"
    main:
        li r8, 100
        li r9, 0
    top:
        add r9, r9, r8
        addi r8, r8, -1
        bgtz r8, top
        move r4, r9
        trap 1
        halt
"#;

fn run_pipeline(src: &str, cfg: PipelineConfig) -> (Pipeline, RunExit) {
    let p = assemble(src).expect("assembles");
    let mut pipe = Pipeline::new(&p, cfg);
    let exit = pipe.run(2_000_000);
    (pipe, exit)
}

#[test]
fn sum_loop_halts_with_correct_output() {
    let (pipe, exit) = run_pipeline(SUM_LOOP, PipelineConfig::default());
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert!(pipe.stats().ipc() > 0.5, "ipc = {}", pipe.stats().ipc());
}

#[test]
fn itr_enabled_run_is_architecturally_identical() {
    let (plain, e1) = run_pipeline(SUM_LOOP, PipelineConfig::default());
    let (itr, e2) = run_pipeline(SUM_LOOP, PipelineConfig::with_itr());
    assert_eq!(e1, RunExit::Halted);
    assert_eq!(e2, RunExit::Halted);
    assert_eq!(plain.output(), itr.output());
    let unit = itr.itr().expect("unit present");
    assert_eq!(unit.stats().mismatches, 0, "fault-free run never mismatches");
    assert!(unit.stats().traces_committed > 100);
}

#[test]
fn pipeline_matches_functional_commit_stream() {
    let src = r#"
        .data
        arr: .word 9, 2, 7, 4, 5, 1, 8, 3
        .text
        main:
            la r8, arr
            li r9, 8
            li r10, 0
            li r11, 0
        loop:
            lw r12, 0(r8)
            add r10, r10, r12
            andi r13, r12, 1
            beq r13, r0, skip
            addi r11, r11, 1
        skip:
            sw r10, 0(r8)
            addi r8, r8, 4
            addi r9, r9, -1
            bgtz r9, loop
            halt
    "#;
    let p = assemble(src).unwrap();
    let mut golden = FuncSim::new(&p);
    let (grecs, greason) = golden.run_collect(100_000);
    assert_eq!(greason, StopReason::Halted);

    let mut precs = Vec::new();
    let mut pipe = Pipeline::new(&p, PipelineConfig::with_itr());
    let exit = pipe.run_with(1_000_000, |r| {
        precs.push(*r);
        true
    });
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(precs.len(), grecs.len(), "same dynamic instruction count");
    for (i, (a, b)) in precs.iter().zip(&grecs).enumerate() {
        assert_eq!(a, b, "commit {i} diverged: pipeline {a} vs functional {b}");
    }
}

#[test]
fn indirect_calls_and_returns_work() {
    let src = r#"
        main:
            li r16, 0
            li r17, 5
        call_loop:
            move r4, r17
            jal double
            move r17, r2
            addi r16, r16, 1
            slti r9, r16, 4
            bgtz r9, call_loop
            move r4, r17
            trap 1
            halt
        double:
            add r2, r4, r4
            jr ra
    "#;
    let (pipe, exit) = run_pipeline(src, PipelineConfig::with_itr());
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "80", "5 doubled 4 times");
}

#[test]
fn store_load_forwarding_is_correct() {
    let src = r#"
        .data
        buf: .space 16
        .text
        main:
            la r8, buf
            li r9, 0x1234
            sw r9, 0(r8)
            lw r10, 0(r8)    # must see the in-flight store
            sb r0, 1(r8)
            lw r11, 0(r8)    # partially overwritten
            move r4, r10
            trap 1
            move r4, r11
            trap 1
            halt
    "#;
    let (pipe, exit) = run_pipeline(src, PipelineConfig::default());
    assert_eq!(exit, RunExit::Halted);
    // 0x1234 = bytes [34, 12, 00, 00]; zeroing byte 1 gives 0x0034.
    assert_eq!(pipe.output(), format!("{}{}", 0x1234, 0x0034));
}

#[test]
fn deadlock_fault_is_caught_by_watchdog() {
    // Flip num_rsrc of a loop-body add to 3: phantom operand. num_rsrc
    // field lsb = 58; add has num_rsrc=2 (0b10); flipping bit 58 gives
    // 0b11 = 3.
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 2, bit: 58 }],
        watchdog_cycles: 2_000,
        ..PipelineConfig::default()
    };
    let (_, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Deadlock);
}

#[test]
fn itr_retry_recovers_from_transient_fault() {
    // Inject into a mid-loop instruction after the loop trace has been
    // cached; ITR detects the mismatch at commit and the retry flush
    // re-executes cleanly, so the program output is unaffected.
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 50, bit: 25 }], // rsrc1 bit
        ..PipelineConfig::with_itr()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050", "recovery preserved the result");
    let unit = pipe.itr().unwrap();
    assert!(unit.stats().mismatches >= 1, "fault detected");
    assert_eq!(unit.stats().recoveries, 1, "recovered via retry");
    assert_eq!(unit.stats().machine_checks, 0);
}

#[test]
fn unprotected_pipeline_corrupts_on_the_same_fault() {
    // The same fault without ITR: the wrong-source add corrupts r9.
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_ne!(pipe.output(), "5050", "fault silently corrupted data");
}

#[test]
fn cycle_limit_is_reported() {
    let p = assemble("main:\n j main\n").unwrap();
    let mut pipe = Pipeline::new(&p, PipelineConfig::default());
    assert_eq!(pipe.run(1_000), RunExit::CycleLimit);
}

#[test]
fn commit_callback_can_stop_the_run() {
    let p = assemble(SUM_LOOP).unwrap();
    let mut pipe = Pipeline::new(&p, PipelineConfig::default());
    let mut n = 0;
    let exit = pipe.run_with(1_000_000, |_| {
        n += 1;
        n < 10
    });
    assert_eq!(exit, RunExit::Stopped);
    assert_eq!(n, 10);
}

#[test]
fn redundant_fetch_fallback_runs_cleanly() {
    use itr_core::ItrConfig;
    let cfg = PipelineConfig {
        itr: Some(ItrConfig { redundant_fetch_on_miss: true, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    let s = pipe.stats();
    assert!(s.redundant_verifies > 0, "misses were re-verified");
    assert_eq!(s.redundant_detects, 0, "no faults to catch");
    assert!(s.redundant_fetch_groups > 0);
}

#[test]
fn redundant_fetch_catches_faults_on_first_instance_traces() {
    use itr_core::ItrConfig;
    // Inject into the very first dynamic instance of the program's
    // first trace: plain ITR can only detect this later (the faulty
    // signature enters the cache); the §3 fallback catches it before
    // commit and recovers.
    let faults = vec![DecodeFault { nth_decode: 0, bit: 35 }]; // rdst bit
    let plain = PipelineConfig { faults: faults.clone(), ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(SUM_LOOP, plain);
    assert_eq!(exit, RunExit::Halted);
    assert_ne!(pipe.output(), "5050", "plain ITR misses the cold-trace fault");

    let fallback = PipelineConfig {
        faults,
        itr: Some(ItrConfig { redundant_fetch_on_miss: true, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, fallback);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050", "fallback recovers the cold-trace fault");
    assert!(pipe.stats().redundant_detects >= 1);
}

#[test]
fn same_bit_double_fault_evades_xor_but_not_rotate_xor() {
    use itr_core::{FoldKind, ItrConfig};
    // Two flips of the same signal bit on adjacent instructions of one
    // hot-loop trace instance (SUM_LOOP decodes architecturally until
    // the final mispredict, so iteration 17's add/addi are decodes
    // #53/#54; bit 30 = rsrc2, which corrupts the add but is masked
    // on the addi): the XOR fold cancels (§2.1's documented
    // limitation), the rotate-XOR fold does not.
    let faults =
        vec![DecodeFault { nth_decode: 53, bit: 30 }, DecodeFault { nth_decode: 54, bit: 30 }];
    let xor_cfg = PipelineConfig { faults: faults.clone(), ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(SUM_LOOP, xor_cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "XOR is blind");
    assert_ne!(pipe.output(), "5050", "yet the double fault corrupts");

    let rot_cfg = PipelineConfig {
        faults,
        itr: Some(ItrConfig { fold: FoldKind::RotateXor, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, rot_cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050", "rotate-XOR detects and recovers");
    assert!(pipe.itr().unwrap().stats().mismatches >= 1);
}

#[test]
fn fetch_reorder_fault_evades_xor_but_not_rotate_xor() {
    use itr_core::{FoldKind, ItrConfig};
    // Swap two adjacent non-branch instructions inside the cached hot
    // loop trace: same signal multiset, different order.
    let swap_at = 53u64; // iteration 17's add/addi pair (same trace)
    let xor_cfg = PipelineConfig { swap_fault: Some(swap_at), ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(SUM_LOOP, xor_cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "XOR cannot see a within-trace swap");

    let rot_cfg = PipelineConfig {
        swap_fault: Some(swap_at),
        itr: Some(ItrConfig { fold: FoldKind::RotateXor, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, rot_cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050", "rotate-XOR detects and the retry recovers");
    assert!(pipe.itr().unwrap().stats().mismatches >= 1);
    assert_eq!(pipe.itr().unwrap().stats().recoveries, 1);
}

#[test]
fn tiny_resources_stall_but_never_break() {
    use itr_core::ItrConfig;
    // Starve every queue: a 2-entry ITR ROB, minimal IQ, single-entry
    // LSQ headroom, barely enough physical registers. Dispatch stalls
    // constantly; architecture must be unaffected.
    let cfg = PipelineConfig {
        width: 4,
        issue_width: 2,
        rob_entries: 16, // = max trace length, the legal minimum
        iq_entries: 4,
        lsq_entries: 16,
        phys_regs: 96,
        itr: Some(ItrConfig { rob_entries: 2, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert!(pipe.stats().ipc() < 1.5, "starved machine must be slower");
}

#[test]
fn tiny_itr_rob_with_recovery_still_works() {
    use itr_core::ItrConfig;
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
        itr: Some(ItrConfig { rob_entries: 2, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert_eq!(pipe.itr().unwrap().stats().recoveries, 1);
}

#[test]
fn memory_heavy_kernel_survives_single_lsq_slot() {
    let src = r#"
        .data
        buf: .space 64
        .text
        main:
            la r8, buf
            li r9, 16
        fill:
            sw r9, 0(r8)
            lw r10, 0(r8)
            add r11, r11, r10
            addi r8, r8, 4
            addi r9, r9, -1
            bgtz r9, fill
            move r4, r11
            trap 1
            halt
    "#;
    // The legal minimum LSQ under ITR is one full trace (16); below
    // that the commit interlock can deadlock a fault-free program —
    // see the sizing assertions in Pipeline::new.
    let cfg = PipelineConfig { lsq_entries: 16, ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(src, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "136"); // 16+15+...+1
}

#[test]
#[should_panic(expected = "LSQ must hold a full trace")]
fn undersized_lsq_with_itr_is_rejected() {
    let p = assemble(SUM_LOOP).unwrap();
    let cfg = PipelineConfig { lsq_entries: 4, ..PipelineConfig::with_itr() };
    let _ = Pipeline::new(&p, cfg);
}

#[test]
fn scheduler_fault_corrupts_without_tac() {
    use crate::config::SchedulerFault;
    // The mis-selected instruction reads a stale physical register.
    let cfg = PipelineConfig {
        scheduler_fault: Some(SchedulerFault { nth_issue: 60 }),
        ..PipelineConfig::with_itr()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_ne!(pipe.output(), "5050", "stale read corrupts the sum");
    assert_eq!(
        pipe.itr().unwrap().stats().mismatches,
        0,
        "decode-signal signatures cannot see scheduler faults"
    );
}

#[test]
fn tac_check_detects_and_recovers_scheduler_fault() {
    use crate::config::SchedulerFault;
    let cfg = PipelineConfig {
        scheduler_fault: Some(SchedulerFault { nth_issue: 60 }),
        tac_check: true,
        ..PipelineConfig::with_itr()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050", "TAC recovery preserves the result");
    assert_eq!(pipe.stats().tac_violations, 1);
    assert_eq!(pipe.stats().tac_recoveries, 1);
}

#[test]
fn tac_check_is_silent_fault_free() {
    let cfg = PipelineConfig { tac_check: true, ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert_eq!(pipe.stats().tac_violations, 0);
}

#[test]
fn delayed_itr_cache_reads_preserve_correctness() {
    use itr_core::ItrConfig;
    // A realistic 2-cycle SRAM read: absorbed by the dispatch-to-
    // commit distance, so IPC is essentially unchanged and results
    // identical.
    for latency in [2u32, 8, 40] {
        let cfg = PipelineConfig {
            itr: Some(ItrConfig { cache_read_latency: latency, ..ItrConfig::paper_default() }),
            ..PipelineConfig::default()
        };
        let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
        assert_eq!(exit, RunExit::Halted, "latency {latency}");
        assert_eq!(pipe.output(), "5050", "latency {latency}");
        assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
    }
}

#[test]
fn long_itr_read_latency_stalls_commit_but_stays_correct() {
    use itr_core::ItrConfig;
    let fast = {
        let (pipe, _) = run_pipeline(SUM_LOOP, PipelineConfig::with_itr());
        pipe.stats().ipc()
    };
    let cfg = PipelineConfig {
        itr: Some(ItrConfig { cache_read_latency: 40, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert!(
        pipe.stats().ipc() < fast * 0.8,
        "a 40-cycle read must show in IPC: {} vs {}",
        pipe.stats().ipc(),
        fast
    );
}

#[test]
fn recovery_works_with_delayed_reads() {
    use itr_core::ItrConfig;
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
        itr: Some(ItrConfig { cache_read_latency: 3, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert_eq!(pipe.itr().unwrap().stats().recoveries, 1);
}

#[test]
fn rotate_xor_runs_cleanly_fault_free() {
    use itr_core::{FoldKind, ItrConfig};
    let cfg = PipelineConfig {
        itr: Some(ItrConfig { fold: FoldKind::RotateXor, ..ItrConfig::paper_default() }),
        ..PipelineConfig::default()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
}

#[test]
fn rename_fault_is_invisible_to_plain_itr() {
    use crate::config::RenameFault;
    // Strike the rename map index of a hot-loop source operand: the
    // decode signals are clean, so the plain signature cannot see it.
    let fault = RenameFault { nth_rename: 50, operand: 0, bit: 1 };
    let cfg = PipelineConfig { rename_fault: Some(fault), ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_ne!(pipe.output(), "5050", "rename fault corrupts the result");
    assert_eq!(pipe.itr().unwrap().stats().mismatches, 0, "plain ITR is blind to it");
}

#[test]
fn rename_protection_detects_and_recovers_rename_faults() {
    use crate::config::RenameFault;
    let fault = RenameFault { nth_rename: 50, operand: 0, bit: 1 };
    let cfg = PipelineConfig {
        rename_fault: Some(fault),
        rename_protection: true,
        ..PipelineConfig::with_itr()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050", "extended signature recovers the fault");
    let s = pipe.itr().unwrap().stats();
    assert!(s.mismatches >= 1);
    assert_eq!(s.recoveries, 1);
}

#[test]
fn rename_protection_is_transparent_when_fault_free() {
    let cfg = PipelineConfig { rename_protection: true, ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "5050");
    assert_eq!(pipe.itr().unwrap().stats().mismatches, 0);
}

#[test]
fn checkpoint_opportunities_arise_in_hot_loops() {
    // A workload whose every trace repeats: once the loop trace is
    // confirmed the ITR cache holds no unchecked lines and §2.3
    // checkpoints become possible. (Any resident run-once trace
    // blocks the scheme — the paper's condition is strict.)
    let src = r#"
        main:
            addi r8, r8, 1
            slti r9, r8, 200
            bgtz r9, main
            halt
    "#;
    let cfg = PipelineConfig { checkpoint_min_gap: 50, ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(src, cfg);
    assert_eq!(exit, RunExit::Halted);
    assert!(
        pipe.checkpointer().checkpoints_taken() >= 2,
        "took {} checkpoints over {} opportunities",
        pipe.checkpointer().checkpoints_taken(),
        pipe.checkpointer().opportunities()
    );
}

#[test]
fn bounded_wait_restores_checkpoint_availability_past_a_prologue() {
    // A run-once prologue trace stays unreferenced forever, so the
    // strict §2.3 condition never fires again for the rest of the run.
    // Bounded wait lets the prologue's line age out of the blocking set
    // and checkpoints resume; strict on the same program takes none.
    let src = r#"
        main:
            li r8, 0
            li r10, 0
        loop:
            addi r8, r8, 1
            addi r10, r10, 2
            slti r9, r8, 200
            bgtz r9, loop
            halt
    "#;
    let strict = PipelineConfig { checkpoint_min_gap: 0, ..PipelineConfig::with_itr() };
    let (pipe, exit) = run_pipeline(src, strict);
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.checkpointer().checkpoints_taken(), 0, "prologue blocks strict forever");

    let bounded = PipelineConfig {
        checkpoint_min_gap: 0,
        checkpoint_line_age: Some(32),
        ..PipelineConfig::with_itr()
    };
    let (pipe, exit) = run_pipeline(src, bounded);
    assert_eq!(exit, RunExit::Halted);
    assert!(
        pipe.checkpointer().checkpoints_taken() >= 2,
        "bounded wait took {} checkpoints over {} opportunities",
        pipe.checkpointer().checkpoints_taken(),
        pipe.checkpointer().opportunities()
    );
    assert_eq!(pipe.checkpoint_log().len() as u64, pipe.checkpointer().checkpoints_taken());
}

#[test]
fn fp_program_runs_correctly_out_of_order() {
    let src = r#"
        main:
            li r8, 12
            mtc1 r8, f0
            cvt.s.w f0, f0
            li r8, 4
            mtc1 r8, f1
            cvt.s.w f1, f1
            div.s f2, f0, f1
            cvt.w.s f3, f2
            mfc1 r4, f3
            trap 1
            halt
    "#;
    let (pipe, exit) = run_pipeline(src, PipelineConfig::with_itr());
    assert_eq!(exit, RunExit::Halted);
    assert_eq!(pipe.output(), "3");
}

#[test]
fn stage_trace_records_recovery_post_mortem() {
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
        stage_trace_depth: 64,
        ..PipelineConfig::with_itr()
    };
    let (pipe, exit) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(exit, RunExit::Halted);
    let events: Vec<_> = pipe.stage_trace().collect();
    assert!(
        events.iter().any(|e| e.what == "decode fault injected"),
        "the injection itself is traced"
    );
    assert!(
        events.iter().any(|e| e.what == "ITR retry flush"),
        "the recovery is traced: {events:?}"
    );
}

#[test]
fn stage_trace_is_off_by_default() {
    let cfg = PipelineConfig {
        faults: vec![DecodeFault { nth_decode: 50, bit: 25 }],
        ..PipelineConfig::with_itr()
    };
    let (pipe, _) = run_pipeline(SUM_LOOP, cfg);
    assert_eq!(pipe.stage_trace().count(), 0);
}

#[test]
fn stats_report_exports_pipeline_and_itr_sections() {
    let (pipe, exit) = run_pipeline(SUM_LOOP, PipelineConfig::with_itr());
    assert_eq!(exit, RunExit::Halted);
    let report = pipe.stats_report();
    let stats = pipe.stats();
    assert_eq!(report.counter("pipeline", "committed"), Some(stats.committed));
    assert_eq!(report.counter("pipeline", "cycles"), Some(stats.cycles));
    let itr_stats = pipe.itr().unwrap().stats();
    assert_eq!(report.counter("itr", "traces_committed"), Some(itr_stats.traces_committed));
    assert_eq!(report.counter("itr", "mismatches"), Some(0));
    let commit_width = report.histogram("pipeline", "commit_width").expect("histogram present");
    assert_eq!(commit_width.count, stats.cycles);
    assert_eq!(commit_width.sum, stats.committed);

    // The JSON round-trips through the itr-stats parser.
    let parsed = itr_stats::Report::from_json(&pipe.stats_json()).expect("parses");
    assert_eq!(parsed.counter("pipeline", "committed"), Some(stats.committed));
}
