//! Complete stage: writeback in age order and misprediction repair.
//!
//! Completions mark physical registers ready; a completing branch whose
//! computed target disagrees with its prediction squashes everything
//! younger (rolling back the rename map and the ITR trace-formation
//! state from the [`Uop::itr_snap`] snapshot) and redirects fetch.
//!
//! [`Uop::itr_snap`]: super::window::Uop

use super::stats::Stage;
use super::Pipeline;

impl Pipeline {
    pub(in crate::pipeline) fn complete(&mut self) {
        // Completions in age order; a misprediction squashes everything
        // younger, including any later completions this cycle.
        let completing: Vec<u64> = {
            let mut v: Vec<u64> = self
                .win
                .rob
                .iter()
                .filter(|u| u.issued && !u.done && u.done_cycle <= self.cycle)
                .map(|u| u.seq)
                .collect();
            v.sort_unstable();
            v
        };
        for seq in completing {
            let Some(i) = self.win.idx_checked(seq) else {
                continue; // squashed by an older completion this cycle
            };
            self.win.rob[i].done = true;
            if let Some(d) = self.win.rob[i].dst {
                self.rn.phys_ready[d.phys as usize] = true;
            }
            let u = &self.win.rob[i];
            if u.taken.is_some() && u.next_pc != u.predicted_next {
                self.metrics.inc(self.metrics.mispredicts);
                let pc = u.pc;
                self.metrics.event(self.cycle, Stage::Execute, pc, "mispredict repair");
                self.repair_mispredict(seq);
            }
        }
    }

    fn repair_mispredict(&mut self, branch_seq: u64) {
        // Squash younger than the branch, walking the ROB tail backwards
        // to undo renaming.
        while let Some(u) = self.win.rob.back() {
            if u.seq <= branch_seq {
                break;
            }
            let u = self.win.rob.pop_back().expect("checked non-empty");
            if let Some(d) = u.dst {
                self.rn.undo(d);
            }
        }
        self.win.iq.retain(|&s| s <= branch_seq);
        if let Some(tap) = &mut self.tap {
            tap.record_rewind(self.win.rob.len() as u64);
        }

        let i = self.win.idx(branch_seq);
        let (snap, used_gshare, taken, target, itr_snap) = {
            let u = &self.win.rob[i];
            (u.ghr_snapshot, u.used_gshare, u.taken == Some(true), u.next_pc, u.itr_snap)
        };
        self.fe.redirect(target);
        if used_gshare {
            self.fe.gshare.repair(snap, taken);
        }
        if let (Some(unit), Some(snap)) = (&mut self.itr, itr_snap.as_ref()) {
            unit.restore(snap);
        }
        // Mark the prediction repaired so the uop does not re-trigger.
        self.win.rob[i].predicted_next = target;
    }
}
