//! Decode/rename/dispatch stage: drain the fetch queue into the window.
//!
//! Decode derives the Table-2 signal vector (the point where
//! [`DecodeFault`]s strike), rename maps architectural to physical
//! registers through [`RenameState`], and dispatch allocates the ROB/IQ
//! entries and taps the ITR unit (§2.1/§2.2 of the paper).
//!
//! [`DecodeFault`]: crate::config::DecodeFault

use super::stats::Stage;
use super::window::Uop;
use super::Pipeline;
use crate::config::RenameFault;
use crate::semantics::operand_plan;
use itr_isa::DecodeSignals;
use std::collections::VecDeque;

/// One destination allocation, with what it displaced (for rollback and
/// for the commit-time free of the previous mapping).
#[derive(Debug, Clone, Copy)]
pub(in crate::pipeline) struct DstAlloc {
    pub arch: u16,
    pub phys: u16,
    pub prev: u16,
}

/// Register-rename state: map table, free list, physical register file.
#[derive(Debug)]
pub(in crate::pipeline) struct RenameState {
    /// Architectural → physical map (65 architectural registers).
    pub map: [u16; 65],
    pub free_list: VecDeque<u16>,
    pub phys_val: Vec<u32>,
    pub phys_ready: Vec<bool>,
}

impl RenameState {
    pub fn new(phys_regs: u32) -> RenameState {
        let mut map = [0u16; 65];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as u16;
        }
        let mut phys_val = vec![0u32; phys_regs as usize];
        phys_val[29] = itr_isa::STACK_TOP as u32;
        RenameState {
            map,
            free_list: (65..phys_regs as u16).collect(),
            phys_val,
            phys_ready: vec![true; phys_regs as usize],
        }
    }

    /// Reverts one allocation during a squash (tail-first walk).
    pub fn undo(&mut self, d: DstAlloc) {
        self.map[d.arch as usize] = d.prev;
        self.free_list.push_front(d.phys);
    }
}

/// Encoding of the rename map-table indexes folded into the signature
/// under `rename_protection` (must be identical wherever a signature is
/// (re)generated).
pub(in crate::pipeline) fn rename_extra(src_arch: [Option<u16>; 2], dst_arch: Option<u16>) -> u64 {
    let enc = |o: Option<u16>| o.map_or(0x7F, u64::from);
    (enc(src_arch[0]) | (enc(src_arch[1]) << 7) | (enc(dst_arch) << 14)).rotate_left(23)
}

impl Pipeline {
    pub(in crate::pipeline) fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            if self.fe.queue.is_empty()
                || self.win.rob.len() as u32 >= self.cfg.rob_entries
                || self.win.iq.len() as u32 >= self.cfg.iq_entries
                || self.rn.free_list.is_empty()
            {
                return;
            }
            if let Some(unit) = &self.itr {
                if unit.rob_full() {
                    return;
                }
            }
            if self.win.lsq_used() as u32 >= self.cfg.lsq_entries {
                return;
            }
            // Fetch-reorder fault: swap the next two instruction words
            // (their PCs and predictions keep their slots).
            if let Some(nth) = self.cfg.swap_fault {
                if !self.swap_done
                    && self.metrics.get(self.metrics.decoded) == nth
                    && self.fe.queue.len() >= 2
                {
                    let inst0 = self.fe.queue[0].inst;
                    self.fe.queue[0].inst = self.fe.queue[1].inst;
                    self.fe.queue[1].inst = inst0;
                    self.swap_done = true;
                }
            }
            let f = self.fe.queue.pop_front().expect("checked non-empty");

            // Decode: derive the signal vector, injecting any planned
            // upsets striking this instruction.
            let decoded_so_far = self.metrics.get(self.metrics.decoded);
            let mut sig = DecodeSignals::from_instruction(&f.inst);
            for fault in &self.faults {
                if decoded_so_far == fault.nth_decode {
                    sig = sig.with_bit_flipped(fault.bit);
                    self.metrics.event(self.cycle, Stage::Dispatch, f.pc, "decode fault injected");
                }
            }
            // Multi-cycle faults (stuck-at / intermittent / repeated
            // flips) perturb the packed vector of every struck decode.
            for fault in &self.signal_faults {
                if fault.strikes(decoded_so_far) {
                    let packed = sig.pack();
                    let struck = fault.apply(packed);
                    if struck != packed {
                        sig = DecodeSignals::unpack(struck);
                        self.metrics.event(
                            self.cycle,
                            Stage::Dispatch,
                            f.pc,
                            "signal fault active",
                        );
                    }
                }
            }
            // An armed burst fault strikes the next `len` decodes after
            // the run's first ITR mismatch.
            if let (Some(burst), Some(from)) = (self.cfg.burst_fault, self.burst_from) {
                if decoded_so_far >= from && decoded_so_far < from.saturating_add(burst.len) {
                    sig = sig.with_bit_flipped(burst.bit % 64);
                    self.metrics.event(self.cycle, Stage::Dispatch, f.pc, "burst fault injected");
                }
            }
            self.metrics.inc(self.metrics.decoded);

            // Rename: derive the map-table indexes, strike them with the
            // planned rename fault if this is the chosen instruction.
            let plan = operand_plan(&sig);
            let rename_idx = decoded_so_far;
            let perturb = |arch: u16, operand: u8| -> u16 {
                match self.cfg.rename_fault {
                    Some(RenameFault { nth_rename, operand: o, bit })
                        if nth_rename == rename_idx && o == operand =>
                    {
                        (arch ^ (1 << (bit % 7)) as u16) % 65
                    }
                    _ => arch,
                }
            };
            let src_arch =
                [plan.srcs[0].map(|a| perturb(a, 0)), plan.srcs[1].map(|a| perturb(a, 1))];
            let dst_arch = plan.dst.map(|a| perturb(a, 2)).filter(|&a| a != 0);

            // ITR dispatch tap (§2.1/§2.2), optionally folding the rename
            // indexes actually used (§1 rename-unit extension).
            let extra =
                if self.cfg.rename_protection { rename_extra(src_arch, dst_arch) } else { 0 };
            if let Some(tap) = &mut self.tap {
                tap.record_dispatch(f.pc, &sig, extra);
            }
            let (trace_seq, trace_end) = match &mut self.itr {
                Some(unit) => {
                    let r = unit.on_dispatch_extended(f.pc, &sig, extra);
                    (r.trace_seq, r.trace_end)
                }
                None => (0, false),
            };

            let srcs = src_arch.map(|o| o.map(|arch| self.rn.map[arch as usize]));
            let dst = dst_arch.map(|arch| {
                let phys = self.rn.free_list.pop_front().expect("checked non-empty");
                let prev = self.rn.map[arch as usize];
                self.rn.map[arch as usize] = phys;
                self.rn.phys_ready[phys as usize] = false;
                DstAlloc { arch, phys, prev }
            });

            let seq = self.win.next_seq();
            // Snapshot ITR state after any control-flow-affecting
            // instruction dispatches, for misprediction rollback.
            let may_redirect = f.inst.op.ends_trace();
            let itr_snap =
                if may_redirect { self.itr.as_ref().map(|u| u.snapshot()) } else { None };
            self.win.rob.push_back(Uop {
                seq,
                pc: f.pc,
                inst: f.inst,
                sig,
                srcs,
                phantom: plan.phantom_src,
                dst,
                issued: false,
                done: false,
                done_cycle: 0,
                result: 0,
                next_pc: f.pc + 4,
                taken: None,
                predicted_next: f.predicted_next,
                ghr_snapshot: f.ghr_snapshot,
                used_gshare: f.used_gshare,
                store: None,
                trap: None,
                trace_seq,
                trace_end,
                itr_snap,
            });
            self.win.iq.push(seq);
        }
    }
}
