//! Cycle-level out-of-order superscalar pipeline with embedded ITR support
//! (Figure 5 of the paper).
//!
//! The microarchitecture follows the MIPS-R10K template the paper's
//! simulator models: a fetch unit with BTB + gshare + return-address
//! stack, decode producing the Table-2 signal vector, register renaming
//! through a map table and physical register file, an issue queue with
//! oldest-first select, a store queue with forwarding, a reorder buffer,
//! and in-order commit. The shaded ITR components of Figure 5 — signature
//! generation, ITR ROB, ITR cache, commit interlock, retry recovery — are
//! provided by [`itr_core::ItrUnit`] and wired in at dispatch and commit.
//!
//! Faults are injected by flipping one bit of one instruction's decode
//! signals ([`DecodeFault`]); every downstream stage consumes the signal
//! vector, so the fault propagates exactly as a decode-unit upset would.
//!
//! # Stage modules
//!
//! [`Pipeline`] itself is only the driver: per-stage logic lives in one
//! module per stage, communicating through explicit latch/queue structs:
//!
//! | module       | stage                | state / latch                      |
//! |--------------|----------------------|------------------------------------|
//! | [`frontend`] | fetch/predecode      | `Frontend` (fetch→dispatch queue)  |
//! | [`rename`]   | decode/rename/dispatch | `RenameState` (map + free list)  |
//! | [`issue`]    | select/execute       | picks from `Window::iq`            |
//! | [`execute`]  | writeback/repair     | completes ROB entries              |
//! | [`lsq`]      | store ordering/forwarding | LSQ view over the ROB         |
//! | [`commit`]   | retire + ITR interlock | pops the ROB head                |
//!
//! The shared out-of-order window (ROB + issue queue) is in [`window`];
//! every counter, histogram and post-mortem stage event flows through
//! [`stats`] into the `itr-stats` layer (see [`Pipeline::stats_report`]).

mod commit;
mod execute;
mod frontend;
mod issue;
mod lsq;
mod rename;
mod stats;
mod window;

#[cfg(test)]
mod tests;

pub use stats::{PipelineStats, Stage, StageEvent};

use crate::arch::CommitRecord;
use crate::cache::TimingCache;
use crate::config::{DecodeFault, PipelineConfig, SignalFault};
use crate::mem::Memory;
use frontend::Frontend;
use itr_core::{CoarseCheckpointer, ItrEvent, ItrUnit, SequentialPcChecker, TapStream, Watchdog};
use itr_isa::Program;
use itr_stats::Report;
use rename::RenameState;
use stats::SimMetrics;
use window::Window;

/// Why a pipeline run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// `trap HALT` committed.
    Halted,
    /// `trap ABORT` committed with the given code.
    Aborted(u32),
    /// The ITR unit raised a machine check (§2.2): a faulty trace already
    /// corrupted architectural state.
    MachineCheck {
        /// Start PC of the offending trace.
        start_pc: u64,
    },
    /// The watchdog detected a commit deadlock (§4's `wdog`).
    Deadlock,
    /// The cycle budget ran out.
    CycleLimit,
    /// The caller's commit callback requested a stop.
    Stopped,
}

/// A failed sequential-PC assertion at retirement (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpcViolation {
    /// Cycle of the violating commit.
    pub cycle: u64,
    /// PC of the instruction that failed the check.
    pub pc: u64,
}

/// A §2.3 coarse-grain checkpoint the run actually took: the commit
/// point it covers and how much program output had escaped by then.
/// Checkpoints land at trace-end commits with no unchecked ITR lines
/// resident, so `committed` is always a trace-formation boundary —
/// exactly the resume points [`crate::SimSnapshot`] supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Instructions committed when the checkpoint was taken (the
    /// checkpoint covers the commit-record prefix `[..committed]`).
    pub committed: u64,
    /// Bytes of program output already emitted — output beyond this
    /// point is lost on rollback (recovered-with-output-loss).
    pub output_len: usize,
}

/// The cycle-level pipeline: stage state plus the driver loop.
///
/// Fields are visible to the sibling stage modules (`pub(in
/// crate::pipeline)`) and nowhere else; external code goes through the
/// accessors.
#[derive(Debug)]
pub struct Pipeline {
    pub(in crate::pipeline) cfg: PipelineConfig,
    pub(in crate::pipeline) mem: Memory,
    pub(in crate::pipeline) cycle: u64,

    /// Fetch stage (PC, I-cache, predictors, fetch→dispatch latch).
    pub(in crate::pipeline) fe: Frontend,
    /// Rename stage (map table, free list, physical register file).
    pub(in crate::pipeline) rn: RenameState,
    /// Out-of-order window (ROB + issue queue).
    pub(in crate::pipeline) win: Window,
    pub(in crate::pipeline) dcache: TimingCache,

    // Checks.
    pub(in crate::pipeline) itr: Option<ItrUnit>,
    pub(in crate::pipeline) checkpointer: CoarseCheckpointer,
    pub(in crate::pipeline) checkpoint_log: Vec<CheckpointRecord>,
    pub(in crate::pipeline) itr_events: Vec<(u64, ItrEvent)>,
    pub(in crate::pipeline) spc: SequentialPcChecker,
    pub(in crate::pipeline) spc_violations: Vec<SpcViolation>,
    pub(in crate::pipeline) wdog: Watchdog,

    /// §3 redundant-fetch fallback state: the trace being re-verified and
    /// the cycle its redundant copy completes.
    pub(in crate::pipeline) redundant_verify: Option<(u64, u64)>,
    pub(in crate::pipeline) verified_miss: Option<u64>,

    // Fault injection.
    pub(in crate::pipeline) faults: Vec<DecodeFault>,
    pub(in crate::pipeline) signal_faults: Vec<SignalFault>,
    /// First decode index the armed burst fault strikes (`None` until
    /// the first ITR mismatch surfaces).
    pub(in crate::pipeline) burst_from: Option<u64>,
    pub(in crate::pipeline) swap_done: bool,

    /// `itr-tap/v1` recorder: when enabled, every ITR-relevant dispatch,
    /// retirement and squash is appended here (see [`Pipeline::enable_tap`]).
    pub(in crate::pipeline) tap: Option<TapStream>,

    // Program interface.
    pub(in crate::pipeline) output: String,
    pub(in crate::pipeline) exit: Option<RunExit>,
    pub(in crate::pipeline) metrics: SimMetrics,
}

impl Pipeline {
    /// Loads `program` into a fresh pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no headroom of physical registers.
    pub fn new(program: &Program, cfg: PipelineConfig) -> Pipeline {
        assert!(cfg.phys_regs as usize > 65, "need more physical than architectural registers");
        if let Some(itr) = &cfg.itr {
            // The §2.2 commit interlock stalls every instruction of a
            // trace until its terminating instruction has dispatched and
            // checked. The machine's commit-bound windows must therefore
            // hold at least one full trace, or a fault-free program can
            // interlock-deadlock (e.g. an LSQ smaller than a trace's
            // memory instructions). The paper sizes these implicitly; we
            // enforce the rule.
            assert!(
                cfg.rob_entries >= itr.max_trace_len,
                "ROB must hold a full trace ({} < {})",
                cfg.rob_entries,
                itr.max_trace_len
            );
            assert!(
                cfg.lsq_entries >= itr.max_trace_len,
                "LSQ must hold a full trace of memory instructions ({} < {})",
                cfg.lsq_entries,
                itr.max_trace_len
            );
        }
        Pipeline {
            mem: Memory::with_program(program),
            cycle: 0,
            fe: Frontend::new(&cfg, program.entry()),
            rn: RenameState::new(cfg.phys_regs),
            win: Window::new(),
            dcache: TimingCache::new(cfg.dcache),
            itr: cfg.itr.map(ItrUnit::new),
            checkpointer: CoarseCheckpointer::new(cfg.checkpoint_min_gap),
            checkpoint_log: Vec::new(),
            itr_events: Vec::new(),
            spc: SequentialPcChecker::new(),
            spc_violations: Vec::new(),
            wdog: Watchdog::new(cfg.watchdog_cycles),
            redundant_verify: None,
            verified_miss: None,
            faults: cfg.faults.clone(),
            signal_faults: cfg.signal_faults.clone(),
            burst_from: None,
            swap_done: false,
            tap: None,
            output: String::new(),
            exit: None,
            metrics: SimMetrics::new(cfg.stage_trace_depth),
            cfg,
        }
    }

    /// Runs until program exit or `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        self.run_with(max_cycles, |_| true)
    }

    /// Runs, invoking `on_commit` for every committed instruction; the
    /// callback may return `false` to stop the run (exit
    /// [`RunExit::Stopped`]).
    pub fn run_with<F: FnMut(&CommitRecord) -> bool>(
        &mut self,
        max_cycles: u64,
        mut on_commit: F,
    ) -> RunExit {
        while self.exit.is_none() && self.cycle < max_cycles {
            self.do_cycle(&mut on_commit);
        }
        // CycleLimit is not latched: callers may resume with a larger
        // budget (fault campaigns run in windows).
        self.exit.unwrap_or(RunExit::CycleLimit)
    }

    /// The run's terminal state, if it has reached one.
    pub fn exit(&self) -> Option<RunExit> {
        self.exit
    }

    /// Program text written via `trap PUT_INT`/`PUT_CHAR`.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Pipeline statistics (a point-in-time snapshot).
    pub fn stats(&self) -> PipelineStats {
        self.metrics.snapshot()
    }

    /// The embedded ITR unit, when configured.
    pub fn itr(&self) -> Option<&ItrUnit> {
        self.itr.as_ref()
    }

    /// Mutable access to the ITR unit (for §2.4 cache-fault experiments).
    pub fn itr_mut(&mut self) -> Option<&mut ItrUnit> {
        self.itr.as_mut()
    }

    /// ITR events paired with the cycle they surfaced in.
    pub fn itr_events(&self) -> &[(u64, ItrEvent)] {
        &self.itr_events
    }

    /// Sequential-PC check violations observed at retirement.
    pub fn spc_violations(&self) -> &[SpcViolation] {
        &self.spc_violations
    }

    /// The §2.3 coarse-grain checkpointing tracker (opportunities arise
    /// whenever the ITR cache holds no unchecked lines).
    pub fn checkpointer(&self) -> &CoarseCheckpointer {
        &self.checkpointer
    }

    /// Every checkpoint the run took, in commit order (empty without an
    /// ITR unit — checkpoint safety is defined by the ITR cache).
    pub fn checkpoint_log(&self) -> &[CheckpointRecord] {
        &self.checkpoint_log
    }

    /// Memory contents (e.g. to inspect results after a run).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Starts recording the `itr-tap/v1` stream of this run: every
    /// dispatched instruction's (possibly faulty) decode signals, every
    /// retirement, and every squash, in the exact order the embedded ITR
    /// unit observes them. Replaying the stream through
    /// [`itr_core::replay`] reproduces the unit's report byte for byte.
    pub fn enable_tap(&mut self, workload: &str) {
        self.tap = Some(TapStream::new(workload));
    }

    /// The recorded tap stream so far, when recording is enabled.
    pub fn tap(&self) -> Option<&TapStream> {
        self.tap.as_ref()
    }

    /// Stops recording and takes the stream.
    pub fn take_tap(&mut self) -> Option<TapStream> {
        self.tap.take()
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The post-mortem stage-event trace, oldest first (empty unless
    /// [`PipelineConfig::stage_trace_depth`] is non-zero).
    pub fn stage_trace(&self) -> impl Iterator<Item = &StageEvent> {
        self.metrics.events.iter()
    }

    /// Builds the full `itr-stats/v1` report: the `pipeline` section plus,
    /// when ITR is configured, the `itr` and `itr_cache` sections.
    pub fn stats_report(&self) -> Report {
        let mut report = Report::new();
        self.metrics.export(&mut report);
        if let Some(unit) = &self.itr {
            unit.export(&mut report);
        }
        report
    }

    /// The report as `itr-stats/v1` JSON.
    pub fn stats_json(&self) -> String {
        self.stats_report().to_json()
    }

    /// One machine cycle. Stages run commit-first so a cycle's products
    /// become visible to downstream stages no earlier than the next cycle
    /// (matching the latched hardware the paper models).
    fn do_cycle<F: FnMut(&CommitRecord) -> bool>(&mut self, on_commit: &mut F) {
        if let Some(unit) = &mut self.itr {
            unit.advance(self.cycle);
        }
        let committed_before = self.metrics.get(self.metrics.committed);
        self.commit(on_commit);
        self.metrics
            .commit_width
            .record(self.metrics.get(self.metrics.committed) - committed_before);
        if self.exit.is_none() {
            self.complete();
            self.issue();
            self.dispatch();
            let cycle = self.cycle;
            self.fe.fetch(&self.mem, &self.cfg, &mut self.metrics, cycle);
        }
        if let Some(unit) = &mut self.itr {
            let cycle = self.cycle;
            let drained = unit.drain_events();
            // Arm a planned burst fault on the run's first signature
            // mismatch: the next `len` decodes (in active mode, the
            // refetched trace) are struck.
            if self.cfg.burst_fault.is_some()
                && self.burst_from.is_none()
                && drained.iter().any(|e| matches!(e, ItrEvent::Mismatch { .. }))
            {
                self.burst_from = Some(self.metrics.get(self.metrics.decoded));
            }
            self.itr_events.extend(drained.into_iter().map(|e| (cycle, e)));
        }
        if self.exit.is_none() && self.wdog.expired(self.cycle) {
            self.exit = Some(RunExit::Deadlock);
        }
        self.cycle += 1;
        self.metrics.set(self.metrics.cycles, self.cycle);
        self.metrics.rob_occupancy.record(self.win.rob.len() as u64);
        self.metrics.iq_occupancy.record(self.win.iq.len() as u64);
        self.metrics.fetch_queue_occupancy.record(self.fe.queue.len() as u64);
    }
}
