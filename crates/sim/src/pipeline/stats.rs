//! The pipeline's telemetry: every counter, histogram and stage event
//! flows through [`SimMetrics`] into the `itr-stats` layer.
//!
//! Stages increment typed counter handles (plain vector indexes — no
//! hashing on the cycle path); [`SimMetrics::snapshot`] materializes the
//! public [`PipelineStats`] view, and [`SimMetrics::export`] appends the
//! `pipeline` section of the `itr-stats/v1` JSON report.

use itr_stats::{Counter, Counters, EventRing, Histogram, Report, Unit};

/// Aggregate pipeline statistics (a point-in-time snapshot; every value
/// lives in the `itr-stats` counter registry).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions decoded (includes wrong-path).
    pub decoded: u64,
    /// Branch mispredictions repaired at execute.
    pub mispredicts: u64,
    /// ITR retry flushes performed.
    pub retry_flushes: u64,
    /// I-cache accesses (one per productive fetch cycle).
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache load accesses.
    pub dcache_accesses: u64,
    /// D-cache load misses.
    pub dcache_misses: u64,
    /// Fetch groups spent re-fetching missed traces (§3 fallback).
    pub redundant_fetch_groups: u64,
    /// Missed traces verified by redundant fetch/decode.
    pub redundant_verifies: u64,
    /// Faults caught by the redundant copy (mismatch on re-decode).
    pub redundant_detects: u64,
    /// Instructions issued (issue-order index for scheduler faults).
    pub issued: u64,
    /// TAC issue-order assertion failures (§1 scheduler check).
    pub tac_violations: u64,
    /// Flush-restarts performed by the TAC check.
    pub tac_recoveries: u64,
    /// Sequential-PC check violations raised at commit (§2.5).
    pub spc_violations: u64,
}

impl PipelineStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// A pipeline stage, as tagged on post-mortem trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Fetch/predecode.
    Fetch,
    /// Decode/rename/dispatch.
    Dispatch,
    /// Select/execute.
    Issue,
    /// Writeback/mispredict repair.
    Execute,
    /// Retirement (including the ITR interlock).
    Commit,
}

impl Stage {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Dispatch => "dispatch",
            Stage::Issue => "issue",
            Stage::Execute => "execute",
            Stage::Commit => "commit",
        }
    }
}

/// One recorded stage event — a hardware-style post-mortem trace entry
/// kept in a bounded ring (see [`PipelineConfig::stage_trace_depth`]).
///
/// [`PipelineConfig::stage_trace_depth`]: crate::PipelineConfig::stage_trace_depth
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// Stage that raised it.
    pub stage: Stage,
    /// PC involved.
    pub pc: u64,
    /// What happened.
    pub what: &'static str,
}

/// Counter handles + histograms + event ring for one pipeline instance.
#[derive(Debug)]
pub(in crate::pipeline) struct SimMetrics {
    counters: Counters,
    pub cycles: Counter,
    pub committed: Counter,
    pub decoded: Counter,
    pub mispredicts: Counter,
    pub retry_flushes: Counter,
    pub icache_accesses: Counter,
    pub icache_misses: Counter,
    pub dcache_accesses: Counter,
    pub dcache_misses: Counter,
    pub redundant_fetch_groups: Counter,
    pub redundant_verifies: Counter,
    pub redundant_detects: Counter,
    pub issued: Counter,
    pub tac_violations: Counter,
    pub tac_recoveries: Counter,
    pub spc_violations: Counter,
    /// Instructions committed per cycle (0 on stalled cycles).
    pub commit_width: Histogram,
    /// ROB occupancy sampled every cycle.
    pub rob_occupancy: Histogram,
    /// Issue-queue occupancy sampled every cycle.
    pub iq_occupancy: Histogram,
    /// Fetch-queue occupancy sampled every cycle.
    pub fetch_queue_occupancy: Histogram,
    /// Post-mortem ring of recent notable stage events.
    pub events: EventRing<StageEvent>,
}

impl SimMetrics {
    pub fn new(stage_trace_depth: usize) -> SimMetrics {
        let mut c = Counters::new();
        let cycles = c.register("cycles", Unit::Cycles, "cycles simulated");
        let committed = c.register("committed", Unit::Instructions, "instructions committed");
        let decoded =
            c.register("decoded", Unit::Instructions, "instructions decoded (incl. wrong-path)");
        let mispredicts =
            c.register("mispredicts", Unit::Events, "branch mispredictions repaired at execute");
        let retry_flushes = c.register("retry_flushes", Unit::Events, "ITR retry flushes");
        let icache_accesses =
            c.register("icache_accesses", Unit::Accesses, "I-cache accesses (one per fetch cycle)");
        let icache_misses = c.register("icache_misses", Unit::Accesses, "I-cache misses");
        let dcache_accesses =
            c.register("dcache_accesses", Unit::Accesses, "D-cache load accesses");
        let dcache_misses = c.register("dcache_misses", Unit::Accesses, "D-cache load misses");
        let redundant_fetch_groups = c.register(
            "redundant_fetch_groups",
            Unit::Events,
            "fetch groups spent re-fetching missed traces (§3 fallback)",
        );
        let redundant_verifies = c.register(
            "redundant_verifies",
            Unit::Traces,
            "missed traces verified by redundant fetch/decode",
        );
        let redundant_detects = c.register(
            "redundant_detects",
            Unit::Events,
            "faults caught by the redundant copy (mismatch on re-decode)",
        );
        let issued = c.register("issued", Unit::Instructions, "instructions issued");
        let tac_violations =
            c.register("tac_violations", Unit::Events, "TAC issue-order assertion failures");
        let tac_recoveries =
            c.register("tac_recoveries", Unit::Events, "flush-restarts performed by the TAC check");
        let spc_violations =
            c.register("spc_violations", Unit::Events, "sequential-PC check violations (§2.5)");
        SimMetrics {
            counters: c,
            cycles,
            committed,
            decoded,
            mispredicts,
            retry_flushes,
            icache_accesses,
            icache_misses,
            dcache_accesses,
            dcache_misses,
            redundant_fetch_groups,
            redundant_verifies,
            redundant_detects,
            issued,
            tac_violations,
            tac_recoveries,
            spc_violations,
            commit_width: Histogram::new("commit_width"),
            rob_occupancy: Histogram::new("rob_occupancy"),
            iq_occupancy: Histogram::new("iq_occupancy"),
            fetch_queue_occupancy: Histogram::new("fetch_queue_occupancy"),
            events: EventRing::new(stage_trace_depth),
        }
    }

    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.counters.inc(c);
    }

    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters.add(c, n);
    }

    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.counters.set(c, v);
    }

    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters.get(c)
    }

    /// Records a notable stage event in the post-mortem ring (no-op when
    /// the ring depth is 0).
    #[inline]
    pub fn event(&mut self, cycle: u64, stage: Stage, pc: u64, what: &'static str) {
        self.events.push(StageEvent { cycle, stage, pc, what });
    }

    /// Point-in-time [`PipelineStats`] view.
    pub fn snapshot(&self) -> PipelineStats {
        PipelineStats {
            cycles: self.get(self.cycles),
            committed: self.get(self.committed),
            decoded: self.get(self.decoded),
            mispredicts: self.get(self.mispredicts),
            retry_flushes: self.get(self.retry_flushes),
            icache_accesses: self.get(self.icache_accesses),
            icache_misses: self.get(self.icache_misses),
            dcache_accesses: self.get(self.dcache_accesses),
            dcache_misses: self.get(self.dcache_misses),
            redundant_fetch_groups: self.get(self.redundant_fetch_groups),
            redundant_verifies: self.get(self.redundant_verifies),
            redundant_detects: self.get(self.redundant_detects),
            issued: self.get(self.issued),
            tac_violations: self.get(self.tac_violations),
            tac_recoveries: self.get(self.tac_recoveries),
            spc_violations: self.get(self.spc_violations),
        }
    }

    /// Appends the `pipeline` section to a report.
    pub fn export(&self, report: &mut Report) {
        report.push_section(
            "pipeline",
            &self.counters,
            &[
                self.commit_width.snapshot(),
                self.rob_occupancy.snapshot(),
                self.iq_occupancy.snapshot(),
                self.fetch_queue_occupancy.snapshot(),
            ],
        );
    }
}
