//! Load/store queue view: in-flight store ordering and forwarding.
//!
//! The machine models its LSQ as a view over the ROB (capacity enforced
//! at dispatch): loads may not issue past incomplete older stores, and
//! an issuing load reads memory through [`OverlayLoader`], which overlays
//! the values of completed-but-uncommitted older stores on the committed
//! memory image — store-to-load forwarding with byte granularity.

use super::window::Window;
use crate::mem::Memory;
use crate::semantics::{LoadSource, StoreOp};

/// Committed memory overlaid with in-flight older stores.
pub(in crate::pipeline) struct OverlayLoader<'a> {
    pub mem: &'a Memory,
    pub stores: Vec<StoreOp>,
}

impl LoadSource for OverlayLoader<'_> {
    fn load(&self, addr: u64, size: u8) -> u32 {
        let size = size.min(4) as u64;
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate().take(size as usize) {
            *b = self.mem.read_u8(addr + i as u64);
        }
        for s in &self.stores {
            for j in 0..s.size.min(4) as u64 {
                let a = s.addr + j;
                if a >= addr && a < addr + size {
                    bytes[(a - addr) as usize] = (s.value >> (8 * j)) as u8;
                }
            }
        }
        u32::from_le_bytes(bytes)
    }
}

impl Window {
    /// `true` when every store older than `seq` has issued (computed its
    /// address and value) — the condition for a load at `seq` to issue.
    pub fn older_stores_done(&self, seq: u64) -> bool {
        self.rob.iter().take_while(|u| u.seq < seq).all(|u| !u.is_store() || u.issued)
    }

    /// The store operations older than `seq`, oldest first, for
    /// forwarding into an issuing load.
    pub fn collect_older_stores(&self, seq: u64) -> Vec<StoreOp> {
        self.rob
            .iter()
            .take_while(|u| u.seq < seq)
            .filter_map(|u| if u.is_store() { u.store } else { None })
            .collect()
    }
}
