//! Commit stage: the ITR commit interlock (§2.2), the §3 redundant-fetch
//! fallback, the sequential-PC check (§2.5), and architectural retirement.
//!
//! Commit is where faults become irreversible, so every check gates it:
//! the interlock stalls a trace until its signature is confirmed, a
//! mismatch triggers a retry flush (or a machine check if state already
//! escaped), and only then do stores reach memory and traps take effect.

use super::rename::rename_extra;
use super::stats::Stage;
use super::{Pipeline, RunExit, SpcViolation};
use crate::arch::CommitRecord;
use crate::semantics::{operand_plan, TrapAction};
use itr_core::CommitAction;
use itr_isa::{decode, DecodeSignals, Opcode, SignalFlags};

impl Pipeline {
    /// Squashes the entire window and restarts fetch at `restart_pc`
    /// (ITR retry, TAC recovery, redundant-fetch detect).
    pub(in crate::pipeline) fn full_flush_to(&mut self, restart_pc: u64) {
        while let Some(u) = self.win.rob.pop_back() {
            if let Some(d) = u.dst {
                self.rn.undo(d);
            }
        }
        self.win.iq.clear();
        self.fe.redirect(restart_pc);
        self.spc.reseed(restart_pc);
    }

    /// Re-decodes the static trace at `start_pc` straight from memory —
    /// the redundant copy of the §3 fallback. Returns its signature
    /// (ground truth under a single-event-upset model: the second fetch
    /// and decode are fault-free) and its instruction count.
    fn redecode_trace(&self, start_pc: u64, max_len: u32) -> Option<(u64, u32)> {
        let fold = self.itr.as_ref().map(|u| u.config().fold).unwrap_or_default();
        let mut builder = itr_core::TraceBuilder::with_kind(max_len, fold);
        let mut pc = start_pc;
        for _ in 0..max_len {
            let inst = decode(self.mem.read_u32(pc)).ok()?;
            let sig = DecodeSignals::from_instruction(&inst);
            let extra = if self.cfg.rename_protection {
                let plan = operand_plan(&sig);
                rename_extra(plan.srcs, plan.dst)
            } else {
                0
            };
            if let Some(t) = builder.push_with_extra(pc, &sig, extra) {
                return Some((t.signature, t.len));
            }
            pc += 4;
        }
        None
    }

    /// §3 fallback: before any instruction of a missed trace commits,
    /// re-fetch and re-decode the trace and compare the two copies.
    /// Returns `true` if commit must stall this cycle.
    fn redundant_verify_stall(&mut self, trace_seq: u64) -> bool {
        let Some(unit) = &self.itr else { return false };
        if !unit.config().redundant_fetch_on_miss {
            return false;
        }
        if self.verified_miss == Some(trace_seq) {
            return false;
        }
        let Some(entry) = unit.rob_entry(trace_seq) else { return false };
        if entry.state != itr_core::ControlState::Miss {
            return false;
        }
        let (start_pc, len, in_flight_sig) = (entry.start_pc, entry.len, entry.signature);
        let max_len = unit.config().max_trace_len;
        match self.redundant_verify {
            None => {
                // Launch the redundant fetch: frontend depth plus one
                // fetch group per `width` instructions.
                let groups = (len as u64).div_ceil(self.cfg.width as u64);
                self.metrics.add(self.metrics.redundant_fetch_groups, groups);
                self.redundant_verify = Some((trace_seq, self.cycle + 6 + groups));
                true
            }
            Some((seq, done)) if seq == trace_seq => {
                if self.cycle < done {
                    return true;
                }
                self.redundant_verify = None;
                self.metrics.inc(self.metrics.redundant_verifies);
                let clean = self.redecode_trace(start_pc, max_len);
                if clean.map(|(sig, _)| sig) == Some(in_flight_sig) {
                    self.verified_miss = Some(trace_seq);
                    false
                } else {
                    // The in-flight copy is faulty: flush before anything
                    // commits and refetch, exactly like an ITR retry.
                    self.metrics.inc(self.metrics.redundant_detects);
                    self.metrics.inc(self.metrics.retry_flushes);
                    self.metrics.event(
                        self.cycle,
                        Stage::Commit,
                        start_pc,
                        "redundant-fetch detect",
                    );
                    if let Some(tap) = &mut self.tap {
                        tap.record_retry_flush(start_pc);
                    }
                    self.itr.as_mut().expect("checked").on_retry_flush(start_pc);
                    self.full_flush_to(start_pc);
                    true
                }
            }
            Some(_) => {
                // A stale verify for a squashed trace: restart.
                self.redundant_verify = None;
                true
            }
        }
    }

    pub(in crate::pipeline) fn commit<F: FnMut(&CommitRecord) -> bool>(
        &mut self,
        on_commit: &mut F,
    ) {
        for _ in 0..self.cfg.width {
            if self.win.rob.front().is_none() {
                return;
            }

            // ITR commit interlock (§2.2). Consulted before the completion
            // check: a retry can rescue a deadlocked trace (ITR+wdog+R).
            if self.itr.is_some() {
                let trace_seq = self.win.rob.front().expect("checked").trace_seq;
                let action = self.itr.as_ref().expect("checked").commit_action(trace_seq);
                match action {
                    CommitAction::Proceed => {}
                    CommitAction::Stall => return,
                    CommitAction::Retry { start_pc } => {
                        self.metrics.inc(self.metrics.retry_flushes);
                        self.metrics.event(self.cycle, Stage::Commit, start_pc, "ITR retry flush");
                        if let Some(tap) = &mut self.tap {
                            tap.record_retry_flush(start_pc);
                        }
                        self.itr.as_mut().expect("checked").on_retry_flush(start_pc);
                        self.full_flush_to(start_pc);
                        return;
                    }
                    CommitAction::MachineCheck { start_pc } => {
                        self.metrics.event(self.cycle, Stage::Commit, start_pc, "machine check");
                        if let Some(tap) = &mut self.tap {
                            tap.record_machine_check(start_pc);
                        }
                        self.itr.as_mut().expect("checked").on_machine_check(start_pc);
                        self.exit = Some(RunExit::MachineCheck { start_pc });
                        return;
                    }
                }
            }

            if self.itr.is_some() {
                let trace_seq = self.win.rob.front().expect("checked").trace_seq;
                if self.redundant_verify_stall(trace_seq) {
                    return;
                }
            }

            if !self.win.rob.front().expect("checked").done {
                return;
            }
            let u = self.win.rob.pop_front().expect("checked");
            self.win.head_seq = u.seq + 1;
            if let Some(tap) = &mut self.tap {
                tap.record_commit();
            }

            // Sequential-PC check (§2.5).
            if self.cfg.spc_check {
                let is_branch_flag = u.sig.flags.contains(SignalFlags::IS_BRANCH);
                if !self.spc.check_and_advance(u.pc, is_branch_flag, u.next_pc) {
                    self.metrics.event(self.cycle, Stage::Commit, u.pc, "sequential-PC violation");
                    self.metrics.inc(self.metrics.spc_violations);
                    self.spc_violations.push(SpcViolation { cycle: self.cycle, pc: u.pc });
                }
            }

            // Architectural effects.
            let mut record = CommitRecord { pc: u.pc, dst: None, store: None, next_pc: u.next_pc };
            if let Some(d) = u.dst {
                record.dst = Some((d.arch, u.result));
                self.rn.free_list.push_back(d.prev);
            }
            if let Some(s) = u.store {
                self.mem.write(s.addr, s.size, s.value);
                record.store = Some((s.addr, s.size, s.value));
            }
            match u.trap {
                Some(TrapAction::Halt) => self.exit = Some(RunExit::Halted),
                Some(TrapAction::Abort(code)) => self.exit = Some(RunExit::Aborted(code)),
                Some(TrapAction::PutInt(v)) => self.output.push_str(&(v as i32).to_string()),
                Some(TrapAction::PutChar(c)) => self.output.push(c as char),
                Some(TrapAction::Nop) | None => {}
            }

            // Predictor training.
            if u.used_gshare {
                if let Some(taken) = u.taken {
                    self.fe.gshare.train(u.pc, u.ghr_snapshot, taken);
                }
            }
            if matches!(u.inst.op, Opcode::Jr | Opcode::Jalr) && u.taken == Some(true) {
                self.fe.btb.update(u.pc, u.next_pc);
            }

            self.wdog.pet(self.cycle);
            self.metrics.inc(self.metrics.committed);
            if u.trace_end {
                if let Some(unit) = &mut self.itr {
                    unit.on_trace_end_commit(u.trace_seq);
                    // §2.3: a coarse-grain checkpoint is safe whenever no
                    // unchecked (unreferenced) lines are resident. Under
                    // bounded wait only *young* unreferenced lines block;
                    // aged-out lines (run-once prologues) no longer do.
                    let committed = self.metrics.get(self.metrics.committed);
                    let blocking = match self.cfg.checkpoint_line_age {
                        None => unit.cache().unreferenced_count(),
                        Some(age) => unit.cache().unreferenced_young_count(age),
                    };
                    if self.checkpointer.observe(blocking, committed) {
                        self.checkpoint_log.push(super::CheckpointRecord {
                            committed,
                            output_len: self.output.len(),
                        });
                    }
                }
            }
            if !on_commit(&record) {
                self.exit = Some(RunExit::Stopped);
                return;
            }
            if self.exit.is_some() {
                return;
            }
        }
    }
}
