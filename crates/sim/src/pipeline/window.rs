//! The out-of-order window: reorder buffer and issue queue.
//!
//! [`Window`] is the dispatch→issue→complete→commit queue structure:
//! dispatch pushes [`Uop`]s at the tail, issue picks from [`Window::iq`],
//! commit pops from the head. Sequence numbers are global and monotonic;
//! `head_seq` maps them to ROB indexes.

use super::rename::DstAlloc;
use crate::semantics::{StoreOp, TrapAction};
use itr_core::ItrSnapshot;
use itr_isa::{DecodeSignals, Instruction};
use std::collections::VecDeque;

/// One in-flight instruction (ROB entry).
#[derive(Debug, Clone)]
pub(in crate::pipeline) struct Uop {
    pub seq: u64,
    pub pc: u64,
    pub inst: Instruction,
    pub sig: DecodeSignals,
    /// Physical source tags.
    pub srcs: [Option<u16>; 2],
    /// A decode fault invented an operand that cannot become ready.
    pub phantom: bool,
    pub dst: Option<DstAlloc>,
    pub issued: bool,
    pub done: bool,
    pub done_cycle: u64,
    pub result: u32,
    pub next_pc: u64,
    pub taken: Option<bool>,
    pub predicted_next: u64,
    pub ghr_snapshot: u32,
    pub used_gshare: bool,
    pub store: Option<StoreOp>,
    pub trap: Option<TrapAction>,
    pub trace_seq: u64,
    pub trace_end: bool,
    pub itr_snap: Option<ItrSnapshot>,
}

impl Uop {
    pub fn is_load(&self) -> bool {
        self.sig.opcode_enum().map(|o| o.is_load()).unwrap_or(false)
    }

    pub fn is_store(&self) -> bool {
        self.sig.opcode_enum().map(|o| o.is_store()).unwrap_or(false)
    }
}

/// The ROB + issue queue pair.
#[derive(Debug, Default)]
pub(in crate::pipeline) struct Window {
    pub rob: VecDeque<Uop>,
    /// Sequence number of the ROB head (commit point).
    pub head_seq: u64,
    /// Sequence numbers of dispatched-not-yet-issued instructions.
    pub iq: Vec<u64>,
}

impl Window {
    pub fn new() -> Window {
        Window::default()
    }

    /// ROB index of a live sequence number.
    pub fn idx(&self, seq: u64) -> usize {
        (seq - self.head_seq) as usize
    }

    /// ROB index, or `None` if the entry was squashed or committed.
    pub fn idx_checked(&self, seq: u64) -> Option<usize> {
        let off = seq.checked_sub(self.head_seq)?;
        ((off as usize) < self.rob.len()).then_some(off as usize)
    }

    /// Sequence number the next dispatched instruction will get.
    pub fn next_seq(&self) -> u64 {
        self.head_seq + self.rob.len() as u64
    }

    /// In-flight loads + stores (the LSQ occupancy).
    pub fn lsq_used(&self) -> usize {
        self.rob.iter().filter(|u| u.is_load() || u.is_store()).count()
    }
}
