//! Fetch stage: I-cache timing, branch prediction (BTB + gshare + RAS),
//! and predecode into the fetch queue.
//!
//! The stage's output latch is [`Frontend::queue`], a bounded queue of
//! [`Fetched`] slots the dispatch stage drains; no other frontend state
//! is visible downstream. Redirects (mispredict repair, flush-restart)
//! come back through [`Frontend::redirect`].

use super::stats::{SimMetrics, Stage};
use crate::branch::{Btb, Gshare, ReturnStack};
use crate::cache::TimingCache;
use crate::config::PipelineConfig;
use crate::mem::Memory;
use itr_isa::{decode, Instruction, Opcode};
use std::collections::VecDeque;

/// One predecoded instruction: the fetch→dispatch latch entry.
#[derive(Debug, Clone, Copy)]
pub(in crate::pipeline) struct Fetched {
    pub pc: u64,
    pub inst: Instruction,
    pub predicted_next: u64,
    pub ghr_snapshot: u32,
    pub used_gshare: bool,
}

/// Fetch-stage state: PC, I-cache, predictors, and the output queue.
#[derive(Debug)]
pub(in crate::pipeline) struct Frontend {
    pub fetch_pc: u64,
    pub icache: TimingCache,
    pub icache_stall: u32,
    /// The fetch→dispatch latch.
    pub queue: VecDeque<Fetched>,
    /// Set on an un-decodable word (wild fetch); cleared by a redirect.
    pub halted: bool,
    pub gshare: Gshare,
    pub btb: Btb,
    pub ras: ReturnStack,
}

impl Frontend {
    pub fn new(cfg: &PipelineConfig, entry: u64) -> Frontend {
        Frontend {
            fetch_pc: entry,
            icache: TimingCache::new(cfg.icache),
            icache_stall: 0,
            queue: VecDeque::new(),
            halted: false,
            gshare: Gshare::new(cfg.gshare_bits),
            btb: Btb::new(cfg.btb_entries),
            ras: ReturnStack::new(cfg.ras_entries as usize),
        }
    }

    /// Steers fetch to `pc`, discarding everything in flight in the
    /// stage (used by mispredict repair and full flushes).
    pub fn redirect(&mut self, pc: u64) {
        self.queue.clear();
        self.halted = false;
        self.icache_stall = 0;
        self.fetch_pc = pc;
    }

    fn predecode(&mut self, pc: u64, inst: Instruction) -> Fetched {
        let ghr_snapshot = self.gshare.history();
        let mut used_gshare = false;
        let predicted_next = match inst.op {
            op if op.is_cond_branch() => {
                used_gshare = true;
                let taken = self.gshare.predict_and_update_history(pc);
                if taken {
                    inst.direct_target(pc).unwrap_or(pc + 4)
                } else {
                    pc + 4
                }
            }
            Opcode::J => inst.direct_target(pc).unwrap_or(pc + 4),
            Opcode::Jal => {
                self.ras.push(pc + 4);
                inst.direct_target(pc).unwrap_or(pc + 4)
            }
            Opcode::Jr => {
                if inst.rs == 31 {
                    self.ras.pop().unwrap_or(pc + 4)
                } else {
                    self.btb.lookup(pc).unwrap_or(pc + 4)
                }
            }
            Opcode::Jalr => {
                self.ras.push(pc + 4);
                self.btb.lookup(pc).unwrap_or(pc + 4)
            }
            _ => pc + 4,
        };
        Fetched { pc, inst, predicted_next, ghr_snapshot, used_gshare }
    }

    /// One fetch cycle: up to `width` instructions from one cache line,
    /// ending early at a predicted-taken redirect or line boundary.
    pub fn fetch(
        &mut self,
        mem: &Memory,
        cfg: &PipelineConfig,
        metrics: &mut SimMetrics,
        cycle: u64,
    ) {
        if self.halted {
            return;
        }
        if self.icache_stall > 0 {
            self.icache_stall -= 1;
            return;
        }
        if self.queue.len() as u32 >= cfg.fetch_queue {
            return;
        }
        // One I-cache access per productive fetch cycle (the unit of the
        // §5 energy accounting).
        let hit = self.icache.access(self.fetch_pc);
        metrics.inc(metrics.icache_accesses);
        if !hit {
            metrics.inc(metrics.icache_misses);
            self.icache_stall = cfg.icache_miss_penalty;
            return;
        }
        for _ in 0..cfg.width {
            if self.queue.len() as u32 >= cfg.fetch_queue {
                break;
            }
            let pc = self.fetch_pc;
            let word = mem.read_u32(pc);
            let Ok(inst) = decode(word) else {
                // Un-decodable word (wild fetch): stall until a redirect.
                self.halted = true;
                metrics.event(cycle, Stage::Fetch, pc, "undecodable word; fetch halted");
                break;
            };
            let fetched = self.predecode(pc, inst);
            let next = fetched.predicted_next;
            self.queue.push_back(fetched);
            self.fetch_pc = next;
            if next != pc + 4 {
                break; // predicted-taken redirect ends the fetch group
            }
            if !self.icache.same_line(pc, next) {
                break; // next instruction sits in a different cache line
            }
        }
    }
}
