//! Issue stage: oldest-first select among ready instructions, the TAC
//! issue-order assertion (§1), and execution proper.
//!
//! Selected instructions execute immediately with a latency assigned
//! from their signal-vector latency class (plus D-cache misses); results
//! land back in the ROB entry and the physical register file, becoming
//! visible at the entry's `done_cycle` (the complete stage's input).

use super::lsq::OverlayLoader;
use super::stats::Stage;
use super::window::Uop;
use super::Pipeline;
use crate::config::SchedulerFault;
use crate::semantics::{execute, ExecInput};

impl Pipeline {
    fn srcs_ready(&self, u: &Uop) -> bool {
        !u.phantom && u.srcs.iter().flatten().all(|&p| self.rn.phys_ready[p as usize])
    }

    pub(in crate::pipeline) fn issue(&mut self) {
        // Oldest-first select among ready instructions.
        let mut candidates: Vec<u64> = self
            .win
            .iq
            .iter()
            .copied()
            .filter(|&seq| {
                let u = &self.win.rob[self.win.idx(seq)];
                self.srcs_ready(u) && (!u.is_load() || self.win.older_stores_done(seq))
            })
            .collect();
        candidates.sort_unstable();
        candidates.truncate(self.cfg.issue_width as usize);

        // Scheduler fault: at the chosen issue index the select logic
        // wrongly grabs the oldest not-ready instruction instead.
        if let Some(SchedulerFault { nth_issue }) = self.cfg.scheduler_fault {
            let issued_so_far = self.metrics.get(self.metrics.issued);
            let in_window = issued_so_far <= nth_issue
                && nth_issue < issued_so_far + candidates.len().max(1) as u64;
            if in_window {
                let victim = self
                    .win
                    .iq
                    .iter()
                    .copied()
                    .filter(|&seq| {
                        let u = &self.win.rob[self.win.idx(seq)];
                        !u.phantom && !self.srcs_ready(u) && !u.is_load() && !u.is_store()
                    })
                    .min();
                if let Some(v) = victim {
                    let slot = (nth_issue - issued_so_far) as usize;
                    if slot < candidates.len() {
                        candidates[slot] = v;
                    } else {
                        candidates.push(v);
                    }
                    candidates.sort_unstable();
                    candidates.dedup();
                }
            }
        }

        for seq in candidates {
            let Some(i) = self.win.idx_checked(seq) else { continue };
            self.metrics.inc(self.metrics.issued);
            // TAC-style issue-order assertion (§1): the sources of an
            // issuing instruction must be ready. A violation means the
            // select logic mis-fired; squash from the offender and
            // restart (its re-execution issues correctly).
            if self.cfg.tac_check && !self.srcs_ready(&self.win.rob[i]) {
                self.metrics.inc(self.metrics.tac_violations);
                self.metrics.inc(self.metrics.tac_recoveries);
                let restart_pc = self.win.rob[i].pc;
                self.metrics.event(
                    self.cycle,
                    Stage::Issue,
                    restart_pc,
                    "TAC violation; flush-restart",
                );
                if let Some(tap) = &mut self.tap {
                    tap.record_full_flush();
                }
                if let Some(unit) = &mut self.itr {
                    unit.on_full_flush();
                }
                self.full_flush_to(restart_pc);
                return;
            }
            let u = &self.win.rob[i];
            let src = |o: Option<u16>| o.map_or(0, |p| self.rn.phys_val[p as usize]);
            let input = ExecInput {
                sig: &u.sig,
                pc: u.pc,
                raw_jump_target: u.inst.direct_target(u.pc),
                src1: src(u.srcs[0]),
                src2: src(u.srcs[1]),
            };
            let out = if u.is_load() {
                let overlay =
                    OverlayLoader { mem: &self.mem, stores: self.win.collect_older_stores(seq) };
                execute(input, &overlay)
            } else {
                execute(input, &self.mem)
            };

            let mut latency = u.sig.lat_class().cycles();
            if let Some((addr, _)) = out.load {
                self.metrics.inc(self.metrics.dcache_accesses);
                if !self.dcache.access(addr) {
                    self.metrics.inc(self.metrics.dcache_misses);
                    latency += self.cfg.dcache_miss_penalty as u64;
                }
            }

            let cycle = self.cycle;
            let u = &mut self.win.rob[i];
            u.issued = true;
            u.done_cycle = cycle + latency.max(1);
            u.result = out.value;
            u.next_pc = out.next_pc;
            u.taken = out.taken;
            u.store = out.store;
            u.trap = out.trap;
            if let Some(d) = u.dst {
                self.rn.phys_val[d.phys as usize] = out.value;
            }
            self.win.iq.retain(|&s| s != seq);
        }
    }
}
