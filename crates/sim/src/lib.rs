//! # itr-sim — the processor substrate
//!
//! A from-scratch execution substrate for the ITR reproduction, replacing
//! the SimpleScalar/PISA toolchain used by the paper:
//!
//! * [`Memory`] — sparse byte-addressable memory,
//! * [`TimingCache`] — a set-associative timing model used for the
//!   instruction and data caches (and access counting for the energy
//!   study of §5),
//! * [`semantics`] — instruction semantics driven entirely by the
//!   [`DecodeSignals`](itr_isa::DecodeSignals) vector, so injected decode
//!   faults corrupt execution exactly as a decode-unit upset would,
//! * [`FuncSim`] — a fast in-order functional simulator used for golden
//!   runs and trace-stream extraction,
//! * [`Pipeline`] — a cycle-level out-of-order superscalar (MIPS-R10K
//!   style: rename map + physical register file, issue queue, ROB, store
//!   queue, BTB + gshare + RAS frontend) with the ITR unit of
//!   [`itr_core`] embedded per Figure 5 of the paper,
//! * [`DecodeFault`] — the single-event-upset injection hook of §4.
//!
//! # Example: run a program functionally
//!
//! ```
//! use itr_isa::asm::assemble;
//! use itr_sim::FuncSim;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("main:\n li r8, 6\n li r9, 7\n mul r10, r8, r9\n halt\n")?;
//! let mut sim = FuncSim::new(&program);
//! sim.run(1_000_000);
//! assert_eq!(sim.arch().int_reg(10), 42);
//! # Ok(())
//! # }
//! ```

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod arch;
mod branch;
mod cache;
mod config;
mod func;
mod mem;
mod pipeline;
pub mod semantics;
mod snapshot;

pub use arch::{ArchState, CommitRecord, FCC_REG, NUM_ARCH_REGS};
pub use branch::{Btb, Gshare, ReturnStack};
pub use cache::{CacheGeometry, TimingCache};
pub use config::{
    BurstFault, DecodeFault, PipelineConfig, RenameFault, SchedulerFault, SignalFault, SignalOp,
};
pub use func::{record_tap, FuncSim, StopReason, TraceStream};
pub use mem::Memory;
pub use pipeline::{
    CheckpointRecord, Pipeline, PipelineStats, RunExit, SpcViolation, Stage, StageEvent,
};
pub use snapshot::{capture_at_traces, count_traces, SimSnapshot, SnapshotRecorder};
