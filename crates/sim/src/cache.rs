//! Set-associative timing-cache model for the instruction and data caches.
//!
//! Contents live in [`Memory`](crate::Memory); this model only tracks tags
//! for hit/miss timing and counts accesses for the energy comparison of
//! §5 of the paper (Figure 9 multiplies access counts by CACTI per-access
//! energies).

/// Geometry of a timing cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Ways per set.
    pub ways: u32,
}

impl CacheGeometry {
    /// The Power4-style instruction cache used in §5: 64 KiB,
    /// direct-mapped, 128-byte lines.
    pub fn power4_icache() -> CacheGeometry {
        CacheGeometry { size_bytes: 64 * 1024, line_bytes: 128, ways: 1 }
    }

    /// A 32 KiB, 4-way, 64-byte-line data cache.
    pub fn default_dcache() -> CacheGeometry {
        CacheGeometry { size_bytes: 32 * 1024, line_bytes: 64, ways: 4 }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TagLine {
    valid: bool,
    tag: u64,
    last_use: u64,
}

/// Tag-only set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct TimingCache {
    geometry: CacheGeometry,
    lines: Vec<TagLine>,
    tick: u64,
    accesses: u64,
    misses: u64,
}

impl TimingCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or non-power-of-two
    /// line size).
    pub fn new(geometry: CacheGeometry) -> TimingCache {
        assert!(geometry.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(geometry.sets() > 0, "cache must have at least one set");
        let entries = (geometry.sets() * geometry.ways) as usize;
        TimingCache {
            geometry,
            lines: vec![TagLine::default(); entries],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accesses the line containing `addr`; returns `true` on hit. Misses
    /// allocate (LRU within the set).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let line_bits = self.geometry.line_bytes.trailing_zeros();
        let block = addr >> line_bits;
        let sets = self.geometry.sets() as u64;
        let set = (block % sets) as usize;
        let ways = self.geometry.ways as usize;
        let slice = &mut self.lines[set * ways..(set + 1) * ways];
        for line in slice.iter_mut() {
            if line.valid && line.tag == block {
                line.last_use = tick;
                return true;
            }
        }
        self.misses += 1;
        let victim = slice
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("non-empty set");
        *victim = TagLine { valid: true, tag: block, last_use: tick };
        false
    }

    /// `true` if `a` and `b` fall in the same cache line.
    pub fn same_line(&self, a: u64, b: u64) -> bool {
        let line_bits = self.geometry.line_bytes.trailing_zeros();
        (a >> line_bits) == (b >> line_bits)
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = TimingCache::new(CacheGeometry::power4_icache());
        assert!(!c.access(0x400));
        assert!(c.access(0x400));
        assert!(c.access(0x47F), "same 128-byte line");
        assert!(!c.access(0x480), "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let g = CacheGeometry { size_bytes: 1024, line_bytes: 64, ways: 1 };
        let mut c = TimingCache::new(g);
        assert_eq!(g.sets(), 16);
        c.access(0x0000);
        assert!(!c.access(0x0400), "same set, different tag");
        assert!(!c.access(0x0000), "original evicted");
    }

    #[test]
    fn two_way_tolerates_one_conflict() {
        let g = CacheGeometry { size_bytes: 1024, line_bytes: 64, ways: 2 };
        let mut c = TimingCache::new(g);
        c.access(0x0000);
        c.access(0x0800);
        assert!(c.access(0x0000));
        assert!(c.access(0x0800));
    }

    #[test]
    fn lru_within_set() {
        let g = CacheGeometry { size_bytes: 256, line_bytes: 64, ways: 2 };
        let mut c = TimingCache::new(g);
        // Set count = 2; blocks mapping to set 0: 0x000, 0x080? no —
        // block index = addr/64; set = block % 2. Blocks 0, 2, 4 are set 0.
        c.access(0x000);
        c.access(0x100);
        c.access(0x000); // touch block 0
        c.access(0x200); // evicts block at 0x100 (LRU)
        assert!(c.access(0x000));
        assert!(!c.access(0x100));
    }

    #[test]
    fn same_line_predicate() {
        let c = TimingCache::new(CacheGeometry::power4_icache());
        assert!(c.same_line(0x1000, 0x107F));
        assert!(!c.same_line(0x1000, 0x1080));
    }
}
