//! Fast in-order functional simulator.
//!
//! Serves three roles in the reproduction:
//!
//! * **golden runs** for the fault-injection study (§4): the committed
//!   stream of a fault-free execution to compare the faulty pipeline
//!   against,
//! * **trace-stream extraction** for the repetition characterization
//!   (Figures 1–4) and the coverage design-space study (Figures 6–7),
//! * **workload validation** and pipeline equivalence testing.

use crate::arch::{ArchState, CommitRecord};
use crate::mem::Memory;
use crate::semantics::{execute, operand_plan, ExecInput, TrapAction};
use itr_core::{TapStream, TraceBuilder, TraceRecord, MAX_TRACE_LEN};
use itr_isa::{decode, DecodeSignals, Instruction, Program};

/// Why a functional run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `trap HALT` committed.
    Halted,
    /// `trap ABORT` committed, with the failure code.
    Aborted(u32),
    /// Fetched a word that does not decode (runaway control flow).
    DecodeError(u64),
    /// The instruction budget was exhausted.
    InstrLimit,
}

/// One architecturally executed instruction.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// The instruction's architectural effect.
    pub record: CommitRecord,
    /// Its decode signals (always fault-free here).
    pub signals: DecodeSignals,
}

/// One predecoded text word (see [`FuncSim::new`]).
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// The word was overwritten by a store; re-decode on next fetch.
    Stale,
    /// The word does not decode; fetching it stops the run.
    Undecodable,
    /// Cached decode result.
    Decoded(Instruction, DecodeSignals),
}

fn decode_slot(word: u32) -> Slot {
    match decode(word) {
        Ok(inst) => Slot::Decoded(inst, DecodeSignals::from_instruction(&inst)),
        Err(_) => Slot::Undecodable,
    }
}

/// The functional simulator.
#[derive(Debug, Clone)]
pub struct FuncSim {
    arch: ArchState,
    mem: Memory,
    output: String,
    stopped: Option<StopReason>,
    instrs: u64,
    /// Predecoded image of the text segment: decoding is a pure function
    /// of the word, so it is done once at load (mirroring `itr-analyze`'s
    /// `ProgramImage`) instead of on every fetch. Stores into the text
    /// segment mark the overwritten words [`Slot::Stale`].
    text_base: u64,
    decoded: Vec<Slot>,
}

impl FuncSim {
    /// Loads a program and prepares to execute from its entry point with
    /// the stack pointer at the conventional top of stack. The text
    /// segment is predecoded here, once.
    pub fn new(program: &Program) -> FuncSim {
        let mut arch = ArchState::new(program.entry());
        arch.set_int_reg(29, itr_isa::STACK_TOP as u32);
        FuncSim {
            arch,
            mem: Memory::with_program(program),
            output: String::new(),
            stopped: None,
            instrs: 0,
            text_base: program.text_base(),
            decoded: program.text().iter().map(|&word| decode_slot(word)).collect(),
        }
    }

    /// Current architectural state.
    pub fn arch(&self) -> &ArchState {
        &self.arch
    }

    /// Mutable architectural state (snapshot restore).
    pub(crate) fn arch_mut(&mut self) -> &mut ArchState {
        &mut self.arch
    }

    /// Writes one aligned word, invalidating any predecoded text word it
    /// overwrites (snapshot restore).
    pub(crate) fn write_word(&mut self, addr: u64, word: u32) {
        self.mem.write(addr, 4, word);
        self.invalidate(addr, 4);
    }

    /// Overrides the executed-instruction counter (snapshot restore).
    pub(crate) fn set_instr_count(&mut self, n: u64) {
        self.instrs = n;
    }

    /// Memory contents.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Text produced by `trap PUT_INT`/`PUT_CHAR`.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Instructions executed so far.
    pub fn instr_count(&self) -> u64 {
        self.instrs
    }

    /// The stop reason, once stopped.
    pub fn stopped(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Fetches the decoded instruction at `pc`: from the predecoded image
    /// for aligned text-segment fetches (the overwhelmingly common case),
    /// decoding from memory otherwise (runaway control flow in the
    /// nop ribbon, unaligned `jr` targets, data-segment fetches).
    fn fetch(&mut self, pc: u64) -> Option<(Instruction, DecodeSignals)> {
        if pc >= self.text_base && (pc - self.text_base).is_multiple_of(4) {
            let index = ((pc - self.text_base) / 4) as usize;
            if index < self.decoded.len() {
                if matches!(self.decoded[index], Slot::Stale) {
                    self.decoded[index] = decode_slot(self.mem.read_u32(pc));
                }
                return match self.decoded[index] {
                    Slot::Decoded(inst, signals) => Some((inst, signals)),
                    _ => None,
                };
            }
        }
        let inst = decode(self.mem.read_u32(pc)).ok()?;
        let signals = DecodeSignals::from_instruction(&inst);
        Some((inst, signals))
    }

    /// Marks predecoded words overwritten by a store as stale
    /// (self-modifying code writes through the same [`Memory`] the
    /// predecoded image was built from).
    fn invalidate(&mut self, addr: u64, size: u8) {
        let text_end = self.text_base + self.decoded.len() as u64 * 4;
        let end = addr + size.min(4) as u64;
        if end <= self.text_base || addr >= text_end {
            return;
        }
        let first = (addr.max(self.text_base) - self.text_base) / 4;
        let last = ((end - 1).min(text_end - 1) - self.text_base) / 4;
        for index in first..=last {
            self.decoded[index as usize] = Slot::Stale;
        }
    }

    /// Executes one instruction; `None` once the simulator has stopped.
    pub fn step(&mut self) -> Option<Step> {
        if self.stopped.is_some() {
            return None;
        }
        let pc = self.arch.pc;
        let Some((inst, signals)) = self.fetch(pc) else {
            self.stopped = Some(StopReason::DecodeError(pc));
            return None;
        };
        let plan = operand_plan(&signals);
        let src = |o: Option<u16>| o.map_or(0, |r| self.arch.reg(r));
        let out = execute(
            ExecInput {
                sig: &signals,
                pc,
                raw_jump_target: inst.direct_target(pc),
                src1: src(plan.srcs[0]),
                src2: src(plan.srcs[1]),
            },
            &self.mem,
        );
        let mut record = CommitRecord { pc, dst: None, store: None, next_pc: out.next_pc };
        if let Some(dst) = plan.dst {
            self.arch.set_reg(dst, out.value);
            record.dst = Some((dst, out.value));
        }
        if let Some(store) = out.store {
            self.mem.write(store.addr, store.size, store.value);
            self.invalidate(store.addr, store.size);
            record.store = Some((store.addr, store.size, store.value));
        }
        if let Some(trap) = out.trap {
            match trap {
                TrapAction::Halt => self.stopped = Some(StopReason::Halted),
                TrapAction::Abort(code) => self.stopped = Some(StopReason::Aborted(code)),
                TrapAction::PutInt(v) => self.output.push_str(&(v as i32).to_string()),
                TrapAction::PutChar(c) => self.output.push(c as char),
                TrapAction::Nop => {}
            }
        }
        self.arch.pc = out.next_pc;
        self.instrs += 1;
        Some(Step { record, signals })
    }

    /// Runs until stop or until `max_instrs` more instructions execute.
    pub fn run(&mut self, max_instrs: u64) -> StopReason {
        for _ in 0..max_instrs {
            if self.step().is_none() {
                return self.stopped.expect("stopped set when step yields None");
            }
        }
        *self.stopped.get_or_insert(StopReason::InstrLimit)
    }

    /// Runs like [`run`](Self::run) while collecting every commit record
    /// (used to build golden streams).
    pub fn run_collect(&mut self, max_instrs: u64) -> (Vec<CommitRecord>, StopReason) {
        let mut records = Vec::new();
        for _ in 0..max_instrs {
            match self.step() {
                Some(step) => records.push(step.record),
                None => {
                    let reason = self.stopped.unwrap_or(StopReason::InstrLimit);
                    return (records, reason);
                }
            }
        }
        let reason = *self.stopped.get_or_insert(StopReason::InstrLimit);
        (records, reason)
    }
}

/// Records the `itr-tap/v1` stream of a functional execution of
/// `program`: every architecturally executed instruction dispatches and
/// immediately retires, so the stream is `dispatch`/`commit` pairs with
/// no squash markers. One such recording replays against *every* ITR
/// geometry, trace-length limit and fold function (see
/// [`itr_core::replay`]), which is what the design-space sweeps fan out
/// over.
pub fn record_tap(program: &Program, workload: &str, max_instrs: u64) -> TapStream {
    let mut sim = FuncSim::new(program);
    let mut tap = TapStream::new(workload);
    for _ in 0..max_instrs {
        let Some(step) = sim.step() else { break };
        tap.record_dispatch(step.record.pc, &step.signals, 0);
        tap.record_commit();
    }
    tap
}

/// Streams committed [`TraceRecord`]s from a program execution — the raw
/// material of the paper's Figures 1–4 and the coverage studies.
#[derive(Debug, Clone)]
pub struct TraceStream {
    sim: FuncSim,
    builder: TraceBuilder,
    budget: u64,
}

impl TraceStream {
    /// Streams traces from `program` for at most `max_instrs` dynamic
    /// instructions, using the paper's 16-instruction trace limit.
    pub fn new(program: &Program, max_instrs: u64) -> TraceStream {
        TraceStream::with_trace_len(program, max_instrs, MAX_TRACE_LEN)
    }

    /// Streams traces with a non-default length limit (used by the
    /// trace-length ablation).
    pub fn with_trace_len(program: &Program, max_instrs: u64, max_len: u32) -> TraceStream {
        TraceStream {
            sim: FuncSim::new(program),
            builder: TraceBuilder::new(max_len),
            budget: max_instrs,
        }
    }

    /// The underlying simulator (e.g. for output inspection afterwards).
    pub fn sim(&self) -> &FuncSim {
        &self.sim
    }
}

impl Iterator for TraceStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        while self.budget > 0 {
            self.budget -= 1;
            let step = self.sim.step()?;
            if let Some(trace) = self.builder.push(step.record.pc, &step.signals) {
                return Some(trace);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itr_isa::asm::assemble;

    fn run_program(src: &str) -> FuncSim {
        let p = assemble(src).expect("assembles");
        let mut sim = FuncSim::new(&p);
        let reason = sim.run(1_000_000);
        assert_eq!(reason, StopReason::Halted, "program must halt; output={}", sim.output());
        sim
    }

    #[test]
    fn arithmetic_loop_sums() {
        let sim = run_program(
            r#"
            main:
                li r8, 100
                li r9, 0
            top:
                add r9, r9, r8
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
        );
        assert_eq!(sim.arch().int_reg(9), 5050);
    }

    #[test]
    fn memory_and_output() {
        let sim = run_program(
            r#"
            .data
            arr: .word 3, 1, 4, 1, 5
            .text
            main:
                la r8, arr
                li r9, 5
                li r10, 0
            loop:
                lw r11, 0(r8)
                add r10, r10, r11
                addi r8, r8, 4
                addi r9, r9, -1
                bgtz r9, loop
                move r4, r10
                trap 1
                halt
            "#,
        );
        assert_eq!(sim.output(), "14");
    }

    #[test]
    fn function_call_and_return() {
        let sim = run_program(
            r#"
            main:
                li r4, 10
                jal square
                move r9, r2
                halt
            square:
                mul r2, r4, r4
                jr ra
            "#,
        );
        assert_eq!(sim.arch().int_reg(9), 100);
    }

    #[test]
    fn fp_computation() {
        let sim = run_program(
            r#"
            main:
                li r8, 3
                mtc1 r8, f0
                cvt.s.w f0, f0
                li r8, 4
                mtc1 r8, f1
                cvt.s.w f1, f1
                mul.s f2, f0, f0
                mul.s f3, f1, f1
                add.s f4, f2, f3
                sqrt.s f5, f4
                cvt.w.s f6, f5
                mfc1 r9, f6
                halt
            "#,
        );
        assert_eq!(sim.arch().int_reg(9), 5, "3-4-5 triangle");
    }

    #[test]
    fn abort_is_reported() {
        let p = assemble("main:\n li r4, 7\n trap 3\n").unwrap();
        let mut sim = FuncSim::new(&p);
        assert_eq!(sim.run(100), StopReason::Aborted(7));
    }

    #[test]
    fn decode_error_stops_cleanly() {
        // Jump into the data segment (zeros decode as nop/sll, so jump to
        // an undefined-major word instead).
        let p =
            assemble(".data\nbad: .word 0xF8000000\n.text\nmain:\n la r8, bad\n jr r8\n").unwrap();
        let mut sim = FuncSim::new(&p);
        match sim.run(100) {
            StopReason::DecodeError(_) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn instruction_budget_limits_run() {
        let p = assemble("main:\n j main\n").unwrap();
        let mut sim = FuncSim::new(&p);
        assert_eq!(sim.run(500), StopReason::InstrLimit);
        assert_eq!(sim.instr_count(), 500);
    }

    #[test]
    fn trace_stream_yields_expected_traces() {
        let p = assemble(
            r#"
            main:
                li r8, 3
            top:
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
        )
        .unwrap();
        let traces: Vec<_> = TraceStream::new(&p, 10_000).collect();
        // Trace 1: li + addi + bgtz (starts at main). Traces 2..: the loop
        // body (addi+bgtz) twice more, then the halt trap trace.
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0].len, 3);
        assert_eq!(traces[1].len, 2);
        assert_eq!(traces[1].start_pc, traces[2].start_pc);
        assert_eq!(traces[1].signature, traces[2].signature);
        assert_eq!(traces[3].len, 1, "halt trap is its own trace");
    }

    #[test]
    fn self_modifying_store_invalidates_predecoded_word() {
        // Overwrite the `addi r9, r9, 1` at `patch:` with the (never
        // executed) `addi r9, r9, 7` at `donor:`, then run through it:
        // the predecoded image must serve the *new* instruction.
        let sim = run_program(
            r#"
            main:
                li r9, 0
                la r8, donor
                lw r10, 0(r8)
                la r11, patch
                sw r10, 0(r11)
            patch:
                addi r9, r9, 1
                halt
            donor:
                addi r9, r9, 7
            "#,
        );
        assert_eq!(sim.arch().int_reg(9), 7, "patched instruction must execute");
    }

    #[test]
    fn tap_recording_matches_trace_stream() {
        // The recorded dispatch stream re-forms exactly the traces the
        // live TraceStream produces, at any trace-length limit.
        let p = assemble(
            r#"
            main:
                li r8, 40
            top:
                andi r9, r8, 3
                add r10, r10, r9
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
        )
        .unwrap();
        let tap = record_tap(&p, "kernel", 10_000);
        for max_len in [2u32, 16] {
            let direct: Vec<TraceRecord> =
                TraceStream::with_trace_len(&p, 10_000, max_len).collect();
            let mut replay = itr_core::TraceReplay::new(max_len);
            let replayed: Vec<TraceRecord> = tap
                .dispatches()
                .filter_map(|(pc, sig, extra)| replay.push(pc, sig, extra))
                .collect();
            assert_eq!(replayed, direct, "max_len {max_len}");
        }
    }

    #[test]
    fn trace_identity_is_start_pc() {
        // Same start PC must always produce the same signature in a
        // fault-free run (static trace property from §1 of the paper).
        let p = assemble(
            r#"
            main:
                li r8, 50
                li r9, 0
            top:
                andi r10, r8, 1
                beq r10, r0, even
                addi r9, r9, 3
                j next
            even:
                addi r9, r9, 5
            next:
                addi r8, r8, -1
                bgtz r8, top
                halt
            "#,
        )
        .unwrap();
        use std::collections::HashMap;
        let mut sigs: HashMap<u64, u64> = HashMap::new();
        for t in TraceStream::new(&p, 100_000) {
            let prev = sigs.insert(t.start_pc, t.signature);
            if let Some(prev) = prev {
                assert_eq!(prev, t.signature, "trace at {:#x} changed signature", t.start_pc);
            }
        }
        assert!(sigs.len() >= 4, "several static traces exist");
    }
}
