//! Mid-execution architectural snapshots of a [`FuncSim`] run.
//!
//! A [`SimSnapshot`] freezes the architectural state of a functional
//! execution at a **trace-formation point**: the instant the
//! [`TraceBuilder`] has just completed a trace, so no partial trace is
//! in flight. That boundary makes snapshots exact resume points:
//!
//! * restoring the register file, PC and the memory delta reproduces the
//!   original run's commit stream instruction-for-instruction
//!   (see [`FuncSim::from_snapshot`]), and
//! * a fresh [`TraceBuilder`] started at the resume PC re-forms exactly
//!   the traces the original run formed after the capture point, because
//!   trace identity is a pure function of the committed PC/signal stream.
//!
//! The snapshot also carries the traces formed *before* the capture
//! point — the warm ITR-cache image — so consumers can pre-populate an
//! [`itr_core`] unit to the state it would have reached.
//!
//! The fuzzer uses this to materialize "start inside the hot loop body"
//! seed cases (`itr-fuzz`'s `snapshot` module); the capture side lives
//! here because it needs the simulator's internals (store tracking for
//! the memory delta).

use crate::arch::NUM_ARCH_REGS;
use crate::func::FuncSim;
use itr_core::{TraceBuilder, TraceRecord};
use itr_isa::Program;
use std::collections::BTreeSet;

/// Frozen architectural state at a trace-formation point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// Resume PC (the first instruction *not* yet executed).
    pub pc: u64,
    /// All 65 architectural registers (32 int + 32 FP + FCC).
    pub regs: [u32; NUM_ARCH_REGS],
    /// Memory words that differ from the freshly loaded program image:
    /// `(word-aligned address, current value)`, sorted by address.
    pub mem_delta: Vec<(u64, u32)>,
    /// Instructions executed before the capture point.
    pub instrs: u64,
    /// Traces formed before the capture point, in formation order — the
    /// warm ITR-cache image.
    pub traces: Vec<TraceRecord>,
    /// `true` when the run stored into the text segment before the
    /// capture point (self-modifying code). Such snapshots restore
    /// correctly here, but cannot be materialized as fuzz start states
    /// (the store-safety invariant forbids text writes).
    pub touches_text: bool,
}

/// Steps a [`FuncSim`] while tracking stores and trace formation, and
/// captures [`SimSnapshot`]s at requested trace ordinals.
pub struct SnapshotRecorder {
    sim: FuncSim,
    builder: TraceBuilder,
    /// Word-aligned addresses touched by stores, in address order.
    dirty: BTreeSet<u64>,
    traces: Vec<TraceRecord>,
    text_base: u64,
    text_end: u64,
    touches_text: bool,
}

impl SnapshotRecorder {
    /// Prepares to execute `program` with traces bounded at `max_len`.
    pub fn new(program: &Program, max_len: u32) -> SnapshotRecorder {
        SnapshotRecorder {
            sim: FuncSim::new(program),
            builder: TraceBuilder::new(max_len),
            dirty: BTreeSet::new(),
            traces: Vec::new(),
            text_base: program.text_base(),
            text_end: program.text_base() + program.text().len() as u64 * 4,
            touches_text: false,
        }
    }

    /// Runs for at most `max_instrs` instructions, capturing a snapshot
    /// each time the total number of formed traces reaches a value in
    /// `at_traces` (which must be sorted ascending). Returns the
    /// captured snapshots; ordinals never reached produce nothing.
    pub fn run(&mut self, max_instrs: u64, at_traces: &[u64]) -> Vec<SimSnapshot> {
        let mut out = Vec::new();
        let mut next = at_traces.iter().copied().peekable();
        for _ in 0..max_instrs {
            let Some(step) = self.sim.step() else { break };
            if let Some(store) = step.record.store {
                let (addr, size) = (store.0, store.1.max(1) as u64);
                self.dirty.insert(addr & !3);
                self.dirty.insert((addr + size - 1) & !3);
                if store.0 < self.text_end && addr + size > self.text_base {
                    self.touches_text = true;
                }
            }
            if let Some(trace) = self.builder.push(step.record.pc, &step.signals) {
                self.traces.push(trace);
                while next.peek().is_some_and(|&n| n <= self.traces.len() as u64) {
                    next.next();
                    out.push(self.snapshot());
                }
                if next.peek().is_none() && !at_traces.is_empty() {
                    break;
                }
            }
        }
        out
    }

    /// Total traces formed so far.
    pub fn traces_formed(&self) -> u64 {
        self.traces.len() as u64
    }

    /// The underlying simulator.
    pub fn sim(&self) -> &FuncSim {
        &self.sim
    }

    fn snapshot(&self) -> SimSnapshot {
        let arch = self.sim.arch();
        SimSnapshot {
            pc: arch.pc,
            regs: *arch.regs(),
            mem_delta: self.dirty.iter().map(|&a| (a, self.sim.mem().read_u32(a))).collect(),
            instrs: self.sim.instr_count(),
            traces: self.traces.clone(),
            touches_text: self.touches_text,
        }
    }
}

/// Counts the traces `program` forms within `max_instrs` instructions —
/// used to aim capture ordinals at the middle of an execution.
pub fn count_traces(program: &Program, max_instrs: u64, max_len: u32) -> u64 {
    let mut rec = SnapshotRecorder::new(program, max_len);
    rec.run(max_instrs, &[]);
    rec.traces_formed()
}

/// Convenience wrapper: captures snapshots of `program` at the given
/// (sorted ascending) trace ordinals.
pub fn capture_at_traces(
    program: &Program,
    max_instrs: u64,
    max_len: u32,
    at_traces: &[u64],
) -> Vec<SimSnapshot> {
    SnapshotRecorder::new(program, max_len).run(max_instrs, at_traces)
}

impl FuncSim {
    /// Reconstructs a simulator mid-execution from a snapshot of a run
    /// of the *same* `program`: fresh image, memory delta re-applied
    /// (invalidating any predecoded words it overwrites), registers and
    /// PC restored. The resumed run commits exactly what the original
    /// run committed after the capture point. Output text produced
    /// before the capture point is not part of the snapshot; the resumed
    /// run's output is the post-capture suffix only.
    pub fn from_snapshot(program: &Program, snap: &SimSnapshot) -> FuncSim {
        let mut sim = FuncSim::new(program);
        for &(addr, word) in &snap.mem_delta {
            sim.write_word(addr, word);
        }
        for (idx, &value) in snap.regs.iter().enumerate() {
            sim.arch_mut().set_reg(idx as u16, value);
        }
        sim.arch_mut().pc = snap.pc;
        sim.set_instr_count(snap.instrs);
        sim
    }

    /// Resumes execution from `snap` and returns `true` when the resumed
    /// commit stream matches `reference` (the original run's records from
    /// `snap.instrs` onward) for `reference.len()` instructions. Test and
    /// validation helper.
    pub fn snapshot_resumes_exactly(
        program: &Program,
        snap: &SimSnapshot,
        reference: &[crate::arch::CommitRecord],
    ) -> bool {
        let mut sim = FuncSim::from_snapshot(program, snap);
        let (records, _) = sim.run_collect(reference.len() as u64);
        records == reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{StopReason, TraceStream};
    use itr_core::MAX_TRACE_LEN;
    use itr_isa::asm::assemble;

    fn looped_program() -> Program {
        assemble(
            r#"
            .data
            acc: .word 0
            .text
            main:
                li r8, 24
                la r9, acc
            top:
                lw r10, 0(r9)
                add r10, r10, r8
                sw r10, 0(r9)
                andi r11, r8, 3
                mtc1 r11, f2
                addi r8, r8, -1
                bgtz r8, top
                lw r4, 0(r9)
                trap 1
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn roundtrip_matches_from_scratch_run() {
        let p = looped_program();
        let total = count_traces(&p, 100_000, MAX_TRACE_LEN);
        assert!(total > 6, "loop forms many traces, got {total}");

        // Golden: the full from-scratch commit stream.
        let mut golden = FuncSim::new(&p);
        let (all_records, reason) = golden.run_collect(100_000);
        assert_eq!(reason, StopReason::Halted);

        for at in [2, total / 2, total - 1] {
            let snaps = capture_at_traces(&p, 100_000, MAX_TRACE_LEN, &[at]);
            assert_eq!(snaps.len(), 1, "ordinal {at} reached");
            let snap = &snaps[0];
            assert!(!snap.touches_text);
            assert_eq!(snap.traces.len() as u64, at);
            let suffix = &all_records[snap.instrs as usize..];
            assert!(
                FuncSim::snapshot_resumes_exactly(&p, snap, suffix),
                "resume at trace {at} must replay the golden suffix"
            );
        }
    }

    #[test]
    fn resumed_trace_stream_matches_suffix() {
        let p = looped_program();
        let total = count_traces(&p, 100_000, MAX_TRACE_LEN);
        let at = total / 2;
        let snap = &capture_at_traces(&p, 100_000, MAX_TRACE_LEN, &[at])[0];

        let full: Vec<TraceRecord> = TraceStream::new(&p, 100_000).collect();
        assert_eq!(&full[..at as usize], &snap.traces[..], "warm image is the trace prefix");

        // A fresh builder at the resume point re-forms the remaining
        // traces exactly (capture is at a formation boundary).
        let mut sim = FuncSim::from_snapshot(&p, snap);
        let mut builder = TraceBuilder::new(MAX_TRACE_LEN);
        let mut resumed = Vec::new();
        while let Some(step) = sim.step() {
            if let Some(t) = builder.push(step.record.pc, &step.signals) {
                resumed.push(t);
            }
        }
        assert_eq!(&full[at as usize..], &resumed[..]);
    }

    #[test]
    fn mem_delta_is_sorted_and_minimal() {
        let p = looped_program();
        let snap = &capture_at_traces(&p, 100_000, MAX_TRACE_LEN, &[3])[0];
        assert!(snap.mem_delta.windows(2).all(|w| w[0].0 < w[1].0), "sorted by address");
        for &(addr, _) in &snap.mem_delta {
            assert_eq!(addr & 3, 0, "word aligned");
        }
        assert!(!snap.mem_delta.is_empty(), "the accumulator store is visible");
    }

    #[test]
    fn self_modifying_run_is_flagged() {
        let p = assemble(
            r#"
            main:
                la r8, patch
                lw r9, 0(r8)
                sw r9, 4(r8)
            patch:
                addi r10, r10, 1
                addi r10, r10, 2
                halt
            "#,
        )
        .expect("assembles");
        let mut rec = SnapshotRecorder::new(&p, MAX_TRACE_LEN);
        let snaps = rec.run(1_000, &[1]);
        assert!(!snaps.is_empty());
        assert!(snaps[0].touches_text, "text store must be flagged");
    }
}
