//! Pipeline configuration and the fault-injection hook.

use crate::cache::CacheGeometry;
use itr_core::ItrConfig;

/// A planned single-event upset on the decode signals (§4 of the paper):
/// flip `bit` of the packed 64-bit signal vector of the `nth_decode`-th
/// dynamically decoded instruction (wrong-path instructions count — a
/// fault can strike any instruction the decode unit processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeFault {
    /// Zero-based index in decode order.
    pub nth_decode: u64,
    /// Bit position within the packed signal vector (0..64).
    pub bit: u32,
}

/// How a [`SignalFault`] perturbs its target bit while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalOp {
    /// XOR the bit — a transient upset repeated on every active decode.
    Flip,
    /// Force the bit to 0 — a defect-induced stuck-at-0.
    Stuck0,
    /// Force the bit to 1 — a stuck-at-1.
    Stuck1,
}

/// A multi-cycle decode-signal fault: one *logical* fault that perturbs
/// `bit` of the packed signal vector of every decoded instruction whose
/// decode index lies in `[from_decode, until_decode)` and falls inside
/// the active part of the duty window. `period <= 1` means always
/// active within the window; otherwise the fault is active for the
/// first `duty` of every `period` decodes (an ITHICA-style intermittent
/// window fault). A one-decode window with [`SignalOp::Flip`]
/// degenerates to a classic [`DecodeFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalFault {
    /// First decode index (zero-based, wrong-path decodes count) struck.
    pub from_decode: u64,
    /// Exclusive end of the struck decode range (`u64::MAX` = for the
    /// rest of the run: a permanent defect).
    pub until_decode: u64,
    /// Bit position within the packed signal vector (0..64).
    pub bit: u32,
    /// Perturbation applied while active.
    pub op: SignalOp,
    /// Duty-cycle period in decodes (`<= 1` = continuously active).
    pub period: u64,
    /// Active decodes per period (clamped to at least 1).
    pub duty: u64,
}

impl SignalFault {
    /// `true` when the fault perturbs the `nth_decode`-th decode.
    pub fn strikes(&self, nth_decode: u64) -> bool {
        if nth_decode < self.from_decode || nth_decode >= self.until_decode {
            return false;
        }
        if self.period <= 1 {
            return true;
        }
        (nth_decode - self.from_decode) % self.period < self.duty.max(1)
    }

    /// Applies the perturbation to a packed signal vector.
    pub fn apply(&self, packed: u64) -> u64 {
        let mask = 1u64 << (self.bit % 64);
        match self.op {
            SignalOp::Flip => packed ^ mask,
            SignalOp::Stuck0 => packed & !mask,
            SignalOp::Stuck1 => packed | mask,
        }
    }
}

/// A burst fault armed by the first ITR signature mismatch of the run:
/// each of the `len` decodes that follow the cycle the mismatch
/// surfaces has `bit` flipped. In active mode those decodes are the
/// refetched (retried) trace, so the burst strikes *during retry* and
/// stresses the recovery controller; in passive mode it models a noise
/// burst clustered around the first upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstFault {
    /// Bit position within the packed signal vector (0..64).
    pub bit: u32,
    /// Number of consecutive decodes struck once armed.
    pub len: u64,
}

/// A planned single-event upset in the *rename unit* (§1 of the paper
/// sketches extending ITR to the rename map table): flip one bit of the
/// architectural index used by the map-table lookup for one operand of
/// one dynamic instruction. Invisible to the plain decode-signal
/// signature — detectable only with
/// [`PipelineConfig::rename_protection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenameFault {
    /// Zero-based index in rename (= dispatch) order.
    pub nth_rename: u64,
    /// Which operand's map index is struck: 0/1 = sources, 2 = dest.
    pub operand: u8,
    /// Bit flipped in the 7-bit architectural index (result taken mod 65).
    pub bit: u32,
}

/// A planned upset in the out-of-order scheduler's select logic: at the
/// `nth_issue`-th issue opportunity, wrongly select the oldest
/// *not-ready* instruction (it reads stale physical-register values).
/// Invisible to decode-signal signatures; detectable by the TAC-style
/// issue-order check (§1 of the paper cites Timestamp-based Assertion
/// Checking for exactly this fault class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerFault {
    /// Zero-based index in issue order.
    pub nth_issue: u64,
}

/// Configuration of the cycle-level pipeline.
///
/// Defaults model a 4-wide out-of-order core similar in spirit to the
/// MIPS R10K the paper's simulator targets.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Fetch/decode/rename/commit width.
    pub width: u32,
    /// Reorder-buffer capacity.
    pub rob_entries: u32,
    /// Issue-queue capacity.
    pub iq_entries: u32,
    /// Maximum in-flight loads+stores.
    pub lsq_entries: u32,
    /// Physical registers (must exceed 65 architectural + ROB size).
    pub phys_regs: u32,
    /// Maximum instructions issued per cycle.
    pub issue_width: u32,
    /// Fetch-queue capacity in instructions.
    pub fetch_queue: u32,
    /// Instruction-cache geometry.
    pub icache: CacheGeometry,
    /// Cycles added on an I-cache miss.
    pub icache_miss_penalty: u32,
    /// Data-cache geometry.
    pub dcache: CacheGeometry,
    /// Cycles added on a D-cache load miss.
    pub dcache_miss_penalty: u32,
    /// Gshare history bits.
    pub gshare_bits: u32,
    /// BTB entries.
    pub btb_entries: u32,
    /// Return-address-stack entries.
    pub ras_entries: u32,
    /// Watchdog limit in commit-free cycles (§4's `wdog` check).
    pub watchdog_cycles: u64,
    /// ITR unit configuration, or `None` for an unprotected pipeline.
    pub itr: Option<ItrConfig>,
    /// Minimum committed-instruction spacing between §2.3 coarse-grain
    /// checkpoints.
    pub checkpoint_min_gap: u64,
    /// Bounded-wait checkpointing: an unreferenced ITR line older than
    /// this many cache events (probes + inserts) stops blocking §2.3
    /// checkpoints. `None` keeps the paper's strict condition — which a
    /// single run-once trace (any prologue) blocks for the rest of the
    /// run, leaving zero checkpoint availability on real programs. A
    /// bounded wait restores availability at the price that an aged-out
    /// line may still hold committed corruption, so a checkpoint can
    /// cover a corrupt prefix (surfaced by `itr-recover` as
    /// `rollback-sdc`).
    pub checkpoint_line_age: Option<u64>,
    /// Enable the sequential-PC check at retirement (§2.5's `spc`).
    pub spc_check: bool,
    /// Planned decode faults (empty = fault-free). Multiple entries model
    /// multi-event upsets, used to probe the XOR signature's documented
    /// blind spot (§2.1: an even number of flips of the same signal bit
    /// within one trace cancels).
    pub faults: Vec<DecodeFault>,
    /// Planned multi-cycle decode-signal faults (stuck-at, intermittent
    /// window, repeated flips). Each entry is one logical fault that may
    /// strike many decodes; see [`SignalFault`].
    pub signal_faults: Vec<SignalFault>,
    /// Planned burst fault armed by the first ITR mismatch, if any.
    pub burst_fault: Option<BurstFault>,
    /// Planned fetch-reorder fault: swap the instruction words of the
    /// `n`-th and `n+1`-th decode slots (PCs keep their positions). XOR
    /// signatures are order-insensitive and cannot see a within-trace
    /// swap; the rotate-XOR fold variant can.
    pub swap_fault: Option<u64>,
    /// Enable the TAC-style issue-order assertion (§1's scheduler
    /// protection): every issued instruction asserts its register sources
    /// were ready; a violation squashes and restarts from the offending
    /// instruction.
    pub tac_check: bool,
    /// Planned scheduler fault, if any.
    pub scheduler_fault: Option<SchedulerFault>,
    /// Fold the rename map-table indexes each instruction uses into the
    /// ITR signature — the §1 rename-unit extension. Must be identical
    /// between recording and checking instances, so it changes every
    /// stored signature; enable for whole runs only.
    pub rename_protection: bool,
    /// Planned rename-unit fault, if any.
    pub rename_fault: Option<RenameFault>,
    /// Depth of the post-mortem stage-event ring (most recent pipeline
    /// events kept for inspection after an ITR mismatch or machine
    /// check). `0` disables recording.
    pub stage_trace_depth: usize,
}

impl PipelineConfig {
    /// The default core with ITR protection at the paper's configuration.
    pub fn with_itr() -> PipelineConfig {
        PipelineConfig { itr: Some(ItrConfig::paper_default()), ..PipelineConfig::default() }
    }
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            width: 4,
            rob_entries: 128,
            iq_entries: 48,
            lsq_entries: 64,
            phys_regs: 224,
            issue_width: 4,
            fetch_queue: 16,
            icache: CacheGeometry::power4_icache(),
            icache_miss_penalty: 8,
            dcache: CacheGeometry::default_dcache(),
            dcache_miss_penalty: 16,
            gshare_bits: 12,
            btb_entries: 512,
            ras_entries: 16,
            watchdog_cycles: 10_000,
            itr: None,
            checkpoint_min_gap: 10_000,
            checkpoint_line_age: None,
            spc_check: true,
            faults: Vec::new(),
            signal_faults: Vec::new(),
            burst_fault: None,
            swap_fault: None,
            tac_check: false,
            scheduler_fault: None,
            rename_protection: false,
            rename_fault: None,
            stage_trace_depth: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_enough_physical_registers() {
        let c = PipelineConfig::default();
        assert!(c.phys_regs >= 65 + c.rob_entries, "rename must never starve");
    }

    #[test]
    fn with_itr_enables_the_unit() {
        assert!(PipelineConfig::with_itr().itr.is_some());
        assert!(PipelineConfig::default().itr.is_none());
    }

    #[test]
    fn signal_fault_window_and_duty_cycle() {
        let f = SignalFault {
            from_decode: 10,
            until_decode: 20,
            bit: 3,
            op: SignalOp::Flip,
            period: 4,
            duty: 2,
        };
        assert!(!f.strikes(9), "before the window");
        assert!(f.strikes(10) && f.strikes(11), "active phase of the duty cycle");
        assert!(!f.strikes(12) && !f.strikes(13), "inactive phase");
        assert!(f.strikes(14) && f.strikes(15), "next period");
        assert!(!f.strikes(20), "window end is exclusive");
        let always = SignalFault { period: 0, ..f };
        assert!((10..20).all(|i| always.strikes(i)));
    }

    #[test]
    fn signal_fault_ops_apply_to_the_packed_vector() {
        let f = |op| SignalFault {
            from_decode: 0,
            until_decode: u64::MAX,
            bit: 3,
            op,
            period: 0,
            duty: 0,
        };
        assert_eq!(f(SignalOp::Flip).apply(0b1000), 0);
        assert_eq!(f(SignalOp::Flip).apply(0), 0b1000);
        assert_eq!(f(SignalOp::Stuck0).apply(0b1000), 0);
        assert_eq!(f(SignalOp::Stuck1).apply(0), 0b1000);
        assert_eq!(f(SignalOp::Stuck1).apply(0b1000), 0b1000, "stuck-at is idempotent");
    }
}
