//! CACTI-lite: per-access energy for SRAM structures (0.18 µm).
//!
//! The model decomposes an access into a per-row term (bitline swing along
//! the selected column pairs), a per-column term (wordline drive, sense
//! amps and output drivers across all ways read in parallel), and a fixed
//! decoder/control term:
//!
//! ```text
//! E(nJ) = K_ROW · rows + K_COL · ways · line_bits + K_FIXED
//! ```
//!
//! with a port factor of `1 + 0.45·(ports−1)` (CACTI's dual-port arrays
//! cost ≈1.45× — the same ratio as the paper's 0.84 nJ vs 0.58 nJ ITR
//! cache numbers). The three constants are calibrated on the two CACTI
//! 3.0 values the paper publishes; see the module tests.

/// Geometry of an SRAM structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Total data capacity in bytes.
    pub bytes: u32,
    /// Line (entry) size in bytes.
    pub line_bytes: u32,
    /// Ways per set.
    pub ways: u32,
    /// Read/write ports (1 = single shared port).
    pub ports: u32,
}

impl CacheSpec {
    /// Number of sets (rows in the unpartitioned array).
    pub fn sets(&self) -> u32 {
        self.bytes / (self.line_bytes * self.ways)
    }

    /// Data bits read per access (all ways in parallel).
    pub fn access_bits(&self) -> u32 {
        self.line_bytes * 8 * self.ways
    }
}

/// The IBM Power4 instruction cache used in the paper's comparison:
/// 64 KiB, direct-mapped, 128-byte lines, one read/write port.
pub const POWER4_ICACHE: CacheSpec =
    CacheSpec { bytes: 64 * 1024, line_bytes: 128, ways: 1, ports: 1 };

/// The evaluated ITR cache: 1024 signatures of 8 bytes, 2-way (8 KiB),
/// one read/write port.
pub const ITR_CACHE_1024X2: CacheSpec =
    CacheSpec { bytes: 8 * 1024, line_bytes: 8, ways: 2, ports: 1 };

/// The [`CacheSpec`] of an ITR cache with `entries` 64-bit signature
/// lines and the given way count — the geometry axis of the design-space
/// sweep. `itr_cache_spec(1024, 2)` is [`ITR_CACHE_1024X2`].
pub fn itr_cache_spec(entries: u32, ways: u32) -> CacheSpec {
    CacheSpec { bytes: entries * 8, line_bytes: 8, ways, ports: 1 }
}

/// Per-row constant (nJ per set row), calibrated.
const K_ROW: f64 = 0.000_855_468_75;
/// Per-column constant (nJ per accessed bit), calibrated.
const K_COL: f64 = 0.000_323_660_714_285_714_3;
/// Fixed decoder/control energy (nJ).
const K_FIXED: f64 = 0.1;
/// Extra energy fraction per additional port.
const PORT_FACTOR: f64 = 0.45;

/// Per-access energy in nanojoules.
///
/// # Example
///
/// ```
/// use itr_power::{energy_per_access_nj, POWER4_ICACHE, ITR_CACHE_1024X2};
///
/// // The paper's published CACTI values.
/// assert!((energy_per_access_nj(&POWER4_ICACHE) - 0.87).abs() < 0.005);
/// assert!((energy_per_access_nj(&ITR_CACHE_1024X2) - 0.58).abs() < 0.005);
/// ```
pub fn energy_per_access_nj(spec: &CacheSpec) -> f64 {
    let rows = spec.sets() as f64;
    let bits = spec.access_bits() as f64;
    let base = K_ROW * rows + K_COL * bits + K_FIXED;
    base * (1.0 + PORT_FACTOR * (spec.ports as f64 - 1.0))
}

/// One row of Figure 9: total energy of the ITR approach (both port
/// options) against re-fetching every instruction from the I-cache.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Benchmark name.
    pub name: String,
    /// ITR cache accesses performed (reads + writes).
    pub itr_accesses: u64,
    /// I-cache accesses a redundant frontend would repeat.
    pub icache_accesses: u64,
    /// ITR cache energy, single shared port (mJ).
    pub itr_single_port_mj: f64,
    /// ITR cache energy, separate read and write ports (mJ).
    pub itr_dual_port_mj: f64,
    /// Energy of the redundant second fetch from the I-cache (mJ).
    pub icache_refetch_mj: f64,
}

impl EnergyRow {
    /// Builds a Figure 9 row from an `itr-stats/v1` report: ITR cache
    /// accesses are `itr_cache.reads + itr_cache.writes`, the redundant
    /// fetch count is `pipeline.icache_accesses`. Returns `None` when the
    /// report lacks either section (e.g. an ITR-off run).
    pub fn from_report(name: &str, report: &itr_stats::Report) -> Option<EnergyRow> {
        let itr_accesses =
            report.counter("itr_cache", "reads")? + report.counter("itr_cache", "writes")?;
        let icache_accesses = report.counter("pipeline", "icache_accesses")?;
        Some(EnergyRow::from_counts(name, itr_accesses, icache_accesses))
    }

    /// Builds a Figure 9 row from measured access counts.
    pub fn from_counts(name: &str, itr_accesses: u64, icache_accesses: u64) -> EnergyRow {
        let single = energy_per_access_nj(&ITR_CACHE_1024X2);
        let dual = energy_per_access_nj(&CacheSpec { ports: 2, ..ITR_CACHE_1024X2 });
        let icache = energy_per_access_nj(&POWER4_ICACHE);
        EnergyRow {
            name: name.to_string(),
            itr_accesses,
            icache_accesses,
            itr_single_port_mj: itr_accesses as f64 * single * 1e-6,
            itr_dual_port_mj: itr_accesses as f64 * dual * 1e-6,
            icache_refetch_mj: icache_accesses as f64 * icache * 1e-6,
        }
    }

    /// Energy saving of single-port ITR versus the redundant I-cache
    /// fetch (× factor).
    pub fn saving_factor(&self) -> f64 {
        if self.itr_single_port_mj == 0.0 {
            return f64::INFINITY;
        }
        self.icache_refetch_mj / self.itr_single_port_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_paper_icache_value() {
        let e = energy_per_access_nj(&POWER4_ICACHE);
        assert!((e - 0.87).abs() < 0.005, "I-cache {e} nJ != 0.87 nJ");
    }

    #[test]
    fn calibration_reproduces_paper_itr_single_port_value() {
        let e = energy_per_access_nj(&ITR_CACHE_1024X2);
        assert!((e - 0.58).abs() < 0.005, "ITR {e} nJ != 0.58 nJ");
    }

    #[test]
    fn calibration_reproduces_paper_itr_dual_port_value() {
        let spec = CacheSpec { ports: 2, ..ITR_CACHE_1024X2 };
        let e = energy_per_access_nj(&spec);
        assert!((e - 0.84).abs() < 0.01, "dual-port ITR {e} nJ != 0.84 nJ");
    }

    #[test]
    fn energy_grows_with_capacity_and_ways() {
        let small = CacheSpec { bytes: 4 * 1024, line_bytes: 8, ways: 2, ports: 1 };
        let big = CacheSpec { bytes: 16 * 1024, line_bytes: 8, ways: 2, ports: 1 };
        assert!(energy_per_access_nj(&big) > energy_per_access_nj(&small));
        // Associativity trades rows (bitline length) for bits read in
        // parallel; with narrow 8-byte lines the row term dominates, so
        // the direct-mapped point costs more per access here. Widening
        // the line flips the balance.
        let dm = CacheSpec { bytes: 8 * 1024, line_bytes: 8, ways: 1, ports: 1 };
        let fa16 = CacheSpec { bytes: 8 * 1024, line_bytes: 8, ways: 16, ports: 1 };
        assert!(energy_per_access_nj(&fa16) < energy_per_access_nj(&dm));
        let wide_dm = CacheSpec { bytes: 8 * 1024, line_bytes: 256, ways: 1, ports: 1 };
        let wide_8w = CacheSpec { bytes: 8 * 1024, line_bytes: 256, ways: 8, ports: 1 };
        assert!(energy_per_access_nj(&wide_8w) > energy_per_access_nj(&wide_dm));
    }

    #[test]
    fn figure9_row_favors_itr_when_access_counts_match() {
        // With roughly one ITR access per trace (~5 instructions) versus
        // one I-cache access per fetch group (~3 instructions), the ITR
        // approach must come out well ahead, as in Figure 9.
        let row = EnergyRow::from_counts("bzip", 400_000, 700_000);
        assert!(row.itr_single_port_mj < row.icache_refetch_mj);
        assert!(row.saving_factor() > 2.0);
        assert!(row.itr_dual_port_mj > row.itr_single_port_mj);
    }
}
