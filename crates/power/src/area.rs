//! The S/390 G5 die-photo area comparison (§5 of the paper).
//!
//! The paper measures two structures off the published G5 die photo:
//!
//! * the I-unit (fetch + decode units): 1.5 cm × 1.4 cm = 2.1 cm²,
//! * the branch target buffer, chosen because its configuration is
//!   similar to an ITR cache (2048 entries, 2-way, 35 bits/entry):
//!   1.5 cm × 0.2 cm = 0.3 cm².
//!
//! The ITR cache stores 1024 entries of 64 bits — half the entries at
//! nearly twice the width — so its area is estimated by scaling the BTB
//! area by total storage bits. The result is about one seventh of the
//! I-unit, the paper's conclusion for structural duplication vs. ITR.

/// G5 I-unit area from the die photo (cm²).
pub const G5_IUNIT_AREA_CM2: f64 = 2.1;
/// G5 BTB-like structure area from the die photo (cm²).
pub const G5_BTB_AREA_CM2: f64 = 0.3;
/// G5 BTB entries.
pub const G5_BTB_ENTRIES: u32 = 2048;
/// G5 BTB entry width in bits.
pub const G5_BTB_ENTRY_BITS: u32 = 35;

/// Estimates the area of an ITR-cache-like structure by storage-bit
/// scaling from the G5 BTB reference point.
pub fn itr_cache_area_cm2(entries: u32, entry_bits: u32) -> f64 {
    let ref_bits = (G5_BTB_ENTRIES * G5_BTB_ENTRY_BITS) as f64;
    G5_BTB_AREA_CM2 * (entries as f64 * entry_bits as f64) / ref_bits
}

/// The §5 area comparison, ready to print.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaComparison {
    /// I-unit area (what structural duplication replicates), cm².
    pub iunit_cm2: f64,
    /// Estimated ITR cache area, cm².
    pub itr_cache_cm2: f64,
}

impl AreaComparison {
    /// The paper's configuration: 1024 signatures × 64 bits.
    pub fn paper_itr_cache() -> AreaComparison {
        AreaComparison { iunit_cm2: G5_IUNIT_AREA_CM2, itr_cache_cm2: itr_cache_area_cm2(1024, 64) }
    }

    /// How many times smaller the ITR cache is than the I-unit.
    pub fn ratio(&self) -> f64 {
        self.iunit_cm2 / self.itr_cache_cm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itr_cache_is_about_one_seventh_of_the_iunit() {
        let cmp = AreaComparison::paper_itr_cache();
        // The paper rounds to "about one seventh"; bit-scaling from the
        // BTB gives ≈ 7.7×.
        assert!(
            (6.0..9.0).contains(&cmp.ratio()),
            "ratio {} outside the paper's ballpark",
            cmp.ratio()
        );
        assert!(cmp.itr_cache_cm2 < 0.31, "not larger than the BTB itself");
    }

    #[test]
    fn area_scales_linearly_in_bits() {
        let a = itr_cache_area_cm2(1024, 64);
        let b = itr_cache_area_cm2(2048, 64);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn g5_btb_reference_point_is_exact() {
        let a = itr_cache_area_cm2(G5_BTB_ENTRIES, G5_BTB_ENTRY_BITS);
        assert!((a - G5_BTB_AREA_CM2).abs() < 1e-12);
    }
}
