//! # itr-power — area and energy models for §5 of the paper
//!
//! Two models:
//!
//! * [`energy`] — *CACTI-lite*: an analytic per-access energy model for
//!   set-associative SRAM structures at 0.18 µm, calibrated so the two
//!   per-access energies the paper publishes from CACTI 3.0 are
//!   reproduced exactly (Power4-style 64 KiB direct-mapped I-cache =
//!   0.87 nJ; 8 KiB 2-way ITR cache = 0.58 nJ single-ported, 0.84 nJ with
//!   separate read and write ports). Other geometries interpolate with
//!   standard row/column scaling.
//! * [`area`] — the IBM S/390 G5 die-photo comparison: the I-unit
//!   (fetch + decode) measures 2.1 cm²; a BTB-like structure of the ITR
//!   cache's complexity measures 0.3 cm². Scaling by storage bits puts
//!   the ITR cache at about one seventh of the I-unit — the paper's §5
//!   headline.

// Tests opt back out of the workspace `unwrap_used` deny: panicking on
// a broken expectation is exactly what a test should do.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod area;
pub mod energy;

pub use area::{itr_cache_area_cm2, AreaComparison, G5_BTB_AREA_CM2, G5_IUNIT_AREA_CM2};
pub use energy::{
    energy_per_access_nj, itr_cache_spec, CacheSpec, EnergyRow, ITR_CACHE_1024X2, POWER4_ICACHE,
};
