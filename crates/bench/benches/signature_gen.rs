//! Microbenchmark: ITR signature generation throughput.
//!
//! The signature generator sits on the dispatch path of every
//! instruction, so its cost must be negligible; this bench demonstrates
//! the XOR fold runs at instruction-stream rates.
//!
//! Run with `cargo bench --bench signature_gen` (plain `harness = false`
//! binary — no external benchmark framework).

use itr_bench::timing::{bench, black_box};
use itr_core::{SignatureGen, TraceBuilder};
use itr_isa::{DecodeSignals, Instruction, Opcode};

fn signal_mix() -> Vec<DecodeSignals> {
    [
        Instruction::rrr(Opcode::Add, 1, 2, 3),
        Instruction::mem(Opcode::Lw, 4, 29, 8),
        Instruction::rri(Opcode::Addi, 5, 5, 1),
        Instruction::shift(Opcode::Sll, 6, 5, 2),
        Instruction::mem(Opcode::Sw, 4, 29, 12),
        Instruction::rrr(Opcode::Xor, 7, 6, 5),
        Instruction::branch(Opcode::Bne, 5, 6, -6),
    ]
    .iter()
    .map(DecodeSignals::from_instruction)
    .collect()
}

fn main() {
    let signals = signal_mix();
    let n = signals.len() as u64;

    bench("signature/xor_fold", n, || {
        let mut g = SignatureGen::new();
        for s in &signals {
            g.fold(black_box(s));
        }
        black_box(g.value())
    });

    bench("signature/trace_builder", n, || {
        let mut tb = TraceBuilder::new(16);
        let mut out = 0u64;
        for (i, s) in signals.iter().enumerate() {
            if let Some(t) = tb.push(0x400 + i as u64 * 4, black_box(s)) {
                out ^= t.signature;
            }
        }
        black_box(out)
    });
}
