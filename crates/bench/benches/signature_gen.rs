//! Microbenchmark: ITR signature generation throughput.
//!
//! The signature generator sits on the dispatch path of every
//! instruction, so its cost must be negligible; this bench demonstrates
//! the XOR fold runs at instruction-stream rates.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use itr_core::{SignatureGen, TraceBuilder};
use itr_isa::{DecodeSignals, Instruction, Opcode};

fn signal_mix() -> Vec<DecodeSignals> {
    [
        Instruction::rrr(Opcode::Add, 1, 2, 3),
        Instruction::mem(Opcode::Lw, 4, 29, 8),
        Instruction::rri(Opcode::Addi, 5, 5, 1),
        Instruction::shift(Opcode::Sll, 6, 5, 2),
        Instruction::mem(Opcode::Sw, 4, 29, 12),
        Instruction::rrr(Opcode::Xor, 7, 6, 5),
        Instruction::branch(Opcode::Bne, 5, 6, -6),
    ]
    .iter()
    .map(DecodeSignals::from_instruction)
    .collect()
}

fn bench_signature(c: &mut Criterion) {
    let signals = signal_mix();
    let mut group = c.benchmark_group("signature");
    group.throughput(Throughput::Elements(signals.len() as u64));
    group.bench_function("xor_fold", |b| {
        b.iter(|| {
            let mut g = SignatureGen::new();
            for s in &signals {
                g.fold(black_box(s));
            }
            black_box(g.value())
        })
    });
    group.bench_function("trace_builder", |b| {
        b.iter(|| {
            let mut tb = TraceBuilder::new(16);
            let mut out = 0u64;
            for (i, s) in signals.iter().enumerate() {
                if let Some(t) = tb.push(0x400 + i as u64 * 4, black_box(s)) {
                    out ^= t.signature;
                }
            }
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_signature);
criterion_main!(benches);
