//! Macrobenchmark: simulation throughput of the cycle-level pipeline with
//! and without the ITR unit, on a kernel workload. Demonstrates the
//! simulator overhead of the ITR machinery itself is modest.
//!
//! Run with `cargo bench --bench pipeline_throughput` (plain
//! `harness = false` binary — no external benchmark framework).

use itr_bench::timing::{bench, black_box};
use itr_isa::asm::assemble;
use itr_sim::{Pipeline, PipelineConfig};
use itr_workloads::kernels;

fn main() {
    let program = assemble(kernels::CRC32.source).expect("kernel assembles");

    let base = bench("pipeline/baseline_10k_cycles", 10_000, || {
        let mut pipe = Pipeline::new(&program, PipelineConfig::default());
        black_box(pipe.run(10_000))
    });

    let itr = bench("pipeline/itr_10k_cycles", 10_000, || {
        let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
        black_box(pipe.run(10_000))
    });

    println!(
        "itr simulation overhead: {:+.1}%",
        (itr.ns_per_iter / base.ns_per_iter - 1.0) * 100.0
    );
}
