//! Macrobenchmark: simulation throughput of the cycle-level pipeline with
//! and without the ITR unit, on a kernel workload. Demonstrates the
//! simulator overhead of the ITR machinery itself is modest.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use itr_isa::asm::assemble;
use itr_sim::{Pipeline, PipelineConfig};
use itr_workloads::kernels;

fn bench_pipeline(c: &mut Criterion) {
    let program = assemble(kernels::CRC32.source).expect("kernel assembles");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("baseline_10k_cycles", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(&program, PipelineConfig::default());
            black_box(pipe.run(10_000))
        })
    });
    group.bench_function("itr_10k_cycles", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
            black_box(pipe.run(10_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
