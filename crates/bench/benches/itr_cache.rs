//! Microbenchmark: ITR cache probe/insert throughput across the §3
//! design space (the structure is probed once per trace, ~every 5
//! instructions).
//!
//! Run with `cargo bench --bench itr_cache` (plain `harness = false`
//! binary — no external benchmark framework).

use itr_bench::timing::{bench, black_box};
use itr_core::{Associativity, ItrCache, ItrCacheConfig};

fn main() {
    for assoc in [Associativity::Direct, Associativity::Ways(2), Associativity::Full] {
        let mut cache = ItrCache::new(ItrCacheConfig::new(1024, assoc));
        // Warm with a 600-trace working set.
        for i in 0..600u64 {
            cache.insert(0x1000 + i * 52, i, 8);
        }
        let mut i = 0u64;
        bench(&format!("itr_cache/probe_insert/{}", assoc.label()), 1, || {
            let pc = 0x1000 + (i % 900) * 52;
            i += 1;
            match cache.probe(black_box(pc)) {
                itr_core::ProbeResult::Hit { signature, .. } => black_box(signature),
                itr_core::ProbeResult::Miss => {
                    cache.insert(pc, pc, 8);
                    0
                }
            }
        });
    }
}
