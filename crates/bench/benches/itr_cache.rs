//! Microbenchmark: ITR cache probe/insert throughput across the §3
//! design space (the structure is probed once per trace, ~every 5
//! instructions).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use itr_core::{Associativity, ItrCache, ItrCacheConfig};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("itr_cache");
    for assoc in [Associativity::Direct, Associativity::Ways(2), Associativity::Full] {
        group.bench_with_input(
            BenchmarkId::new("probe_insert", assoc.label()),
            &assoc,
            |b, &assoc| {
                let mut cache = ItrCache::new(ItrCacheConfig::new(1024, assoc));
                // Warm with a 600-trace working set.
                for i in 0..600u64 {
                    cache.insert(0x1000 + i * 52, i, 8);
                }
                let mut i = 0u64;
                b.iter(|| {
                    let pc = 0x1000 + (i % 900) * 52;
                    i += 1;
                    match cache.probe(black_box(pc)) {
                        itr_core::ProbeResult::Hit { signature, .. } => black_box(signature),
                        itr_core::ProbeResult::Miss => {
                            cache.insert(pc, pc, 8);
                            0
                        }
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
