//! Trace-stream characterization: one pass per benchmark feeds Table 1
//! and Figures 1–4. The old serial script collected the same streams
//! three times (once per binary); here a single `characterize` job does
//! it once and three emit jobs render from its payloads.

use super::{
    data_payload, emit_payload, get_arr, get_bool, get_f64, get_str, get_u64, obj, Csv, Emitted,
    Scale,
};
use crate::{pct, StreamStats};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_stats::json::Value;
use itr_workloads::{profiles, MimicModel, SpecProfile};
use std::fmt::Write as _;
use std::path::Path;

/// Union of the top-N points Figures 1 and 2 plot.
pub const TOP_POINTS: [usize; 10] = [10, 25, 50, 100, 200, 300, 400, 500, 700, 1000];
/// Figure 1 (integer suite) points.
pub const INT_POINTS: [usize; 8] = [50, 100, 200, 300, 400, 500, 700, 1000];
/// Figure 2 (floating-point suite) points.
pub const FP_POINTS: [usize; 8] = [10, 25, 50, 100, 200, 300, 400, 500];
/// Figures 3–4 distance buckets (500-instruction steps to 10 000).
pub fn dist_buckets() -> Vec<u64> {
    (1..=20).map(|i| i * 500).collect()
}

/// Everything Table 1 and Figures 1–4 need from one benchmark's stream.
#[derive(Debug, Clone)]
pub struct BenchChar {
    /// Benchmark name.
    pub name: String,
    /// Floating-point suite member.
    pub fp: bool,
    /// Paper's published static-trace count.
    pub paper: u32,
    /// Modelled full static population.
    pub modelled: u32,
    /// Static traces visited within the instruction budget.
    pub observed: u64,
    /// `(n, cumulative % of dynamic instructions)` at [`TOP_POINTS`].
    pub tops: Vec<(usize, f64)>,
    /// `(distance, % of dynamic instructions)` at [`dist_buckets`].
    pub dists: Vec<(u64, f64)>,
}

impl BenchChar {
    /// Journal-crossing encoding.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("fp", Value::Bool(self.fp)),
            ("paper", Value::UInt(self.paper as u64)),
            ("modelled", Value::UInt(self.modelled as u64)),
            ("observed", Value::UInt(self.observed)),
            (
                "tops",
                Value::Array(
                    self.tops
                        .iter()
                        .map(|&(n, p)| {
                            obj(vec![("n", Value::UInt(n as u64)), ("pct", Value::Float(p))])
                        })
                        .collect(),
                ),
            ),
            (
                "dists",
                Value::Array(
                    self.dists
                        .iter()
                        .map(|&(d, p)| obj(vec![("d", Value::UInt(d)), ("pct", Value::Float(p))]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decoding (panics on shape mismatch — a schema bug, not input).
    pub fn from_value(v: &Value) -> BenchChar {
        BenchChar {
            name: get_str(v, "name").to_string(),
            fp: get_bool(v, "fp"),
            paper: get_u64(v, "paper") as u32,
            modelled: get_u64(v, "modelled") as u32,
            observed: get_u64(v, "observed"),
            tops: get_arr(v, "tops")
                .iter()
                .map(|t| (get_u64(t, "n") as usize, get_f64(t, "pct")))
                .collect(),
            dists: get_arr(v, "dists")
                .iter()
                .map(|t| (get_u64(t, "d"), get_f64(t, "pct")))
                .collect(),
        }
    }

    fn top(&self, n: usize) -> f64 {
        self.tops.iter().find(|&&(p, _)| p == n).map(|&(_, v)| v).unwrap_or(0.0)
    }

    fn dist(&self, d: u64) -> f64 {
        self.dists.iter().find(|&&(p, _)| p == d).map(|&(_, v)| v).unwrap_or(0.0)
    }
}

/// Characterizes one benchmark — the compute shard body, also called
/// serially by the `table1`/`fig1_2`/`fig3_4` binaries.
pub fn characterize_bench(
    profile: SpecProfile,
    seed: u64,
    instrs: u64,
    from_programs: bool,
) -> BenchChar {
    let modelled = MimicModel::new(profile, seed).modelled_static_traces();
    let stats = StreamStats::collect(crate::stream_with(profile, seed, instrs, from_programs));
    BenchChar {
        name: profile.name.to_string(),
        fp: profile.fp,
        paper: profile.static_traces,
        modelled,
        observed: stats.static_traces() as u64,
        tops: TOP_POINTS.iter().map(|&n| (n, stats.top_n_share_pct(n))).collect(),
        dists: dist_buckets().iter().map(|&d| (d, stats.within_distance_pct(d))).collect(),
    }
}

/// Renders Table 1 exactly as the `table1_static_traces` binary prints it.
pub fn render_table1(units: &[BenchChar]) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(text, "=== Table 1: static traces per benchmark ===");
    let _ = writeln!(
        text,
        "{:<10} {:>8} {:>9} {:>9}   (modelled = full static population;",
        "bench", "paper", "modelled", "observed"
    );
    let _ = writeln!(text, "{:>52}", "observed = visited within --instrs)");
    let mut rows = Vec::new();
    for u in units {
        let _ = writeln!(text, "{:<10} {:>8} {:>9} {:>9}", u.name, u.paper, u.modelled, u.observed);
        rows.push(format!("{},{},{},{}", u.name, u.paper, u.modelled, u.observed));
    }
    Emitted {
        txt_name: "table1.txt",
        text,
        csv: Some(Csv {
            name: "table1_static_traces.csv",
            header: "bench,paper,modelled,observed".to_string(),
            rows,
        }),
    }
}

/// Renders Figures 1–2 exactly as the `fig1_2_repetition` binary prints
/// them.
pub fn render_fig1_2(units: &[BenchChar]) -> Emitted {
    let mut text = String::new();
    let mut rows = Vec::new();
    for (title, fp, points) in [
        ("Figure 1 (integer)", false, INT_POINTS.as_slice()),
        ("Figure 2 (floating point)", true, FP_POINTS.as_slice()),
    ] {
        let _ = writeln!(
            text,
            "\n=== {title}: cumulative % dynamic instructions by top-N static traces ==="
        );
        let _ = write!(text, "{:<10}", "bench");
        for n in points {
            let _ = write!(text, "{:>9}", format!("top{n}"));
        }
        let _ = writeln!(text);
        for u in units.iter().filter(|u| u.fp == fp) {
            let _ = write!(text, "{:<10}", u.name);
            for &n in points {
                let _ = write!(text, "{:>9}", pct(u.top(n)));
            }
            let _ = writeln!(text);
            for &n in points {
                rows.push(format!("{},{},{:.3}", u.name, n, u.top(n)));
            }
        }
    }
    let _ = writeln!(
        text,
        "\nPaper shape: in most integer benchmarks <500 static traces contribute nearly all"
    );
    let _ = writeln!(
        text,
        "dynamic instructions (gcc/vortex excepted); FP benchmarks are more repetitive."
    );
    Emitted {
        txt_name: "fig1_2.txt",
        text,
        csv: Some(Csv {
            name: "fig1_2_repetition.csv",
            header: "bench,top_n,share_pct".to_string(),
            rows,
        }),
    }
}

/// Renders Figures 3–4 exactly as the `fig3_4_distance` binary prints
/// them.
pub fn render_fig3_4(units: &[BenchChar]) -> Emitted {
    let buckets = dist_buckets();
    let mut text = String::new();
    let mut rows = Vec::new();
    for (title, fp) in [("Figure 3 (integer)", false), ("Figure 4 (floating point)", true)] {
        let _ = writeln!(
            text,
            "\n=== {title}: % dynamic instructions from repeats within distance ==="
        );
        let _ = write!(text, "{:<10}", "bench");
        for d in [500u64, 1000, 1500, 2000, 5000, 10000] {
            let _ = write!(text, "{:>9}", format!("<{d}"));
        }
        let _ = writeln!(text);
        for u in units.iter().filter(|u| u.fp == fp) {
            let _ = write!(text, "{:<10}", u.name);
            for d in [500u64, 1000, 1500, 2000, 5000, 10000] {
                let _ = write!(text, "{:>9}", pct(u.dist(d)));
            }
            let _ = writeln!(text);
            for &d in &buckets {
                rows.push(format!("{},{},{:.3}", u.name, d, u.dist(d)));
            }
        }
    }
    let _ = writeln!(
        text,
        "\nPaper shape: most integer benchmarks reach 85% within 5000 instructions (perl"
    );
    let _ = writeln!(
        text,
        "and vortex excepted); FP benchmarks reach near-total coverage within 1500."
    );
    Emitted {
        txt_name: "fig3_4.txt",
        text,
        csv: Some(Csv {
            name: "fig3_4_distance.csv",
            header: "bench,distance,share_pct".to_string(),
            rows,
        }),
    }
}

/// Decodes the `characterize` job's payloads back into units, in shard
/// (= `profiles::all()`) order.
pub fn units_from(board: &itr_harness::Blackboard) -> Vec<BenchChar> {
    board.expect("characterize").data().map(BenchChar::from_value).collect()
}

/// Registers the compute job and its three emit jobs.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let s = scale.clone();
    reg.add(JobSpec::new("characterize", &[], move |_| {
        profiles::all()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let s = s.clone();
                ShardSpec::new(i as u32, (i as u64, i as u64 + 1), move |_| {
                    data_payload(
                        characterize_bench(p, s.seed, s.instrs, s.from_programs).to_value(),
                    )
                })
            })
            .collect()
    }));
    for (name, render) in [
        ("table1", render_table1 as fn(&[BenchChar]) -> Emitted),
        ("fig1_2", render_fig1_2),
        ("fig3_4", render_fig3_4),
    ] {
        let dir = out.to_path_buf();
        reg.add(JobSpec::single(name, &["characterize"], move |_, board| {
            emit_payload(&dir, &render(&units_from(board)))
        }));
    }
}
