//! Figure 8 and its by-field supplement: fault-injection campaigns,
//! sharded by (benchmark, fault range).
//!
//! Each shard classifies a contiguous slice of a campaign's planned
//! fault list via [`CampaignPlan::run_range`], so the fleet interleaves
//! slices of every benchmark's campaign at once. The expensive golden
//! reference behind each campaign is built once per process and shared
//! through an in-process cache — resumed runs whose shards all replay
//! from the journal never build it at all.

use super::{data_payload, emit_payload, get_str, obj, Csv, Emitted, Scale};
use itr_faults::{shard_bounds, CampaignConfig, CampaignPlan, FaultRecord, Outcome};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_isa::Program;
use itr_stats::json::Value;
use itr_workloads::{generate_mimic_sized, profiles, SpecProfile};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// Target faults per campaign shard (the unit of resume/steal).
pub const FAULTS_PER_SHARD: u32 = 50;

/// The generated-program size the by-field study runs at (the script
/// never overrode the binary's default).
pub const BYFIELD_PROGRAM_INSTRS: u64 = 100_000;

/// A campaign ready to shard: program, configuration and plan.
pub struct Planned {
    /// The benchmark's generated mimic program.
    pub program: Program,
    /// Campaign parameters.
    pub cfg: CampaignConfig,
    /// Golden references and the planned fault list.
    pub plan: CampaignPlan,
}

static PLANS: OnceLock<Mutex<HashMap<String, Arc<Planned>>>> = OnceLock::new();

/// Builds (or fetches from the in-process cache) the plan for one
/// campaign. Keyed by every parameter that shapes the fault list, so two
/// experiments over the same benchmark at different windows don't
/// collide.
pub fn planned_campaign(
    profile: SpecProfile,
    program_seed: u64,
    program_instrs: u64,
    cfg: &CampaignConfig,
) -> Arc<Planned> {
    let key = format!(
        "{}:{program_seed:x}:{program_instrs}:{:x}:{}:{}:{}:{}",
        profile.name, cfg.seed, cfg.faults, cfg.window_cycles, cfg.min_decode, cfg.max_decode
    );
    let cache = PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("plan cache poisoned").get(&key) {
        return Arc::clone(hit);
    }
    // Build outside the lock: plans are expensive and shards for other
    // benchmarks shouldn't serialize behind this one. A racing duplicate
    // build is possible and harmless (identical plans; last one wins).
    let program = generate_mimic_sized(profile, program_seed, program_instrs);
    let plan = CampaignPlan::new(&program, cfg);
    let planned = Arc::new(Planned { program, cfg: cfg.clone(), plan });
    cache.lock().expect("plan cache poisoned").insert(key, Arc::clone(&planned));
    planned
}

/// The Figure 8 campaign configuration (mirrors the `fig8_injection`
/// binary).
pub fn fig8_cfg(base_seed: u64, faults: u32, window: u64, program_instrs: u64) -> CampaignConfig {
    CampaignConfig {
        faults,
        window_cycles: window,
        min_decode: 200,
        max_decode: program_instrs,
        seed: base_seed ^ 0xF8,
        threads: 0,
        ..CampaignConfig::default()
    }
}

/// The by-field campaign configuration (mirrors the `fig8_by_field`
/// binary).
pub fn byfield_cfg(
    base_seed: u64,
    faults: u32,
    window: u64,
    program_instrs: u64,
) -> CampaignConfig {
    CampaignConfig {
        faults,
        window_cycles: window,
        min_decode: 200,
        max_decode: program_instrs,
        seed: base_seed ^ 0xF1E1D,
        threads: 0,
        ..CampaignConfig::default()
    }
}

/// Outcome tallies in [`Outcome::ALL`] order.
pub type OutcomeCounts = [u64; 10];

/// Tallies records into [`Outcome::ALL`] order.
pub fn tally(records: &[FaultRecord]) -> OutcomeCounts {
    let mut counts = [0u64; 10];
    for r in records {
        let i = Outcome::ALL.iter().position(|o| *o == r.outcome).expect("known outcome");
        counts[i] += 1;
    }
    counts
}

fn counts_value(counts: &OutcomeCounts) -> Value {
    Value::Array(counts.iter().map(|&n| Value::UInt(n)).collect())
}

fn counts_from(v: &Value) -> OutcomeCounts {
    let arr = v.as_array().expect("counts array");
    let mut counts = [0u64; 10];
    for (i, n) in arr.iter().enumerate().take(10) {
        counts[i] = n.as_u64().expect("count");
    }
    counts
}

/// One benchmark's Figure 8 tallies.
#[derive(Debug, Clone)]
pub struct Fig8Unit {
    /// Benchmark name.
    pub name: String,
    /// Outcome tallies in [`Outcome::ALL`] order.
    pub counts: OutcomeCounts,
}

/// Renders Figure 8 exactly as the `fig8_injection` binary prints it.
pub fn render_fig8(units: &[Fig8Unit], faults: u32, window: u64) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "=== Figure 8: outcome of {faults} injected faults per benchmark (window {window} cycles) ==="
    );
    let _ = write!(text, "{:<10}", "bench");
    for o in Outcome::ALL {
        let _ = write!(text, "{:>12}", o.label());
    }
    let _ = writeln!(text);

    let mut rows = Vec::new();
    let mut totals = vec![0.0f64; Outcome::ALL.len()];
    for u in units {
        let n: u64 = u.counts.iter().sum();
        let _ = write!(text, "{:<10}", u.name);
        let mut row = u.name.clone();
        for (i, _) in Outcome::ALL.into_iter().enumerate() {
            let f = u.counts[i] as f64 * 100.0 / n.max(1) as f64;
            totals[i] += f;
            let _ = write!(text, "{f:>11.1}%");
            row.push_str(&format!(",{f:.2}"));
        }
        let _ = writeln!(text);
        rows.push(row);
    }
    let _ = write!(text, "{:<10}", "Avg");
    let mut avg_row = "Avg".to_string();
    for t in &totals {
        let f = t / units.len() as f64;
        let _ = write!(text, "{f:>11.1}%");
        avg_row.push_str(&format!(",{f:.2}"));
    }
    let _ = writeln!(text);
    rows.push(avg_row);

    let itr_avg: f64 = totals
        .iter()
        .zip(Outcome::ALL)
        .filter(|(_, o)| o.itr_detected())
        .map(|(t, _)| t)
        .sum::<f64>()
        / units.len() as f64;
    let _ =
        writeln!(text, "\nAverage detected through the ITR cache: {itr_avg:.1}% (paper: 95.4%)");

    let header = {
        let mut h = "bench".to_string();
        for o in Outcome::ALL {
            h.push(',');
            h.push_str(o.label());
        }
        h
    };
    Emitted {
        txt_name: "fig8.txt",
        text,
        csv: Some(Csv { name: "fig8_injection.csv", header, rows }),
    }
}

/// By-field tallies: field name → outcome counts.
pub type FieldCounts = BTreeMap<String, OutcomeCounts>;

/// Tallies records per Table-2 field.
pub fn tally_by_field(records: &[FaultRecord]) -> FieldCounts {
    let mut fields = FieldCounts::new();
    for r in records {
        let i = Outcome::ALL.iter().position(|o| *o == r.outcome).expect("known outcome");
        fields.entry(r.field.to_string()).or_insert([0u64; 10])[i] += 1;
    }
    fields
}

/// Renders the by-field supplement exactly as the `fig8_by_field` binary
/// prints it.
pub fn render_byfield(fields: &FieldCounts, faults: u32, bench: &str) -> Emitted {
    let mut text = String::new();
    let _ =
        writeln!(text, "=== Figure 8 supplement: {faults} faults on `{bench}` by signal field ===");
    let _ = write!(text, "{:<10} {:>6}", "field", "n");
    for o in Outcome::ALL {
        let _ = write!(text, "{:>12}", o.label());
    }
    let _ = writeln!(text);
    let mut rows = Vec::new();
    for (field, counts) in fields {
        let n: u64 = counts.iter().sum();
        let _ = write!(text, "{field:<10} {n:>6}");
        let mut row = format!("{field},{n}");
        for (i, _) in Outcome::ALL.into_iter().enumerate() {
            let f = counts[i] as f64 * 100.0 / n as f64;
            let _ = write!(text, "{f:>11.1}%");
            row.push_str(&format!(",{f:.2}"));
        }
        let _ = writeln!(text);
        rows.push(row);
    }
    let _ =
        writeln!(text, "\nExpected: lat flips nearly all ITR+Mask; rsrc/rdst/opcode/imm carry the");
    let _ = writeln!(text, "SDC mass; num_rsrc contributes the deadlock rescues (ITR+wdog+R).");

    let mut header = "field,n".to_string();
    for o in Outcome::ALL {
        header.push(',');
        header.push_str(o.label());
    }
    Emitted {
        txt_name: "fig8_by_field.txt",
        text,
        csv: Some(Csv { name: "fig8_by_field.csv", header, rows }),
    }
}

/// Registers the two campaign jobs and their emit jobs.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let suite = profiles::coverage_figure_set();
    let ranges = shard_bounds(scale.faults, scale.faults.div_ceil(FAULTS_PER_SHARD));

    // -- Figure 8: every benchmark's campaign, sliced into fault ranges --
    let s = scale.clone();
    let shard_ranges = ranges.clone();
    reg.add(JobSpec::new("fig8-campaigns", &[], move |_| {
        let mut shards = Vec::new();
        for (bi, profile) in profiles::coverage_figure_set().into_iter().enumerate() {
            for (ri, &(lo, hi)) in shard_ranges.iter().enumerate() {
                let s = s.clone();
                let index = (bi * shard_ranges.len() + ri) as u32;
                let global_lo = bi as u64 * s.faults as u64 + lo as u64;
                let global_hi = bi as u64 * s.faults as u64 + hi as u64;
                shards.push(ShardSpec::new(index, (global_lo, global_hi), move |ctx| {
                    let cfg = fig8_cfg(s.seed, s.faults, s.window_cycles, s.program_instrs);
                    let planned = planned_campaign(profile, s.seed, s.program_instrs, &cfg);
                    let shard =
                        planned
                            .plan
                            .run_range(&planned.program, &planned.cfg, lo, hi, &|| ctx.cancelled());
                    data_payload(obj(vec![
                        ("bench", Value::Str(profile.name.to_string())),
                        ("lo", Value::UInt(lo as u64)),
                        ("hi", Value::UInt(hi as u64)),
                        ("counts", counts_value(&tally(&shard.records))),
                    ]))
                }));
            }
        }
        shards
    }));
    let dir = out.to_path_buf();
    let s = scale.clone();
    let suite_names: Vec<String> = suite.iter().map(|p| p.name.to_string()).collect();
    reg.add(JobSpec::single("fig8", &["fig8-campaigns"], move |_, board| {
        let mut by_bench: BTreeMap<String, OutcomeCounts> = BTreeMap::new();
        for data in board.expect("fig8-campaigns").data() {
            let counts = counts_from(data.get("counts").expect("counts"));
            let entry = by_bench.entry(get_str(data, "bench").to_string()).or_insert([0u64; 10]);
            for (e, c) in entry.iter_mut().zip(counts) {
                *e += c;
            }
        }
        let units: Vec<Fig8Unit> = suite_names
            .iter()
            .map(|name| Fig8Unit {
                name: name.clone(),
                counts: by_bench.get(name).copied().unwrap_or([0u64; 10]),
            })
            .collect();
        emit_payload(&dir, &render_fig8(&units, s.faults, s.window_cycles))
    }));

    // -- by-field supplement: one deep campaign on `gap` --
    let s = scale.clone();
    let shard_ranges = ranges;
    reg.add(JobSpec::new("byfield-campaign", &[], move |_| {
        let profile = profiles::by_name("gap").expect("known benchmark");
        shard_ranges
            .iter()
            .enumerate()
            .map(|(ri, &(lo, hi))| {
                let s = s.clone();
                ShardSpec::new(ri as u32, (lo as u64, hi as u64), move |ctx| {
                    let cfg =
                        byfield_cfg(s.seed, s.faults, s.window_cycles, BYFIELD_PROGRAM_INSTRS);
                    let planned = planned_campaign(profile, s.seed, BYFIELD_PROGRAM_INSTRS, &cfg);
                    let shard =
                        planned
                            .plan
                            .run_range(&planned.program, &planned.cfg, lo, hi, &|| ctx.cancelled());
                    let fields = tally_by_field(&shard.records);
                    data_payload(obj(vec![
                        ("lo", Value::UInt(lo as u64)),
                        ("hi", Value::UInt(hi as u64)),
                        (
                            "fields",
                            Value::Object(
                                fields.iter().map(|(f, c)| (f.clone(), counts_value(c))).collect(),
                            ),
                        ),
                    ]))
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    let s = scale.clone();
    reg.add(JobSpec::single("fig8-by-field", &["byfield-campaign"], move |_, board| {
        let mut fields = FieldCounts::new();
        for data in board.expect("byfield-campaign").data() {
            let Some(Value::Object(obj)) = data.get("fields").cloned() else { continue };
            for (field, counts) in &obj {
                let entry = fields.entry(field.clone()).or_insert([0u64; 10]);
                for (e, c) in entry.iter_mut().zip(counts_from(counts)) {
                    *e += c;
                }
            }
        }
        emit_payload(&dir, &render_byfield(&fields, s.faults, "gap"))
    }));
}
