//! Figure 9: ITR-cache energy versus the redundant second I-cache fetch,
//! one compute shard per benchmark (a full ITR-enabled pipeline run).

use super::{data_payload, emit_payload, get_f64, get_str, get_u64, obj, Csv, Emitted, Scale};
use itr_harness::{JobSpec, Registry, ShardSpec};
use itr_power::EnergyRow;
use itr_sim::{Pipeline, PipelineConfig};
use itr_stats::json::Value;
use itr_stats::Report;
use itr_workloads::{generate_mimic_sized, profiles, SpecProfile};
use std::fmt::Write as _;
use std::path::Path;

/// The generated-program size Figure 9 runs at (fixed in both modes,
/// matching the `--program-instrs 300000` the script always passed).
pub const FIG9_PROGRAM_INSTRS: u64 = 300_000;

/// One benchmark's Figure 9 row.
#[derive(Debug, Clone)]
pub struct EnergyUnit {
    /// Benchmark name.
    pub name: String,
    /// ITR cache accesses (reads + writes).
    pub itr_accesses: u64,
    /// I-cache accesses a redundant frontend would repeat.
    pub icache_accesses: u64,
    /// ITR cache energy, single shared port (mJ).
    pub itr_single_port_mj: f64,
    /// ITR cache energy, separate read/write ports (mJ).
    pub itr_dual_port_mj: f64,
    /// Redundant second-fetch energy (mJ).
    pub icache_refetch_mj: f64,
}

impl EnergyUnit {
    /// Journal-crossing encoding.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("name", Value::Str(self.name.clone())),
            ("itr_accesses", Value::UInt(self.itr_accesses)),
            ("icache_accesses", Value::UInt(self.icache_accesses)),
            ("itr_single_port_mj", Value::Float(self.itr_single_port_mj)),
            ("itr_dual_port_mj", Value::Float(self.itr_dual_port_mj)),
            ("icache_refetch_mj", Value::Float(self.icache_refetch_mj)),
        ])
    }

    /// Decoding.
    pub fn from_value(v: &Value) -> EnergyUnit {
        EnergyUnit {
            name: get_str(v, "name").to_string(),
            itr_accesses: get_u64(v, "itr_accesses"),
            icache_accesses: get_u64(v, "icache_accesses"),
            itr_single_port_mj: get_f64(v, "itr_single_port_mj"),
            itr_dual_port_mj: get_f64(v, "itr_dual_port_mj"),
            icache_refetch_mj: get_f64(v, "icache_refetch_mj"),
        }
    }

    /// Same ratio [`EnergyRow::saving_factor`] reports.
    pub fn saving_factor(&self) -> f64 {
        if self.itr_single_port_mj == 0.0 {
            return f64::INFINITY;
        }
        self.icache_refetch_mj / self.itr_single_port_mj
    }
}

/// Measures one benchmark — the compute shard body, also used serially
/// by the `fig9_energy` binary.
pub fn energy_unit(profile: SpecProfile, seed: u64, program_instrs: u64) -> EnergyUnit {
    let program = generate_mimic_sized(profile, seed, program_instrs);
    let mut pipe = Pipeline::new(&program, PipelineConfig::with_itr());
    pipe.run(program_instrs * 10);
    let report =
        Report::from_json(&pipe.stats_json()).expect("pipeline emits a valid itr-stats/v1 report");
    let row = EnergyRow::from_report(profile.name, &report)
        .expect("ITR-enabled run exports itr_cache and pipeline sections");
    EnergyUnit {
        name: row.name,
        itr_accesses: row.itr_accesses,
        icache_accesses: row.icache_accesses,
        itr_single_port_mj: row.itr_single_port_mj,
        itr_dual_port_mj: row.itr_dual_port_mj,
        icache_refetch_mj: row.icache_refetch_mj,
    }
}

/// Renders Figure 9 exactly as the `fig9_energy` binary prints it.
pub fn render_fig9(units: &[EnergyUnit]) -> Emitted {
    let mut text = String::new();
    let _ = writeln!(text, "=== Figure 9: energy of ITR cache vs I-cache second fetch (mJ) ===");
    let _ = writeln!(
        text,
        "{:<10} {:>12} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "bench", "itr-acc", "ic-acc", "ITR 1rd/wr", "ITR 1rd+1wr", "I-cache", "saving"
    );
    let mut rows = Vec::new();
    for u in units {
        let _ = writeln!(
            text,
            "{:<10} {:>12} {:>12} {:>14.3} {:>14.3} {:>14.3} {:>7.1}x",
            u.name,
            u.itr_accesses,
            u.icache_accesses,
            u.itr_single_port_mj,
            u.itr_dual_port_mj,
            u.icache_refetch_mj,
            u.saving_factor()
        );
        rows.push(format!(
            "{},{},{},{:.5},{:.5},{:.5}",
            u.name,
            u.itr_accesses,
            u.icache_accesses,
            u.itr_single_port_mj,
            u.itr_dual_port_mj,
            u.icache_refetch_mj
        ));
    }
    let _ = writeln!(
        text,
        "\nPaper shape: the ITR cache is far more energy-efficient than fetching every"
    );
    let _ = writeln!(text, "instruction twice from the I-cache, for every benchmark.");
    Emitted {
        txt_name: "fig9.txt",
        text,
        csv: Some(Csv {
            name: "fig9_energy.csv",
            header: "bench,itr_accesses,icache_accesses,itr_single_mj,itr_dual_mj,icache_mj"
                .to_string(),
            rows,
        }),
    }
}

/// Registers the compute job and its emit job.
pub fn register(reg: &mut Registry, scale: &Scale, out: &Path) {
    let seed = scale.seed;
    reg.add(JobSpec::new("energy", &[], move |_| {
        profiles::all()
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                ShardSpec::new(i as u32, (i as u64, i as u64 + 1), move |_| {
                    data_payload(energy_unit(p, seed, FIG9_PROGRAM_INSTRS).to_value())
                })
            })
            .collect()
    }));
    let dir = out.to_path_buf();
    reg.add(JobSpec::single("fig9", &["energy"], move |_, board| {
        let units: Vec<EnergyUnit> =
            board.expect("energy").data().map(EnergyUnit::from_value).collect();
        emit_payload(&dir, &render_fig9(&units))
    }));
}
